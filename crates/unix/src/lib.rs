//! `spin-unix` — a UNIX server on SPIN.
//!
//! "We have used SPIN to implement a UNIX operating system server. The
//! bulk of the server ... executes within its own address space (as do
//! applications). The server consists of a large body of code that
//! implements the DEC OSF/1 system call interface, and a small number of
//! SPIN extensions that provide the thread, virtual memory, and device
//! interfaces required by the server" (§1.2).
//!
//! This crate is that server: a process model (fork with copy-on-write via
//! the `UnixAsExtension`, exit/waitpid, brk), file descriptors over the
//! `FileSystem`, and pipes over the kernel channel primitive. The server
//! registers a band of system-call numbers on `Trap.SystemCall` for the
//! calls that carry their arguments in registers; richer calls are invoked
//! through the server interface, as the paper's server is by its C
//! library.

#![forbid(unsafe_code)]

pub mod pipe;
pub mod proc;
pub mod server;

pub use pipe::Pipe;
pub use proc::{Fd, Pid, ProcState};
pub use server::{UnixError, UnixServer, SYSCALL_BASE};
