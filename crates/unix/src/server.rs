//! The UNIX server proper: the OSF/1-flavoured call interface.
//!
//! The server composes three SPIN extensions exactly as §1.2 describes —
//! threads (strands via the executor), virtual memory (the UNIX
//! address-space extension with copy-on-write fork), and storage (the file
//! system) — behind a classic system-call surface: `fork`, `exit`,
//! `waitpid`, `getpid`, `brk`, `open`, `close`, `read`, `write`, `lseek`,
//! `pipe`, `dup`.
//!
//! Register-only calls are also installed on `Trap.SystemCall` in the
//! number band starting at [`SYSCALL_BASE`], the way the paper's server
//! hooks the kernel.

use crate::pipe::Pipe;
use crate::proc::{Fd, Pid, Proc, ProcState};
use spin_check::sync::Mutex;
use spin_check::sync::{AtomicU32, Ordering};
use spin_core::{Identity, Kernel};
use spin_fs::{FileSystem, FsError};
use spin_obs::{ObsHook, TraceKind};
use spin_sal::Protection;
use spin_sched::{Executor, StrandCtx};
use spin_vm::{UnixAsExtension, VmError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// First system-call number of the server's band on `Trap.SystemCall`.
pub const SYSCALL_BASE: u64 = 1000;

/// Errors from server calls (errno-flavoured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnixError {
    /// ESRCH — no such process.
    NoSuchProcess,
    /// EBADF — bad file descriptor.
    BadFd,
    /// ECHILD — no children to wait for.
    NoChildren,
    /// EPIPE — broken pipe.
    BrokenPipe,
    /// ENOMEM — address-space allocation failed.
    NoMemory,
    /// A file-system error, carried through.
    Fs(FsError),
}

impl From<FsError> for UnixError {
    fn from(e: FsError) -> Self {
        UnixError::Fs(e)
    }
}

impl From<VmError> for UnixError {
    fn from(_: VmError) -> Self {
        UnixError::NoMemory
    }
}

struct ServerState {
    procs: BTreeMap<Pid, Proc>,
}

/// Stable call numbers used when tracing server calls (the `a` word of a
/// `SyscallTrap` record from the unix domain).
pub mod calls {
    pub const FORK: u64 = 1;
    pub const EXIT: u64 = 2;
    pub const WAITPID: u64 = 3;
    pub const SBRK: u64 = 4;
    pub const OPEN: u64 = 5;
    pub const CLOSE: u64 = 6;
    pub const DUP: u64 = 7;
    pub const PIPE: u64 = 8;
    pub const WRITE: u64 = 9;
    pub const READ: u64 = 10;
    pub const LSEEK: u64 = 11;
}

/// The UNIX server.
#[derive(Clone)]
pub struct UnixServer {
    exec: Arc<Executor>,
    vm: UnixAsExtension,
    fs: FileSystem,
    state: Arc<Mutex<ServerState>>,
    next_pid: Arc<AtomicU32>,
    /// Observability hook (unix domain): absent until wired; server calls
    /// then pay one atomic load each.
    obs: Arc<spin_core::hooks::HookSlot<ObsHook>>,
}

impl UnixServer {
    /// Starts the server over the given extensions and registers its
    /// register-only system calls on the kernel's trap path.
    pub fn start(
        kernel: &Kernel,
        exec: Arc<Executor>,
        vm: UnixAsExtension,
        fs: FileSystem,
    ) -> UnixServer {
        let server = UnixServer {
            exec,
            vm,
            fs,
            state: Arc::new(Mutex::new(ServerState {
                procs: BTreeMap::new(),
            })),
            next_pid: Arc::new(AtomicU32::new(1)),
            obs: Arc::new(spin_core::hooks::HookSlot::new()),
        };
        // getpid(pid) and brk-query are pure register calls; install them
        // in the server's band as the paper's server does.
        let srv = server.clone();
        kernel
            .register_syscalls(
                Identity::extension("unix-server"),
                SYSCALL_BASE..SYSCALL_BASE + 2,
                move |sc| {
                    match sc.number - SYSCALL_BASE {
                        0 => {
                            // getpid: identity, validated against the table.
                            let pid = Pid(sc.args[0] as u32);
                            if srv.state.lock().procs.contains_key(&pid) {
                                pid.0 as i64
                            } else {
                                -3 // ESRCH
                            }
                        }
                        1 => srv.state.lock().procs.len() as i64, // "ps" count
                        _ => -78,
                    }
                },
            )
            .expect("syscall band free");
        server
    }

    /// Wires the observability subsystem: server calls are accounted to
    /// the unix domain. One-shot; charges zero virtual time.
    pub fn set_obs(&self, hook: ObsHook) {
        let _ = self.obs.set(hook);
    }

    /// Accounts one server call (see [`calls`]) to the unix domain.
    #[inline]
    fn note(&self, call: u64, pid: Pid) {
        if let Some(obs) = self.obs.get() {
            obs.counters.syscalls.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.trace(TraceKind::SyscallTrap, call, pid.0 as u64);
        }
    }

    /// Creates the initial process (the paper's server boots `init`).
    pub fn spawn_init(&self) -> Pid {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let space = self.vm.create();
        self.state
            .lock()
            .procs
            .insert(pid, Proc::new(pid, None, space));
        pid
    }

    /// `fork`: a child with a copy-on-write image of the parent and
    /// duplicated descriptors.
    pub fn fork(&self, parent: Pid) -> Result<Pid, UnixError> {
        self.note(calls::FORK, parent);
        let child_pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let (child_space, fds) = {
            let st = self.state.lock();
            let p = st.procs.get(&parent).ok_or(UnixError::NoSuchProcess)?;
            (self.vm.copy(&p.space)?, p.fds.clone())
        };
        // Pipe ends gain references.
        for fd in fds.values() {
            match fd {
                Fd::PipeRead(p) => p.add_reader(),
                Fd::PipeWrite(p) => p.add_writer(),
                Fd::File { .. } => {}
            }
        }
        let mut child = Proc::new(child_pid, Some(parent), child_space);
        child.fds = fds;
        child.next_fd = self.state.lock().procs[&parent].next_fd;
        self.state.lock().procs.insert(child_pid, child);
        Ok(child_pid)
    }

    /// `exit`: become a zombie and wake any waiting parent.
    pub fn exit(&self, pid: Pid, status: i32) {
        self.note(calls::EXIT, pid);
        let (waiters, fds) = {
            let mut st = self.state.lock();
            let (parent, fds) = match st.procs.get_mut(&pid) {
                Some(p) => {
                    p.state = ProcState::Zombie(status);
                    (p.parent, p.fds.drain().map(|(_, f)| f).collect::<Vec<_>>())
                }
                None => return,
            };
            let waiters = parent
                .and_then(|pp| st.procs.get_mut(&pp))
                .map(|pp| std::mem::take(&mut pp.waiters))
                .unwrap_or_default();
            (waiters, fds)
        };
        for fd in fds {
            self.release_fd(fd);
        }
        for w in waiters {
            self.exec.unblock(w);
        }
    }

    fn release_fd(&self, fd: Fd) {
        match fd {
            Fd::PipeRead(p) => p.drop_reader(),
            Fd::PipeWrite(p) => p.drop_writer(),
            Fd::File { .. } => {}
        }
    }

    /// `waitpid(-1)`: blocks until any child of `parent` exits; reaps it.
    pub fn waitpid(&self, ctx: &StrandCtx, parent: Pid) -> Result<(Pid, i32), UnixError> {
        self.note(calls::WAITPID, parent);
        loop {
            {
                let mut st = self.state.lock();
                if !st.procs.contains_key(&parent) {
                    return Err(UnixError::NoSuchProcess);
                }
                let zombie = st
                    .procs
                    .values()
                    .find(|p| p.parent == Some(parent) && matches!(p.state, ProcState::Zombie(_)))
                    .map(|p| p.pid);
                if let Some(child) = zombie {
                    let status = match st.procs.remove(&child).map(|p| p.state) {
                        Some(ProcState::Zombie(s)) => s,
                        _ => 0,
                    };
                    return Ok((child, status));
                }
                let any_children = st.procs.values().any(|p| p.parent == Some(parent));
                if !any_children {
                    return Err(UnixError::NoChildren);
                }
                st.procs
                    .get_mut(&parent)
                    .expect("checked above")
                    .waiters
                    .push(ctx.id());
            }
            ctx.block();
        }
    }

    /// `brk`-style allocation: extends the process image by `pages`,
    /// returning the base address.
    pub fn sbrk(&self, pid: Pid, pages: u64) -> Result<u64, UnixError> {
        self.note(calls::SBRK, pid);
        let space = {
            let st = self.state.lock();
            st.procs
                .get(&pid)
                .ok_or(UnixError::NoSuchProcess)?
                .space
                .clone()
        };
        Ok(self.vm.allocate(&space, pages, Protection::READ_WRITE)?)
    }

    /// Writes into a process's memory (the server moving data to an app).
    pub fn copyout(&self, pid: Pid, va: u64, data: &[u8]) -> Result<(), UnixError> {
        let space = {
            let st = self.state.lock();
            st.procs
                .get(&pid)
                .ok_or(UnixError::NoSuchProcess)?
                .space
                .clone()
        };
        Ok(self.vm.write(&space, va, data)?)
    }

    /// Reads from a process's memory.
    pub fn copyin(&self, pid: Pid, va: u64, buf: &mut [u8]) -> Result<(), UnixError> {
        let space = {
            let st = self.state.lock();
            st.procs
                .get(&pid)
                .ok_or(UnixError::NoSuchProcess)?
                .space
                .clone()
        };
        Ok(self.vm.read(&space, va, buf)?)
    }

    /// `open` (creating if absent).
    pub fn open(&self, pid: Pid, path: &str) -> Result<i32, UnixError> {
        self.note(calls::OPEN, pid);
        if self.fs.size_of(path).is_err() {
            self.fs.create(path)?;
        }
        let mut st = self.state.lock();
        let p = st.procs.get_mut(&pid).ok_or(UnixError::NoSuchProcess)?;
        Ok(p.alloc_fd(Fd::File {
            path: path.to_string(),
            offset: 0,
        }))
    }

    /// `close`.
    pub fn close(&self, pid: Pid, fd: i32) -> Result<(), UnixError> {
        self.note(calls::CLOSE, pid);
        let f = {
            let mut st = self.state.lock();
            let p = st.procs.get_mut(&pid).ok_or(UnixError::NoSuchProcess)?;
            p.fds.remove(&fd).ok_or(UnixError::BadFd)?
        };
        self.release_fd(f);
        Ok(())
    }

    /// `dup`.
    pub fn dup(&self, pid: Pid, fd: i32) -> Result<i32, UnixError> {
        self.note(calls::DUP, pid);
        let mut st = self.state.lock();
        let p = st.procs.get_mut(&pid).ok_or(UnixError::NoSuchProcess)?;
        let f = p.fds.get(&fd).ok_or(UnixError::BadFd)?.clone();
        match &f {
            Fd::PipeRead(p) => p.add_reader(),
            Fd::PipeWrite(p) => p.add_writer(),
            Fd::File { .. } => {}
        }
        Ok(p.alloc_fd(f))
    }

    /// `pipe`: returns (read fd, write fd).
    pub fn pipe(&self, pid: Pid) -> Result<(i32, i32), UnixError> {
        self.note(calls::PIPE, pid);
        let pipe = Pipe::new(self.exec.clone());
        let mut st = self.state.lock();
        let p = st.procs.get_mut(&pid).ok_or(UnixError::NoSuchProcess)?;
        let r = p.alloc_fd(Fd::PipeRead(pipe.clone()));
        let w = p.alloc_fd(Fd::PipeWrite(pipe));
        Ok((r, w))
    }

    /// `write`.
    pub fn write(
        &self,
        ctx: &StrandCtx,
        pid: Pid,
        fd: i32,
        data: &[u8],
    ) -> Result<usize, UnixError> {
        self.note(calls::WRITE, pid);
        let f = {
            let st = self.state.lock();
            st.procs
                .get(&pid)
                .ok_or(UnixError::NoSuchProcess)?
                .fds
                .get(&fd)
                .ok_or(UnixError::BadFd)?
                .clone()
        };
        match f {
            Fd::File { path, offset } => {
                // Read-modify-write of the whole file (simple server).
                let mut content = self.fs.read_file(ctx, &path).unwrap_or_default();
                let end = offset as usize + data.len();
                if content.len() < end {
                    content.resize(end, 0);
                }
                content[offset as usize..end].copy_from_slice(data);
                self.fs.write_file(ctx, &path, &content)?;
                let mut st = self.state.lock();
                if let Some(Fd::File { offset, .. }) =
                    st.procs.get_mut(&pid).and_then(|p| p.fds.get_mut(&fd))
                {
                    *offset = end as u64;
                }
                Ok(data.len())
            }
            Fd::PipeWrite(p) => p.write(ctx, data).ok_or(UnixError::BrokenPipe),
            Fd::PipeRead(_) => Err(UnixError::BadFd),
        }
    }

    /// `read`.
    pub fn read(
        &self,
        ctx: &StrandCtx,
        pid: Pid,
        fd: i32,
        max: usize,
    ) -> Result<Vec<u8>, UnixError> {
        self.note(calls::READ, pid);
        let f = {
            let st = self.state.lock();
            st.procs
                .get(&pid)
                .ok_or(UnixError::NoSuchProcess)?
                .fds
                .get(&fd)
                .ok_or(UnixError::BadFd)?
                .clone()
        };
        match f {
            Fd::File { path, offset } => {
                let data = self.fs.read_at(ctx, &path, offset, max)?;
                let mut st = self.state.lock();
                if let Some(Fd::File { offset, .. }) =
                    st.procs.get_mut(&pid).and_then(|p| p.fds.get_mut(&fd))
                {
                    *offset += data.len() as u64;
                }
                Ok(data)
            }
            Fd::PipeRead(p) => Ok(p.read(ctx, max)),
            Fd::PipeWrite(_) => Err(UnixError::BadFd),
        }
    }

    /// `lseek` (absolute).
    pub fn lseek(&self, pid: Pid, fd: i32, pos: u64) -> Result<(), UnixError> {
        self.note(calls::LSEEK, pid);
        let mut st = self.state.lock();
        match st.procs.get_mut(&pid).and_then(|p| p.fds.get_mut(&fd)) {
            Some(Fd::File { offset, .. }) => {
                *offset = pos;
                Ok(())
            }
            Some(_) => Err(UnixError::BadFd),
            None => Err(UnixError::BadFd),
        }
    }

    /// Live process count.
    pub fn process_count(&self) -> usize {
        self.state.lock().procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_fs::{BufferCache, LruPolicy};
    use spin_sal::SimBoard;
    use spin_vm::VmService;

    struct Rig {
        kernel: Kernel,
        exec: Arc<Executor>,
        server: UnixServer,
    }

    fn rig() -> Rig {
        let board = SimBoard::new();
        let host = board.new_host(512);
        let exec = Executor::for_host(&host);
        let kernel = Kernel::boot(host.clone());
        let vm = VmService::install(&kernel);
        let unix_vm = UnixAsExtension::install(
            vm.trans.clone(),
            vm.phys.clone(),
            vm.virt.clone(),
            host.mem.clone(),
        );
        let cache = BufferCache::new(
            host.disk.clone(),
            exec.clone(),
            64,
            Box::new(LruPolicy::default()),
        );
        let fs = FileSystem::format(cache, 0, 400);
        let server = UnixServer::start(&kernel, exec.clone(), unix_vm, fs);
        Rig {
            kernel,
            exec,
            server,
        }
    }

    #[test]
    fn fork_gives_cow_isolated_images() {
        let r = rig();
        let srv = r.server.clone();
        r.exec.spawn("init", move |_ctx| {
            let init = srv.spawn_init();
            let base = srv.sbrk(init, 1).unwrap();
            srv.copyout(init, base, b"parent data").unwrap();
            let child = srv.fork(init).unwrap();
            // Child sees, then diverges.
            let mut buf = [0u8; 11];
            srv.copyin(child, base, &mut buf).unwrap();
            assert_eq!(&buf, b"parent data");
            srv.copyout(child, base, b"child  data").unwrap();
            srv.copyin(init, base, &mut buf).unwrap();
            assert_eq!(&buf, b"parent data", "COW isolates the parent");
        });
        assert_eq!(
            r.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }

    #[test]
    fn exit_and_waitpid_reap_children() {
        let r = rig();
        let srv = r.server.clone();
        let exec2 = r.exec.clone();
        r.exec.spawn("init", move |ctx| {
            let init = srv.spawn_init();
            let child = srv.fork(init).unwrap();
            // The child "runs" on its own strand and exits with status 7.
            let srv2 = srv.clone();
            exec2.spawn("child", move |cctx| {
                cctx.sleep(1_000_000);
                srv2.exit(child, 7);
            });
            let (reaped, status) = srv.waitpid(ctx, init).unwrap();
            assert_eq!(reaped, child);
            assert_eq!(status, 7);
            assert_eq!(srv.process_count(), 1, "only init remains");
            assert!(matches!(srv.waitpid(ctx, init), Err(UnixError::NoChildren)));
        });
        assert_eq!(
            r.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }

    #[test]
    fn files_read_and_write_through_descriptors() {
        let r = rig();
        let srv = r.server.clone();
        r.exec.spawn("app", move |ctx| {
            let p = srv.spawn_init();
            let fd = srv.open(p, "/etc/motd").unwrap();
            assert_eq!(srv.write(ctx, p, fd, b"welcome to SPIN").unwrap(), 15);
            srv.lseek(p, fd, 0).unwrap();
            assert_eq!(srv.read(ctx, p, fd, 7).unwrap(), b"welcome");
            assert_eq!(srv.read(ctx, p, fd, 100).unwrap(), b" to SPIN");
            srv.close(p, fd).unwrap();
            assert!(matches!(srv.read(ctx, p, fd, 1), Err(UnixError::BadFd)));
        });
        assert_eq!(
            r.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }

    #[test]
    fn pipes_connect_forked_processes() {
        let r = rig();
        let srv = r.server.clone();
        let exec2 = r.exec.clone();
        r.exec.spawn("shell", move |ctx| {
            let p = srv.spawn_init();
            let (rfd, wfd) = srv.pipe(p).unwrap();
            let child = srv.fork(p).unwrap();
            // Child writes into the pipe and exits.
            let srv2 = srv.clone();
            exec2.spawn("producer", move |cctx| {
                srv2.write(cctx, child, wfd, b"piped through").unwrap();
                srv2.close(child, wfd).unwrap();
                srv2.close(child, rfd).unwrap();
                srv2.exit(child, 0);
            });
            // Parent closes its write end and drains.
            srv.close(p, wfd).unwrap();
            let mut got = Vec::new();
            loop {
                let chunk = srv.read(ctx, p, rfd, 64).unwrap();
                if chunk.is_empty() {
                    break;
                }
                got.extend_from_slice(&chunk);
            }
            assert_eq!(&got, b"piped through");
            let _ = srv.waitpid(ctx, p).unwrap();
        });
        assert_eq!(
            r.exec.run_until_idle(),
            spin_sched::IdleOutcome::AllComplete
        );
    }

    #[test]
    fn register_only_syscalls_reach_the_server_band() {
        let r = rig();
        let pid = r.server.spawn_init();
        assert_eq!(
            r.kernel
                .syscall(SYSCALL_BASE, [pid.0 as u64, 0, 0, 0, 0, 0]),
            pid.0 as i64
        );
        assert_eq!(r.kernel.syscall(SYSCALL_BASE, [999, 0, 0, 0, 0, 0]), -3);
        assert_eq!(r.kernel.syscall(SYSCALL_BASE + 1, [0; 6]), 1);
    }
}
