//! Process-table types for the UNIX server.

use crate::pipe::Pipe;
use spin_vm::UnixAddressSpace;
use std::collections::HashMap;
use std::sync::Arc;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// A file descriptor's referent.
#[derive(Clone)]
pub enum Fd {
    /// An open regular file with a cursor.
    File { path: String, offset: u64 },
    /// The read end of a pipe.
    PipeRead(Arc<Pipe>),
    /// The write end of a pipe.
    PipeWrite(Arc<Pipe>),
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    Running,
    /// Exited with a status; waiting to be reaped.
    Zombie(i32),
}

pub(crate) struct Proc {
    pub pid: Pid,
    pub parent: Option<Pid>,
    pub space: Arc<UnixAddressSpace>,
    pub fds: HashMap<i32, Fd>,
    pub next_fd: i32,
    pub state: ProcState,
    /// Strands blocked in waitpid on this process's children.
    pub waiters: Vec<spin_sched::StrandId>,
}

impl Proc {
    pub(crate) fn new(pid: Pid, parent: Option<Pid>, space: Arc<UnixAddressSpace>) -> Proc {
        Proc {
            pid,
            parent,
            space,
            fds: HashMap::new(),
            next_fd: 3, // 0/1/2 reserved for stdio
            state: ProcState::Running,
            waiters: Vec::new(),
        }
    }

    pub(crate) fn alloc_fd(&mut self, fd: Fd) -> i32 {
        let n = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(n, fd);
        n
    }
}
