//! UNIX pipes over the kernel channel primitive.

use spin_check::sync::{AtomicU32, Mutex, Ordering};
use spin_sched::{Executor, KChannel, StrandCtx};
use std::sync::Arc;

/// A pipe: a bounded byte stream with reference-counted ends.
pub struct Pipe {
    chunks: Arc<KChannel<Vec<u8>>>,
    readers: AtomicU32,
    writers: AtomicU32,
    /// Residual bytes from a partially-consumed chunk.
    residue: Mutex<Vec<u8>>,
}

impl Pipe {
    /// Creates a pipe with one reader and one writer reference.
    pub fn new(exec: Arc<Executor>) -> Arc<Pipe> {
        Arc::new(Pipe {
            chunks: KChannel::new(exec, 16),
            readers: AtomicU32::new(1),
            writers: AtomicU32::new(1),
            residue: Mutex::new(Vec::new()),
        })
    }

    /// Duplicates an end (dup/fork semantics).
    pub fn add_reader(&self) {
        self.readers.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — endpoint count; the pipe mutex orders the data path.
    }

    /// Duplicates the writer end.
    pub fn add_writer(&self) {
        self.writers.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — endpoint count; the pipe mutex orders the data path.
    }

    /// Drops a reader reference.
    pub fn drop_reader(&self) {
        // ordering: Relaxed — endpoint count; the wake below resolves EOF races.
        if self.readers.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Writers will see EPIPE via closed channel on next send.
            self.chunks.close();
        }
    }

    /// Drops a writer reference; the last one signals EOF to readers.
    pub fn drop_writer(&self) {
        // ordering: Relaxed — endpoint count; the wake below resolves EPIPE races.
        if self.writers.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.chunks.close();
        }
    }

    /// Writes `data` (blocking when full). Returns bytes written, or
    /// `None` on a broken pipe.
    pub fn write(&self, ctx: &StrandCtx, data: &[u8]) -> Option<usize> {
        // ordering: Relaxed — EOF probe; the condvar recheck under the mutex decides.
        if self.readers.load(Ordering::Relaxed) == 0 {
            return None; // EPIPE
        }
        if data.is_empty() {
            return Some(0);
        }
        if self.chunks.send(ctx, data.to_vec()) {
            Some(data.len())
        } else {
            None
        }
    }

    /// Reads up to `max` bytes (blocking while empty). `Some(empty)` is
    /// EOF (all writers gone).
    pub fn read(&self, ctx: &StrandCtx, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut res = self.residue.lock();
            if !res.is_empty() {
                let n = max.min(res.len());
                out.extend(res.drain(..n));
                return out;
            }
        }
        match self.chunks.recv(ctx) {
            Some(mut chunk) => {
                if chunk.len() > max {
                    let rest = chunk.split_off(max);
                    *self.residue.lock() = rest;
                }
                chunk
            }
            None => Vec::new(), // EOF
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::Mutex;
    use spin_sal::SimBoard;

    fn exec() -> Arc<Executor> {
        let board = SimBoard::new();
        Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        )
    }

    #[test]
    fn bytes_flow_in_order_and_eof_arrives() {
        let e = exec();
        let pipe = Pipe::new(e.clone());
        let p2 = pipe.clone();
        e.spawn("writer", move |ctx| {
            p2.write(ctx, b"hello ").unwrap();
            p2.write(ctx, b"pipe").unwrap();
            p2.drop_writer();
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let (p3, g2) = (pipe.clone(), got.clone());
        e.spawn("reader", move |ctx| loop {
            let chunk = p3.read(ctx, 4);
            if chunk.is_empty() {
                break;
            }
            g2.lock().extend_from_slice(&chunk);
        });
        e.run_until_idle();
        assert_eq!(&got.lock()[..], b"hello pipe");
    }

    #[test]
    fn short_reads_leave_residue() {
        let e = exec();
        let pipe = Pipe::new(e.clone());
        let p2 = pipe.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        e.spawn("both", move |ctx| {
            p2.write(ctx, b"abcdef").unwrap();
            g2.lock().push(p2.read(ctx, 2));
            g2.lock().push(p2.read(ctx, 3));
            g2.lock().push(p2.read(ctx, 10));
        });
        e.run_until_idle();
        let g = got.lock();
        assert_eq!(g[0], b"ab");
        assert_eq!(g[1], b"cde");
        assert_eq!(g[2], b"f");
    }

    #[test]
    fn writing_to_a_readerless_pipe_is_epipe() {
        let e = exec();
        let pipe = Pipe::new(e.clone());
        pipe.drop_reader();
        let p2 = pipe.clone();
        let result = Arc::new(Mutex::new(Some(0usize)));
        let r2 = result.clone();
        e.spawn("writer", move |ctx| {
            *r2.lock() = p2.write(ctx, b"x");
        });
        e.run_until_idle();
        assert_eq!(*result.lock(), None);
    }
}
