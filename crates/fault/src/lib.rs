//! Deterministic fault injection for the SPIN reproduction.
//!
//! The paper's safety story is about *types*: a handler cannot scribble
//! on kernel memory. It says nothing about liveness — a type-safe
//! extension can still panic, spin past its `time_bound`, or fail an
//! allocation. The containment layer in `spin-core` turns those failures
//! into per-handler faults; this crate provides the other half of the
//! story, a way to *provoke* them on demand, deterministically.
//!
//! A [`FaultPlan`] is a seeded table of named injection sites. Each
//! subsystem that participates stores a [`FaultHook`] in the same kind of
//! `OnceLock` it already uses for observability, and calls
//! [`FaultHook::draw`] at its hook point. The draw decides — purely from
//! the seed, the site, and the site's hit ordinal — whether to inject
//! nothing, a panic, a virtual-time delay, or a resource failure. No wall
//! clock, no global RNG state: the same seed and the same workload
//! produce the same injections, which is what lets the chaos suite make
//! exact assertions and lets `fault_invariance.rs` prove that a wired but
//! disabled plan changes nothing.
//!
//! Cost-model contract (DESIGN.md): a draw never advances the virtual
//! clock. When the plan is disabled the draw is one relaxed atomic load;
//! when no hook is installed the subsystem pays nothing at all.

#![forbid(unsafe_code)]

use spin_check::sync::{AtomicBool, AtomicU64, Ordering};
use spin_check::sync::{Mutex, RwLock};
use std::sync::Arc;

/// Virtual nanoseconds (mirrors `spin_sal::Nanos` without the dependency).
pub type Nanos = u64;

/// Well-known site names, one per instrumented subsystem.
pub const SITE_DISPATCH: &str = "core.dispatch";
/// Strand bodies in the executor.
pub const SITE_SCHED: &str = "sched.executor";
/// The disk pager's page-fault handler.
pub const SITE_VM_PAGER: &str = "vm.pager";
/// Kernel heap allocation.
pub const SITE_RT_HEAP: &str = "rt.heap";
/// Network stack transmit.
pub const SITE_NET_STACK: &str = "net.stack";
/// Cross-shard mailbox post (multicore mode).
pub const SITE_MAILBOX: &str = "sal.mailbox";
/// Batch edge of `raise_batch` bursts (one draw per burst).
pub const SITE_DISPATCH_BATCH: &str = "core.dispatch.batch";
/// Hot-swap state transfer (one draw per swap attempt, inside the
/// transfer's unwind containment — a panic here exercises rollback).
pub const SITE_SWAP: &str = "swap.transfer";
/// Quota admission gate (one draw per metered raise): a `Fail` is a
/// spurious throttle, a `Delay` is a delayed budget release (the window
/// keeps the charge that much longer), a `Panic` is contained at the
/// admission edge and counted as a throttle.
pub const SITE_QUOTA: &str = "core.quota";

/// One injected outcome, decided by [`FaultHook::draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Unwind the current invocation (the site calls [`FaultHook::fire_panic`]).
    Panic,
    /// Charge this many virtual nanoseconds before proceeding — enough to
    /// blow a `time_bound` when the site is a dispatched handler.
    Delay(Nanos),
    /// Fail the operation with the site's natural error (allocation
    /// failure, transmit error, `FaultAction::Fail`, ...).
    Fail,
}

/// The panic payload used for injected panics, so containment layers and
/// tests can tell an injection from an organic bug.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The site that fired.
    pub site: &'static str,
}

/// Per-site injection rates. `*_every = n` fires roughly once per `n`
/// draws (decided deterministically from the seed); 0 disables that kind.
/// Priority on collision: panic, then delay, then fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteConfig {
    /// Inject a panic about once per this many draws (0 = never).
    pub panic_every: u64,
    /// Inject a delay about once per this many draws (0 = never).
    pub delay_every: u64,
    /// Virtual nanoseconds charged by an injected delay.
    pub delay_ns: Nanos,
    /// Fail the operation about once per this many draws (0 = never).
    pub fail_every: u64,
}

impl SiteConfig {
    /// A config that panics on every draw — the deterministic hammer the
    /// quarantine tests use.
    pub fn panic_always() -> SiteConfig {
        SiteConfig {
            panic_every: 1,
            ..SiteConfig::default()
        }
    }

    /// A config that fails on every draw — drops every mailbox envelope,
    /// refuses every allocation.
    pub fn fail_always() -> SiteConfig {
        SiteConfig {
            fail_every: 1,
            ..SiteConfig::default()
        }
    }
}

struct SiteState {
    name: &'static str,
    cfg: Mutex<SiteConfig>,
    hits: AtomicU64,
    panics: AtomicU64,
    delays: AtomicU64,
    fails: AtomicU64,
}

/// Counters for one site: draws seen and injections fired, by kind.
/// These are exact, which is how tests reconcile observed faults with
/// injected ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The site name.
    pub site: &'static str,
    /// Draws taken while the plan was enabled.
    pub hits: u64,
    /// Panics injected.
    pub panics: u64,
    /// Delays injected.
    pub delays: u64,
    /// Failures injected.
    pub fails: u64,
}

struct PlanInner {
    seed: u64,
    enabled: AtomicBool,
    sites: RwLock<Vec<Arc<SiteState>>>,
}

/// A seeded, shareable fault-injection plan. Clones share state.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

/// SplitMix64 — a tiny, well-mixed hash so injection decisions depend on
/// seed, site, and hit ordinal but nothing else.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with the given seed, enabled, with no sites configured
    /// (every draw is a no-op until [`FaultPlan::configure`]).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                enabled: AtomicBool::new(true),
                sites: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Arms or disarms the whole plan. Disabled draws cost one relaxed
    /// load and inject nothing.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Release); // ordering: Release — publishes plan edits made before the toggle.
    }

    /// Whether draws may inject.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed) // ordering: Relaxed — advisory read for reporting only.
    }

    fn site(&self, name: &'static str) -> Arc<SiteState> {
        {
            let sites = self.inner.sites.read();
            if let Some(s) = sites.iter().find(|s| s.name == name) {
                return s.clone();
            }
        }
        let mut sites = self.inner.sites.write();
        if let Some(s) = sites.iter().find(|s| s.name == name) {
            return s.clone();
        }
        let s = Arc::new(SiteState {
            name,
            cfg: Mutex::new(SiteConfig::default()),
            hits: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            fails: AtomicU64::new(0),
        });
        sites.push(s.clone());
        s
    }

    /// The hook a subsystem stores in its `OnceLock`. Registers the site
    /// on first use.
    pub fn hook(&self, name: &'static str) -> FaultHook {
        FaultHook {
            plan: self.inner.clone(),
            site: self.site(name),
        }
    }

    /// Sets the injection rates for a site (registering it if needed).
    pub fn configure(&self, name: &'static str, cfg: SiteConfig) {
        *self.site(name).cfg.lock() = cfg;
    }

    /// Exact per-site counters, in registration order.
    pub fn report(&self) -> Vec<SiteReport> {
        self.inner
            .sites
            .read()
            .iter()
            .map(|s| SiteReport {
                site: s.name,
                hits: s.hits.load(Ordering::Acquire), // ordering: Acquire — pairs with the AcqRel draw RMWs for a fresh snapshot.
                panics: s.panics.load(Ordering::Acquire), // ordering: Acquire — pairs with the AcqRel draw RMWs for a fresh snapshot.
                delays: s.delays.load(Ordering::Acquire), // ordering: Acquire — pairs with the AcqRel draw RMWs for a fresh snapshot.
                fails: s.fails.load(Ordering::Acquire), // ordering: Acquire — pairs with the AcqRel draw RMWs for a fresh snapshot.
            })
            .collect()
    }

    /// Total panics injected across all sites.
    pub fn injected_panics(&self) -> u64 {
        self.report().iter().map(|r| r.panics).sum()
    }

    /// Total injections of any kind across all sites.
    pub fn injected_total(&self) -> u64 {
        self.report()
            .iter()
            .map(|r| r.panics + r.delays + r.fails)
            .sum()
    }
}

/// One site's handle into a [`FaultPlan`] — what instrumented subsystems
/// store and draw from. Cheap to clone.
#[derive(Clone)]
pub struct FaultHook {
    plan: Arc<PlanInner>,
    site: Arc<SiteState>,
}

impl FaultHook {
    /// Decides whether to inject at this point. Never touches a clock;
    /// one relaxed load when the plan is disabled.
    #[inline]
    pub fn draw(&self) -> Option<Injection> {
        // ordering: Relaxed — a draw racing the toggle may miss it; draws tolerate staleness.
        if !self.plan.enabled.load(Ordering::Relaxed) {
            return None;
        }
        self.draw_enabled()
    }

    fn draw_enabled(&self) -> Option<Injection> {
        let hit = self.site.hits.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — the draw index must be totally ordered so schedules replay.
        let cfg = *self.site.cfg.lock();
        let site_salt = mix(self
            .site
            .name
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)));
        let r = mix(self.plan.seed ^ site_salt ^ hit);
        if cfg.panic_every != 0 && r.is_multiple_of(cfg.panic_every) {
            self.site.panics.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — outcome tallies stay ordered with the draw index.
            return Some(Injection::Panic);
        }
        if cfg.delay_every != 0 && (r >> 17).is_multiple_of(cfg.delay_every) {
            self.site.delays.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — outcome tallies stay ordered with the draw index.
            return Some(Injection::Delay(cfg.delay_ns));
        }
        if cfg.fail_every != 0 && (r >> 34).is_multiple_of(cfg.fail_every) {
            self.site.fails.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — outcome tallies stay ordered with the draw index.
            return Some(Injection::Fail);
        }
        None
    }

    /// Unwinds with the typed [`InjectedPanic`] payload. Call only from
    /// inside a containment region (a dispatcher raise, a strand body).
    pub fn fire_panic(&self) -> ! {
        std::panic::panic_any(InjectedPanic {
            site: self.site.name,
        })
    }

    /// The site name this hook draws for.
    pub fn site(&self) -> &'static str {
        self.site.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        let run = |seed| {
            let plan = FaultPlan::new(seed);
            plan.configure(
                SITE_DISPATCH,
                SiteConfig {
                    panic_every: 3,
                    delay_every: 5,
                    delay_ns: 10,
                    fail_every: 7,
                },
            );
            let hook = plan.hook(SITE_DISPATCH);
            (0..200).map(|_| hook.draw()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn disabled_plans_inject_nothing_and_count_nothing() {
        let plan = FaultPlan::new(1);
        plan.configure(SITE_RT_HEAP, SiteConfig::panic_always());
        plan.set_enabled(false);
        let hook = plan.hook(SITE_RT_HEAP);
        for _ in 0..100 {
            assert_eq!(hook.draw(), None);
        }
        let rep = &plan.report()[0];
        assert_eq!((rep.hits, rep.panics), (0, 0));
    }

    #[test]
    fn counters_reconcile_with_draws() {
        let plan = FaultPlan::new(7);
        plan.configure(
            SITE_NET_STACK,
            SiteConfig {
                panic_every: 4,
                delay_every: 4,
                delay_ns: 99,
                fail_every: 4,
            },
        );
        let hook = plan.hook(SITE_NET_STACK);
        let (mut p, mut d, mut f) = (0, 0, 0);
        for _ in 0..1000 {
            match hook.draw() {
                Some(Injection::Panic) => p += 1,
                Some(Injection::Delay(ns)) => {
                    assert_eq!(ns, 99);
                    d += 1;
                }
                Some(Injection::Fail) => f += 1,
                None => {}
            }
        }
        let rep = &plan.report()[0];
        assert_eq!(rep.hits, 1000);
        assert_eq!((rep.panics, rep.delays, rep.fails), (p, d, f));
        assert!(p > 0 && d > 0 && f > 0, "rates of 1/4 must fire in 1000");
    }

    #[test]
    fn panic_always_fires_every_draw() {
        let plan = FaultPlan::new(0);
        plan.configure(SITE_SCHED, SiteConfig::panic_always());
        let hook = plan.hook(SITE_SCHED);
        for _ in 0..10 {
            assert_eq!(hook.draw(), Some(Injection::Panic));
        }
    }

    #[test]
    fn fire_panic_carries_the_typed_payload() {
        let plan = FaultPlan::new(0);
        let hook = plan.hook(SITE_VM_PAGER);
        let err = std::panic::catch_unwind(|| hook.fire_panic()).unwrap_err();
        let injected = err.downcast::<InjectedPanic>().expect("typed payload");
        assert_eq!(injected.site, SITE_VM_PAGER);
    }
}
