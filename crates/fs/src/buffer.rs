//! The block buffer cache, with pluggable caching policy.
//!
//! The web-server discussion in §5.4 turns on who controls caching: "a
//! server that does not itself cache but is built on top of a conventional
//! caching file system avoids the double buffering problem, but is unable
//! to control the caching policy." This cache makes the policy a
//! first-class, replaceable object — SPIN's point — so the file system can
//! run with LRU, with no caching at all (for servers that cache at object
//! level), or with anything an extension supplies.

use spin_check::sync::Mutex;
use spin_sal::devices::disk::{BlockId, Disk, DiskRequest, BLOCK_SIZE};
use spin_sched::{Executor, KChannel, StrandCtx};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A replaceable cache eviction policy over block ids.
pub trait CachePolicy: Send + Sync {
    /// Records that `block` was touched (now resident).
    fn touch(&mut self, block: BlockId);
    /// Picks a resident block to evict.
    fn victim(&mut self) -> Option<BlockId>;
    /// Records that `block` left the cache.
    fn evicted(&mut self, block: BlockId);
    /// Whether this block should be cached at all.
    fn admit(&self, block: BlockId) -> bool {
        let _ = block;
        true
    }
    /// Policy name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Least-recently-used eviction.
#[derive(Default)]
pub struct LruPolicy {
    /// Recency order: front = oldest.
    order: Vec<BlockId>,
}

impl CachePolicy for LruPolicy {
    fn touch(&mut self, block: BlockId) {
        self.order.retain(|&b| b != block);
        self.order.push(block);
    }
    fn victim(&mut self) -> Option<BlockId> {
        if self.order.is_empty() {
            None
        } else {
            Some(self.order.remove(0))
        }
    }
    fn evicted(&mut self, block: BlockId) {
        self.order.retain(|&b| b != block);
    }
    fn name(&self) -> &'static str {
        "lru"
    }
}

/// No caching: every read goes to the disk (the policy a self-caching
/// server wants underneath it, avoiding double buffering).
#[derive(Default)]
pub struct NoCachePolicy;

impl CachePolicy for NoCachePolicy {
    fn touch(&mut self, _block: BlockId) {}
    fn victim(&mut self) -> Option<BlockId> {
        None
    }
    fn evicted(&mut self, _block: BlockId) {}
    fn admit(&self, _block: BlockId) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "no-cache"
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

struct CacheState {
    resident: BTreeMap<BlockId, Arc<Vec<u8>>>,
    policy: Box<dyn CachePolicy>,
    capacity_blocks: usize,
    stats: CacheStats,
}

/// The buffer cache over one disk.
#[derive(Clone)]
pub struct BufferCache {
    disk: Disk,
    exec: Arc<Executor>,
    state: Arc<Mutex<CacheState>>,
}

impl BufferCache {
    /// Creates a cache of `capacity_blocks` blocks with `policy`.
    pub fn new(
        disk: Disk,
        exec: Arc<Executor>,
        capacity_blocks: usize,
        policy: Box<dyn CachePolicy>,
    ) -> BufferCache {
        BufferCache {
            disk,
            exec,
            state: Arc::new(Mutex::new(CacheState {
                resident: BTreeMap::new(),
                policy,
                capacity_blocks,
                stats: CacheStats::default(),
            })),
        }
    }

    /// Swaps the caching policy (dropping current residency bookkeeping
    /// into the new policy).
    pub fn set_policy(&self, policy: Box<dyn CachePolicy>) {
        let mut st = self.state.lock();
        let resident: Vec<BlockId> = st.resident.keys().copied().collect();
        st.policy = policy;
        for b in resident {
            st.policy.touch(b);
        }
    }

    fn wait_disk(&self, ctx: &StrandCtx, req: DiskRequest) -> Vec<u8> {
        let done: Arc<KChannel<Vec<u8>>> = KChannel::new(self.exec.clone(), 1);
        let d2 = done.clone();
        let exec = self.exec.clone();
        let me = ctx.id();
        self.disk.submit(req, move |r| {
            d2.try_push(r.expect("fs issues valid requests"));
            exec.unblock(me);
        });
        loop {
            if let Some(data) = done.try_recv() {
                return data;
            }
            ctx.block();
        }
    }

    /// Charges the CPU cost of moving `n` bytes to/from a caller's buffer
    /// (callers that consume block data byte-for-byte account the copy).
    pub fn charge_copy(&self, n: usize) {
        self.exec.clock().advance(self.exec.profile().copy(n));
    }

    /// Reads a block through the cache, blocking on a miss.
    pub fn read(&self, ctx: &StrandCtx, block: BlockId) -> Arc<Vec<u8>> {
        {
            let mut st = self.state.lock();
            if let Some(data) = st.resident.get(&block).cloned() {
                st.stats.hits += 1;
                st.policy.touch(block);
                return data;
            }
            st.stats.misses += 1;
        }
        let data = Arc::new(self.wait_disk(ctx, DiskRequest::Read(block)));
        let mut st = self.state.lock();
        if st.policy.admit(block) {
            while st.resident.len() >= st.capacity_blocks {
                match st.policy.victim() {
                    Some(v) => {
                        st.resident.remove(&v);
                        st.stats.evictions += 1;
                    }
                    None => break,
                }
            }
            if st.resident.len() < st.capacity_blocks {
                st.resident.insert(block, data.clone());
                st.policy.touch(block);
            }
        }
        data
    }

    /// Writes a block through the cache (write-through).
    pub fn write(&self, ctx: &StrandCtx, block: BlockId, data: Vec<u8>) {
        assert_eq!(data.len(), BLOCK_SIZE, "partial block write");
        let shared = Arc::new(data);
        {
            let mut st = self.state.lock();
            st.stats.writebacks += 1;
            if st.policy.admit(block) {
                st.resident.insert(block, shared.clone());
                st.policy.touch(block);
            } else {
                st.resident.remove(&block);
                st.policy.evicted(block);
            }
        }
        let _ = self.wait_disk(ctx, DiskRequest::Write(block, shared.as_ref().clone()));
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Number of resident blocks.
    pub fn resident(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// The underlying executor (for services layering on the cache).
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::SimBoard;

    fn rig(capacity: usize, policy: Box<dyn CachePolicy>) -> (BufferCache, Arc<Executor>) {
        let board = SimBoard::new();
        let host = board.new_host(16);
        let exec = Executor::for_host(&host);
        let cache = BufferCache::new(host.disk.clone(), exec.clone(), capacity, policy);
        (cache, exec)
    }

    #[test]
    fn reads_are_cached_under_lru() {
        let (cache, exec) = rig(4, Box::new(LruPolicy::default()));
        let c2 = cache.clone();
        exec.spawn("reader", move |ctx| {
            c2.read(ctx, BlockId(1));
            c2.read(ctx, BlockId(1));
            c2.read(ctx, BlockId(2));
        });
        exec.run_until_idle();
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(cache.resident(), 2);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let (cache, exec) = rig(2, Box::new(LruPolicy::default()));
        let c2 = cache.clone();
        exec.spawn("reader", move |ctx| {
            c2.read(ctx, BlockId(1));
            c2.read(ctx, BlockId(2));
            c2.read(ctx, BlockId(1)); // touch 1: now 2 is oldest
            c2.read(ctx, BlockId(3)); // evicts 2
            c2.read(ctx, BlockId(1)); // still a hit
            c2.read(ctx, BlockId(2)); // miss: was evicted (and evicts 3)
        });
        exec.run_until_idle();
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn no_cache_policy_always_misses() {
        let (cache, exec) = rig(4, Box::new(NoCachePolicy));
        let c2 = cache.clone();
        exec.spawn("reader", move |ctx| {
            c2.read(ctx, BlockId(1));
            c2.read(ctx, BlockId(1));
        });
        exec.run_until_idle();
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn write_then_read_hits_cache_and_persists() {
        let (cache, exec) = rig(4, Box::new(LruPolicy::default()));
        let c2 = cache.clone();
        exec.spawn("writer", move |ctx| {
            let mut data = vec![0u8; BLOCK_SIZE];
            data[7] = 42;
            c2.write(ctx, BlockId(5), data);
            let back = c2.read(ctx, BlockId(5));
            assert_eq!(back[7], 42);
        });
        exec.run_until_idle();
        assert_eq!(cache.stats().hits, 1, "write-through leaves block resident");
    }

    #[test]
    fn policy_swap_takes_effect() {
        let (cache, exec) = rig(4, Box::new(LruPolicy::default()));
        cache.set_policy(Box::new(NoCachePolicy));
        let c2 = cache.clone();
        exec.spawn("reader", move |ctx| {
            c2.read(ctx, BlockId(1));
            c2.read(ctx, BlockId(1));
        });
        exec.run_until_idle();
        assert_eq!(cache.stats().hits, 0);
    }
}
