//! `spin-fs` — storage services for the SPIN reproduction.
//!
//! The paper's `core` component includes "device management, a disk-based
//! and network-based file system" (§5.1). This crate provides the
//! disk-based parts:
//!
//! * [`BufferCache`] — a block cache over the simulated disk with a
//!   **replaceable policy** ([`LruPolicy`], [`NoCachePolicy`], or any
//!   extension-supplied [`CachePolicy`]);
//! * [`FileSystem`] — a simple extent-based file system used by the video
//!   server (frame reads) and the web server (§5.4);
//! * [`WebCache`] — the object-level cache with SPIN's hybrid
//!   ([`HybridBySize`]) policy: "LRU for small files, and no-cache for
//!   large files".

#![forbid(unsafe_code)]

pub mod buffer;
pub mod fs;
pub mod webcache;

pub use buffer::{BufferCache, CachePolicy, CacheStats, LruPolicy, NoCachePolicy};
pub use fs::{FileSystem, FsError};
pub use webcache::{CacheAll, HybridBySize, ObjectCacheStats, ObjectPolicy, WebCache};
