//! The web server's object cache and its hybrid policy (§5.4).
//!
//! "A SPIN web server implements its own hybrid caching policy based on
//! file type: LRU for small files, and no-cache for large files which tend
//! to be accessed infrequently." The cache here is object-granular (keyed
//! by path), separate from the block buffer cache, so a server using it
//! runs the file system with the no-cache block policy and "both control\[s\]
//! its cache and avoid\[s\] the problem of double buffering".

use spin_check::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Object-cache admission/eviction policy.
pub trait ObjectPolicy: Send + Sync {
    /// Whether an object of `size` bytes should be cached at all.
    fn admit(&self, size: usize) -> bool;
    /// Policy name.
    fn name(&self) -> &'static str;
}

/// Cache everything (subject to capacity).
pub struct CacheAll;

impl ObjectPolicy for CacheAll {
    fn admit(&self, _size: usize) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "cache-all"
    }
}

/// SPIN's hybrid: LRU for small objects, no caching for large ones.
pub struct HybridBySize {
    /// Objects at or above this size are never cached.
    pub large_threshold: usize,
}

impl ObjectPolicy for HybridBySize {
    fn admit(&self, size: usize) -> bool {
        size < self.large_threshold
    }
    fn name(&self) -> &'static str {
        "hybrid-by-size"
    }
}

/// Object-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub evictions: u64,
}

struct WebCacheState {
    objects: HashMap<String, Arc<Vec<u8>>>,
    lru: Vec<String>,
    bytes: usize,
    stats: ObjectCacheStats,
}

/// An LRU object cache with a pluggable admission policy.
pub struct WebCache {
    capacity_bytes: usize,
    policy: Box<dyn ObjectPolicy>,
    state: Mutex<WebCacheState>,
}

impl WebCache {
    /// Creates a cache of `capacity_bytes` with `policy`.
    pub fn new(capacity_bytes: usize, policy: Box<dyn ObjectPolicy>) -> WebCache {
        WebCache {
            capacity_bytes,
            policy,
            state: Mutex::new(WebCacheState {
                objects: HashMap::new(),
                lru: Vec::new(),
                bytes: 0,
                stats: ObjectCacheStats::default(),
            }),
        }
    }

    /// Looks up `key`; on a miss, `load` fetches the object, which is then
    /// cached if the policy admits it. Returns (object, was_hit).
    pub fn get_or_load(&self, key: &str, load: impl FnOnce() -> Vec<u8>) -> (Arc<Vec<u8>>, bool) {
        {
            let mut st = self.state.lock();
            if let Some(obj) = st.objects.get(key).cloned() {
                st.stats.hits += 1;
                st.lru.retain(|k| k != key);
                st.lru.push(key.to_string());
                return (obj, true);
            }
        }
        let obj = Arc::new(load());
        let mut st = self.state.lock();
        if self.policy.admit(obj.len()) {
            st.stats.misses += 1;
            while st.bytes + obj.len() > self.capacity_bytes && !st.lru.is_empty() {
                let victim = st.lru.remove(0);
                if let Some(old) = st.objects.remove(&victim) {
                    st.bytes -= old.len();
                    st.stats.evictions += 1;
                }
            }
            if st.bytes + obj.len() <= self.capacity_bytes {
                st.bytes += obj.len();
                st.objects.insert(key.to_string(), obj.clone());
                st.lru.push(key.to_string());
            }
        } else {
            st.stats.bypasses += 1;
        }
        (obj, false)
    }

    /// Invalidates an object (e.g. after a file write).
    pub fn invalidate(&self, key: &str) {
        let mut st = self.state.lock();
        if let Some(old) = st.objects.remove(key) {
            st.bytes -= old.len();
            st.lru.retain(|k| k != key);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ObjectCacheStats {
        self.state.lock().stats
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_load() {
        let c = WebCache::new(1024, Box::new(CacheAll));
        let (a, hit) = c.get_or_load("/index.html", || vec![1, 2, 3]);
        assert!(!hit);
        let (b, hit) = c.get_or_load("/index.html", || panic!("should not reload"));
        assert!(hit);
        assert_eq!(a, b);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn hybrid_bypasses_large_objects() {
        let c = WebCache::new(
            1 << 20,
            Box::new(HybridBySize {
                large_threshold: 100,
            }),
        );
        let (_, _) = c.get_or_load("/big.mpg", || vec![0u8; 5000]);
        // Large object: never cached; second access reloads.
        let loaded = std::cell::Cell::new(false);
        let (_, hit) = c.get_or_load("/big.mpg", || {
            loaded.set(true);
            vec![0u8; 5000]
        });
        assert!(!hit);
        assert!(loaded.get());
        assert_eq!(c.stats().bypasses, 2);
        assert_eq!(c.cached_bytes(), 0);
        // Small object: cached.
        c.get_or_load("/small.html", || vec![0u8; 50]);
        let (_, hit) = c.get_or_load("/small.html", || panic!("cached"));
        assert!(hit);
    }

    #[test]
    fn capacity_evicts_lru_first() {
        let c = WebCache::new(100, Box::new(CacheAll));
        c.get_or_load("a", || vec![0u8; 60]);
        c.get_or_load("b", || vec![0u8; 30]);
        c.get_or_load("a", || panic!("a is hot"));
        c.get_or_load("c", || vec![0u8; 50]); // must evict b (LRU), not a... but 60+50>100, so a goes too
        let s = c.stats();
        assert!(s.evictions >= 1);
        assert!(c.cached_bytes() <= 100);
    }

    #[test]
    fn invalidate_forces_reload() {
        let c = WebCache::new(1024, Box::new(CacheAll));
        c.get_or_load("k", || vec![1]);
        c.invalidate("k");
        let (v, hit) = c.get_or_load("k", || vec![2]);
        assert!(!hit);
        assert_eq!(*v, vec![2]);
    }
}
