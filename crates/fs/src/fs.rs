//! A simple extent-based file system over the simulated disk.
//!
//! The paper's `core` component includes "a disk-based and network-based
//! file system" (§5.1); the video server reads frames from it and the web
//! server serves files out of it. This implementation keeps the on-disk
//! layout minimal — a root-rooted directory tree of inodes, each holding
//! an extent list — and goes through the [`BufferCache`] for all data I/O,
//! so the cache policy experiments (§5.4) apply to file reads.
//!
//! Simplification vs. a production FS (documented in DESIGN.md): metadata
//! (inodes, directories, the allocation bitmap) lives in mount-state
//! memory rather than on disk; only file *data* occupies disk blocks. The
//! experiments exercise the data path, which is fully disk-backed.

use crate::buffer::BufferCache;
use spin_check::sync::Mutex;
use spin_sal::devices::disk::{BlockId, BLOCK_SIZE};
use spin_sched::StrandCtx;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Errors from file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    NotFound { path: String },
    AlreadyExists { path: String },
    NotADirectory { path: String },
    IsADirectory { path: String },
    NoSpace,
    BadOffset { offset: u64, size: u64 },
}

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ino(u64);

enum Node {
    File { blocks: Vec<BlockId>, size: u64 },
    Dir { entries: BTreeMap<String, Ino> },
}

struct FsState {
    nodes: HashMap<Ino, Node>,
    next_ino: u64,
    free_blocks: Vec<BlockId>,
}

/// The mounted file system.
#[derive(Clone)]
pub struct FileSystem {
    cache: BufferCache,
    state: Arc<Mutex<FsState>>,
}

const ROOT: Ino = Ino(0);

impl FileSystem {
    /// Formats and mounts a file system over `cache`, managing blocks
    /// `first_block..first_block + blocks`.
    pub fn format(cache: BufferCache, first_block: u64, blocks: u64) -> FileSystem {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT,
            Node::Dir {
                entries: BTreeMap::new(),
            },
        );
        FileSystem {
            cache,
            state: Arc::new(Mutex::new(FsState {
                nodes,
                next_ino: 1,
                free_blocks: (first_block..first_block + blocks)
                    .map(BlockId)
                    .rev()
                    .collect(),
            })),
        }
    }

    fn resolve(&self, path: &str) -> Result<Ino, FsError> {
        let mut cur = ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let st = self.state.lock();
            match st.nodes.get(&cur) {
                Some(Node::Dir { entries }) => {
                    cur = *entries.get(comp).ok_or_else(|| FsError::NotFound {
                        path: path.to_string(),
                    })?;
                }
                _ => {
                    return Err(FsError::NotADirectory {
                        path: path.to_string(),
                    })
                }
            }
        }
        Ok(cur)
    }

    fn split_parent(path: &str) -> (String, String) {
        let trimmed = path.trim_matches('/');
        match trimmed.rfind('/') {
            Some(i) => (trimmed[..i].to_string(), trimmed[i + 1..].to_string()),
            None => (String::new(), trimmed.to_string()),
        }
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> Result<(), FsError> {
        let (parent, name) = Self::split_parent(path);
        let pino = self.resolve(&parent)?;
        let mut st = self.state.lock();
        let ino = Ino(st.next_ino);
        st.next_ino += 1;
        match st.nodes.get_mut(&pino) {
            Some(Node::Dir { entries }) => {
                if entries.contains_key(&name) {
                    return Err(FsError::AlreadyExists {
                        path: path.to_string(),
                    });
                }
                entries.insert(name, ino);
            }
            _ => return Err(FsError::NotADirectory { path: parent }),
        }
        st.nodes.insert(
            ino,
            Node::Dir {
                entries: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Creates an empty file.
    pub fn create(&self, path: &str) -> Result<(), FsError> {
        let (parent, name) = Self::split_parent(path);
        let pino = self.resolve(&parent)?;
        let mut st = self.state.lock();
        let ino = Ino(st.next_ino);
        st.next_ino += 1;
        match st.nodes.get_mut(&pino) {
            Some(Node::Dir { entries }) => {
                if entries.contains_key(&name) {
                    return Err(FsError::AlreadyExists {
                        path: path.to_string(),
                    });
                }
                entries.insert(name, ino);
            }
            _ => return Err(FsError::NotADirectory { path: parent }),
        }
        st.nodes.insert(
            ino,
            Node::File {
                blocks: Vec::new(),
                size: 0,
            },
        );
        Ok(())
    }

    /// Writes the whole contents of a file (replacing any previous data).
    pub fn write_file(&self, ctx: &StrandCtx, path: &str, data: &[u8]) -> Result<(), FsError> {
        let ino = self.resolve(path)?;
        let needed = data.len().div_ceil(BLOCK_SIZE);
        // Allocate/resize the extent list.
        let blocks: Vec<BlockId> = {
            let mut st = self.state.lock();
            let old = match st.nodes.get_mut(&ino) {
                Some(Node::File { blocks, .. }) => std::mem::take(blocks),
                Some(Node::Dir { .. }) => {
                    return Err(FsError::IsADirectory {
                        path: path.to_string(),
                    })
                }
                None => {
                    return Err(FsError::NotFound {
                        path: path.to_string(),
                    })
                }
            };
            let mut blocks = old;
            while blocks.len() < needed {
                match st.free_blocks.pop() {
                    Some(b) => blocks.push(b),
                    None => {
                        st.free_blocks.append(&mut blocks);
                        return Err(FsError::NoSpace);
                    }
                }
            }
            while blocks.len() > needed {
                let b = blocks.pop().expect("len checked");
                st.free_blocks.push(b);
            }
            match st.nodes.get_mut(&ino) {
                Some(Node::File { blocks: fb, size }) => {
                    *fb = blocks.clone();
                    *size = data.len() as u64;
                }
                _ => unreachable!("checked above"),
            }
            blocks
        };
        for (i, block) in blocks.iter().enumerate() {
            let mut chunk = vec![0u8; BLOCK_SIZE];
            let start = i * BLOCK_SIZE;
            let end = (start + BLOCK_SIZE).min(data.len());
            chunk[..end - start].copy_from_slice(&data[start..end]);
            self.cache.write(ctx, *block, chunk);
        }
        Ok(())
    }

    /// Reads a whole file.
    pub fn read_file(&self, ctx: &StrandCtx, path: &str) -> Result<Vec<u8>, FsError> {
        let ino = self.resolve(path)?;
        let (blocks, size) = {
            let st = self.state.lock();
            match st.nodes.get(&ino) {
                Some(Node::File { blocks, size }) => (blocks.clone(), *size),
                Some(Node::Dir { .. }) => {
                    return Err(FsError::IsADirectory {
                        path: path.to_string(),
                    })
                }
                None => {
                    return Err(FsError::NotFound {
                        path: path.to_string(),
                    })
                }
            }
        };
        let mut out = Vec::with_capacity(size as usize);
        for block in blocks {
            let data = self.cache.read(ctx, block);
            let remaining = size as usize - out.len();
            let n = remaining.min(BLOCK_SIZE);
            out.extend_from_slice(&data[..n]);
            self.cache.charge_copy(n);
        }
        Ok(out)
    }

    /// Reads `len` bytes at `offset` (the video server's frame reads).
    pub fn read_at(
        &self,
        ctx: &StrandCtx,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let ino = self.resolve(path)?;
        let (blocks, size) = {
            let st = self.state.lock();
            match st.nodes.get(&ino) {
                Some(Node::File { blocks, size }) => (blocks.clone(), *size),
                _ => {
                    return Err(FsError::NotFound {
                        path: path.to_string(),
                    })
                }
            }
        };
        if offset > size {
            return Err(FsError::BadOffset { offset, size });
        }
        let end = (offset + len as u64).min(size);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let bi = (pos / BLOCK_SIZE as u64) as usize;
            let off = (pos % BLOCK_SIZE as u64) as usize;
            let data = self.cache.read(ctx, blocks[bi]);
            let n = (BLOCK_SIZE - off).min((end - pos) as usize);
            out.extend_from_slice(&data[off..off + n]);
            self.cache.charge_copy(n);
            pos += n as u64;
        }
        Ok(out)
    }

    /// File size in bytes.
    pub fn size_of(&self, path: &str) -> Result<u64, FsError> {
        let ino = self.resolve(path)?;
        let st = self.state.lock();
        match st.nodes.get(&ino) {
            Some(Node::File { size, .. }) => Ok(*size),
            _ => Err(FsError::IsADirectory {
                path: path.to_string(),
            }),
        }
    }

    /// Directory listing, sorted.
    pub fn list(&self, path: &str) -> Result<Vec<String>, FsError> {
        let ino = self.resolve(path)?;
        let st = self.state.lock();
        match st.nodes.get(&ino) {
            Some(Node::Dir { entries }) => Ok(entries.keys().cloned().collect()),
            _ => Err(FsError::NotADirectory {
                path: path.to_string(),
            }),
        }
    }

    /// Deletes a file, returning its blocks to the free list.
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        let (parent, name) = Self::split_parent(path);
        let pino = self.resolve(&parent)?;
        let mut st = self.state.lock();
        let ino = match st.nodes.get_mut(&pino) {
            Some(Node::Dir { entries }) => {
                entries.remove(&name).ok_or_else(|| FsError::NotFound {
                    path: path.to_string(),
                })?
            }
            _ => return Err(FsError::NotADirectory { path: parent }),
        };
        if let Some(Node::File { blocks, .. }) = st.nodes.remove(&ino) {
            st.free_blocks.extend(blocks);
        }
        Ok(())
    }

    /// The underlying buffer cache.
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.state.lock().free_blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::LruPolicy;
    use spin_sal::SimBoard;
    use spin_sched::Executor;

    fn rig() -> (FileSystem, Arc<Executor>) {
        let board = SimBoard::new();
        let host = board.new_host(16);
        let exec = Executor::for_host(&host);
        let cache = BufferCache::new(
            host.disk.clone(),
            exec.clone(),
            64,
            Box::new(LruPolicy::default()),
        );
        (FileSystem::format(cache, 100, 200), exec)
    }

    #[test]
    fn write_read_round_trip_multi_block() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            fs2.create("/data").unwrap();
            let payload: Vec<u8> = (0..(BLOCK_SIZE * 2 + 77))
                .map(|i| (i % 251) as u8)
                .collect();
            fs2.write_file(ctx, "/data", &payload).unwrap();
            assert_eq!(fs2.size_of("/data").unwrap(), payload.len() as u64);
            let back = fs2.read_file(ctx, "/data").unwrap();
            assert_eq!(back, payload);
        });
        assert_eq!(exec.run_until_idle(), spin_sched::IdleOutcome::AllComplete);
    }

    #[test]
    fn directories_nest_and_list() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            fs2.mkdir("/www").unwrap();
            fs2.mkdir("/www/videos").unwrap();
            fs2.create("/www/index.html").unwrap();
            fs2.write_file(ctx, "/www/index.html", b"<html>").unwrap();
            assert_eq!(fs2.list("/www").unwrap(), vec!["index.html", "videos"]);
            assert_eq!(fs2.read_file(ctx, "/www/index.html").unwrap(), b"<html>");
        });
        exec.run_until_idle();
    }

    #[test]
    fn read_at_returns_the_requested_window() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            fs2.create("/movie").unwrap();
            let payload: Vec<u8> = (0..BLOCK_SIZE * 3)
                .map(|i| (i / BLOCK_SIZE) as u8)
                .collect();
            fs2.write_file(ctx, "/movie", &payload).unwrap();
            // A window straddling the block 0/1 boundary.
            let w = fs2
                .read_at(ctx, "/movie", BLOCK_SIZE as u64 - 2, 4)
                .unwrap();
            assert_eq!(w, vec![0, 0, 1, 1]);
            // Reading past EOF truncates.
            let tail = fs2
                .read_at(ctx, "/movie", (BLOCK_SIZE * 3 - 2) as u64, 100)
                .unwrap();
            assert_eq!(tail.len(), 2);
        });
        exec.run_until_idle();
    }

    #[test]
    fn unlink_frees_blocks() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            let before = fs2.free_blocks();
            fs2.create("/tmp").unwrap();
            fs2.write_file(ctx, "/tmp", &vec![1u8; BLOCK_SIZE * 2])
                .unwrap();
            assert_eq!(fs2.free_blocks(), before - 2);
            fs2.unlink("/tmp").unwrap();
            assert_eq!(fs2.free_blocks(), before);
            assert!(matches!(
                fs2.read_file(ctx, "/tmp"),
                Err(FsError::NotFound { .. })
            ));
        });
        exec.run_until_idle();
    }

    #[test]
    fn errors_are_typed() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            assert!(matches!(
                fs2.read_file(ctx, "/nope"),
                Err(FsError::NotFound { .. })
            ));
            fs2.create("/f").unwrap();
            assert!(matches!(
                fs2.create("/f"),
                Err(FsError::AlreadyExists { .. })
            ));
            fs2.mkdir("/d").unwrap();
            assert!(matches!(
                fs2.read_file(ctx, "/d"),
                Err(FsError::IsADirectory { .. })
            ));
            assert!(matches!(
                fs2.create("/f/x"),
                Err(FsError::NotADirectory { .. })
            ));
        });
        exec.run_until_idle();
    }

    #[test]
    fn overwrite_shrinks_extents() {
        let (fs, exec) = rig();
        let fs2 = fs.clone();
        exec.spawn("app", move |ctx| {
            fs2.create("/f").unwrap();
            let before = fs2.free_blocks();
            fs2.write_file(ctx, "/f", &vec![1u8; BLOCK_SIZE * 3])
                .unwrap();
            fs2.write_file(ctx, "/f", b"small").unwrap();
            assert_eq!(fs2.free_blocks(), before - 1);
            assert_eq!(fs2.read_file(ctx, "/f").unwrap(), b"small");
        });
        exec.run_until_idle();
    }
}
