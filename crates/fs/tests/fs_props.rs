//! Property tests for the file system: write/read equivalence against an
//! in-memory reference model, window reads, and cache-policy transparency
//! (caching must never change observable contents).

use proptest::prelude::*;
use spin_check::sync::Mutex;
use spin_fs::{BufferCache, FileSystem, LruPolicy, NoCachePolicy};
use spin_sal::SimBoard;
use spin_sched::Executor;
use std::collections::HashMap;
use std::sync::Arc;

fn run_fs<R: Send + 'static>(
    cache_blocks: usize,
    lru: bool,
    f: impl FnOnce(&spin_sched::StrandCtx, FileSystem) -> R + Send + 'static,
) -> R {
    let board = SimBoard::new();
    let host = board.new_host(16);
    let exec = Executor::for_host(&host);
    let policy: Box<dyn spin_fs::CachePolicy> = if lru {
        Box::new(LruPolicy::default())
    } else {
        Box::new(NoCachePolicy)
    };
    let cache = BufferCache::new(host.disk.clone(), exec.clone(), cache_blocks, policy);
    let fs = FileSystem::format(cache, 0, 600);
    let out: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let o2 = out.clone();
    exec.spawn("fsdriver", move |ctx| {
        *o2.lock() = Some(f(ctx, fs));
    });
    let outcome = exec.run_until_idle();
    assert_eq!(outcome, spin_sched::IdleOutcome::AllComplete);
    let r = out.lock().take().expect("driver ran");
    r
}

#[derive(Debug, Clone)]
enum FsOp {
    Write { file: u8, content: Vec<u8> },
    Delete { file: u8 },
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..5, prop::collection::vec(any::<u8>(), 0..20_000))
            .prop_map(|(file, content)| FsOp::Write { file, content }),
        (0u8..5).prop_map(|file| FsOp::Delete { file }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn file_system_matches_a_hashmap_model(
        ops in prop::collection::vec(fs_op(), 1..15),
        lru in any::<bool>(),
    ) {
        let result = run_fs(8, lru, move |ctx, fs| {
            let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
            for op in ops {
                match op {
                    FsOp::Write { file, content } => {
                        let path = format!("/f{file}");
                        if !model.contains_key(&file) {
                            fs.create(&path).unwrap();
                        }
                        fs.write_file(ctx, &path, &content).unwrap();
                        model.insert(file, content);
                    }
                    FsOp::Delete { file } => {
                        let path = format!("/f{file}");
                        let fs_result = fs.unlink(&path);
                        assert_eq!(fs_result.is_ok(), model.remove(&file).is_some());
                    }
                }
                // Full agreement after every operation.
                for (file, content) in &model {
                    let back = fs.read_file(ctx, &format!("/f{file}")).unwrap();
                    assert_eq!(&back, content, "file {file} diverged");
                }
            }
            // No block leaks: deleting everything restores the free count.
            let files: Vec<u8> = model.keys().copied().collect();
            for f in files {
                fs.unlink(&format!("/f{f}")).unwrap();
            }
            fs.free_blocks()
        });
        prop_assert_eq!(result, 600);
    }

    #[test]
    fn read_at_equals_slice_of_read_file(
        content in prop::collection::vec(any::<u8>(), 1..30_000),
        start_frac in 0.0f64..1.0,
        len in 0usize..10_000,
    ) {
        let expected = content.clone();
        let offset = (start_frac * content.len() as f64) as u64;
        let (window, full) = run_fs(16, true, move |ctx, fs| {
            fs.create("/data").unwrap();
            fs.write_file(ctx, "/data", &content).unwrap();
            let window = fs.read_at(ctx, "/data", offset, len).unwrap();
            let full = fs.read_file(ctx, "/data").unwrap();
            (window, full)
        });
        prop_assert_eq!(&full, &expected);
        let end = (offset as usize + len).min(expected.len());
        prop_assert_eq!(&window[..], &expected[offset as usize..end]);
    }

    #[test]
    fn cache_policy_never_changes_observable_content(
        content in prop::collection::vec(any::<u8>(), 1..20_000),
    ) {
        let c1 = content.clone();
        let cached = run_fs(64, true, move |ctx, fs| {
            fs.create("/x").unwrap();
            fs.write_file(ctx, "/x", &c1).unwrap();
            (fs.read_file(ctx, "/x").unwrap(), fs.read_file(ctx, "/x").unwrap())
        });
        let c2 = content.clone();
        let uncached = run_fs(64, false, move |ctx, fs| {
            fs.create("/x").unwrap();
            fs.write_file(ctx, "/x", &c2).unwrap();
            (fs.read_file(ctx, "/x").unwrap(), fs.read_file(ctx, "/x").unwrap())
        });
        prop_assert_eq!(&cached.0, &content);
        prop_assert_eq!(&cached.1, &content);
        prop_assert_eq!(cached, uncached);
    }
}
