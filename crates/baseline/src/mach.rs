//! The Mach 3.0 comparison system: a structural cost model.
//!
//! Mach is "a microkernel": services live in user space behind ports and
//! messages, virtual memory is extended through the external pager
//! interface, and cross-address-space RPC takes the optimized
//! message path of \[Draves 94\]. As with the OSF/1 model, rows are
//! *composed* from the shared [`MachineProfile`] primitives plus
//! Mach-specific structural constants.

use spin_sal::{MachineProfile, Nanos};
use std::sync::Arc;

/// Mach-specific structural constants (nanoseconds).
mod c {
    /// One optimized mach_msg send+receive hand-off (port rights checks,
    /// message header processing) beyond the raw crossing. Calibrated to
    /// Table 2's 104 µs cross-address-space call.
    pub const MACH_MSG: u64 = 14_000;
    /// Mach's syscall path is slightly longer than OSF/1's (7 vs 5 µs).
    pub const SYSCALL_EXTRA: u64 = 2_000;
    /// Kernel thread creation (lighter than OSF/1's: 101 µs Fork-Join).
    pub const KTHREAD_CREATE: u64 = 75_000;
    /// C-Threads library descriptor setup.
    pub const CTHREAD_CREATE_EXTRA: u64 = 180_000;
    /// One round trip through the external pager interface: the kernel
    /// builds a memory_object request message, the user pager replies.
    /// Calibrated to Table 4's Fault of 415 µs.
    pub const PAGER_ROUND_TRIP: u64 = 190_000;
    /// Fault-to-handler delivery via the exception port (Trap: 185 µs).
    pub const EXCEPTION_MSG: u64 = 165_000;
    /// vm_protect fixed cost.
    pub const VM_PROTECT_BASE: u64 = 90_000;
    /// vm_protect per-page cost (Prot100: 1792 µs ⇒ ~17 µs/page).
    pub const VM_PROTECT_PER_PAGE: u64 = 17_000;
    /// Lazy unprotection: Mach defers the pmap update, so Unprot100 costs
    /// a base plus a small per-page bookkeeping charge (302 µs).
    pub const VM_UNPROTECT_PER_PAGE: u64 = 2_000;
}

/// The Mach 3.0 model over a machine profile.
#[derive(Clone)]
pub struct MachModel {
    p: Arc<MachineProfile>,
}

impl MachModel {
    /// Builds the model.
    pub fn new(profile: Arc<MachineProfile>) -> MachModel {
        MachModel { p: profile }
    }

    // ---- Table 2 ----

    /// The null system call (≈7 µs).
    pub fn null_syscall(&self) -> Nanos {
        self.p.syscall_round_trip() + c::SYSCALL_EXTRA
    }

    /// Cross-address-space call via optimized messages (≈104 µs): a
    /// mach_msg send, a hand-off switch with AS change, and the reply.
    pub fn cross_address_space_call(&self) -> Nanos {
        let p = &self.p;
        let one_way = p.trap_entry
            + c::MACH_MSG
            + p.sched_decision
            + p.context_switch
            + p.as_switch
            + p.trap_exit;
        2 * one_way
    }

    // ---- Table 3 ----

    /// Kernel-thread Fork-Join (≈101 µs).
    pub fn kernel_fork_join(&self) -> Nanos {
        let p = &self.p;
        c::KTHREAD_CREATE + 2 * (p.sched_decision + p.context_switch) + 2 * p.sync_op
    }

    /// Kernel-thread Ping-Pong (≈71 µs): each direction is a kernel entry,
    /// a message hand-off into the scheduler and a reply-port message.
    pub fn kernel_ping_pong(&self) -> Nanos {
        let p = &self.p;
        2 * (p.trap_entry
            + p.trap_exit
            + 2 * c::MACH_MSG
            + p.sync_op
            + p.sched_decision
            + p.context_switch)
    }

    /// C-Threads user Fork-Join (≈338 µs).
    pub fn user_fork_join(&self) -> Nanos {
        self.kernel_fork_join()
            + c::CTHREAD_CREATE_EXTRA
            + self.p.user_thread_setup
            + 2 * self.null_syscall()
    }

    /// C-Threads user Ping-Pong (≈115 µs): contended operations trap into
    /// the kernel.
    pub fn user_ping_pong(&self) -> Nanos {
        self.kernel_ping_pong() + 2 * self.null_syscall()
    }

    // ---- Table 4 (external pager interface) ----

    /// Trap (≈185 µs): exception message to the handler.
    pub fn vm_trap(&self) -> Nanos {
        self.p.trap_entry + self.p.tlb_fill + c::EXCEPTION_MSG
    }

    /// Fault (≈415 µs): exception message plus an external-pager round
    /// trip to resolve, then resume.
    pub fn vm_fault(&self) -> Nanos {
        self.vm_trap()
            + c::PAGER_ROUND_TRIP
            + self.p.context_switch
            + self.p.trap_exit
            + self.p.tlb_fill
    }

    /// Prot1 (≈106 µs): vm_protect through a message interface.
    pub fn vm_prot1(&self) -> Nanos {
        self.null_syscall() + c::VM_PROTECT_BASE + c::VM_PROTECT_PER_PAGE
    }

    /// Prot100 (≈1792 µs).
    pub fn vm_prot100(&self) -> Nanos {
        self.null_syscall() + c::VM_PROTECT_BASE + 100 * c::VM_PROTECT_PER_PAGE
    }

    /// Unprot100 (≈302 µs): "Mach's unprotection is faster than
    /// protection since the operation is performed lazily."
    pub fn vm_unprot100(&self) -> Nanos {
        self.null_syscall() + c::VM_PROTECT_BASE + 100 * c::VM_UNPROTECT_PER_PAGE
    }

    /// Appel1 (≈819 µs): fault resolution through the pager plus two
    /// protection changes.
    pub fn vm_appel1(&self) -> Nanos {
        self.vm_fault() + c::PAGER_ROUND_TRIP + self.vm_prot1() + c::VM_PROTECT_PER_PAGE
    }

    /// Appel2 per page (≈608 µs): protect batched, but every fault takes
    /// the exception message plus a full pager round trip.
    pub fn vm_appel2(&self) -> Nanos {
        self.vm_prot100() / 100 + self.vm_fault() + c::PAGER_ROUND_TRIP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachModel {
        MachModel::new(Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    fn us(ns: Nanos) -> f64 {
        ns as f64 / 1000.0
    }

    #[test]
    fn table_2_rows_are_in_band() {
        let m = model();
        let sc = us(m.null_syscall());
        assert!((6.0..8.5).contains(&sc), "syscall {sc}");
        let xas = us(m.cross_address_space_call());
        // Paper: 104 µs; must land between SPIN (89) and OSF/1 (845).
        assert!((90.0..140.0).contains(&xas), "xas {xas}");
    }

    #[test]
    fn table_3_rows_are_in_band() {
        let m = model();
        assert!((80.0..130.0).contains(&us(m.kernel_fork_join())));
        assert!((50.0..95.0).contains(&us(m.kernel_ping_pong())));
        assert!((250.0..450.0).contains(&us(m.user_fork_join())));
        assert!((85.0..160.0).contains(&us(m.user_ping_pong())));
    }

    #[test]
    fn table_4_rows_are_in_band() {
        let m = model();
        assert!(
            (150.0..230.0).contains(&us(m.vm_trap())),
            "trap {}",
            us(m.vm_trap())
        );
        assert!(
            (350.0..500.0).contains(&us(m.vm_fault())),
            "fault {}",
            us(m.vm_fault())
        );
        assert!(
            (90.0..130.0).contains(&us(m.vm_prot1())),
            "prot1 {}",
            us(m.vm_prot1())
        );
        assert!(
            (1500.0..2100.0).contains(&us(m.vm_prot100())),
            "prot100 {}",
            us(m.vm_prot100())
        );
        assert!(
            (250.0..400.0).contains(&us(m.vm_unprot100())),
            "unprot {}",
            us(m.vm_unprot100())
        );
        assert!(
            (650.0..1000.0).contains(&us(m.vm_appel1())),
            "appel1 {}",
            us(m.vm_appel1())
        );
        assert!(
            (480.0..780.0).contains(&us(m.vm_appel2())),
            "appel2 {}",
            us(m.vm_appel2())
        );
    }

    #[test]
    fn machs_lazy_unprotect_beats_its_protect() {
        let m = model();
        assert!(
            m.vm_unprot100() * 3 < m.vm_prot100(),
            "lazy unprotection must be far cheaper"
        );
    }
}
