//! `spin-baseline` — the comparison operating systems of §5.
//!
//! The paper evaluates SPIN against two systems on identical hardware:
//! DEC OSF/1 V2.1 (monolithic) and Mach 3.0 (microkernel). This crate
//! provides **structural cost models** of both: every benchmark row is
//! composed from the same `MachineProfile` primitives that SPIN's
//! simulated paths charge, plus a small set of per-system constants
//! (socket layer, mach_msg, signal delivery, external pager, mprotect)
//! documented at their definitions with the Table rows they calibrate to.
//!
//! The models exist so the who-wins/by-what-factor *shape* of Tables 2-6
//! and Figure 6 follows from system structure: OSF/1 pays user/kernel
//! boundary crossings, data copies and signal upcalls; Mach pays message
//! and external-pager round trips; SPIN pays procedure calls.

#![forbid(unsafe_code)]

pub mod mach;
pub mod osf1;

pub use mach::MachModel;
pub use osf1::Osf1Model;

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::MachineProfile;
    use std::sync::Arc;

    #[test]
    fn the_three_way_ordering_of_table_2_holds() {
        let p = Arc::new(MachineProfile::alpha_axp_3000_400());
        let osf1 = Osf1Model::new(p.clone());
        let mach = MachModel::new(p.clone());
        // Cross-address-space call: SPIN (89 µs) < Mach (104) << OSF/1 (845).
        let spin_xas = 89_000u64; // measured by spin_sched::measure_xas_call
        assert!(spin_xas < mach.cross_address_space_call());
        assert!(mach.cross_address_space_call() < osf1.cross_address_space_call() / 4);
        // System call: SPIN (4 µs) < OSF/1 (5) < Mach (7).
        assert!(osf1.null_syscall() < mach.null_syscall());
    }

    #[test]
    fn the_vm_ordering_of_table_4_holds() {
        let p = Arc::new(MachineProfile::alpha_axp_3000_400());
        let osf1 = Osf1Model::new(p.clone());
        let mach = MachModel::new(p.clone());
        // Fault: SPIN (29 µs) << OSF/1 (329) < Mach (415).
        assert!(osf1.vm_fault() < mach.vm_fault());
        assert!(osf1.vm_fault() > 10 * 29_000);
        // Trap: Mach (185) < OSF/1 (260).
        assert!(mach.vm_trap() < osf1.vm_trap());
        // Prot100: OSF/1 (1041) < Mach (1792).
        assert!(osf1.vm_prot100() < mach.vm_prot100());
        // Unprot100: Mach's lazy path (302) < OSF/1 (1016).
        assert!(mach.vm_unprot100() < osf1.vm_unprot100());
    }
}
