//! The DEC OSF/1 V2.1 comparison system: a structural cost model.
//!
//! The paper compares SPIN against "DEC OSF/1 V2.1 which is a monolithic
//! operating system" on identical hardware. We cannot run OSF/1; instead,
//! every comparison operation is *composed* from the same
//! [`MachineProfile`] primitives the SPIN paths charge, plus a small set
//! of OSF/1-specific structural constants (documented inline with their
//! calibration source). The point of the model is that OSF/1's numbers
//! come from its *structure* — fixed syscall dispatch, user-level services
//! behind sockets, signal-based fault reflection, per-page mprotect — not
//! from per-row fudging.

use spin_sal::{MachineProfile, Nanos};
use std::sync::Arc;

/// OSF/1-specific structural constants (nanoseconds).
mod c {
    /// One traversal of the socket layer (buffer management, so_queue,
    /// selwakeup). Calibrated so the UDP RTT delta over SPIN matches
    /// Table 5 (789 vs 565 µs ⇒ ~56 µs per user-level crossing side).
    pub const SOCKET_OP: u64 = 40_000;
    /// SUN RPC marshal/unmarshal per message (XDR encode + decode).
    pub const SUNRPC_MARSHAL: u64 = 120_000;
    /// Wakeup of a blocked user process: scheduler + run-queue latency.
    pub const PROC_WAKEUP: u64 = 12_000;
    /// OSF/1 kernel thread creation (kernel stack, proc glue); Table 3's
    /// Fork-Join of 198 µs is dominated by this.
    pub const KTHREAD_CREATE: u64 = 165_000;
    /// P-threads user-level thread creation above kernel threads.
    pub const PTHREAD_CREATE_EXTRA: u64 = 900_000;
    /// Delivering a UNIX signal to a user handler and returning
    /// (sigsave, upcall, sigreturn). Calibrated to Table 4's Trap row
    /// (260 µs from fault to handler).
    pub const SIGNAL_UPCALL: u64 = 240_000;
    /// Fixed cost of an mprotect system call (argument validation, map
    /// lookup). Table 4 Prot1 is 45 µs.
    pub const MPROTECT_BASE: u64 = 32_000;
    /// Per-page cost inside mprotect (pmap update). Table 4 Prot100:
    /// 1041 µs ⇒ ~10 µs/page.
    pub const MPROTECT_PER_PAGE: u64 = 10_000;
}

/// The OSF/1 model over a machine profile.
#[derive(Clone)]
pub struct Osf1Model {
    p: Arc<MachineProfile>,
}

impl Osf1Model {
    /// Builds the model.
    pub fn new(profile: Arc<MachineProfile>) -> Osf1Model {
        Osf1Model { p: profile }
    }

    // ---- Table 2: protected communication ----

    /// The null system call: trap, fixed dispatcher, return (≈5 µs).
    pub fn null_syscall(&self) -> Nanos {
        self.p.syscall_round_trip()
    }

    /// Cross-address-space call via "sockets and SUN RPC" (≈845 µs):
    /// each direction is a socket write (syscall + copy + socket layer +
    /// RPC marshal), a process wakeup with context and AS switch, and a
    /// socket read (syscall + socket layer + copy + unmarshal).
    pub fn cross_address_space_call(&self) -> Nanos {
        let p = &self.p;
        let one_way = p.syscall_round_trip()          // write(2)
            + c::SOCKET_OP
            + c::SUNRPC_MARSHAL
            + c::PROC_WAKEUP
            + p.sched_decision
            + p.context_switch
            + p.as_switch
            + p.syscall_round_trip()                  // read(2) on the peer
            + c::SOCKET_OP
            + c::SUNRPC_MARSHAL;
        2 * one_way
    }

    // ---- Table 3: thread management ----

    /// Kernel-thread Fork-Join (≈198 µs): heavyweight creation plus the
    /// schedule/terminate/join switches.
    pub fn kernel_fork_join(&self) -> Nanos {
        let p = &self.p;
        c::KTHREAD_CREATE
            + 2 * (p.sched_decision + p.context_switch)
            + 2 * p.sync_op
            + c::PROC_WAKEUP
    }

    /// Kernel-thread Ping-Pong (≈21 µs): two sleep/wakeup switches.
    pub fn kernel_ping_pong(&self) -> Nanos {
        let p = &self.p;
        2 * (p.sync_op + p.sched_decision + p.context_switch) + 2 * p.sync_op * 2
    }

    /// P-threads user Fork-Join (≈1230 µs): library descriptor setup over
    /// a kernel thread plus crossings for every operation.
    pub fn user_fork_join(&self) -> Nanos {
        self.kernel_fork_join()
            + c::PTHREAD_CREATE_EXTRA
            + 2 * self.p.user_thread_setup
            + 4 * self.null_syscall()
    }

    /// P-threads user Ping-Pong (≈264 µs): each signal/block pair enters
    /// the kernel through the full syscall path.
    pub fn user_ping_pong(&self) -> Nanos {
        self.kernel_ping_pong() + 4 * self.null_syscall() + 4 * c::SOCKET_OP
    }

    // ---- Table 4: virtual memory (signals + mprotect) ----

    /// Trap: fault to user handler via signal delivery (≈260 µs).
    pub fn vm_trap(&self) -> Nanos {
        self.p.trap_entry + self.p.tlb_fill + c::SIGNAL_UPCALL
    }

    /// Fault: full perceived latency — signal out, mprotect in the
    /// handler, sigreturn and retry (≈329 µs).
    pub fn vm_fault(&self) -> Nanos {
        self.vm_trap() + self.vm_prot1() + self.p.trap_exit + self.p.tlb_fill
    }

    /// Prot1: one mprotect call (≈45 µs).
    pub fn vm_prot1(&self) -> Nanos {
        self.null_syscall() + c::MPROTECT_BASE + c::MPROTECT_PER_PAGE
    }

    /// Prot100: one call, 100 pmap updates (≈1041 µs).
    pub fn vm_prot100(&self) -> Nanos {
        self.null_syscall() + c::MPROTECT_BASE + 100 * c::MPROTECT_PER_PAGE
    }

    /// Unprot100: OSF/1 does not evaluate protection lazily, so the cost
    /// mirrors Prot100 (≈1016 µs).
    pub fn vm_unprot100(&self) -> Nanos {
        self.vm_prot100()
    }

    /// Appel1: fault + resolve + protect another page (≈382 µs).
    pub fn vm_appel1(&self) -> Nanos {
        self.vm_fault() + c::MPROTECT_PER_PAGE + c::MPROTECT_BASE
    }

    /// Appel2 per page: amortized protect100 plus a fault and an
    /// unprotect per page (≈351 µs).
    pub fn vm_appel2(&self) -> Nanos {
        self.vm_prot100() / 100 + self.vm_fault() + c::MPROTECT_PER_PAGE
    }

    // ---- Table 5 / 6: networking deltas ----

    /// Extra CPU on the OSF/1 path per packet *endpoint operation* (a user
    /// process sending or receiving one packet of `len` bytes): syscall,
    /// socket layer, copy across the user/kernel boundary, wakeup.
    pub fn user_packet_overhead(&self, len: usize) -> Nanos {
        self.null_syscall() + c::SOCKET_OP + self.p.copy(len) + c::PROC_WAKEUP
    }

    /// UDP round-trip latency as measured SPIN RTT plus four user-level
    /// endpoint operations (client send/recv + server recv/send).
    pub fn udp_round_trip(&self, spin_rtt: Nanos, payload: usize) -> Nanos {
        spin_rtt + 4 * self.user_packet_overhead(payload)
    }

    /// Receive bandwidth: the receiver additionally crosses the boundary
    /// per packet and copies into user space; streaming copies pipeline
    /// with the card's PIO, so a quarter of the copy shows as added
    /// critical-path time.
    pub fn receive_bandwidth_mbps(&self, spin_mbps: f64, packet: usize) -> f64 {
        let spin_per_packet_ns = packet as f64 * 8.0 * 1e3 / spin_mbps;
        let extra =
            (self.null_syscall() + c::SOCKET_OP + self.p.copy(packet) / 4 + c::PROC_WAKEUP) as f64;
        let osf_per_packet_ns = spin_per_packet_ns + extra;
        packet as f64 * 8.0 * 1e3 / osf_per_packet_ns
    }

    /// Table 6: the user-level forwarder adds, per one-way trip, two full
    /// socket traversals (in and out), two copies and a process wakeup on
    /// the forwarding host — and it runs above the transport, so control
    /// packets take the same path.
    pub fn forwarder_round_trip(&self, spin_forward_rtt: Nanos, payload: usize) -> Nanos {
        spin_forward_rtt + 4 * self.user_packet_overhead(payload)
    }

    // ---- §5.4: end-to-end applications ----

    /// Video server: CPU to read one frame — read(2) plus the copy from
    /// the page cache to user space (per frame, shared across clients).
    pub fn video_read_cpu(&self, frame_bytes: usize) -> Nanos {
        self.null_syscall() + self.p.copy(frame_bytes)
    }

    /// Video server: CPU to send one packet to one client — send(2), the
    /// copy across the user/kernel boundary, the socket layer, and the
    /// same device driver SPIN uses (no in-kernel splice, no multicast
    /// fan-out sharing).
    pub fn video_send_cpu(&self, packet_bytes: usize, driver_ns: Nanos) -> Nanos {
        self.null_syscall()
            + self.p.copy(packet_bytes)
            + c::SOCKET_OP
            + driver_ns
            + self.p.dma_setup
    }

    /// Web server request latency: the paper reports "about 8 ms per
    /// request for the same cached file" for a user-level server on the
    /// caching file system: connection handling plus two boundary
    /// crossings with copies on top of SPIN's ~5 ms in-kernel time.
    pub fn web_request(&self, spin_request: Nanos, body: usize) -> Nanos {
        spin_request + 2 * self.user_packet_overhead(body) + 2 * c::SOCKET_OP + c::SUNRPC_MARSHAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Osf1Model {
        Osf1Model::new(Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    fn us(ns: Nanos) -> f64 {
        ns as f64 / 1000.0
    }

    #[test]
    fn table_2_rows_are_in_band() {
        let m = model();
        assert!(
            (4.0..6.0).contains(&us(m.null_syscall())),
            "syscall {}",
            us(m.null_syscall())
        );
        let xas = us(m.cross_address_space_call());
        // Paper: 845 µs.
        assert!((600.0..1100.0).contains(&xas), "xas {xas}");
    }

    #[test]
    fn table_3_rows_are_in_band() {
        let m = model();
        let fj = us(m.kernel_fork_join());
        assert!((150.0..250.0).contains(&fj), "kernel fork-join {fj}");
        let pp = us(m.kernel_ping_pong());
        assert!((14.0..30.0).contains(&pp), "kernel ping-pong {pp}");
        let ufj = us(m.user_fork_join());
        assert!((900.0..1500.0).contains(&ufj), "user fork-join {ufj}");
        let upp = us(m.user_ping_pong());
        assert!((150.0..400.0).contains(&upp), "user ping-pong {upp}");
    }

    #[test]
    fn table_4_rows_are_in_band() {
        let m = model();
        assert!(
            (200.0..320.0).contains(&us(m.vm_trap())),
            "trap {}",
            us(m.vm_trap())
        );
        assert!(
            (280.0..420.0).contains(&us(m.vm_fault())),
            "fault {}",
            us(m.vm_fault())
        );
        assert!(
            (38.0..60.0).contains(&us(m.vm_prot1())),
            "prot1 {}",
            us(m.vm_prot1())
        );
        assert!(
            (900.0..1250.0).contains(&us(m.vm_prot100())),
            "prot100 {}",
            us(m.vm_prot100())
        );
        assert!(
            (300.0..480.0).contains(&us(m.vm_appel1())),
            "appel1 {}",
            us(m.vm_appel1())
        );
        assert!(
            (280.0..450.0).contains(&us(m.vm_appel2())),
            "appel2 {}",
            us(m.vm_appel2())
        );
    }

    #[test]
    fn osf1_is_consistently_slower_than_spin_reference_points() {
        let m = model();
        // Table 2: SPIN syscall 4 µs, protected in-kernel call 0.13 µs.
        assert!(m.null_syscall() > 4_000);
        assert!(m.cross_address_space_call() > 89_000, "SPIN xas is 89 µs");
        // Table 5 shape: OSF/1 Ethernet RTT exceeds SPIN's by ~200+ µs.
        let delta = m.udp_round_trip(565_000, 16) - 565_000;
        assert!((150_000..350_000).contains(&delta), "RTT delta {delta}");
    }

    #[test]
    fn receive_bandwidth_drops_below_spin() {
        let m = model();
        let osf = m.receive_bandwidth_mbps(33.0, 8132);
        assert!(osf < 33.0);
        assert!((24.0..32.0).contains(&osf), "OSF/1 ATM bandwidth {osf}");
    }
}
