//! Live domain hot-swap: online extension upgrades with typed state
//! transfer and fault-driven rollback.
//!
//! SPIN extensions are dynamically linked into the kernel and reached
//! through events and nameserver bindings (§2, §3.1). This crate adds the
//! missing lifecycle piece: replacing a *running* extension with a new
//! version without dropping in-flight work. A swap runs a five-phase
//! protocol, every phase at a deterministic virtual instant:
//!
//! 1. **Quiesce** — close each affected event's gate
//!    ([`spin_core::GatedEvent::quiesce`]): new raises park in the bounded
//!    hold queue while raises already past the gate drain out
//!    ([`spin_core::GatedEvent::drain_in_flight`]).
//! 2. **Transfer** — run the typed `FnOnce(&Old) -> New` state transfer
//!    at the quiesced instant, inside an unwind containment with a
//!    deterministic fault-injection draw ([`spin_fault::SITE_SWAP`]).
//! 3. **Rebind** — atomically replace the old version's handlers
//!    ([`spin_core::Event::rebind`] — one generation bump per event) and
//!    nameserver exports ([`spin_core::NameServer::rebind_exports`]).
//!    The rebind closure returns undo actions that make it reversible.
//! 4. **Resume** — reopen the gates; parked raises replay in
//!    `(deliver_at, lane, seq)` order through the new version, so virtual
//!    outputs are byte-identical to an uninterrupted run wherever the new
//!    version is semantically identical.
//! 5. **Rollback** — if the transfer panics, fails, or blows its virtual
//!    `time_bound`, run the undo actions in reverse, resume through the
//!    *old* version, and attribute the fault to the old domain via the
//!    containment layer ([`spin_core::fault::Containment::note_external_fault`])
//!    — no breaker strike, because the rollback *is* the containment
//!    action.
//!
//! The [`SwapSupervisor`] closes the loop with PR-3's containment: it
//! watches `Core.DomainFault` and queues a registered fallback swap for
//! the faulting domain. The fallback is deliberately *deferred* (run by
//! [`SwapSupervisor::pump`], not by the event handler): `Core.DomainFault`
//! is raised from inside the faulting raise, where `in_flight >= 1`, so
//! swapping inline would deadlock the quiesce drain against itself.

#![forbid(unsafe_code)]

use spin_check::sync::{AtomicU64, Mutex, Ordering};
use spin_core::fault::{Containment, DomainFaultInfo};
use spin_core::{DispatchError, GatedEvent, Identity};
use spin_fault::{FaultHook, FaultPlan, Injection, SITE_SWAP};
use spin_obs::{Obs, ObsHook, TraceKind};
use spin_sal::clock::{Clock, Nanos};
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The protocol phase, traced as [`TraceKind::SwapPhase`] (`a` = the
/// ordinal below, `b` = a phase-specific count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPhase {
    /// Gates closed, in-flight raises draining.
    Quiesce = 0,
    /// Typed state transfer running at the quiesced instant.
    Transfer = 1,
    /// Handlers and exports being replaced.
    Rebind = 2,
    /// Gates reopening, hold queues replaying.
    Resume = 3,
    /// Swap committed (`b` = raises replayed).
    Committed = 4,
    /// Swap rolled back (`b` = undo actions run).
    RolledBack = 5,
}

/// Why a swap was rolled back. The old version is serving again by the
/// time the caller sees one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The state transfer panicked (organic or injected at
    /// [`SITE_SWAP`]); the panic was contained.
    TransferPanicked {
        /// Best-effort extraction of the panic payload.
        message: String,
    },
    /// The state transfer was failed by deterministic injection.
    TransferFailed,
    /// The swap exceeded its virtual-time budget (measured from the
    /// quiesced instant).
    TimeBoundExceeded {
        /// The caller's budget.
        bound: Nanos,
        /// Virtual nanoseconds actually elapsed.
        elapsed: Nanos,
    },
    /// The rebind closure panicked. Undo actions from a partial rebind
    /// are not available, so the closure must itself be atomic (the
    /// building blocks — [`spin_core::Event::rebind`] and
    /// [`spin_core::NameServer::rebind_exports`] — are).
    RebindPanicked {
        /// Best-effort extraction of the panic payload.
        message: String,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::TransferPanicked { message } => {
                write!(f, "state transfer panicked: {message}")
            }
            SwapError::TransferFailed => write!(f, "state transfer failed (injected)"),
            SwapError::TimeBoundExceeded { bound, elapsed } => {
                write!(f, "swap exceeded its time bound: {elapsed}ns > {bound}ns")
            }
            SwapError::RebindPanicked { message } => write!(f, "rebind panicked: {message}"),
        }
    }
}

impl std::error::Error for SwapError {}

/// One reversal step returned by a rebind closure, run in reverse order
/// on rollback (typically `Event::restore(receipt)` and
/// `NameServer::restore_exports(receipt)` calls).
pub type UndoAction = Box<dyn FnOnce() + Send>;

/// What a committed swap did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// Raises parked in hold queues at the commit point.
    pub held: u64,
    /// Raises replayed through the new version on resume.
    pub replayed: u64,
    /// Virtual nanoseconds from the quiesced instant to the end of the
    /// resume replay.
    pub drain_ns: Nanos,
}

/// A counter snapshot (also exported as `spin_swap_*` gauges via
/// [`SwapCoordinator::wire_obs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Swaps begun.
    pub attempted: u64,
    /// Swaps committed.
    pub committed: u64,
    /// Swaps rolled back.
    pub rolled_back: u64,
    /// Total virtual nanoseconds spent between quiesce and resume.
    pub drain_virtual_ns: u64,
    /// Raises replayed out of hold queues (commit and rollback resumes).
    pub held_replayed: u64,
}

struct CoordinatorInner {
    clock: Clock,
    attempted: AtomicU64,
    committed: AtomicU64,
    rolled_back: AtomicU64,
    drain_ns: AtomicU64,
    held_replayed: AtomicU64,
    obs: Mutex<Option<ObsHook>>,
    faults: Mutex<Option<FaultHook>>,
    containment: Mutex<Option<Arc<Containment>>>,
}

/// A quiesced set of events between [`SwapCoordinator::begin`] and
/// [`SwapCoordinator::complete`]. While a session is open, raises on its
/// gates park ([`DispatchError::Held`]) — the split lets a driver keep
/// traffic arriving at later virtual instants before committing, which is
/// exactly how the mid-storm benchmark fills the hold queue.
pub struct SwapSession {
    domain: String,
    gates: Vec<Arc<dyn GatedEvent>>,
    gated_at: Nanos,
}

impl SwapSession {
    /// The domain under swap.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The virtual instant at which every gate was closed and drained.
    pub fn gated_at(&self) -> Nanos {
        self.gated_at
    }

    /// Raises currently parked across this session's hold queues.
    pub fn held_len(&self) -> u64 {
        self.gates.iter().map(|g| g.held_len() as u64).sum()
    }

    fn resume_all(&self) -> u64 {
        self.gates.iter().map(|g| g.resume()).sum()
    }
}

/// The hot-swap orchestrator: owns the protocol, the counters, and the
/// hooks into obs / fault injection / containment. Cheap to clone.
#[derive(Clone)]
pub struct SwapCoordinator {
    inner: Arc<CoordinatorInner>,
}

impl SwapCoordinator {
    /// A coordinator measuring drain durations on `clock` (share the
    /// dispatcher's clock so phase instants line up with dispatch costs).
    pub fn new(clock: Clock) -> SwapCoordinator {
        SwapCoordinator {
            inner: Arc::new(CoordinatorInner {
                clock,
                attempted: AtomicU64::new(0),
                committed: AtomicU64::new(0),
                rolled_back: AtomicU64::new(0),
                drain_ns: AtomicU64::new(0),
                held_replayed: AtomicU64::new(0),
                obs: Mutex::new(None),
                faults: Mutex::new(None),
                containment: Mutex::new(None),
            }),
        }
    }

    /// Wires phase tracing (the `swap` obs domain) and registers the
    /// `spin_swap_*` gauges on the `/metrics` route.
    pub fn wire_obs(&self, obs: &Obs) {
        *self.inner.obs.lock() = Some(obs.domain("swap"));
        type GaugeRead = fn(&CoordinatorInner) -> &AtomicU64;
        let gauges: [(&str, GaugeRead); 5] = [
            ("swap_attempted_total", |i| &i.attempted),
            ("swap_committed_total", |i| &i.committed),
            ("swap_rolled_back_total", |i| &i.rolled_back),
            ("swap_drain_virtual_ns_total", |i| &i.drain_ns),
            ("swap_held_replayed_total", |i| &i.held_replayed),
        ];
        for (name, read) in gauges {
            let inner = self.inner.clone();
            // ordering: Relaxed — monotonic statistic; render takes a snapshot, not a sync point.
            obs.register_gauge(name, move || read(&inner).load(Ordering::Relaxed));
        }
    }

    /// Arms deterministic fault injection at [`SITE_SWAP`] (one draw per
    /// swap attempt, made at the start of the transfer phase).
    pub fn set_fault_hook(&self, plan: &FaultPlan) {
        *self.inner.faults.lock() = Some(plan.hook(SITE_SWAP));
    }

    /// Wires rollback fault attribution: a rolled-back swap is noted
    /// against the old domain via
    /// [`Containment::note_external_fault`].
    pub fn set_containment(&self, containment: &Arc<Containment>) {
        *self.inner.containment.lock() = Some(containment.clone());
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SwapStats {
        let i = &self.inner;
        SwapStats {
            attempted: i.attempted.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            committed: i.committed.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            rolled_back: i.rolled_back.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            drain_virtual_ns: i.drain_ns.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            held_replayed: i.held_replayed.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }

    fn trace(&self, phase: SwapPhase, b: u64) {
        if let Some(hook) = self.inner.obs.lock().as_ref() {
            hook.trace(TraceKind::SwapPhase, phase as u64, b);
        }
    }

    /// Phase 1: quiesce. Closes every gate, then waits out raises already
    /// past the gate check. Parking charges no virtual time, so the
    /// quiesced instant is deterministic.
    ///
    /// Must not be called from inside a handler of one of the gated
    /// events — the drain would wait on the caller's own raise.
    pub fn begin(&self, domain: &str, gates: Vec<Arc<dyn GatedEvent>>) -> SwapSession {
        self.inner.attempted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.trace(SwapPhase::Quiesce, gates.len() as u64);
        for g in &gates {
            let _ = g.quiesce();
        }
        for g in &gates {
            let _ = g.drain_in_flight();
        }
        SwapSession {
            domain: domain.to_string(),
            gates,
            gated_at: self.inner.clock.now(),
        }
    }

    /// Phases 2–5: transfer, rebind, resume — or rollback.
    ///
    /// `transfer` maps the old version's state to the new version's at the
    /// quiesced instant. `rebind` applies the replacement (handler rebinds,
    /// export rebinds) and returns the undo actions that reverse it.
    /// `time_bound` caps the whole swap in virtual nanoseconds measured
    /// from [`SwapSession::gated_at`]; overruns roll back.
    ///
    /// On any rollback the undo actions run in reverse, the gates resume
    /// through the old version, and the fault is attributed to
    /// `old_identity`.
    pub fn complete<Old, New>(
        &self,
        session: SwapSession,
        old_identity: &Identity,
        old: &Old,
        transfer: impl FnOnce(&Old) -> New,
        time_bound: Option<Nanos>,
        rebind: impl FnOnce(New) -> Vec<UndoAction>,
    ) -> Result<SwapReport, SwapError> {
        let held = session.held_len();
        self.trace(SwapPhase::Transfer, held);

        // One deterministic draw per attempt: Panic unwinds inside the
        // containment below, Delay charges virtual time against the
        // bound, Fail aborts the transfer outright.
        let injection = self.inner.faults.lock().as_ref().and_then(|h| h.draw());
        if matches!(injection, Some(Injection::Fail)) {
            return self.rollback(
                &session,
                old_identity,
                Vec::new(),
                SwapError::TransferFailed,
            );
        }
        if let Some(Injection::Delay(ns)) = injection {
            self.inner.clock.advance(ns);
        }
        let fire = if matches!(injection, Some(Injection::Panic)) {
            self.inner.faults.lock().clone()
        } else {
            None
        };
        let new_state = match catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &fire {
                hook.fire_panic();
            }
            transfer(old)
        })) {
            Ok(state) => state,
            Err(payload) => {
                return self.rollback(
                    &session,
                    old_identity,
                    Vec::new(),
                    SwapError::TransferPanicked {
                        message: panic_message(payload.as_ref()),
                    },
                )
            }
        };
        if let Some(err) = self.over_bound(&session, time_bound) {
            return self.rollback(&session, old_identity, Vec::new(), err);
        }

        self.trace(SwapPhase::Rebind, 0);
        let undos = match catch_unwind(AssertUnwindSafe(|| rebind(new_state))) {
            Ok(undos) => undos,
            Err(payload) => {
                return self.rollback(
                    &session,
                    old_identity,
                    Vec::new(),
                    SwapError::RebindPanicked {
                        message: panic_message(payload.as_ref()),
                    },
                )
            }
        };
        if let Some(err) = self.over_bound(&session, time_bound) {
            return self.rollback(&session, old_identity, undos, err);
        }

        self.trace(SwapPhase::Resume, held);
        let replayed = session.resume_all();
        let drain_ns = self.inner.clock.now().saturating_sub(session.gated_at);
        self.inner.drain_ns.fetch_add(drain_ns, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.inner
            .held_replayed
            .fetch_add(replayed, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.inner.committed.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.trace(SwapPhase::Committed, replayed);
        Ok(SwapReport {
            held,
            replayed,
            drain_ns,
        })
    }

    /// [`begin`](Self::begin) + [`complete`](Self::complete) back to back
    /// — the whole protocol at one virtual instant. The hold queue only
    /// fills if raisers race concurrently; drivers that park traffic
    /// between phases should use the split API.
    #[allow(clippy::too_many_arguments)]
    pub fn swap<Old, New>(
        &self,
        domain: &str,
        gates: Vec<Arc<dyn GatedEvent>>,
        old_identity: &Identity,
        old: &Old,
        transfer: impl FnOnce(&Old) -> New,
        time_bound: Option<Nanos>,
        rebind: impl FnOnce(New) -> Vec<UndoAction>,
    ) -> Result<SwapReport, SwapError> {
        let session = self.begin(domain, gates);
        self.complete(session, old_identity, old, transfer, time_bound, rebind)
    }

    fn over_bound(&self, session: &SwapSession, time_bound: Option<Nanos>) -> Option<SwapError> {
        let bound = time_bound?;
        let elapsed = self.inner.clock.now().saturating_sub(session.gated_at);
        (elapsed > bound).then_some(SwapError::TimeBoundExceeded { bound, elapsed })
    }

    fn rollback(
        &self,
        session: &SwapSession,
        old_identity: &Identity,
        undos: Vec<UndoAction>,
        err: SwapError,
    ) -> Result<SwapReport, SwapError> {
        self.trace(SwapPhase::RolledBack, undos.len() as u64);
        for undo in undos.into_iter().rev() {
            undo();
        }
        let replayed = session.resume_all();
        self.inner
            .held_replayed
            .fetch_add(replayed, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.inner.rolled_back.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(containment) = self.inner.containment.lock().clone() {
            containment.note_external_fault(old_identity);
        }
        Err(err)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<spin_fault::InjectedPanic>() {
        format!("injected panic at site {}", p.site)
    } else {
        "opaque panic payload".to_string()
    }
}

type Fallback = Box<dyn FnMut() + Send>;

struct SupervisorInner {
    pending: Mutex<Vec<String>>,
    fallbacks: Mutex<HashMap<String, Fallback>>,
}

/// Fault-triggered auto-swap: watches `Core.DomainFault` and queues the
/// registered fallback for each faulting domain.
///
/// Fallbacks are *deferred*: the `Core.DomainFault` handler only records
/// the domain, and [`SwapSupervisor::pump`] runs the fallbacks from the
/// driver loop. Swapping inside the handler would deadlock — the handler
/// runs within the faulting raise, so the quiesce drain would wait on a
/// raise that cannot finish until the handler returns.
#[derive(Clone)]
pub struct SwapSupervisor {
    inner: Arc<SupervisorInner>,
}

impl SwapSupervisor {
    /// Installs the watcher on `containment`'s `Core.DomainFault` event
    /// under the `swap-supervisor` kernel identity.
    pub fn install(containment: &Containment) -> Result<SwapSupervisor, DispatchError> {
        let sup = SwapSupervisor {
            inner: Arc::new(SupervisorInner {
                pending: Mutex::new(Vec::new()),
                fallbacks: Mutex::new(HashMap::new()),
            }),
        };
        let inner = sup.inner.clone();
        containment.domain_fault_event().install(
            Identity::kernel("swap-supervisor"),
            move |info: &DomainFaultInfo| {
                inner.pending.lock().push(info.domain.clone());
            },
        )?;
        Ok(sup)
    }

    /// Registers (or replaces) the fallback swap for `domain` — typically
    /// a closure that runs [`SwapCoordinator::swap`] down to a known-good
    /// version.
    pub fn register_fallback(&self, domain: &str, action: impl FnMut() + Send + 'static) {
        self.inner
            .fallbacks
            .lock()
            .insert(domain.to_string(), Box::new(action));
    }

    /// Faulting domains recorded since the last [`pump`](Self::pump), in
    /// fault order.
    pub fn pending(&self) -> Vec<String> {
        self.inner.pending.lock().clone()
    }

    /// Runs the registered fallback for each pending faulting domain (in
    /// fault order) and returns how many ran. Domains with no registered
    /// fallback are dropped — containment already handled them.
    pub fn pump(&self) -> usize {
        let pending = std::mem::take(&mut *self.inner.pending.lock());
        let mut fallbacks = self.inner.fallbacks.lock();
        let mut ran = 0;
        for domain in pending {
            if let Some(action) = fallbacks.get_mut(&domain) {
                action();
                ran += 1;
            }
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_core::fault::ContainmentPolicy;
    use spin_core::{Constraints, DispatchError, Dispatcher, Event, InstallSpec};
    use spin_fault::SiteConfig;
    use spin_sal::MachineProfile;

    fn rig() -> (Clock, Dispatcher, Event<u32, u32>, Identity, Identity) {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let d = Dispatcher::new(clock.clone(), profile);
        let owner_id = Identity::kernel("net");
        let (ev, _owner) = d.define::<u32, u32>("Swap.Packet", owner_id.clone());
        let v1 = Identity::extension("fwd-v1");
        ev.install(v1.clone(), |x| x + 1).unwrap();
        (clock, d, ev, owner_id, v1)
    }

    /// A rebind closure swapping v1 handlers for a v2 built from the
    /// transferred state, returning the undo that restores v1.
    fn rebind_to_v2(
        ev: &Event<u32, u32>,
        owner_id: &Identity,
        v1: &Identity,
        bias: u32,
    ) -> Vec<UndoAction> {
        let receipt = ev
            .rebind(
                owner_id,
                v1,
                vec![InstallSpec {
                    installer: Identity::extension("fwd-v2"),
                    handler: Arc::new(move |x: &u32| x + bias),
                    guards: Vec::new(),
                    constraints: Constraints::default(),
                }],
            )
            .unwrap();
        let ev = ev.clone();
        let owner_id = owner_id.clone();
        vec![Box::new(move || {
            ev.restore(&owner_id, receipt).unwrap();
        })]
    }

    #[test]
    fn commit_swaps_version_and_replays_parked_raises() {
        let (clock, d, ev, owner_id, v1) = rig();
        let coord = SwapCoordinator::new(clock);
        let obs = Obs::new(64);
        coord.wire_obs(&obs);

        assert_eq!(ev.raise(1), Ok(2));
        let session = coord.begin("fwd", vec![Arc::new(ev.clone())]);
        assert!(matches!(ev.raise(5), Err(DispatchError::Held { .. })));
        assert_eq!(session.held_len(), 1);

        let old_state = 90u32;
        let report = coord
            .complete(
                session,
                &v1,
                &old_state,
                |old| *old + 10, // v2 bias derived from v1 state
                None,
                |bias| rebind_to_v2(&ev, &owner_id, &v1, bias),
            )
            .unwrap();
        assert_eq!(report.held, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(ev.raise(1), Ok(101));
        let stats = coord.stats();
        assert_eq!(
            (stats.attempted, stats.committed, stats.rolled_back),
            (1, 1, 0)
        );
        assert_eq!(stats.held_replayed, 1);
        let exact = d.stats(&ev).unwrap();
        let hold = ev.hold_stats().unwrap();
        assert_eq!(hold.held, 1);
        assert_eq!(hold.replayed, 1);
        // Reconciliation: every attempt is a completed raise or parked.
        assert_eq!(exact.raises, 3);
        // Metrics render includes the swap gauges.
        let page = obs.render_prometheus();
        assert!(page.contains("spin_swap_committed_total 1"));
        assert!(page.contains("spin_swap_attempted_total 1"));
    }

    #[test]
    fn injected_transfer_panic_rolls_back_to_old_version() {
        let (clock, d, ev, owner_id, v1) = rig();
        let coord = SwapCoordinator::new(clock);
        let plan = FaultPlan::new(7);
        plan.configure(SITE_SWAP, SiteConfig::panic_always());
        coord.set_fault_hook(&plan);
        let containment = Containment::install(&d, None, ContainmentPolicy::default());
        coord.set_containment(&containment);

        let session = coord.begin("fwd", vec![Arc::new(ev.clone())]);
        assert!(matches!(ev.raise(5), Err(DispatchError::Held { .. })));
        let err = coord
            .complete(
                session,
                &v1,
                &0u32,
                |_| unreachable!("injected panic fires before the transfer body"),
                None,
                |_: u32| rebind_to_v2(&ev, &owner_id, &v1, 100),
            )
            .unwrap_err();
        assert!(matches!(err, SwapError::TransferPanicked { .. }));
        // Old version serving again; the parked raise replayed through it.
        assert_eq!(ev.raise(1), Ok(2));
        let stats = coord.stats();
        assert_eq!((stats.committed, stats.rolled_back), (0, 1));
        assert_eq!(stats.held_replayed, 1);
        assert_eq!(containment.faults_seen(), 1);
        assert_eq!(plan.injected_panics(), 1);
    }

    #[test]
    fn time_bound_overrun_after_rebind_reverses_the_undo_chain() {
        let (clock, _d, ev, owner_id, v1) = rig();
        let coord = SwapCoordinator::new(clock.clone());
        let err = coord
            .swap(
                "fwd",
                vec![Arc::new(ev.clone())],
                &v1,
                &0u32,
                |_| 100u32,
                Some(10),
                |bias| {
                    // A slow warm-up inside the rebind blows the budget.
                    clock.advance(5_000);
                    rebind_to_v2(&ev, &owner_id, &v1, bias)
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SwapError::TimeBoundExceeded {
                bound: 10,
                elapsed: 5_000
            }
        ));
        // The undo restored v1 before resume.
        assert_eq!(ev.raise(1), Ok(2));
        assert_eq!(coord.stats().rolled_back, 1);
    }

    #[test]
    fn injected_delay_charges_the_bound_before_rebind() {
        let (clock, _d, ev, owner_id, v1) = rig();
        let coord = SwapCoordinator::new(clock);
        let plan = FaultPlan::new(3);
        plan.configure(
            SITE_SWAP,
            SiteConfig {
                delay_every: 1,
                delay_ns: 7_500,
                ..SiteConfig::default()
            },
        );
        coord.set_fault_hook(&plan);
        let err = coord
            .swap(
                "fwd",
                vec![Arc::new(ev.clone())],
                &v1,
                &0u32,
                |_| 100u32,
                Some(1_000),
                |bias| rebind_to_v2(&ev, &owner_id, &v1, bias),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SwapError::TimeBoundExceeded {
                bound: 1_000,
                elapsed: 7_500
            }
        ));
        assert_eq!(ev.raise(1), Ok(2));
    }

    #[test]
    fn supervisor_defers_fallback_to_pump() {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let d = Dispatcher::new(clock, profile);
        let containment = Containment::install(&d, None, ContainmentPolicy::default());
        let sup = SwapSupervisor::install(&containment).unwrap();
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        sup.register_fallback("bad-ext", move || {
            ran2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test counter.
        });

        containment
            .domain_fault_event()
            .raise(DomainFaultInfo {
                domain: "bad-ext".to_string(),
                trips: 1,
                at: 0,
                quarantined: false,
            })
            .unwrap();
        containment
            .domain_fault_event()
            .raise(DomainFaultInfo {
                domain: "no-fallback".to_string(),
                trips: 1,
                at: 0,
                quarantined: false,
            })
            .unwrap();
        // Nothing runs inside the raise; the fallback waits for the pump.
        assert_eq!(ran.load(Ordering::Relaxed), 0); // ordering: Relaxed — test counter.
        assert_eq!(sup.pending(), vec!["bad-ext", "no-fallback"]);
        assert_eq!(sup.pump(), 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1); // ordering: Relaxed — test counter.
        assert!(sup.pending().is_empty());
        assert_eq!(sup.pump(), 0);
    }
}
