//! Property tests for the executor: DESIGN.md's determinism claim — the
//! same workload produces bit-identical schedules, virtual times and CPU
//! accounting on every run — plus scheduling-invariant checks.

use proptest::prelude::*;
use spin_check::sync::Mutex;
use spin_sal::SimBoard;
use spin_sched::{Executor, IdleOutcome, StrandCtx};
use std::sync::Arc;

/// A reproducible description of a strand's behaviour.
#[derive(Debug, Clone)]
struct StrandSpec {
    priority: u8,
    /// (work ns, yield?) slices.
    slices: Vec<(u32, bool)>,
}

fn spec_strategy() -> impl Strategy<Value = StrandSpec> {
    (
        1u8..16,
        prop::collection::vec((1_000u32..200_000, any::<bool>()), 1..6),
    )
        .prop_map(|(priority, slices)| StrandSpec { priority, slices })
}

/// Runs a workload and returns its observable trace.
fn run(specs: &[StrandSpec], quantum: u64) -> (Vec<String>, u64, u64, Vec<u64>) {
    let board = SimBoard::new();
    let exec = Executor::new(
        board.clock.clone(),
        board.timers.clone(),
        board.profile.clone(),
    );
    exec.set_quantum(quantum);
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ids = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let log = log.clone();
        let slices = spec.slices.clone();
        let id = exec.spawn_on(
            spin_sal::HostId(0),
            &format!("s{i}"),
            spec.priority,
            move |ctx: &StrandCtx| {
                for (work, do_yield) in slices {
                    ctx.work(work as u64);
                    log.lock().push(format!("s{i}:{work}"));
                    if do_yield {
                        ctx.yield_now();
                    }
                    ctx.preempt_point();
                }
            },
        );
        ids.push(id);
    }
    let outcome = exec.run_until_idle();
    assert_eq!(outcome, IdleOutcome::AllComplete);
    let cpu: Vec<u64> = ids.iter().map(|&id| exec.cpu_time(id)).collect();
    let trace = log.lock().clone();
    (trace, exec.clock().now(), exec.switches(), cpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical inputs produce identical traces, end times, switch
    /// counts and per-strand CPU accounting.
    #[test]
    fn runs_are_bit_identical(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        quantum in 10_000u64..500_000,
    ) {
        let a = run(&specs, quantum);
        let b = run(&specs, quantum);
        prop_assert_eq!(a, b);
    }

    /// CPU accounting conservation: the sum of per-strand CPU equals each
    /// strand's declared work plus its scheduling charges — and never
    /// exceeds the final virtual time.
    #[test]
    fn cpu_accounting_is_conserved(
        specs in prop::collection::vec(spec_strategy(), 1..6),
    ) {
        let (_, end_time, _, cpu) = run(&specs, 1_000_000);
        let declared: u64 = specs
            .iter()
            .flat_map(|s| s.slices.iter().map(|&(w, _)| w as u64))
            .sum();
        let total: u64 = cpu.iter().sum();
        prop_assert!(total >= declared, "accounted {total} < declared {declared}");
        prop_assert!(total <= end_time, "accounted {total} > elapsed {end_time}");
    }

    /// Strict priority: with no yields and a huge quantum, a strictly
    /// higher-priority strand finishes all its work before a lower one
    /// starts.
    #[test]
    fn higher_priority_runs_first_under_no_preemption(
        hi_work in 1_000u32..50_000,
        lo_work in 1_000u32..50_000,
    ) {
        let specs = vec![
            StrandSpec { priority: 1, slices: vec![(lo_work, false)] },
            StrandSpec { priority: 15, slices: vec![(hi_work, false)] },
        ];
        let (trace, _, _, _) = run(&specs, u64::MAX / 4);
        // s1 (priority 15) must appear before s0 (priority 1).
        let hi_pos = trace.iter().position(|e| e.starts_with("s1:"));
        let lo_pos = trace.iter().position(|e| e.starts_with("s0:"));
        prop_assert!(hi_pos < lo_pos, "trace: {trace:?}");
    }
}
