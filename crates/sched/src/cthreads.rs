//! C-Threads for user-level applications: layered vs. integrated.
//!
//! Table 3 measures "two implementations of C-Threads on SPIN. The first
//! implementation, labeled 'layered,' is implemented as a user-level
//! library layered on a set of kernel extensions that implement Mach's
//! kernel thread interface. The second implementation, labeled
//! 'integrated,' is structured as a kernel extension that exports the
//! C-Threads interface using system calls \[and\] uses SPIN's strand
//! interface" (§5.2).
//!
//! Both implementations here run user threads on strands; the difference
//! is the *path* each operation takes:
//!
//! * **integrated** — one system-call crossing per operation; the kernel
//!   extension manipulates strands directly;
//! * **layered** — the library keeps its own descriptors (an extra
//!   user-level setup cost) and composes each C-Threads operation from the
//!   Mach-kernel-thread-interface extension, costing *two* crossings for
//!   operations that both update library state and enter the kernel.
//!
//! The measured consequence (Table 3): integrated Fork-Join ≈ 111 µs vs
//! layered ≈ 262 µs; integrated Ping-Pong ≈ 85 µs vs layered ≈ 159 µs.

use crate::executor::{Executor, StrandCtx, StrandId};
use crate::sync::{KCondition, KMutex};
use spin_sal::Nanos;
use std::sync::Arc;

/// Which C-Threads structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CThreadsImpl {
    /// User library over a Mach-kernel-thread-interface extension.
    Layered,
    /// Kernel extension exporting C-Threads over strands.
    Integrated,
}

/// A user-level C-Threads package instance.
#[derive(Clone)]
pub struct CThreads {
    exec: Arc<Executor>,
    style: CThreadsImpl,
}

impl CThreads {
    /// Creates a package of the given structure.
    pub fn new(exec: Arc<Executor>, style: CThreadsImpl) -> Self {
        CThreads { exec, style }
    }

    /// The structure in use.
    pub fn style(&self) -> CThreadsImpl {
        self.style
    }

    /// One user→kernel→user crossing (the extension's system call).
    fn crossing(&self) -> Nanos {
        let p = self.exec.profile();
        p.trap_entry
            + p.event_raise_base
            + p.guard_eval
            + p.handler_invoke
            + p.inter_module_call
            + p.trap_exit
    }

    /// Charge the cost of one C-Threads operation reaching its
    /// implementation. Both structures pay user-level descriptor
    /// bookkeeping on top of the crossing; the layered library pays it
    /// twice (its own state plus the Mach-interface extension's).
    fn charge_op(&self) {
        let p = self.exec.profile();
        match self.style {
            CThreadsImpl::Integrated => {
                self.exec.clock().advance(self.crossing() + 15_000);
            }
            CThreadsImpl::Layered => {
                // Library bookkeeping, then through the Mach-interface
                // extension (a second dispatch inside the kernel), plus an
                // extra crossing for state the library must read back.
                self.exec
                    .clock()
                    .advance(2 * self.crossing() + p.user_thread_setup / 2 + 25_000);
            }
        }
    }

    /// `cthread_fork`: creates a user thread.
    pub fn fork(&self, name: &str, f: impl FnOnce(&StrandCtx) + Send + 'static) -> StrandId {
        let p = self.exec.profile();
        self.charge_op();
        // Both structures must build a user context (stack, descriptor);
        // the layered library builds its own descriptor *and* a kernel
        // thread underneath.
        match self.style {
            CThreadsImpl::Integrated => self.exec.clock().advance(p.user_thread_setup),
            CThreadsImpl::Layered => self.exec.clock().advance(2 * p.user_thread_setup),
        }
        self.exec.spawn(name, f)
    }

    /// `cthread_join`.
    pub fn join(&self, ctx: &StrandCtx, target: StrandId) {
        self.charge_op();
        ctx.join(target);
    }

    /// `cthread_yield`.
    pub fn yield_now(&self, ctx: &StrandCtx) {
        self.charge_op();
        ctx.yield_now();
    }

    /// Allocates a C-Threads mutex.
    pub fn mutex(&self) -> CMutex {
        CMutex {
            inner: KMutex::new(self.exec.clone()),
            pkg: self.clone(),
        }
    }

    /// Allocates a C-Threads condition.
    pub fn condition(&self) -> CCondition {
        CCondition {
            inner: KCondition::new(self.exec.clone()),
            pkg: self.clone(),
        }
    }
}

/// A `mutex_t`.
pub struct CMutex {
    inner: Arc<KMutex>,
    pkg: CThreads,
}

impl CMutex {
    /// `mutex_lock`. Uncontended locks stay in user space for both
    /// structures; contended ones take the package's kernel path.
    pub fn lock(&self, ctx: &StrandCtx) {
        if self.inner.is_locked() {
            self.pkg.charge_op();
        }
        self.inner.lock(ctx);
    }

    /// `mutex_unlock`.
    pub fn unlock(&self, ctx: &StrandCtx) {
        self.inner.unlock(ctx);
    }
}

/// A `condition_t`.
pub struct CCondition {
    inner: Arc<KCondition>,
    pkg: CThreads,
}

impl CCondition {
    /// `condition_wait`: always enters the kernel to block.
    pub fn wait(&self, ctx: &StrandCtx, mutex: &CMutex) {
        self.pkg.charge_op();
        self.inner.wait(ctx, &mutex.inner);
    }

    /// `condition_signal`: enters the kernel when a waiter must be woken.
    pub fn signal(&self, ctx: &StrandCtx) {
        if self.inner.waiter_count() > 0 {
            self.pkg.charge_op();
        }
        self.inner.signal(ctx);
    }
}

/// Measured Fork-Join time (one create/schedule/terminate/synchronize
/// cycle), in virtual nanoseconds — the Table 3 workload.
pub fn measure_fork_join(style: CThreadsImpl, exec: &Arc<Executor>) -> Nanos {
    let pkg = CThreads::new(exec.clone(), style);
    let result = Arc::new(spin_check::sync::Mutex::new(0u64));
    let r2 = result.clone();
    let clock = exec.clock().clone();
    exec.spawn("driver", move |ctx| {
        let t0 = clock.now();
        let child = pkg.fork("child", |_| {});
        pkg.join(ctx, child);
        *r2.lock() = clock.now() - t0;
    });
    exec.run_until_idle();
    let r = *result.lock();
    r
}

/// Measured Ping-Pong time (one mutual signal/block round trip), in
/// virtual nanoseconds per round — the Table 3 workload.
pub fn measure_ping_pong(style: CThreadsImpl, exec: &Arc<Executor>) -> Nanos {
    const ROUNDS: u64 = 32;
    let pkg = CThreads::new(exec.clone(), style);
    let m = Arc::new(pkg.mutex());
    let c = Arc::new(pkg.condition());
    let turn = Arc::new(spin_check::sync::Mutex::new(0u64));
    let elapsed = Arc::new(spin_check::sync::Mutex::new(0u64));
    let clock = exec.clock().clone();
    for i in 0..2u64 {
        let (pkg, m, c, turn) = (pkg.clone(), m.clone(), c.clone(), turn.clone());
        let (clock, elapsed) = (clock.clone(), elapsed.clone());
        pkg.clone()
            .fork(if i == 0 { "ping" } else { "pong" }, move |ctx| {
                let t0 = clock.now();
                for _ in 0..ROUNDS {
                    m.lock(ctx);
                    while *turn.lock() % 2 != i {
                        c.wait(ctx, &m);
                    }
                    *turn.lock() += 1;
                    c.signal(ctx);
                    m.unlock(ctx);
                }
                if i == 0 {
                    *elapsed.lock() = clock.now() - t0;
                }
            });
    }
    exec.run_until_idle();
    let total = *elapsed.lock();
    total / ROUNDS
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::SimBoard;

    fn exec() -> Arc<Executor> {
        let board = SimBoard::new();
        Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        )
    }

    #[test]
    fn integrated_fork_join_in_table_3_band() {
        let us = measure_fork_join(CThreadsImpl::Integrated, &exec()) as f64 / 1000.0;
        // Table 3: 111 µs for SPIN integrated user Fork-Join. The shape
        // constraint is an order of magnitude above kernel Fork-Join
        // (22 µs) and well under layered (262 µs).
        assert!((35.0..180.0).contains(&us), "integrated Fork-Join {us} µs");
    }

    #[test]
    fn layered_is_slower_than_integrated() {
        let int_fj = measure_fork_join(CThreadsImpl::Integrated, &exec());
        let lay_fj = measure_fork_join(CThreadsImpl::Layered, &exec());
        assert!(
            lay_fj > int_fj * 3 / 2,
            "layered ({lay_fj}) should cost well over integrated ({int_fj})"
        );
        let int_pp = measure_ping_pong(CThreadsImpl::Integrated, &exec());
        let lay_pp = measure_ping_pong(CThreadsImpl::Layered, &exec());
        assert!(
            lay_pp > int_pp,
            "layered ping-pong ({lay_pp}) should cost more than integrated ({int_pp})"
        );
    }

    #[test]
    fn user_threads_cost_more_than_kernel_threads() {
        // Table 3's vertical structure: user-level operations are an order
        // of magnitude above kernel-thread operations.
        let e = exec();
        let user = measure_ping_pong(CThreadsImpl::Integrated, &e);
        assert!(user as f64 / 1000.0 > 30.0, "user ping-pong {user} ns");
    }
}
