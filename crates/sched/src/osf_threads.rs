//! The DEC OSF/1 kernel-thread interface as a SPIN extension.
//!
//! "The interface supporting DEC OSF/1 kernel threads allows us to
//! incorporate the vendor's device drivers directly into the kernel"
//! (§4.2). The interface is the classic BSD `thread_sleep` /
//! `thread_wakeup` on a wait channel; here it is an extension implemented
//! directly on strands — "the implementations of these interfaces are built
//! directly from strands and not layered on top of others".

use crate::executor::{Executor, StrandCtx, StrandId};
use spin_check::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A wait channel (an opaque kernel address in OSF/1).
pub type WaitChannel = u64;

/// The OSF/1 kernel-thread compatibility package.
#[derive(Clone)]
pub struct OsfThreads {
    exec: Arc<Executor>,
    channels: Arc<Mutex<HashMap<WaitChannel, Vec<StrandId>>>>,
}

impl OsfThreads {
    /// Binds the package to an executor.
    pub fn new(exec: Arc<Executor>) -> Self {
        OsfThreads {
            exec,
            channels: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Creates a kernel thread (vendor drivers fork worker threads).
    pub fn kernel_thread(
        &self,
        name: &str,
        f: impl FnOnce(&StrandCtx) + Send + 'static,
    ) -> StrandId {
        self.exec.spawn(name, f)
    }

    /// `thread_sleep`: blocks the calling thread on `chan`.
    pub fn thread_sleep(&self, ctx: &StrandCtx, chan: WaitChannel) {
        self.channels.lock().entry(chan).or_default().push(ctx.id());
        ctx.block();
    }

    /// `thread_wakeup`: wakes every thread sleeping on `chan`. Returns how
    /// many were woken.
    pub fn thread_wakeup(&self, chan: WaitChannel) -> usize {
        let sleepers = self.channels.lock().remove(&chan).unwrap_or_default();
        let n = sleepers.len();
        for s in sleepers {
            self.exec.unblock(s);
        }
        n
    }

    /// `thread_wakeup_one`: wakes the first sleeper only.
    pub fn thread_wakeup_one(&self, chan: WaitChannel) -> bool {
        let woken = {
            let mut ch = self.channels.lock();
            match ch.get_mut(&chan) {
                Some(v) if !v.is_empty() => Some(v.remove(0)),
                _ => None,
            }
        };
        match woken {
            Some(s) => {
                self.exec.unblock(s);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::IdleOutcome;
    use spin_sal::SimBoard;

    fn pkg() -> OsfThreads {
        let board = SimBoard::new();
        OsfThreads::new(Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        ))
    }

    #[test]
    fn sleep_and_wakeup_round_trip() {
        let t = pkg();
        let log = Arc::new(Mutex::new(Vec::new()));
        const CHAN: WaitChannel = 0xC0FFEE;
        for i in 0..2 {
            let (t2, log) = (t.clone(), log.clone());
            t.kernel_thread(&format!("sleeper{i}"), move |ctx| {
                t2.thread_sleep(ctx, CHAN);
                log.lock().push(i);
            });
        }
        let t3 = t.clone();
        t.kernel_thread("waker", move |_| {
            assert_eq!(t3.thread_wakeup(CHAN), 2);
        });
        assert_eq!(t.exec.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn wakeup_one_wakes_in_fifo_order() {
        let t = pkg();
        let log = Arc::new(Mutex::new(Vec::new()));
        const CHAN: WaitChannel = 7;
        for i in 0..2 {
            let (t2, log) = (t.clone(), log.clone());
            t.kernel_thread(&format!("s{i}"), move |ctx| {
                t2.thread_sleep(ctx, CHAN);
                log.lock().push(i);
            });
        }
        let t3 = t.clone();
        t.kernel_thread("waker", move |ctx| {
            assert!(t3.thread_wakeup_one(CHAN));
            ctx.yield_now();
            assert!(t3.thread_wakeup_one(CHAN));
            assert!(!t3.thread_wakeup_one(CHAN));
        });
        assert_eq!(t.exec.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*log.lock(), vec![0, 1]);
    }

    #[test]
    fn wakeup_on_empty_channel_is_harmless() {
        let t = pkg();
        assert_eq!(t.thread_wakeup(123), 0);
    }
}
