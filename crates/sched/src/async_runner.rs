//! The real asynchronous-handler runner for the dispatcher.
//!
//! §3.2: "A handler may be asynchronous, which causes it to execute in a
//! separate thread from the raiser, isolating the raiser from handler
//! latency." The dispatcher in `spin-core` cannot depend on this crate, so
//! it exposes a pluggable runner; [`install_async_runner`] provides the
//! production one — each asynchronous invocation runs on a fresh kernel
//! strand.

use crate::executor::Executor;
use spin_check::sync::{AtomicU64, Ordering};
use spin_core::{AsyncInvocation, Dispatcher};
use std::sync::Arc;

/// Wires `dispatcher`'s asynchronous handler execution onto `exec`.
/// Returns a counter of dispatched asynchronous invocations.
///
/// An invocation carrying a `time_bound` constraint arms the strand's
/// virtual-time deadline before the handler starts: the executor's safe
/// points then unwind the handler with `DeadlineExceeded` once the bound
/// is consumed, and the dispatcher's containment wrapper (inside
/// `inv.run`) catches the unwind and counts the handler as aborted.
pub fn install_async_runner(exec: &Arc<Executor>, dispatcher: &Dispatcher) -> Arc<AtomicU64> {
    let count = Arc::new(AtomicU64::new(0));
    let c2 = count.clone();
    let exec = exec.clone();
    dispatcher.set_async_runner(Arc::new(move |inv: AsyncInvocation| {
        c2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        let clock = exec.clock().clone();
        exec.spawn("async-handler", move |ctx| {
            if let Some(bound) = inv.time_bound {
                ctx.set_deadline(clock.now().saturating_add(bound));
            }
            (inv.run)();
        });
    }));
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::Mutex;
    use spin_core::{Constraints, HandlerMode, Identity, InstallDecision};
    use spin_sal::SimBoard;

    #[test]
    fn async_handlers_run_on_their_own_strand_after_the_raise() {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let disp = spin_core::Dispatcher::new(board.clock.clone(), board.profile.clone());
        let dispatched = install_async_runner(&exec, &disp);

        let (ev, owner) = disp.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        owner
            .set_auth(|_| InstallDecision::Allow {
                owner_guard: None,
                constraints: Some(Constraints {
                    mode: HandlerMode::Asynchronous,
                    time_bound: None,
                }),
            })
            .unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        ev.install(Identity::extension("monitor"), move |_| {
            l2.lock().push("async ran");
            9
        })
        .unwrap();

        let l3 = log.clone();
        exec.spawn("raiser", move |_ctx| {
            // The raise returns the primary's result immediately; the
            // async handler has NOT run yet (it needs a schedule slice).
            assert_eq!(ev.raise(()), Ok(1));
            l3.lock().push("raise returned");
        });
        exec.run_until_idle();
        assert_eq!(
            *log.lock(),
            vec!["raise returned", "async ran"],
            "the raiser was isolated from the handler"
        );
        assert_eq!(dispatched.load(Ordering::Relaxed), 1); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn async_handlers_past_their_time_bound_are_aborted_mid_flight() {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let disp = spin_core::Dispatcher::new(board.clock.clone(), board.profile.clone());
        install_async_runner(&exec, &disp);
        let (ev, owner) = disp.define::<(), ()>("E", Identity::kernel("k"));
        owner.set_primary(|_| ()).unwrap();
        owner
            .set_auth(|_| InstallDecision::Allow {
                owner_guard: None,
                constraints: Some(Constraints {
                    mode: HandlerMode::Asynchronous,
                    time_bound: Some(2_000_000), // 2 ms budget
                }),
            })
            .unwrap();
        let progressed = Arc::new(AtomicU64::new(0));
        let p2 = progressed.clone();
        let e2 = exec.clone();
        ev.install(Identity::extension("runaway"), move |_| {
            let ctx = e2.current_ctx().expect("async handlers run on strands");
            for _ in 0..1000 {
                ctx.work(1_000_000); // 1 ms per round: the deadline unwinds it
                p2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            }
        })
        .unwrap();
        let ev2 = ev.clone();
        exec.spawn("raiser", move |_| {
            let _ = ev2.raise(());
        });
        assert_eq!(
            exec.run_until_idle(),
            crate::executor::IdleOutcome::AllComplete
        );
        let stats = disp.stats(&ev).unwrap();
        assert_eq!(stats.handlers_aborted, 1, "the runaway handler was cut off");
        assert_eq!(
            stats.handler_faults, 0,
            "a deadline unwind is an abort, not a fault"
        );
        assert!(
            progressed.load(Ordering::Relaxed) < 1000, // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            "the handler was stopped mid-flight, not after it returned"
        );
    }

    #[test]
    fn a_slow_async_handler_does_not_delay_the_raiser() {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let disp = spin_core::Dispatcher::new(board.clock.clone(), board.profile.clone());
        install_async_runner(&exec, &disp);
        let (ev, owner) = disp.define::<(), ()>("E", Identity::kernel("k"));
        owner.set_primary(|_| ()).unwrap();
        owner
            .set_auth(|_| InstallDecision::Allow {
                owner_guard: None,
                constraints: Some(Constraints {
                    mode: HandlerMode::Asynchronous,
                    time_bound: None,
                }),
            })
            .unwrap();
        let clock = board.clock.clone();
        let c2 = clock.clone();
        ev.install(Identity::extension("slow-monitor"), move |_| {
            c2.advance(50_000_000); // 50 ms of monitor work
        })
        .unwrap();
        let raise_cost = Arc::new(Mutex::new(0u64));
        let r2 = raise_cost.clone();
        exec.spawn("raiser", move |_| {
            let t0 = clock.now();
            ev.raise(()).unwrap();
            *r2.lock() = clock.now() - t0;
        });
        exec.run_until_idle();
        assert!(
            *raise_cost.lock() < 1_000_000,
            "raise cost {} must not include the 50 ms handler",
            raise_cost.lock()
        );
    }
}
