//! The deterministic strand executor.
//!
//! Every *strand* (§4.2: "a strand is similar to a thread ... \[but\] has no
//! minimal or requisite kernel state other than a name") is backed by a
//! real OS thread, but **exactly one simulated context runs at a time**: a
//! baton passes between the coordinator (the thread that called
//! [`Executor::run_until_idle`]) and the running strand. All scheduling
//! decisions are made by a [`SchedulerPolicy`] under the executor lock, so
//! runs are reproducible regardless of OS scheduling.
//!
//! The coordinator pumps the simulation between strand slices: it fires due
//! timers, dispatches device interrupts, and — when no strand is runnable —
//! skips the virtual clock forward to the next timer deadline.
//!
//! Preemption reproduces the paper's "the kernel is preemptive, ensuring
//! that a handler cannot take over the processor": the clock's advance hook
//! charges the running strand's quantum, and the strand is descheduled at
//! its next *safe point* ([`StrandCtx::preempt_point`], and every blocking
//! or yielding operation). Safe-point preemption keeps the simulation
//! deadlock-free while preserving quantum semantics on the virtual
//! timeline.

use spin_check::sync::{AtomicBool, AtomicU64, Ordering};
use spin_check::sync::{Condvar, Mutex};
use spin_core::DeadlineExceeded;
use spin_fault::{FaultHook, Injection};
use spin_obs::{ObsHook, TraceKind};
use spin_sal::{Clock, HostId, IrqController, MachineProfile, Nanos, TimerQueue};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Identifier of a strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrandId(pub u64);

/// Why [`Executor::run_until_idle`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdleOutcome {
    /// Every strand ran to completion.
    AllComplete,
    /// Runnable work remains but the deadline was reached.
    DeadlineReached,
    /// No strand is runnable, no timer is pending, yet strands are blocked.
    Deadlock { blocked: Vec<String> },
}

/// A pluggable scheduling policy: the paper's *global scheduler*.
///
/// "While the global scheduling policy is replaceable, it cannot be
/// replaced by an arbitrary application" (§4.2) — replacing it through
/// [`Executor::set_policy`] is a trusted operation.
pub trait SchedulerPolicy: Send {
    /// Makes a strand runnable.
    fn enqueue(&mut self, strand: StrandId, priority: u8);
    /// Picks the next strand to run.
    fn dequeue(&mut self) -> Option<StrandId>;
    /// Removes a strand wherever it is queued.
    fn remove(&mut self, strand: StrandId);
    /// Policy name for diagnostics.
    fn name(&self) -> &'static str;
}

/// The default global scheduler: "a round-robin, preemptive, priority
/// policy" (§4.2). Higher priority runs first; equal priorities round-robin
/// in FIFO order.
#[derive(Default)]
pub struct RoundRobinPriority {
    queues: std::collections::BTreeMap<u8, std::collections::VecDeque<StrandId>>,
}

impl SchedulerPolicy for RoundRobinPriority {
    fn enqueue(&mut self, strand: StrandId, priority: u8) {
        self.queues.entry(priority).or_default().push_back(strand);
    }
    fn dequeue(&mut self) -> Option<StrandId> {
        // Highest priority band first.
        let (&prio, _) = self.queues.iter().rev().find(|(_, q)| !q.is_empty())?;
        let q = self.queues.get_mut(&prio).expect("found above");
        q.pop_front()
    }
    fn remove(&mut self, strand: StrandId) {
        for q in self.queues.values_mut() {
            q.retain(|&s| s != strand);
        }
    }
    fn name(&self) -> &'static str {
        "round-robin preemptive priority"
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Ready,
    Running,
    Blocked,
    Done,
}

struct Baton {
    go: Mutex<bool>,
    cv: Condvar,
}

impl Baton {
    fn new() -> Arc<Self> {
        Arc::new(Baton {
            go: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
    fn wait(&self) {
        let mut go = self.go.lock();
        while !*go {
            self.cv.wait(&mut go);
        }
        *go = false;
    }
    fn signal(&self) {
        *self.go.lock() = true;
        self.cv.notify_one();
    }
}

struct StrandInfo {
    name: String,
    priority: u8,
    host: HostId,
    state: RunState,
    baton: Arc<Baton>,
    cpu_ns: Nanos,
    joiners: Vec<StrandId>,
    panicked: bool,
    /// Daemons (device threads, protocol threads) may stay blocked forever
    /// without counting as deadlock or preventing completion.
    daemon: bool,
    /// Virtual-time deadline enforced at safe points (`u64::MAX` = none).
    /// Shared with the strand's [`StrandCtx`] so each check is one atomic
    /// load; past the deadline the strand unwinds with [`DeadlineExceeded`].
    deadline: Arc<AtomicU64>,
}

struct ExecState {
    strands: BTreeMap<StrandId, StrandInfo>,
    policy: Box<dyn SchedulerPolicy>,
    current: Option<StrandId>,
    host_busy: BTreeMap<HostId, Nanos>,
    switches: u64,
}

/// Hooks raised around scheduling transitions so stacked schedulers and
/// thread packages can observe them (wired to dispatcher events by
/// [`events::StrandEvents`](crate::events::StrandEvents)).
type TransitionHook = Box<dyn Fn(StrandId) + Send + Sync>;

/// Quota demotion hook, consulted at every ready-queue enqueue: given the
/// strand's name, its base priority, and the current virtual instant, it
/// returns the priority to enqueue at. The quota ledger wires this to
/// demote strands of a domain that exhausted its window virtual-time
/// budget to the spec's deferred lane — the strand still runs (demote,
/// don't starve), just behind well-behaved work. Must be a pure function
/// of virtual-time state so worker count cannot change outcomes.
pub type SchedQuotaHook = Arc<dyn Fn(&str, u8, Nanos) -> u8 + Send + Sync>;

#[derive(Default)]
struct Hooks {
    block: Option<TransitionHook>,
    unblock: Option<TransitionHook>,
    checkpoint: Option<TransitionHook>,
    resume: Option<TransitionHook>,
}

/// The executor.
pub struct Executor {
    clock: Clock,
    timers: TimerQueue,
    profile: Arc<MachineProfile>,
    state: Mutex<ExecState>,
    irqs: Mutex<Vec<IrqController>>,
    main_baton: Arc<Baton>,
    next_id: AtomicU64,
    quantum: AtomicU64,
    quantum_used: AtomicU64,
    preempt_pending: AtomicBool,
    hooks: Mutex<Hooks>,
    /// Observability hook (scheduler domain): absent until wired, and the
    /// per-charge/per-switch fast path is then a single atomic load.
    obs: spin_core::hooks::HookSlot<ObsHook>,
    /// Fault-injection hook (`sched.executor` site): absent until wired;
    /// drawn once at each strand body's entry, inside the containment
    /// `catch_unwind`, so an injected panic never kills the process.
    faults: spin_core::hooks::HookSlot<FaultHook>,
    /// Quota demotion hook: absent until wired, and every enqueue then
    /// pays exactly one relaxed load (the unarmed cost-model invariant).
    quota: spin_core::hooks::HookSlot<SchedQuotaHook>,
}

impl Executor {
    /// Creates an executor on the shared timeline.
    pub fn new(clock: Clock, timers: TimerQueue, profile: Arc<MachineProfile>) -> Arc<Executor> {
        let exec = Arc::new(Executor {
            clock: clock.clone(),
            timers,
            profile,
            state: Mutex::new(ExecState {
                strands: BTreeMap::new(),
                policy: Box::new(RoundRobinPriority::default()),
                current: None,
                host_busy: BTreeMap::new(),
                switches: 0,
            }),
            irqs: Mutex::new(Vec::new()),
            main_baton: Baton::new(),
            next_id: AtomicU64::new(1),
            quantum: AtomicU64::new(1_000_000), // 1 ms virtual quantum
            quantum_used: AtomicU64::new(0),
            preempt_pending: AtomicBool::new(false),
            hooks: Mutex::new(Hooks::default()),
            obs: spin_core::hooks::HookSlot::new(),
            faults: spin_core::hooks::HookSlot::new(),
            quota: spin_core::hooks::HookSlot::new(),
        });
        // Charge the running strand and arm preemption at quantum expiry.
        // Subscribes alongside other clock observers (the obs accounting
        // layer) rather than replacing them.
        let weak = Arc::downgrade(&exec);
        clock.add_advance_hook(Box::new(move |ns| {
            if let Some(exec) = weak.upgrade() {
                exec.on_advance(ns);
            }
        }));
        exec
    }

    /// Convenience: an executor for a single simulated host.
    pub fn for_host(host: &spin_sal::Host) -> Arc<Executor> {
        let exec = Executor::new(
            host.clock.clone(),
            host.timers.clone(),
            host.profile.clone(),
        );
        exec.add_irq_controller(host.irqs.clone());
        exec
    }

    /// Registers a host's interrupt controller for pumping.
    pub fn add_irq_controller(&self, irqs: IrqController) {
        self.irqs.lock().push(irqs);
    }

    /// Replaces the global scheduling policy (trusted operation).
    pub fn set_policy(&self, policy: Box<dyn SchedulerPolicy>) {
        let mut st = self.state.lock();
        // Re-enqueue currently ready strands into the new policy.
        let ready: Vec<(StrandId, u8)> = {
            let mut v = Vec::new();
            let mut old = std::mem::replace(&mut st.policy, policy);
            while let Some(id) = old.dequeue() {
                if let Some(info) = st.strands.get(&id) {
                    v.push((id, info.priority));
                }
            }
            v
        };
        for (id, prio) in ready {
            st.policy.enqueue(id, prio);
        }
    }

    /// Sets the preemption quantum (virtual nanoseconds).
    pub fn set_quantum(&self, ns: Nanos) {
        self.quantum.store(ns, Ordering::Relaxed); // ordering: Relaxed — consulted by the executor thread at the next charge.
    }

    /// Installs transition hooks (used by `events` to raise dispatcher
    /// events on Block/Unblock/Checkpoint/Resume).
    pub(crate) fn set_hooks(
        &self,
        block: TransitionHook,
        unblock: TransitionHook,
        checkpoint: TransitionHook,
        resume: TransitionHook,
    ) {
        let mut h = self.hooks.lock();
        h.block = Some(block);
        h.unblock = Some(unblock);
        h.checkpoint = Some(checkpoint);
        h.resume = Some(resume);
    }

    /// Wires the observability subsystem: virtual CPU charges and context
    /// switches are accounted to the scheduler domain. One-shot; charges
    /// zero virtual time.
    pub fn set_obs(&self, hook: ObsHook) {
        let _ = self.obs.set(hook);
    }

    /// Wires the deterministic fault-injection plan's `sched.executor`
    /// site. One-shot; with the plan disabled the per-spawn cost is a
    /// single relaxed atomic load.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        let _ = self.faults.set(hook);
    }

    /// Wires the quota demotion hook (see [`SchedQuotaHook`]). One-shot;
    /// charges zero virtual time — demotion is a pure enqueue-time
    /// priority rewrite, so the virtual timeline is untouched and the
    /// unarmed path stays byte-identical.
    pub fn set_quota_hook(&self, hook: SchedQuotaHook) {
        let _ = self.quota.set(hook);
    }

    /// The priority a strand is enqueued at: its base priority, unless the
    /// quota hook demotes it at the current virtual instant.
    fn effective_priority(&self, name: &str, base: u8) -> u8 {
        match self.quota.get() {
            Some(hook) => hook(name, base, self.clock.now()),
            None => base,
        }
    }

    fn on_advance(&self, ns: Nanos) {
        if let Some(obs) = self.obs.get() {
            obs.counters.cpu_ns.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        let mut st = self.state.lock();
        if let Some(cur) = st.current {
            let host = st.strands.get(&cur).map(|i| i.host);
            if let Some(info) = st.strands.get_mut(&cur) {
                info.cpu_ns += ns;
            }
            if let Some(h) = host {
                *st.host_busy.entry(h).or_insert(0) += ns;
            }
            let used = self.quantum_used.fetch_add(ns, Ordering::Relaxed) + ns; // ordering: Relaxed — charged on the executor thread; atomic only for &self.
            if used > self.quantum.load(Ordering::Relaxed) {
                // ordering: Relaxed — charged on the executor thread; atomic only for &self.
                self.preempt_pending.store(true, Ordering::Relaxed); // ordering: Relaxed — consumed by the same thread at the next safepoint.
            }
        }
    }

    /// Spawns a strand on host 0 at priority 8.
    pub fn spawn(
        self: &Arc<Self>,
        name: &str,
        f: impl FnOnce(&StrandCtx) + Send + 'static,
    ) -> StrandId {
        self.spawn_on(HostId(0), name, 8, f)
    }

    /// Spawns a strand on a host at a priority.
    pub fn spawn_on(
        self: &Arc<Self>,
        host: HostId,
        name: &str,
        priority: u8,
        f: impl FnOnce(&StrandCtx) + Send + 'static,
    ) -> StrandId {
        self.clock.advance(self.profile.thread_create);
        let id = StrandId(self.next_id.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let baton = Baton::new();
        let deadline = Arc::new(AtomicU64::new(u64::MAX));
        {
            let mut st = self.state.lock();
            st.strands.insert(
                id,
                StrandInfo {
                    name: name.to_string(),
                    priority,
                    host,
                    state: RunState::Ready,
                    baton: baton.clone(),
                    cpu_ns: 0,
                    joiners: Vec::new(),
                    panicked: false,
                    daemon: false,
                    deadline: deadline.clone(),
                },
            );
            let prio = self.effective_priority(name, priority);
            st.policy.enqueue(id, prio);
        }
        let exec = self.clone();
        let thread_name = format!("strand-{}", name);
        std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                baton.wait(); // wait to be scheduled the first time
                let ctx = StrandCtx {
                    exec: exec.clone(),
                    id,
                    deadline,
                };
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // The sched.executor injection site: drawn while the
                    // strand is current, inside containment, so an injected
                    // panic marks this strand panicked without taking down
                    // the simulation.
                    if let Some(h) = exec.faults.get() {
                        match h.draw() {
                            Some(Injection::Panic) => h.fire_panic(),
                            Some(Injection::Delay(ns)) => exec.clock.advance(ns),
                            Some(Injection::Fail) | None => {}
                        }
                    }
                    f(&ctx)
                }));
                exec.finish_current(result.is_err());
            })
            .expect("spawn strand thread");
        id
    }

    /// Strand termination: wake joiners, return control to the coordinator.
    fn finish_current(&self, panicked: bool) {
        {
            let mut st = self.state.lock();
            let cur = st.current.expect("a finishing strand was current");
            let joiners = {
                let info = st.strands.get_mut(&cur).expect("current exists");
                info.state = RunState::Done;
                info.panicked = panicked;
                std::mem::take(&mut info.joiners)
            };
            for j in joiners {
                self.make_ready(&mut st, j);
            }
            st.current = None;
        }
        self.main_baton.signal();
        // Thread exits; the OS thread is never reused.
    }

    fn make_ready(&self, st: &mut ExecState, id: StrandId) {
        if let Some(info) = st.strands.get_mut(&id) {
            // Already-Ready strands stay queued; anything else (Running,
            // Finished) is not resurrectable here.
            if info.state == RunState::Blocked {
                info.state = RunState::Ready;
                let prio = self.effective_priority(&info.name, info.priority);
                st.policy.enqueue(id, prio);
            }
        }
    }

    /// Makes a blocked strand runnable. Safe from any context, including
    /// interrupt handlers and timer callbacks. Raises the Unblock hook.
    pub fn unblock(&self, id: StrandId) {
        if let Some(h) = self.hooks.lock().unblock.as_ref() {
            h(id);
        }
        self.clock.advance(self.profile.sync_op);
        let mut st = self.state.lock();
        self.make_ready(&mut st, id);
    }

    /// Returns control to the coordinator; the calling strand keeps `state`.
    fn switch_out(&self, new_state: RunState) {
        let my_baton = {
            let mut st = self.state.lock();
            let cur = st.current.expect("switch_out from a running strand");
            let info = st.strands.get_mut(&cur).expect("current exists");
            info.state = new_state;
            let baton = info.baton.clone();
            if new_state == RunState::Ready {
                let prio = self.effective_priority(&info.name, info.priority);
                st.policy.enqueue(cur, prio);
            }
            st.current = None;
            baton
        };
        self.main_baton.signal();
        my_baton.wait();
    }

    /// Blocks the calling strand until [`Executor::unblock`]. Raises the
    /// Block hook ("a disk driver can direct a scheduler to block the
    /// current strand during an I/O operation").
    fn block_current(&self) {
        let cur = self
            .state
            .lock()
            .current
            .expect("block from a running strand");
        if let Some(h) = self.hooks.lock().block.as_ref() {
            h(cur);
        }
        self.clock.advance(self.profile.sync_op);
        self.switch_out(RunState::Blocked);
    }

    fn yield_current(&self) {
        self.switch_out(RunState::Ready);
    }

    /// Runs the simulation until every strand completes, a deadline is hit,
    /// or the system deadlocks. Must be called from outside any strand.
    pub fn run_until_idle(&self) -> IdleOutcome {
        self.run_until(Nanos::MAX)
    }

    /// Like [`Executor::run_until_idle`] with a virtual-time deadline.
    pub fn run_until(&self, deadline: Nanos) -> IdleOutcome {
        loop {
            if self.clock.now() >= deadline {
                return IdleOutcome::DeadlineReached;
            }
            // Pump completions and interrupts first: they may unblock work.
            self.timers.fire_due(self.clock.now());
            for irqs in self.irqs.lock().iter() {
                irqs.dispatch_pending();
            }

            let next = {
                let mut st = self.state.lock();
                loop {
                    match st.policy.dequeue() {
                        Some(id)
                            if st.strands.get(&id).map(|i| i.state) == Some(RunState::Ready) =>
                        {
                            break Some(id)
                        }
                        Some(_) => continue, // stale queue entry
                        None => break None,
                    }
                }
            };

            match next {
                Some(id) => {
                    self.clock
                        .advance(self.profile.sched_decision + self.profile.context_switch);
                    if let Some(h) = self.hooks.lock().resume.as_ref() {
                        h(id);
                    }
                    self.quantum_used.store(0, Ordering::Relaxed); // ordering: Relaxed — quantum bookkeeping on the executor thread.
                    self.preempt_pending.store(false, Ordering::Relaxed); // ordering: Relaxed — quantum bookkeeping on the executor thread.
                    if let Some(obs) = self.obs.get() {
                        obs.counters
                            .context_switches
                            .fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                        obs.trace(TraceKind::ContextSwitch, id.0, 0);
                    }
                    let baton = {
                        let mut st = self.state.lock();
                        st.switches += 1;
                        st.current = Some(id);
                        let info = st.strands.get_mut(&id).expect("dequeued strand exists");
                        info.state = RunState::Running;
                        info.baton.clone()
                    };
                    baton.signal();
                    self.main_baton.wait();
                    if let Some(h) = self.hooks.lock().checkpoint.as_ref() {
                        h(id);
                    }
                }
                None => {
                    // Idle: advance to the next timer, or stop.
                    match self.timers.next_deadline() {
                        Some(t) if t >= deadline => {
                            self.clock.skip_to(deadline);
                            return IdleOutcome::DeadlineReached;
                        }
                        Some(t) => {
                            self.clock.skip_to(t.max(self.clock.now()));
                        }
                        None => {
                            let st = self.state.lock();
                            let blocked: Vec<String> = st
                                .strands
                                .values()
                                .filter(|i| i.state == RunState::Blocked && !i.daemon)
                                .map(|i| i.name.clone())
                                .collect();
                            return if blocked.is_empty() {
                                IdleOutcome::AllComplete
                            } else {
                                IdleOutcome::Deadlock { blocked }
                            };
                        }
                    }
                }
            }
        }
    }

    /// The earliest virtual time at which this executor has something to
    /// do: *now* if a strand is runnable or an interrupt is pending,
    /// otherwise the next timer deadline (clamped to now — a stale due
    /// timer is actionable immediately, not in the past). `None` means
    /// fully idle. This is a shard's event horizon in the conservative-PDES
    /// barrier (`Multicore`).
    pub fn next_event_time(&self) -> Option<Nanos> {
        let now = self.clock.now();
        let has_ready = {
            let st = self.state.lock();
            st.strands.values().any(|i| i.state == RunState::Ready)
        };
        if has_ready || self.irqs.lock().iter().any(|i| i.has_pending()) {
            return Some(now);
        }
        self.timers.next_deadline().map(|t| t.max(now))
    }

    /// Names of blocked non-daemon strands (sorted). A shard that is idle
    /// with a non-empty list is deadlocked *locally*; whether that is a
    /// system deadlock is decided by the multicore barrier, which also sees
    /// in-flight cross-shard mail.
    pub fn blocked_strands(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut v: Vec<String> = st
            .strands
            .values()
            .filter(|i| i.state == RunState::Blocked && !i.daemon)
            .map(|i| i.name.clone())
            .collect();
        v.sort();
        v
    }

    /// Marks a strand as a daemon: it may remain blocked forever without
    /// being reported as deadlocked (device and protocol service threads).
    pub fn set_daemon(&self, id: StrandId) {
        if let Some(info) = self.state.lock().strands.get_mut(&id) {
            info.daemon = true;
        }
    }

    /// Whether a strand has finished.
    pub fn is_done(&self, id: StrandId) -> bool {
        self.state
            .lock()
            .strands
            .get(&id)
            .map(|i| i.state == RunState::Done)
            .unwrap_or(false)
    }

    /// Whether a strand panicked.
    pub fn panicked(&self, id: StrandId) -> bool {
        self.state
            .lock()
            .strands
            .get(&id)
            .map(|i| i.panicked)
            .unwrap_or(false)
    }

    /// Virtual CPU time consumed by a strand.
    pub fn cpu_time(&self, id: StrandId) -> Nanos {
        self.state
            .lock()
            .strands
            .get(&id)
            .map(|i| i.cpu_ns)
            .unwrap_or(0)
    }

    /// Virtual CPU time consumed on a host (the Figure 6 utilization
    /// numerator).
    pub fn host_busy(&self, host: HostId) -> Nanos {
        self.state.lock().host_busy.get(&host).copied().unwrap_or(0)
    }

    /// Number of context switches performed.
    pub fn switches(&self) -> u64 {
        self.state.lock().switches
    }

    /// The executor's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The executor's machine profile.
    pub fn profile(&self) -> &Arc<MachineProfile> {
        &self.profile
    }

    /// The executor's timer queue.
    pub fn timers(&self) -> &TimerQueue {
        &self.timers
    }

    /// The currently running strand, if called from strand context.
    pub fn current(&self) -> Option<StrandId> {
        self.state.lock().current
    }

    /// A [`StrandCtx`] for the currently running strand. Used by trusted
    /// code (fault handlers, interrupt bottom halves) that must block the
    /// strand it happens to be running on — e.g. a demand pager waiting
    /// for disk I/O inside a `Translation.PageNotPresent` handler.
    pub fn current_ctx(self: &Arc<Self>) -> Option<StrandCtx> {
        let st = self.state.lock();
        let id = st.current?;
        let deadline = st.strands.get(&id)?.deadline.clone();
        Some(StrandCtx {
            exec: self.clone(),
            id,
            deadline,
        })
    }
}

/// Capability handed to a strand body.
#[derive(Clone)]
pub struct StrandCtx {
    exec: Arc<Executor>,
    id: StrandId,
    deadline: Arc<AtomicU64>,
}

impl StrandCtx {
    /// This strand's id.
    pub fn id(&self) -> StrandId {
        self.id
    }

    /// The executor.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// Arms a virtual-time deadline: once the clock passes `at`, the next
    /// safe point this strand reaches unwinds with [`DeadlineExceeded`].
    /// This is how the dispatcher's `time_bound` constraint is enforced
    /// *during* an asynchronous handler rather than only after it returns;
    /// the dispatcher's containment wrapper catches the unwind and counts
    /// it as an abort, so the strand itself is not marked panicked.
    pub fn set_deadline(&self, at: Nanos) {
        self.deadline.store(at, Ordering::Relaxed); // ordering: Relaxed — read back on the executor thread at safepoints.
    }

    /// Disarms the deadline.
    pub fn clear_deadline(&self) {
        self.deadline.store(u64::MAX, Ordering::Relaxed); // ordering: Relaxed — read back on the executor thread at safepoints.
    }

    /// Unwinds with [`DeadlineExceeded`] if the armed deadline has passed.
    fn check_deadline(&self) {
        let d = self.deadline.load(Ordering::Relaxed); // ordering: Relaxed — safepoint check on the executor thread.
        if d != u64::MAX && self.exec.clock.now() > d {
            std::panic::panic_any(DeadlineExceeded { deadline: d });
        }
    }

    /// Voluntarily yields the processor (stays runnable).
    pub fn yield_now(&self) {
        self.exec.yield_current();
        self.check_deadline();
    }

    /// Blocks until another context unblocks this strand.
    pub fn block(&self) {
        self.exec.block_current();
        self.check_deadline();
    }

    /// Sleeps for `ns` of virtual time.
    pub fn sleep(&self, ns: Nanos) {
        let exec = self.exec.clone();
        let id = self.id;
        let at = self.exec.clock.now() + ns;
        self.exec.timers.schedule_at(at, move |_| exec.unblock(id));
        self.exec.block_current();
        self.check_deadline();
    }

    /// A preemption safe point: deschedules the strand if its quantum
    /// expired.
    pub fn preempt_point(&self) {
        // ordering: Relaxed — set and consumed on the executor thread.
        if self.exec.preempt_pending.swap(false, Ordering::Relaxed) {
            self.exec.yield_current();
        }
        self.check_deadline();
    }

    /// Blocks until `target` completes.
    pub fn join(&self, target: StrandId) {
        {
            let mut st = self.exec.state.lock();
            match st.strands.get_mut(&target) {
                Some(info) if info.state != RunState::Done => info.joiners.push(self.id),
                _ => return, // already done or never existed
            }
        }
        self.exec.block_current();
        self.check_deadline();
    }

    /// Charges simulated CPU work to this strand.
    pub fn work(&self, ns: Nanos) {
        self.exec.clock.advance(ns);
        self.check_deadline();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::SimBoard;

    fn exec() -> Arc<Executor> {
        let board = SimBoard::new();
        Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        )
    }

    #[test]
    fn strands_run_to_completion() {
        let e = exec();
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        e.spawn("worker", move |_| f2.store(true, Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(flag.load(Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn yield_interleaves_equal_priority_strands() {
        let e = exec();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in ["a", "b"] {
            let log = log.clone();
            e.spawn(tag, move |ctx| {
                for _ in 0..3 {
                    log.lock().push(tag);
                    ctx.yield_now();
                }
            });
        }
        e.run_until_idle();
        assert_eq!(*log.lock(), vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn priorities_order_execution() {
        let e = exec();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (tag, prio) in [("low", 1u8), ("high", 20u8), ("mid", 10u8)] {
            let log = log.clone();
            e.spawn_on(HostId(0), tag, prio, move |_| log.lock().push(tag));
        }
        e.run_until_idle();
        assert_eq!(*log.lock(), vec!["high", "mid", "low"]);
    }

    #[test]
    fn block_and_unblock() {
        let e = exec();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = log.clone();
        let blocked = e.spawn("blocked", move |ctx| {
            l1.lock().push("before");
            ctx.block();
            l1.lock().push("after");
        });
        let l2 = log.clone();
        let e2 = e.clone();
        e.spawn("waker", move |_| {
            l2.lock().push("waking");
            e2.unblock(blocked);
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*log.lock(), vec!["before", "waking", "after"]);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let e = exec();
        let clock = e.clock().clone();
        e.spawn("sleeper", move |ctx| ctx.sleep(1_000_000));
        let t0 = clock.now();
        e.run_until_idle();
        assert!(clock.now() >= t0 + 1_000_000);
    }

    #[test]
    fn join_waits_for_target() {
        let e = exec();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = log.clone();
        let child = e.spawn("child", move |ctx| {
            ctx.sleep(1000);
            l1.lock().push("child done");
        });
        let l2 = log.clone();
        e.spawn("parent", move |ctx| {
            ctx.join(child);
            l2.lock().push("parent done");
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*log.lock(), vec!["child done", "parent done"]);
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let e = exec();
        e.spawn("stuck", |ctx| ctx.block());
        match e.run_until_idle() {
            IdleOutcome::Deadlock { blocked } => assert_eq!(blocked, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadline_stops_the_run() {
        let e = exec();
        e.spawn("spinner", |ctx| loop {
            ctx.work(1000);
            ctx.preempt_point();
            if ctx.executor().clock().now() > 10_000_000 {
                break;
            }
        });
        assert_eq!(e.run_until(2_000_000), IdleOutcome::DeadlineReached);
    }

    #[test]
    fn quantum_preemption_round_robins_cpu_hogs() {
        let e = exec();
        e.set_quantum(10_000);
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in ["a", "b"] {
            let log = log.clone();
            e.spawn(tag, move |ctx| {
                for _ in 0..3 {
                    ctx.work(15_000); // exceeds quantum every round
                    log.lock().push(tag);
                    ctx.preempt_point();
                }
            });
        }
        e.run_until_idle();
        let l = log.lock();
        // Strict alternation proves preemption (without it, "a" runs 3x
        // before "b" starts).
        assert_eq!(*l, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn cpu_time_is_attributed_to_strands_and_hosts() {
        let e = exec();
        let s = e.spawn("worker", |ctx| ctx.work(5_000));
        e.run_until_idle();
        assert_eq!(e.cpu_time(s), 5_000);
        assert!(e.host_busy(HostId(0)) >= 5_000);
    }

    #[test]
    fn panicking_strand_is_reported_not_fatal() {
        let e = exec();
        let s = e.spawn("bad", |_| panic!("extension bug"));
        let ok = e.spawn("good", |_| {});
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(e.panicked(s));
        assert!(!e.panicked(ok));
    }

    #[test]
    fn spawn_from_within_a_strand() {
        let e = exec();
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        e.spawn("parent", move |ctx| {
            let f3 = f2.clone();
            let child = ctx
                .executor()
                .spawn("child", move |_| f3.store(true, Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            ctx.join(child);
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(flag.load(Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn deadline_unwinds_the_strand_at_a_safe_point() {
        let e = exec();
        let reached_end = Arc::new(AtomicBool::new(false));
        let r2 = reached_end.clone();
        let clock = e.clock().clone();
        let s = e.spawn("bounded", move |ctx| {
            ctx.set_deadline(clock.now() + 1_000_000);
            for _ in 0..100 {
                ctx.work(400_000); // the deadline check unwinds on round 3
            }
            r2.store(true, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(!reached_end.load(Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                                                       // The unwind escaped the strand body, so the strand is marked
                                                       // panicked (an async handler's containment wrapper would have
                                                       // caught it first and classified it as an abort).
        assert!(e.panicked(s));
    }

    #[test]
    fn cleared_deadline_never_fires() {
        let e = exec();
        let clock = e.clock().clone();
        let s = e.spawn("unbounded", move |ctx| {
            ctx.set_deadline(clock.now() + 1_000);
            ctx.clear_deadline();
            ctx.work(10_000_000);
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(!e.panicked(s));
    }

    #[test]
    fn injected_panics_at_spawn_are_contained() {
        let e = exec();
        let plan = spin_fault::FaultPlan::new(7);
        let hook = plan.hook(spin_fault::SITE_SCHED);
        plan.configure(
            spin_fault::SITE_SCHED,
            spin_fault::SiteConfig::panic_always(),
        );
        e.set_fault_hook(hook);
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = ran.clone();
        let s = e.spawn("victim", move |_| r2.store(true, Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert!(e.panicked(s), "the injected panic hit the strand");
        assert!(!ran.load(Ordering::Relaxed), "the body never ran"); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(plan.injected_panics(), 1);
    }

    #[test]
    fn replacing_the_global_policy_takes_effect() {
        // A LIFO policy to prove replacement: later spawns run first.
        struct Lifo(Vec<StrandId>);
        impl SchedulerPolicy for Lifo {
            fn enqueue(&mut self, s: StrandId, _p: u8) {
                self.0.push(s);
            }
            fn dequeue(&mut self) -> Option<StrandId> {
                self.0.pop()
            }
            fn remove(&mut self, s: StrandId) {
                self.0.retain(|&x| x != s);
            }
            fn name(&self) -> &'static str {
                "lifo"
            }
        }
        let e = exec();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in ["first", "second"] {
            let log = log.clone();
            e.spawn(tag, move |_| log.lock().push(tag));
        }
        e.set_policy(Box::new(Lifo(Vec::new())));
        e.run_until_idle();
        assert_eq!(*log.lock(), vec!["second", "first"]);
    }
}
