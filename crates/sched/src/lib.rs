//! `spin-sched` — extensible thread management for the SPIN reproduction.
//!
//! This crate implements §4.2 of the paper:
//!
//! * **strands** and the deterministic [`Executor`] that multiplexes them
//!   on the virtual timeline (one real OS thread per strand, exactly one
//!   running at a time, preemption at safe points when the quantum
//!   expires);
//! * the **Strand interface events** — `Block`, `Unblock`, `Checkpoint`,
//!   `Resume` — raised through the central dispatcher so stacked
//!   schedulers and thread packages can observe control flow
//!   ([`StrandEvents`]);
//! * the **global scheduler**: "a round-robin, preemptive, priority
//!   policy", replaceable through [`Executor::set_policy`] as a trusted
//!   operation;
//! * **thread packages** built directly on strands: the trusted in-kernel
//!   Modula-3 package ([`M3Threads`]), the DEC OSF/1 kernel-thread
//!   interface used by vendor drivers ([`OsfThreads`]), and the two
//!   user-level C-Threads structures of Table 3 ([`CThreads`], layered vs
//!   integrated);
//! * **user-level contexts** and the protected cross-address-space call
//!   path of Table 2 ([`UserProcess`], [`XasService`]);
//! * **per-core kernel shards**: one executor per simulated host, pumped
//!   concurrently by real OS threads under a conservative virtual-time
//!   barrier with deterministic cross-shard mail ([`Multicore`]).

#![forbid(unsafe_code)]

pub mod async_runner;
pub mod cthreads;
pub mod events;
pub mod executor;
pub mod group;
pub mod kthread;
pub mod lottery;
pub mod osf_threads;
pub mod shard;
pub mod sync;
pub mod user;

pub use async_runner::install_async_runner;
pub use cthreads::{measure_fork_join, measure_ping_pong, CThreads, CThreadsImpl};
pub use events::{StrandEvents, StrandRef};
pub use executor::{
    Executor, IdleOutcome, RoundRobinPriority, SchedQuotaHook, SchedulerPolicy, StrandCtx, StrandId,
};
pub use group::{PackageStats, TaskPackage};
pub use kthread::{measure_kernel_fork_join, measure_kernel_ping_pong, M3Threads};
pub use lottery::{LotteryPolicy, TicketBook};
pub use osf_threads::{OsfThreads, WaitChannel};
pub use shard::{Multicore, MulticoreStats, Shard};
pub use sync::{KChannel, KCondition, KMutex};
pub use user::{measure_xas_call, UserProcess, XasClient, XasService};
