//! The trusted in-kernel thread package: the Modula-3 thread interface.
//!
//! "Within the kernel, a trusted thread package and scheduler implements
//! the Modula-3 thread interface" (§4.2). Kernel extensions use this
//! package for their own concurrency (protocol threads, pagers, servers).
//! It is a thin, trusted veneer over strands plus [`KMutex`]/[`KCondition`].

use crate::executor::{Executor, StrandCtx, StrandId};
use crate::sync::{KCondition, KMutex};
use std::sync::Arc;

/// The Modula-3 `Thread` interface, bound to an executor.
#[derive(Clone)]
pub struct M3Threads {
    exec: Arc<Executor>,
}

impl M3Threads {
    /// Binds the package to an executor.
    pub fn new(exec: Arc<Executor>) -> Self {
        M3Threads { exec }
    }

    /// `Thread.Fork`: creates a kernel thread running `f`.
    pub fn fork(&self, name: &str, f: impl FnOnce(&StrandCtx) + Send + 'static) -> StrandId {
        self.exec.spawn(name, f)
    }

    /// `Thread.Join`: blocks the calling thread until `target` completes.
    pub fn join(&self, ctx: &StrandCtx, target: StrandId) {
        ctx.join(target);
    }

    /// Allocates a Modula-3 `MUTEX`.
    pub fn mutex(&self) -> Arc<KMutex> {
        KMutex::new(self.exec.clone())
    }

    /// Allocates a `Thread.Condition`.
    pub fn condition(&self) -> Arc<KCondition> {
        KCondition::new(self.exec.clone())
    }

    /// `Thread.Pause`: sleeps in virtual time.
    pub fn pause(&self, ctx: &StrandCtx, ns: u64) {
        ctx.sleep(ns);
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }
}

/// Measures the kernel-thread Fork-Join workload (Table 3): create,
/// schedule, terminate and join one thread. Returns virtual nanoseconds.
pub fn measure_kernel_fork_join(exec: &Arc<Executor>) -> u64 {
    let t = M3Threads::new(exec.clone());
    let clock = exec.clock().clone();
    let elapsed = Arc::new(spin_check::sync::Mutex::new(0u64));
    let (t2, e2) = (t.clone(), elapsed.clone());
    t.fork("driver", move |ctx| {
        let t0 = clock.now();
        let child = t2.fork("child", |_| {});
        t2.join(ctx, child);
        *e2.lock() = clock.now() - t0;
    });
    exec.run_until_idle();
    let r = *elapsed.lock();
    r
}

/// Measures the kernel-thread Ping-Pong workload (Table 3): one mutual
/// signal/block round trip between two threads. Returns virtual
/// nanoseconds per round.
pub fn measure_kernel_ping_pong(exec: &Arc<Executor>) -> u64 {
    const ROUNDS: u64 = 64;
    let t = M3Threads::new(exec.clone());
    let clock = exec.clock().clone();
    let m = t.mutex();
    let c = t.condition();
    let turn = Arc::new(spin_check::sync::Mutex::new(0u64));
    let elapsed = Arc::new(spin_check::sync::Mutex::new(0u64));
    for i in 0..2u64 {
        let (m, c, turn) = (m.clone(), c.clone(), turn.clone());
        let (clock, elapsed) = (clock.clone(), elapsed.clone());
        t.fork(if i == 0 { "ping" } else { "pong" }, move |ctx| {
            let t0 = clock.now();
            for _ in 0..ROUNDS {
                m.lock(ctx);
                while *turn.lock() % 2 != i {
                    c.wait(ctx, &m);
                }
                *turn.lock() += 1;
                c.signal(ctx);
                m.unlock(ctx);
            }
            if i == 0 {
                *elapsed.lock() = clock.now() - t0;
            }
        });
    }
    exec.run_until_idle();
    let total = *elapsed.lock();
    total / ROUNDS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::IdleOutcome;
    use spin_check::sync::Mutex;
    use spin_sal::SimBoard;

    fn pkg() -> M3Threads {
        let board = SimBoard::new();
        M3Threads::new(Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        ))
    }

    #[test]
    fn fork_join_runs_child_before_parent_continues() {
        let t = pkg();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        let t2 = t.clone();
        t.fork("parent", move |ctx| {
            let l3 = l2.clone();
            let child = t2.fork("child", move |_| l3.lock().push("child"));
            t2.join(ctx, child);
            l2.lock().push("parent");
        });
        assert_eq!(t.executor().run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*log.lock(), vec!["child", "parent"]);
    }

    #[test]
    fn fork_join_costs_match_table_3_band() {
        // Table 3: SPIN kernel Fork-Join is 22 µs.
        let t = pkg();
        let clock = t.executor().clock().clone();
        let elapsed = Arc::new(Mutex::new(0u64));
        let (t2, e2, c2) = (t.clone(), elapsed.clone(), clock.clone());
        t.fork("driver", move |ctx| {
            let t0 = c2.now();
            let child = t2.fork("child", |_| {});
            t2.join(ctx, child);
            *e2.lock() = c2.now() - t0;
        });
        t.executor().run_until_idle();
        let us = *elapsed.lock() as f64 / 1000.0;
        assert!(
            (12.0..35.0).contains(&us),
            "Fork-Join {us} µs, expected ~22 µs"
        );
    }

    #[test]
    fn ping_pong_costs_match_table_3_band() {
        // Table 3: SPIN kernel Ping-Pong is 17 µs (one round trip of
        // signal/block between two threads).
        let t = pkg();
        let clock = t.executor().clock().clone();
        let m = t.mutex();
        let c = t.condition();
        let turn = Arc::new(Mutex::new(0u32));
        let elapsed = Arc::new(Mutex::new(0u64));
        const ROUNDS: u32 = 64;
        for i in 0..2u32 {
            let (m, c, turn) = (m.clone(), c.clone(), turn.clone());
            let (clock, elapsed) = (clock.clone(), elapsed.clone());
            t.fork(if i == 0 { "ping" } else { "pong" }, move |ctx| {
                let t0 = clock.now();
                for _ in 0..ROUNDS {
                    m.lock(ctx);
                    while *turn.lock() % 2 != i {
                        c.wait(ctx, &m);
                    }
                    *turn.lock() += 1;
                    c.signal(ctx);
                    m.unlock(ctx);
                }
                if i == 0 {
                    *elapsed.lock() = clock.now() - t0;
                }
            });
        }
        assert_eq!(t.executor().run_until_idle(), IdleOutcome::AllComplete);
        let per_round_us = *elapsed.lock() as f64 / 1000.0 / ROUNDS as f64;
        assert!(
            (9.0..30.0).contains(&per_round_us),
            "Ping-Pong {per_round_us} µs/round, expected ~17 µs"
        );
    }
}
