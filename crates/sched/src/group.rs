//! An application-specific scheduler stacked on the global scheduler.
//!
//! §4.2: "Additional application-specific schedulers can be placed on top
//! of the global scheduler using Checkpoint and Resume events to
//! relinquish or receive control of the processor. That is, an
//! application-specific scheduler presents itself to the global scheduler
//! as a thread package."
//!
//! [`TaskPackage`] is such a scheduler: it multiplexes many lightweight
//! *tasks* onto one carrier strand. The global scheduler sees a single
//! strand; the package decides, in its own priority order, which task runs
//! whenever the global scheduler gives the carrier the processor. It
//! installs guarded handlers on `Strand.Checkpoint`/`Strand.Resume` —
//! guarded to *its own carrier*, per the capability rule — to observe the
//! processor arriving and leaving.

use crate::events::{StrandEvents, StrandRef};
use crate::executor::{Executor, StrandCtx, StrandId};
use spin_check::sync::Mutex;
use spin_check::sync::{AtomicU64, Ordering};
use spin_core::Identity;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A schedulable task: a priority and a body.
struct Task {
    priority: u8,
    seq: u64, // FIFO among equal priorities
    body: Box<dyn FnOnce(&StrandCtx) + Send>,
}

impl PartialEq for Task {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Task {}
impl PartialOrd for Task {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Task {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first; FIFO within a priority.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct PackageState {
    queue: BinaryHeap<Task>,
    next_seq: u64,
    closed: bool,
}

/// Statistics observed through the strand events.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackageStats {
    /// Times the global scheduler handed us the processor.
    pub resumes: u64,
    /// Times the processor was reclaimed from us.
    pub checkpoints: u64,
    /// Tasks completed.
    pub tasks_run: u64,
}

/// The user-level task package.
pub struct TaskPackage {
    exec: Arc<Executor>,
    state: Arc<Mutex<PackageState>>,
    carrier: StrandId,
    resumes: Arc<AtomicU64>,
    checkpoints: Arc<AtomicU64>,
    tasks_run: Arc<AtomicU64>,
}

impl TaskPackage {
    /// Starts a package: spawns the carrier strand at `priority` and hooks
    /// the strand events (guarded to the carrier).
    pub fn start(
        exec: &Arc<Executor>,
        events: &StrandEvents,
        name: &str,
        priority: u8,
    ) -> Arc<TaskPackage> {
        let state = Arc::new(Mutex::new(PackageState {
            queue: BinaryHeap::new(),
            next_seq: 0,
            closed: false,
        }));
        let tasks_run = Arc::new(AtomicU64::new(0));
        let st2 = state.clone();
        let tr2 = tasks_run.clone();
        let carrier = exec.spawn_on(spin_sal::HostId(0), name, priority, move |ctx| {
            loop {
                let task = {
                    let mut st = st2.lock();
                    match st.queue.pop() {
                        Some(t) => Some(t),
                        None if st.closed => break,
                        None => None,
                    }
                };
                match task {
                    Some(t) => {
                        (t.body)(ctx);
                        tr2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                                                             // A preemption safe point between tasks keeps the
                                                             // package honest with the global quantum.
                        ctx.preempt_point();
                    }
                    None => ctx.block(), // wait for submissions
                }
            }
        });
        exec.set_daemon(carrier);

        // Observe our carrier's Checkpoint/Resume through the dispatcher,
        // guarded to strands we hold a capability for (just the carrier).
        let resumes = Arc::new(AtomicU64::new(0));
        let checkpoints = Arc::new(AtomicU64::new(0));
        let (r2, c2) = (resumes.clone(), checkpoints.clone());
        let me = carrier;
        events
            .resume
            .install_guarded(
                Identity::extension(name),
                move |s: &StrandRef| s.0 == me,
                move |_| {
                    r2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                },
            )
            .expect("install resume observer");
        let me = carrier;
        events
            .checkpoint
            .install_guarded(
                Identity::extension(name),
                move |s: &StrandRef| s.0 == me,
                move |_| {
                    c2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                },
            )
            .expect("install checkpoint observer");

        Arc::new(TaskPackage {
            exec: exec.clone(),
            state,
            carrier,
            resumes,
            checkpoints,
            tasks_run,
        })
    }

    /// Submits a task at a priority; the package orders its own work.
    pub fn submit(&self, priority: u8, body: impl FnOnce(&StrandCtx) + Send + 'static) {
        {
            let mut st = self.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push(Task {
                priority,
                seq,
                body: Box::new(body),
            });
        }
        self.exec.unblock(self.carrier);
    }

    /// Closes the package; the carrier exits once drained.
    pub fn shutdown(&self) {
        self.state.lock().closed = true;
        self.exec.unblock(self.carrier);
    }

    /// Event-observed statistics.
    pub fn stats(&self) -> PackageStats {
        PackageStats {
            resumes: self.resumes.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            checkpoints: self.checkpoints.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            tasks_run: self.tasks_run.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }

    /// The carrier strand the global scheduler sees.
    pub fn carrier(&self) -> StrandId {
        self.carrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_core::Dispatcher;
    use spin_sal::SimBoard;

    fn rig() -> (Arc<Executor>, StrandEvents) {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let events = StrandEvents::attach(&exec, &disp);
        (exec, events)
    }

    #[test]
    fn tasks_run_in_package_priority_order_not_submission_order() {
        let (exec, events) = rig();
        let pkg = TaskPackage::start(&exec, &events, "app-sched", 8);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (prio, tag) in [(1u8, "low"), (9, "high"), (5, "mid")] {
            let log = log.clone();
            pkg.submit(prio, move |_| log.lock().push(tag));
        }
        pkg.shutdown();
        exec.run_until_idle();
        assert_eq!(*log.lock(), vec!["high", "mid", "low"]);
        assert_eq!(pkg.stats().tasks_run, 3);
    }

    #[test]
    fn the_package_observes_resume_and_checkpoint_via_events() {
        let (exec, events) = rig();
        exec.set_quantum(20_000);
        let pkg = TaskPackage::start(&exec, &events, "app-sched", 8);
        // A competing strand forces real multiplexing.
        exec.spawn("competitor", |ctx| {
            for _ in 0..5 {
                ctx.work(25_000);
                ctx.preempt_point();
            }
        });
        for _ in 0..5 {
            pkg.submit(5, |ctx| ctx.work(25_000)); // each exceeds the quantum
        }
        pkg.shutdown();
        exec.run_until_idle();
        let stats = pkg.stats();
        assert!(
            stats.resumes >= 5,
            "carrier was given the CPU repeatedly: {stats:?}"
        );
        assert_eq!(stats.resumes, stats.checkpoints, "every slice is bracketed");
        assert_eq!(stats.tasks_run, 5);
    }

    #[test]
    fn two_packages_share_the_processor_without_interference() {
        let (exec, events) = rig();
        let a = TaskPackage::start(&exec, &events, "pkg-a", 8);
        let b = TaskPackage::start(&exec, &events, "pkg-b", 8);
        let counts = Arc::new(Mutex::new((0u32, 0u32)));
        for _ in 0..10 {
            let c = counts.clone();
            a.submit(1, move |_| c.lock().0 += 1);
            let c = counts.clone();
            b.submit(1, move |_| c.lock().1 += 1);
        }
        a.shutdown();
        b.shutdown();
        exec.run_until_idle();
        assert_eq!(*counts.lock(), (10, 10));
        // Each package only observed its own carrier (the guard at work).
        assert_eq!(a.stats().resumes, a.stats().checkpoints);
        assert_eq!(b.stats().resumes, b.stats().checkpoints);
    }
}
