//! User-level contexts and protected communication paths (Table 2).
//!
//! Applications "can be written in any language and execute within their
//! own virtual address space" (§1.2). A [`UserProcess`] owns an MMU
//! addressing context and an externalized-reference table. This module
//! also implements the cross-address-space procedure call measured in
//! Table 2: "SPIN's cross-address space procedure call is implemented as
//! an extension that uses system calls to transfer control in and out of
//! the kernel and cross-domain procedure calls within the kernel to
//! transfer control between address spaces."

use crate::executor::{Executor, StrandCtx, StrandId};
use crate::sync::KChannel;
use spin_core::{ExternTable, Kernel};
use spin_sal::mmu::ContextId;
use spin_sal::Nanos;
use std::sync::Arc;

/// A user-level application: an address space plus kernel-visible state.
pub struct UserProcess {
    name: String,
    ctx_id: ContextId,
    table: ExternTable,
    kernel: Kernel,
}

impl UserProcess {
    /// Creates a process with a fresh addressing context.
    pub fn new(kernel: &Kernel, name: &str) -> UserProcess {
        UserProcess {
            name: name.to_string(),
            ctx_id: kernel.host().mmu.create_context(),
            table: kernel.new_extern_table(),
            kernel: kernel.clone(),
        }
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's MMU addressing context.
    pub fn context(&self) -> ContextId {
        self.ctx_id
    }

    /// The process's externalized-reference table.
    pub fn extern_table(&self) -> &ExternTable {
        &self.table
    }

    /// Issues a system call from this process (user→kernel→user).
    pub fn syscall(&self, number: u64, args: [u64; 6]) -> i64 {
        self.kernel.syscall(number, args)
    }
}

/// A cross-address-space call service: a server process exporting one
/// procedure that clients in other address spaces can call.
///
/// The path (both directions): system call into the kernel, cross-domain
/// procedure call to the IPC extension, address-space switch to the
/// server's context, and the scheduler hand-off to the server strand.
pub struct XasService {
    requests: Arc<KChannel<(u64, Arc<KChannel<u64>>)>>,
    exec: Arc<Executor>,
    server_strand: StrandId,
}

impl XasService {
    /// Starts a server strand running `service` for each request.
    pub fn start(
        exec: &Arc<Executor>,
        name: &str,
        service: impl Fn(u64) -> u64 + Send + 'static,
    ) -> XasService {
        let requests: Arc<KChannel<(u64, Arc<KChannel<u64>>)>> = KChannel::new(exec.clone(), 16);
        let rq = requests.clone();
        let exec2 = exec.clone();
        let server_strand = exec.spawn(&format!("{name}-server"), move |ctx| {
            while let Some((arg, reply)) = rq.recv(ctx) {
                // The server runs in its own address space: entering it
                // costs an AS switch on top of the strand hand-off.
                exec2.clock().advance(exec2.profile().as_switch);
                let result = service(arg);
                reply.send(ctx, result);
            }
        });
        XasService {
            requests,
            exec: exec.clone(),
            server_strand,
        }
    }

    /// Creates a client handle for a process.
    pub fn client(&self) -> XasClient {
        XasClient {
            requests: self.requests.clone(),
            exec: self.exec.clone(),
        }
    }

    /// Shuts the service down.
    pub fn stop(&self) {
        self.requests.close();
    }

    /// The server's strand (for diagnostics).
    pub fn strand(&self) -> StrandId {
        self.server_strand
    }
}

/// A client capability for a cross-address-space service.
#[derive(Clone)]
pub struct XasClient {
    requests: Arc<KChannel<(u64, Arc<KChannel<u64>>)>>,
    exec: Arc<Executor>,
}

impl XasClient {
    /// Performs one protected cross-address-space call.
    pub fn call(&self, ctx: &StrandCtx, arg: u64) -> Option<u64> {
        let p = self.exec.profile().clone();
        let clock = self.exec.clock().clone();
        // Client trap into the kernel and cross-domain call to the IPC
        // extension.
        clock.advance(p.trap_entry + p.inter_module_call);
        let reply: Arc<KChannel<u64>> = KChannel::new(self.exec.clone(), 1);
        if !self.requests.send(ctx, (arg, reply.clone())) {
            clock.advance(p.trap_exit);
            return None;
        }
        let result = reply.recv(ctx);
        // Return path: switch back to the client's address space and
        // return to user mode.
        clock.advance(p.as_switch + p.trap_exit);
        result
    }
}

/// Measures the null cross-address-space call, in virtual nanoseconds —
/// Table 2's third row (SPIN: 89 µs).
pub fn measure_xas_call(exec: &Arc<Executor>) -> Nanos {
    const CALLS: u64 = 16;
    let service = XasService::start(exec, "null", |x| x);
    let client = service.client();
    let clock = exec.clock().clone();
    let elapsed = Arc::new(spin_check::sync::Mutex::new(0u64));
    let e2 = elapsed.clone();
    exec.spawn("client", move |ctx| {
        // Warm up the server strand.
        client.call(ctx, 0);
        let t0 = clock.now();
        for i in 0..CALLS {
            client.call(ctx, i);
        }
        *e2.lock() = (clock.now() - t0) / CALLS;
        service.stop();
    });
    exec.run_until_idle();
    let r = *elapsed.lock();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::SimBoard;

    fn rig() -> (Kernel, Arc<Executor>) {
        let board = SimBoard::new();
        let host = board.new_host(256);
        let exec = Executor::for_host(&host);
        (Kernel::boot(host), exec)
    }

    #[test]
    fn processes_have_distinct_contexts_and_tables() {
        let (kernel, _exec) = rig();
        let a = UserProcess::new(&kernel, "a");
        let b = UserProcess::new(&kernel, "b");
        assert_ne!(a.context(), b.context());
        let r = a.extern_table().externalize(Arc::new(5u32));
        assert!(b.extern_table().recover::<u32>(r).is_err());
        assert_eq!(*a.extern_table().recover::<u32>(r).unwrap(), 5);
    }

    #[test]
    fn xas_call_returns_the_service_result() {
        let (_kernel, exec) = rig();
        let service = XasService::start(&exec, "double", |x| x * 2);
        let client = service.client();
        let got = Arc::new(spin_check::sync::Mutex::new(0u64));
        let g2 = got.clone();
        exec.spawn("client", move |ctx| {
            *g2.lock() = client.call(ctx, 21).expect("service alive");
            service.stop();
        });
        exec.run_until_idle();
        assert_eq!(*got.lock(), 42);
    }

    #[test]
    fn xas_call_cost_is_in_table_2_band() {
        let (_kernel, exec) = rig();
        let ns = measure_xas_call(&exec);
        let us = ns as f64 / 1000.0;
        // Table 2: SPIN cross-address space call is 89 µs.
        assert!((60.0..120.0).contains(&us), "xas call {us} µs");
    }

    #[test]
    fn calls_after_stop_fail_cleanly() {
        let (_kernel, exec) = rig();
        let service = XasService::start(&exec, "s", |x| x);
        let client = service.client();
        service.stop();
        let got = Arc::new(spin_check::sync::Mutex::new(Some(0u64)));
        let g2 = got.clone();
        exec.spawn("client", move |ctx| {
            *g2.lock() = client.call(ctx, 1);
        });
        exec.run_until_idle();
        assert_eq!(*got.lock(), None);
    }
}
