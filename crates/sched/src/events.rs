//! The Strand interface as dispatcher events (Figure 4).
//!
//! "This interface describes the scheduling events affecting control flow
//! that can be raised within the kernel. Application-specific schedulers
//! and thread packages install handlers on these events, which are raised
//! on behalf of particular strands. A trusted thread package and scheduler
//! provide default implementations of these operations, and ensure that
//! extensions do not install handlers on strands for which they do not
//! possess a capability."
//!
//! [`StrandEvents::attach`] defines `Strand.Block`, `Strand.Unblock`,
//! `Strand.Checkpoint` and `Strand.Resume` on a dispatcher and wires the
//! executor to raise them at the corresponding transitions. The owner
//! authorization installs a guard restricting each handler to the set of
//! strands its installer presents capabilities for.

use crate::executor::{Executor, StrandId};
use spin_core::{Dispatcher, Event, Identity, InstallDecision};
use std::collections::HashSet;
use std::sync::Arc;

/// Event argument: the strand a scheduling transition concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrandRef(pub StrandId);

/// The four events of the Strand interface.
#[derive(Clone)]
pub struct StrandEvents {
    /// "Signal to a scheduler that s is not runnable."
    pub block: Event<StrandRef, ()>,
    /// "Signal to a scheduler that s is runnable."
    pub unblock: Event<StrandRef, ()>,
    /// "Signal that s is being descheduled and that it should save any
    /// processor state required for subsequent rescheduling."
    pub checkpoint: Event<StrandRef, ()>,
    /// "Signal that s is being placed on a processor."
    pub resume: Event<StrandRef, ()>,
}

impl StrandEvents {
    /// Defines the strand events on `dispatcher` and arms the executor's
    /// transition hooks to raise them.
    pub fn attach(exec: &Arc<Executor>, dispatcher: &Dispatcher) -> StrandEvents {
        let owner_id = Identity::kernel("Strand");
        let (block, block_owner) =
            dispatcher.define::<StrandRef, ()>("Strand.Block", owner_id.clone());
        let (unblock, unblock_owner) =
            dispatcher.define::<StrandRef, ()>("Strand.Unblock", owner_id.clone());
        let (checkpoint, cp_owner) =
            dispatcher.define::<StrandRef, ()>("Strand.Checkpoint", owner_id.clone());
        let (resume, resume_owner) = dispatcher.define::<StrandRef, ()>("Strand.Resume", owner_id);

        // The trusted default implementations: the executor itself performs
        // the state change; the events exist so stacked schedulers and
        // thread packages can observe and react.
        for owner in [&block_owner, &unblock_owner, &cp_owner, &resume_owner] {
            owner.set_primary(|_| ()).expect("fresh event");
        }

        let ev = StrandEvents {
            block: block.clone(),
            unblock: unblock.clone(),
            checkpoint: checkpoint.clone(),
            resume: resume.clone(),
        };
        let (b, u, c, r) = (block, unblock, checkpoint, resume);
        exec.set_hooks(
            Box::new(move |s| {
                let _ = b.raise(StrandRef(s));
            }),
            Box::new(move |s| {
                let _ = u.raise(StrandRef(s));
            }),
            Box::new(move |s| {
                let _ = c.raise(StrandRef(s));
            }),
            Box::new(move |s| {
                let _ = r.raise(StrandRef(s));
            }),
        );
        ev
    }

    /// An owner-style authorizer restricting handlers to a capability set
    /// of strands: installs get a guard comparing the event's strand
    /// against `owned`.
    pub fn capability_guard(
        owned: HashSet<StrandId>,
    ) -> impl Fn(&spin_core::InstallRequest) -> InstallDecision<StrandRef> + Send + Sync {
        move |_req| InstallDecision::Allow {
            owner_guard: Some({
                let owned = owned.clone();
                Arc::new(move |s: &StrandRef| owned.contains(&s.0))
            }),
            constraints: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::Mutex;
    use spin_sal::SimBoard;

    fn rig() -> (Arc<Executor>, Dispatcher, StrandEvents) {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
        let events = StrandEvents::attach(&exec, &disp);
        (exec, disp, events)
    }

    #[test]
    fn transitions_raise_events() {
        let (exec, _disp, events) = rig();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (name, ev) in [("block", &events.block), ("unblock", &events.unblock)] {
            let log = log.clone();
            ev.install(Identity::extension("observer"), move |s: &StrandRef| {
                log.lock().push((name, s.0));
            })
            .unwrap();
        }
        let e2 = exec.clone();
        let target = exec.spawn("sleeper", |ctx| ctx.block());
        exec.spawn("waker", move |_| e2.unblock(target));
        exec.run_until_idle();
        let l = log.lock();
        assert!(l.contains(&("block", target)));
        assert!(l.contains(&("unblock", target)));
    }

    #[test]
    fn checkpoint_and_resume_bracket_every_slice() {
        let (exec, disp, events) = rig();
        let _ = disp;
        let resumes = Arc::new(Mutex::new(0u32));
        let r2 = resumes.clone();
        events
            .resume
            .install(Identity::extension("profiler"), move |_| {
                *r2.lock() += 1;
            })
            .unwrap();
        exec.spawn("a", |ctx| ctx.yield_now());
        exec.run_until_idle();
        // Two slices: before and after the yield.
        assert_eq!(*resumes.lock(), 2);
    }

    #[test]
    fn capability_guard_limits_visibility_to_owned_strands() {
        let (exec, _disp, events) = rig();
        let seen = Arc::new(Mutex::new(Vec::new()));

        let e2 = exec.clone();
        let mine = exec.spawn("mine", |ctx| ctx.block());
        let other = exec.spawn("other", |ctx| ctx.block());

        // The app-specific package owns only `mine`.
        let mut owned = HashSet::new();
        owned.insert(mine);
        // Re-arm the auth with a capability check, then install.
        // (In the kernel this is done by the trusted package at attach
        // time; here we emulate by installing a guarded handler.)
        let seen2 = seen.clone();
        let owned2 = owned.clone();
        events
            .unblock
            .install_guarded(
                Identity::extension("mypkg"),
                move |s: &StrandRef| owned2.contains(&s.0),
                move |s: &StrandRef| {
                    seen2.lock().push(s.0);
                },
            )
            .unwrap();

        exec.spawn("waker", move |_| {
            e2.unblock(other);
            e2.unblock(mine);
        });
        exec.run_until_idle();
        assert_eq!(*seen.lock(), vec![mine], "guard must hide other strands");
    }
}
