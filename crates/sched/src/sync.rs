//! In-kernel synchronization: mutexes and condition variables on strands.
//!
//! These are the "locks with condition variables in SPIN" used by Table 3's
//! kernel-thread measurements. They operate on the virtual timeline: a
//! contended lock blocks the strand (raising the Block hook) and unlock
//! hands off through the scheduler. Because exactly one strand runs at a
//! time, the implementations are simple state machines guarded by a host
//! lock — the executor provides the atomicity.

use crate::executor::{Executor, StrandCtx, StrandId};
use spin_check::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct MutexState {
    owner: Option<StrandId>,
    waiters: VecDeque<StrandId>,
}

/// A kernel mutex (Modula-3 `MUTEX` analogue).
pub struct KMutex {
    exec: Arc<Executor>,
    state: Mutex<MutexState>,
}

impl KMutex {
    /// Creates an unlocked mutex.
    pub fn new(exec: Arc<Executor>) -> Arc<Self> {
        Arc::new(KMutex {
            exec,
            state: Mutex::new(MutexState {
                owner: None,
                waiters: VecDeque::new(),
            }),
        })
    }

    /// Acquires the mutex, blocking the strand while contended.
    pub fn lock(&self, ctx: &StrandCtx) {
        self.exec.clock().advance(self.exec.profile().sync_op);
        loop {
            {
                let mut st = self.state.lock();
                if st.owner.is_none() {
                    st.owner = Some(ctx.id());
                    return;
                }
                st.waiters.push_back(ctx.id());
            }
            ctx.block();
        }
    }

    /// Releases the mutex and wakes the first waiter.
    ///
    /// # Panics
    ///
    /// Panics if the calling strand does not hold the mutex — that is an
    /// extension bug the trusted package refuses to hide.
    pub fn unlock(&self, ctx: &StrandCtx) {
        self.exec.clock().advance(self.exec.profile().sync_op);
        let next = {
            let mut st = self.state.lock();
            assert_eq!(st.owner, Some(ctx.id()), "unlock by non-owner");
            st.owner = None;
            st.waiters.pop_front()
        };
        if let Some(w) = next {
            self.exec.unblock(w);
        }
    }

    /// Runs `f` with the mutex held.
    pub fn with<R>(&self, ctx: &StrandCtx, f: impl FnOnce() -> R) -> R {
        self.lock(ctx);
        let r = f();
        self.unlock(ctx);
        r
    }

    /// Whether the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.state.lock().owner.is_some()
    }
}

/// A condition variable tied to a [`KMutex`] at wait time.
pub struct KCondition {
    exec: Arc<Executor>,
    waiters: Mutex<VecDeque<StrandId>>,
}

impl KCondition {
    /// Creates a condition with no waiters.
    pub fn new(exec: Arc<Executor>) -> Arc<Self> {
        Arc::new(KCondition {
            exec,
            waiters: Mutex::new(VecDeque::new()),
        })
    }

    /// Atomically releases `mutex` and waits for a signal; reacquires the
    /// mutex before returning.
    pub fn wait(&self, ctx: &StrandCtx, mutex: &KMutex) {
        self.waiters.lock().push_back(ctx.id());
        mutex.unlock(ctx);
        ctx.block();
        mutex.lock(ctx);
    }

    /// Wakes one waiter.
    pub fn signal(&self, _ctx: &StrandCtx) {
        let next = self.waiters.lock().pop_front();
        if let Some(w) = next {
            self.exec.unblock(w);
        }
    }

    /// Wakes every waiter.
    pub fn broadcast(&self, _ctx: &StrandCtx) {
        let all: Vec<StrandId> = self.waiters.lock().drain(..).collect();
        for w in all {
            self.exec.unblock(w);
        }
    }

    /// Number of strands currently waiting.
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().len()
    }
}

/// A bounded FIFO channel between strands (used by protocol threads).
pub struct KChannel<T: Send> {
    exec: Arc<Executor>,
    state: Mutex<ChannelState<T>>,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    recv_waiters: VecDeque<StrandId>,
    send_waiters: VecDeque<StrandId>,
    closed: bool,
}

impl<T: Send> KChannel<T> {
    /// Creates a channel holding up to `capacity` items.
    pub fn new(exec: Arc<Executor>, capacity: usize) -> Arc<Self> {
        Arc::new(KChannel {
            exec,
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                capacity,
                recv_waiters: VecDeque::new(),
                send_waiters: VecDeque::new(),
                closed: false,
            }),
        })
    }

    /// Sends `item`, blocking while the channel is full. Returns `false`
    /// if the channel is closed.
    pub fn send(&self, ctx: &StrandCtx, item: T) -> bool {
        let mut item = Some(item);
        loop {
            let wake = {
                let mut st = self.state.lock();
                if st.closed {
                    return false;
                }
                if st.queue.len() < st.capacity {
                    st.queue.push_back(item.take().expect("item pending"));
                    st.recv_waiters.pop_front()
                } else {
                    st.send_waiters.push_back(ctx.id());
                    None
                }
            };
            if item.is_none() {
                if let Some(w) = wake {
                    self.exec.unblock(w);
                }
                return true;
            }
            ctx.block();
        }
    }

    /// Receives an item, blocking while the channel is empty. Returns
    /// `None` once the channel is closed and drained.
    pub fn recv(&self, ctx: &StrandCtx) -> Option<T> {
        loop {
            let (item, wake) = {
                let mut st = self.state.lock();
                match st.queue.pop_front() {
                    Some(item) => (Some(item), st.send_waiters.pop_front()),
                    None if st.closed => return None,
                    None => {
                        st.recv_waiters.push_back(ctx.id());
                        (None, None)
                    }
                }
            };
            if let Some(w) = wake {
                self.exec.unblock(w);
            }
            match item {
                Some(item) => return Some(item),
                None => ctx.block(),
            }
        }
    }

    /// Tries to send without blocking. Usable from non-strand contexts
    /// (timer callbacks, interrupt handlers). Returns `false` if the
    /// channel is full or closed.
    pub fn try_push(&self, item: T) -> bool {
        let wake = {
            let mut st = self.state.lock();
            if st.closed || st.queue.len() >= st.capacity {
                return false;
            }
            st.queue.push_back(item);
            st.recv_waiters.pop_front()
        };
        if let Some(w) = wake {
            self.exec.unblock(w);
        }
        true
    }

    /// Tries to receive without blocking.
    pub fn try_recv(&self) -> Option<T> {
        let (item, wake) = {
            let mut st = self.state.lock();
            (st.queue.pop_front(), st.send_waiters.pop_front())
        };
        if let Some(w) = wake {
            self.exec.unblock(w);
        }
        item
    }

    /// Closes the channel, waking all waiters.
    pub fn close(&self) {
        let waiters: Vec<StrandId> = {
            let mut st = self.state.lock();
            st.closed = true;
            let mut v: Vec<StrandId> = st.recv_waiters.drain(..).collect();
            v.extend(st.send_waiters.drain(..));
            v
        };
        for w in waiters {
            self.exec.unblock(w);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::IdleOutcome;
    use spin_sal::SimBoard;

    fn exec() -> Arc<Executor> {
        let board = SimBoard::new();
        Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        )
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let e = exec();
        let m = KMutex::new(e.clone());
        let counter = Arc::new(Mutex::new((0u32, 0u32))); // (current, max)
        for i in 0..4 {
            let m = m.clone();
            let c = counter.clone();
            e.spawn(&format!("t{i}"), move |ctx| {
                for _ in 0..5 {
                    m.lock(ctx);
                    {
                        let mut c = c.lock();
                        c.0 += 1;
                        c.1 = c.1.max(c.0);
                    }
                    ctx.yield_now(); // try to interleave inside the section
                    c.lock().0 -= 1;
                    m.unlock(ctx);
                }
            });
        }
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(counter.lock().1, 1, "two strands were inside the lock");
    }

    #[test]
    fn condition_signal_wakes_one_waiter() {
        let e = exec();
        let m = KMutex::new(e.clone());
        let c = KCondition::new(e.clone());
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let (m, c, log) = (m.clone(), c.clone(), log.clone());
            e.spawn(&format!("waiter{i}"), move |ctx| {
                m.lock(ctx);
                c.wait(ctx, &m);
                log.lock().push(format!("woke{i}"));
                m.unlock(ctx);
            });
        }
        let (m2, c2, log2) = (m.clone(), c.clone(), log.clone());
        e.spawn("signaler", move |ctx| {
            // Let both waiters get onto the condition first.
            ctx.yield_now();
            m2.lock(ctx);
            log2.lock().push("signal".into());
            c2.signal(ctx);
            m2.unlock(ctx);
            c2.broadcast(ctx);
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(log.lock().len(), 3);
        assert_eq!(log.lock()[0], "signal");
    }

    #[test]
    fn ping_pong_with_condvars_terminates() {
        // The Table 3 Ping-Pong shape: two strands signal each other.
        let e = exec();
        let m = KMutex::new(e.clone());
        let c = KCondition::new(e.clone());
        let turn = Arc::new(Mutex::new(0u32));
        for (i, name) in ["ping", "pong"].iter().enumerate() {
            let (m, c, turn) = (m.clone(), c.clone(), turn.clone());
            e.spawn(name, move |ctx| {
                for _ in 0..10 {
                    m.lock(ctx);
                    while *turn.lock() % 2 != i as u32 {
                        c.wait(ctx, &m);
                    }
                    *turn.lock() += 1;
                    c.broadcast(ctx);
                    m.unlock(ctx);
                }
            });
        }
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*turn.lock(), 20);
    }

    #[test]
    fn channel_passes_items_in_order() {
        let e = exec();
        let ch = KChannel::new(e.clone(), 4);
        let got = Arc::new(Mutex::new(Vec::new()));
        let ch2 = ch.clone();
        e.spawn("producer", move |ctx| {
            for i in 0..10 {
                ch2.send(ctx, i);
            }
            ch2.close();
        });
        let (ch3, got2) = (ch.clone(), got.clone());
        e.spawn("consumer", move |ctx| {
            while let Some(v) = ch3.recv(ctx) {
                got2.lock().push(v);
            }
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*got.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_blocks_producer() {
        let e = exec();
        let ch = KChannel::new(e.clone(), 1);
        let ch2 = ch.clone();
        let produced = Arc::new(Mutex::new(0));
        let p2 = produced.clone();
        e.spawn("producer", move |ctx| {
            for i in 0..3 {
                ch2.send(ctx, i);
                *p2.lock() += 1;
            }
            ch2.close();
        });
        let ch3 = ch.clone();
        e.spawn("slow-consumer", move |ctx| {
            ctx.sleep(1_000);
            while ch3.recv(ctx).is_some() {
                ctx.sleep(1_000);
            }
        });
        assert_eq!(e.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(*produced.lock(), 3);
    }
}
