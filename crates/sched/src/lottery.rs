//! A lottery scheduler as a replaceable global policy.
//!
//! §2 cites lottery scheduling \[Waldspurger & Weihl 94\] among the
//! specializations operating systems get asked for; §4.2 makes the global
//! policy replaceable ("while the global scheduling policy is replaceable,
//! it cannot be replaced by an arbitrary application"). [`LotteryPolicy`]
//! is such a replacement: proportional-share scheduling with per-strand
//! tickets and a *seeded* deterministic RNG, so simulation runs remain
//! reproducible.

use crate::executor::{SchedulerPolicy, StrandId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spin_check::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared ticket book: assign tickets before or while strands run.
#[derive(Clone, Default)]
pub struct TicketBook {
    tickets: Arc<Mutex<HashMap<StrandId, u64>>>,
}

impl TicketBook {
    /// An empty book (strands default to 1 ticket).
    pub fn new() -> TicketBook {
        TicketBook::default()
    }

    /// Assigns `tickets` to a strand (minimum 1).
    pub fn assign(&self, strand: StrandId, tickets: u64) {
        self.tickets.lock().insert(strand, tickets.max(1));
    }

    fn of(&self, strand: StrandId) -> u64 {
        self.tickets.lock().get(&strand).copied().unwrap_or(1)
    }
}

/// The proportional-share lottery policy.
pub struct LotteryPolicy {
    book: TicketBook,
    ready: Vec<StrandId>,
    rng: StdRng,
}

impl LotteryPolicy {
    /// Creates a policy drawing from `book`, seeded deterministically.
    pub fn new(book: TicketBook, seed: u64) -> LotteryPolicy {
        LotteryPolicy {
            book,
            ready: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SchedulerPolicy for LotteryPolicy {
    fn enqueue(&mut self, strand: StrandId, _priority: u8) {
        if !self.ready.contains(&strand) {
            self.ready.push(strand);
        }
    }

    fn dequeue(&mut self) -> Option<StrandId> {
        if self.ready.is_empty() {
            return None;
        }
        let total: u64 = self.ready.iter().map(|&s| self.book.of(s)).sum();
        let mut draw = self.rng.gen_range(0..total);
        for (i, &s) in self.ready.iter().enumerate() {
            let t = self.book.of(s);
            if draw < t {
                return Some(self.ready.remove(i));
            }
            draw -= t;
        }
        unreachable!("draw bounded by total tickets");
    }

    fn remove(&mut self, strand: StrandId) {
        self.ready.retain(|&s| s != strand);
    }

    fn name(&self) -> &'static str {
        "lottery (proportional share)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use spin_sal::SimBoard;

    #[test]
    fn shares_track_ticket_ratios() {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        exec.set_quantum(50_000);
        let book = TicketBook::new();
        // Two CPU-bound strands; "rich" holds 3x the tickets of "poor".
        let mut ids = Vec::new();
        for name in ["rich", "poor"] {
            let id = exec.spawn(name, move |ctx| {
                for _ in 0..400 {
                    ctx.work(60_000); // one quantum per slice
                    ctx.preempt_point();
                }
            });
            ids.push(id);
        }
        book.assign(ids[0], 300);
        book.assign(ids[1], 100);
        exec.set_policy(Box::new(LotteryPolicy::new(book, 42)));
        exec.run_until_idle();
        // Both got identical total work; what differs is *when* — compare
        // the virtual time at which each finished via cpu accounting.
        let rich = exec.cpu_time(ids[0]);
        let poor = exec.cpu_time(ids[1]);
        assert_eq!(rich, poor, "equal total demand completes fully");
        assert!(exec.is_done(ids[0]) && exec.is_done(ids[1]));
    }

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        // Same seed, same spawn order => same schedule (switch count).
        let run = |seed: u64| {
            let board = SimBoard::new();
            let exec = Executor::new(
                board.clock.clone(),
                board.timers.clone(),
                board.profile.clone(),
            );
            exec.set_quantum(10_000);
            let book = TicketBook::new();
            for i in 0..4 {
                let id = exec.spawn(&format!("s{i}"), |ctx| {
                    for _ in 0..20 {
                        ctx.work(15_000);
                        ctx.preempt_point();
                    }
                });
                book.assign(id, (i + 1) as u64 * 10);
            }
            exec.set_policy(Box::new(LotteryPolicy::new(book, seed)));
            exec.run_until_idle();
            (exec.switches(), exec.clock().now())
        };
        assert_eq!(run(7), run(7));
        // A different seed typically yields a different interleaving.
        let _ = run(8);
    }

    #[test]
    fn starvation_free_even_with_tiny_shares() {
        let board = SimBoard::new();
        let exec = Executor::new(
            board.clock.clone(),
            board.timers.clone(),
            board.profile.clone(),
        );
        exec.set_quantum(10_000);
        let book = TicketBook::new();
        let small = exec.spawn("small", |ctx| {
            for _ in 0..5 {
                ctx.work(12_000);
                ctx.preempt_point();
            }
        });
        let big = exec.spawn("big", |ctx| {
            for _ in 0..200 {
                ctx.work(12_000);
                ctx.preempt_point();
            }
        });
        book.assign(small, 1);
        book.assign(big, 1000);
        exec.set_policy(Box::new(LotteryPolicy::new(book, 3)));
        exec.run_until_idle();
        assert!(exec.is_done(small), "the 1-ticket strand still completes");
        assert!(exec.is_done(big));
    }
}
