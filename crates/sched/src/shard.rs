//! Per-core kernel shards under a conservative virtual-time barrier.
//!
//! [`Multicore`] runs one [`Executor`] per simulated host (*shard*), each
//! with its own clock, timer queue and inbound [`Mailbox`]. Shards execute
//! concurrently on real OS threads, yet every virtual-time output is
//! byte-identical whether the epoch plan is pumped by 1, 2 or 4 workers —
//! the determinism the shared-timeline executor gives for free, recovered
//! at multicore scale.
//!
//! # The epoch protocol (conservative PDES)
//!
//! Cross-shard effects travel only through mailboxes, and every such
//! effect has a minimum virtual latency `L` (the *lookahead*: the cheapest
//! of the cross-call latency and the wire propagations). Each epoch the
//! coordinator computes, per shard `i`:
//!
//! * `n_i` — the shard's next event time: *now* if a strand is runnable or
//!   an interrupt is pending, else the earliest local timer or pending
//!   mailbox deadline, clamped to the local clock; `None` if fully idle.
//! * `GVT = min over the Some n_j` — the global virtual time floor. When
//!   every shard is `None`, the system is done.
//! * `ñ_j = n_j`, or `GVT + L` for idle shards — an idle shard can be
//!   woken by mail no earlier than `GVT + L`, and anything *it* then sends
//!   arrives another `L` later, so `GVT + L` bounds its next send time.
//! * `grant_i = L + min over j≠i of ñ_j` — no mail can arrive at shard `i`
//!   before its grant, by induction on the chain of sends that could
//!   produce it.
//!
//! Shard `i` runs this epoch iff `n_i < grant_i`, executing up to its
//! grant. The shard whose `n_i == GVT` always qualifies (`grant_i ≥ GVT +
//! L > GVT`), so virtual time advances every epoch. Which OS thread pumps
//! which shard is irrelevant: the plan is a pure function of virtual-time
//! state, all of it deterministic.
//!
//! A shard may overshoot its grant (a strand charges a big slice of work
//! in one `work()` call); mail that then lands "in its past" is delivered
//! at the shard's — deterministic — local clock instead, exactly as a real
//! core sees a late inter-processor interrupt. DESIGN.md decision #9
//! explains why this conservative barrier was chosen over optimistic
//! rollback.

use crate::executor::{Executor, IdleOutcome};
use spin_check::sync::{AtomicBool, AtomicU64, Ordering};
use spin_fault::{FaultHook, Injection};
use spin_obs::{Obs, ObsHook, TraceKind};
use spin_sal::{lanes, Host, HostId, MailFate, Nanos};
use std::sync::Arc;

/// One kernel shard: a host plus the executor pumping it.
pub struct Shard {
    /// The simulated host (own clock, timers, mailbox).
    pub host: Host,
    /// The executor pumping this host's strands, timers and interrupts.
    pub exec: Arc<Executor>,
}

/// Counters for one run (all virtual-time deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MulticoreStats {
    /// Barrier epochs executed.
    pub epochs: u64,
    /// Shard grants executed (one per shard per epoch it ran); divided by
    /// `epochs` this is the average parallelism the plan exposed.
    pub shard_runs: u64,
    /// Envelopes posted into shard mailboxes.
    pub mail_posted: u64,
    /// Envelopes drained onto shard timer queues.
    pub mail_drained: u64,
    /// Envelopes dropped (fault injection or quarantine purge).
    pub mail_dropped: u64,
}

/// A reusable sense-reversing spin barrier: epochs are short (often a few
/// microseconds of real work), so parking on a condvar would dominate the
/// runtime — workers spin instead.
struct SpinBarrier {
    arrived: AtomicU64,
    generation: AtomicU64,
    total: u64,
}

impl SpinBarrier {
    fn new(total: u64) -> Self {
        SpinBarrier {
            arrived: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire); // ordering: Acquire — read the current generation before declaring arrival; pairs with the Release bump below.
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // ordering: AcqRel — the last arrival must see every earlier arrival's writes (Acquire) and publish its own (Release) before opening the barrier.
            self.arrived.store(0, Ordering::Relaxed); // ordering: Relaxed — reset is ordered by the generation Release below; nobody reads it until after that.
            self.generation.fetch_add(1, Ordering::Release); // ordering: Release — opening the barrier publishes all pre-barrier writes to the spinners' Acquire loads.
        } else {
            let mut spins = 0u32;
            // ordering: Acquire — pairs with the opener's Release so post-barrier reads see all pre-barrier writes.
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins >= 64 {
                    // Oversubscribed (more workers than cores): pure
                    // spinning would starve the opener for a full
                    // timeslice. Yield so it can run.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The multicore runtime: shards plus the epoch coordinator.
pub struct Multicore {
    shards: Vec<Shard>,
    workers: usize,
    lookahead: Nanos,
    epochs: Arc<AtomicU64>,
    shard_runs: Arc<AtomicU64>,
    obs: spin_core::hooks::HookSlot<ObsHook>,
}

impl Multicore {
    /// A runtime pumping its shards with `workers` OS threads under
    /// lookahead `L` (use [`spin_sal::MulticoreBoard::lookahead`]).
    /// `workers` only chooses how the — fixed — epoch plan is executed;
    /// all virtual-time outputs are identical for every worker count.
    pub fn new(workers: usize, lookahead: Nanos) -> Self {
        assert!(workers >= 1, "at least one worker");
        assert!(lookahead >= 1, "zero lookahead cannot make progress");
        Multicore {
            shards: Vec::new(),
            workers,
            lookahead,
            epochs: Arc::new(AtomicU64::new(0)),
            shard_runs: Arc::new(AtomicU64::new(0)),
            obs: spin_core::hooks::HookSlot::new(),
        }
    }

    /// Adds a host as a shard and returns its executor.
    pub fn add_host(&mut self, host: Host) -> Arc<Executor> {
        let exec = Executor::for_host(&host);
        self.shards.push(Shard {
            host,
            exec: exec.clone(),
        });
        exec
    }

    /// The shards, in host order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard carrying `host`, if any.
    pub fn shard(&self, host: HostId) -> Option<&Shard> {
        self.shards.iter().find(|s| s.host.id == host)
    }

    /// The conservative lookahead in force.
    pub fn lookahead(&self) -> Nanos {
        self.lookahead
    }

    /// Wires a dispatcher's cross-core raises (`Dispatcher::raise_on`) to
    /// the shard mailboxes: a raise targeting another shard is posted on
    /// the sender's exclusive lane and re-raised there one cross-call
    /// latency later.
    pub fn wire_dispatcher(&self, dispatcher: &spin_core::Dispatcher, home: HostId) {
        let boxes: Vec<(HostId, spin_sal::Mailbox)> = self
            .shards
            .iter()
            .map(|s| (s.host.id, s.host.mailbox.clone()))
            .collect();
        let lane = lanes::XCALL_BASE + home.0 as u64;
        dispatcher.set_xcall_router(home, move |target, deliver_at, action| {
            match boxes.iter().find(|(id, _)| *id == target) {
                Some((_, mbox)) => mbox.post(deliver_at, lane, action),
                None => false,
            }
        });
    }

    /// Posts a control action — e.g. one hot-swap phase — into `target`'s
    /// mailbox for execution at virtual time `deliver_at`. The envelope is
    /// drained onto the shard's timer queue at the next conservative epoch
    /// boundary and the action runs on the shard's own pumping thread,
    /// totally ordered (`(deliver_at, lane, seq)`) with all cross-shard
    /// traffic. That total order is what lets a swap coordinator quiesce
    /// a domain *across shards*: the gate closes at the same virtual
    /// point of the timeline no matter how many workers pump the plan.
    /// Returns `false` for an unknown host (or a dropped envelope).
    pub fn post_control(
        &self,
        target: HostId,
        deliver_at: Nanos,
        action: impl FnOnce(Nanos) + Send + 'static,
    ) -> bool {
        match self.shard(target) {
            Some(sh) => {
                sh.host
                    .mailbox
                    .post(deliver_at, lanes::CONTROL_BASE + target.0 as u64, action)
            }
            None => false,
        }
    }

    /// Installs deterministic fault injection on every mailbox post edge
    /// (the `sal.mailbox` site): delays shift delivery, failures drop the
    /// envelope, panics unwind the posting strand (contained as usual).
    pub fn set_fault_hook(&self, hook: FaultHook) {
        for sh in &self.shards {
            let h = hook.clone();
            sh.host.mailbox.set_post_hook(move |at| match h.draw() {
                Some(Injection::Delay(ns)) => MailFate::Deliver(at + ns),
                Some(Injection::Fail) => MailFate::Drop,
                Some(Injection::Panic) => h.fire_panic(),
                None => MailFate::Deliver(at),
            });
        }
    }

    /// Wires the observability subsystem: epochs and mailbox traffic are
    /// exposed as `spin_shard_*` metrics, each executor traces into its
    /// own `shard<N>` lane, and every drained envelope is traced. One-shot
    /// per runtime; charges zero virtual time.
    pub fn wire_obs(&self, obs: &Obs) {
        let _ = self.obs.set(obs.domain("multicore"));
        let epochs = self.epochs.clone();
        obs.register_gauge("shard_epochs_total", move || {
            epochs.load(Ordering::Relaxed) // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        });
        let boxes: Vec<spin_sal::Mailbox> = self
            .shards
            .iter()
            .map(|sh| sh.host.mailbox.clone())
            .collect();
        for (metric, pick) in [
            ("shard_mail_posted_total", 0usize),
            ("shard_mail_drained_total", 1),
            ("shard_mail_dropped_total", 2),
        ] {
            let boxes = boxes.clone();
            obs.register_gauge(metric, move || {
                boxes
                    .iter()
                    .map(|m| {
                        let s = m.stats();
                        [s.0, s.1, s.2][pick]
                    })
                    .sum()
            });
        }
        for sh in &self.shards {
            let mbox = sh.host.mailbox.clone();
            obs.register_gauge(
                &format!("shard_mail_pending{{shard=\"{}\"}}", sh.host.id.0),
                move || mbox.len() as u64,
            );
            sh.exec
                .set_obs(obs.domain(&format!("shard{}", sh.host.id.0)));
        }
    }

    /// Counters for the run so far.
    pub fn stats(&self) -> MulticoreStats {
        let mut s = MulticoreStats {
            epochs: self.epochs.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            shard_runs: self.shard_runs.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            ..Default::default()
        };
        for sh in &self.shards {
            let (p, dr, dp) = sh.host.mailbox.stats();
            s.mail_posted += p;
            s.mail_drained += dr;
            s.mail_dropped += dp;
        }
        s
    }

    /// Runs every shard to completion. See [`Executor::run_until_idle`];
    /// `Deadlock` here aggregates blocked non-daemon strands across all
    /// shards, and is only reported when no cross-shard mail can save them.
    pub fn run_until_idle(&self) -> IdleOutcome {
        self.run_until(Nanos::MAX)
    }

    /// [`Multicore::run_until_idle`] with a global virtual-time deadline.
    pub fn run_until(&self, deadline: Nanos) -> IdleOutcome {
        if self.shards.is_empty() {
            return IdleOutcome::AllComplete;
        }
        let workers = self.workers.min(self.shards.len());
        if workers <= 1 {
            loop {
                match self.plan_epoch(deadline) {
                    EpochPlan::Done(outcome) => return outcome,
                    EpochPlan::Run(plan) => {
                        for &(idx, grant) in &plan {
                            self.run_shard(idx, grant);
                        }
                    }
                }
            }
        }
        // Parallel mode: worker 0 (this thread) coordinates; all workers,
        // coordinator included, execute their round-robin share of each
        // epoch's plan between two barriers.
        let barrier = SpinBarrier::new(workers as u64);
        let plan_cell: spin_check::sync::Mutex<Vec<(usize, Nanos)>> =
            spin_check::sync::Mutex::new(Vec::new());
        let stop = AtomicBool::new(false);
        let mut outcome = IdleOutcome::AllComplete;
        std::thread::scope(|scope| {
            for w in 1..workers {
                let barrier = &barrier;
                let plan_cell = &plan_cell;
                let stop = &stop;
                let this = &*self;
                scope.spawn(move || loop {
                    barrier.wait(); // plan published
                                    // ordering: Acquire — pairs with the coordinator's Release store; after it, no plan will follow.
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let plan = plan_cell.lock().clone();
                    for (k, &(idx, grant)) in plan.iter().enumerate() {
                        if k % workers == w {
                            this.run_shard(idx, grant);
                        }
                    }
                    barrier.wait(); // epoch complete
                });
            }
            loop {
                match self.plan_epoch(deadline) {
                    EpochPlan::Done(out) => {
                        outcome = out;
                        stop.store(true, Ordering::Release); // ordering: Release — published before the barrier opens so workers observing the open barrier see the stop flag.
                        barrier.wait();
                        break;
                    }
                    EpochPlan::Run(plan) => {
                        *plan_cell.lock() = plan.clone();
                        barrier.wait(); // release the plan
                        for (k, &(idx, grant)) in plan.iter().enumerate() {
                            if k % workers == 0 {
                                self.run_shard(idx, grant);
                            }
                        }
                        barrier.wait(); // wait for the epoch
                    }
                }
            }
        });
        outcome
    }

    /// Computes one epoch's plan: `(shard index, grant)` for every shard
    /// cleared to run. A pure function of deterministic virtual-time state.
    fn plan_epoch(&self, deadline: Nanos) -> EpochPlan {
        let l = self.lookahead;
        let next: Vec<Option<Nanos>> = self
            .shards
            .iter()
            .map(|sh| {
                let local = sh.exec.next_event_time();
                let mail = sh
                    .host
                    .mailbox
                    .next_deadline()
                    .map(|t| t.max(sh.host.clock.now()));
                match (local, mail) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect();
        let Some(gvt) = next.iter().flatten().min().copied() else {
            return EpochPlan::Done(self.final_outcome());
        };
        if gvt >= deadline {
            return EpochPlan::Done(IdleOutcome::DeadlineReached);
        }
        self.epochs.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(obs) = self.obs.get() {
            obs.trace(TraceKind::ShardEpoch, gvt, 0);
        }
        // An idle shard can first *send* no earlier than GVT + L (it must
        // first be woken by mail).
        let eff: Vec<Nanos> = next
            .iter()
            .map(|n| n.unwrap_or_else(|| gvt.saturating_add(l)))
            .collect();
        let mut plan = Vec::new();
        for (i, n_i) in next.iter().enumerate() {
            let Some(n_i) = *n_i else { continue };
            let grant = match eff
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &e)| e)
                .min()
            {
                // Beyond the peers' own horizons, a peer can also be woken
                // by mail *this* shard sends (earliest at `n_i`); its
                // reply lands no sooner than `n_i + 2L` — one lookahead
                // out, one back. Running past that point would deliver
                // the reply into this shard's simulated past (observed as
                // a TCP segment arriving tens of milliseconds stale when
                // the peer's only local horizon was a distant
                // retransmission timer).
                Some(m) => l
                    .saturating_add(m)
                    .min(n_i.saturating_add(2 * l))
                    .min(deadline),
                None => deadline, // single shard: no one to wait for
            };
            if n_i < grant {
                plan.push((i, grant));
            }
        }
        debug_assert!(!plan.is_empty(), "the GVT shard always qualifies");
        EpochPlan::Run(plan)
    }

    /// Runs one shard for one epoch: move due mail to the local timer
    /// queue, then execute up to the grant.
    fn run_shard(&self, idx: usize, grant: Nanos) {
        self.shard_runs.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        let sh = &self.shards[idx];
        let obs = self.obs.get();
        for env in sh.host.mailbox.drain() {
            if let Some(obs) = obs {
                obs.trace(TraceKind::MailDeliver, env.lane, env.deliver_at);
            }
            sh.host.timers.schedule_at(env.deliver_at, env.action);
        }
        // The per-shard outcome is not the system outcome: a "deadlocked"
        // shard may be woken by mail in a later epoch. `plan_epoch` decides.
        let _ = sh.exec.run_until(grant);
    }

    /// All shards idle and no mail in flight: done. Blocked non-daemon
    /// strands now really are deadlocked — nothing can ever wake them.
    fn final_outcome(&self) -> IdleOutcome {
        let mut blocked: Vec<String> = self
            .shards
            .iter()
            .flat_map(|sh| sh.exec.blocked_strands())
            .collect();
        blocked.sort();
        if blocked.is_empty() {
            IdleOutcome::AllComplete
        } else {
            IdleOutcome::Deadlock { blocked }
        }
    }
}

enum EpochPlan {
    Done(IdleOutcome),
    Run(Vec<(usize, Nanos)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_sal::MulticoreBoard;

    fn rig(workers: usize, hosts: usize) -> (MulticoreBoard, Multicore) {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(workers, board.lookahead());
        for _ in 0..hosts {
            mc.add_host(board.new_host(16));
        }
        (board, mc)
    }

    #[test]
    fn single_shard_degenerates_to_run_until_idle() {
        let (_board, mc) = rig(1, 1);
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        mc.shards()[0].exec.spawn("solo", move |ctx| {
            ctx.work(10_000);
            d.store(true, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        });
        assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
        assert!(done.load(Ordering::Relaxed)); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    /// Cross-shard ping over the wire: virtual arrival identical at 1, 2
    /// and 4 workers.
    #[test]
    fn cross_shard_wire_delivery_is_worker_count_invariant() {
        let run = |workers: usize| -> (Nanos, Nanos, u64) {
            let board = MulticoreBoard::new();
            let mut mc = Multicore::new(workers, board.lookahead());
            let a = board.new_host(16);
            let b = board.new_host(16);
            let a_eth = a.ethernet.clone();
            let b_nic = b.ethernet.clone();
            let b_endpoint = b.endpoint();
            let ea = mc.add_host(a);
            let eb = mc.add_host(b);
            ea.spawn("sender", move |ctx| {
                ctx.work(5_000);
                a_eth
                    .send(b_endpoint, bytes::Bytes::from_static(b"ping"))
                    .expect("fits mtu");
            });
            let got = Arc::new(AtomicU64::new(0));
            let g = got.clone();
            let clock_b = eb.clock().clone();
            eb.spawn("receiver", move |ctx| {
                while b_nic.rx_pending() == 0 {
                    ctx.sleep(50_000);
                }
                let f = b_nic.receive().expect("pending frame");
                assert_eq!(&f.payload[..], b"ping");
                g.store(clock_b.now(), Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            });
            assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
            let st = mc.stats();
            (
                got.load(Ordering::Relaxed), // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                eb.clock().now(),
                st.mail_posted,
            )
        };
        let base = run(1);
        assert!(base.0 > 0, "frame arrived");
        assert!(base.2 >= 1, "travelled via the mailbox");
        assert_eq!(run(2), base, "2 workers diverged");
        assert_eq!(run(4), base, "4 workers diverged");
    }

    /// A control action posted mid-run fires at its virtual deliver time
    /// on the target shard, identically at every worker count.
    #[test]
    fn control_actions_execute_at_their_virtual_instant() {
        let run = |workers: usize| -> Nanos {
            let board = MulticoreBoard::new();
            let mut mc = Multicore::new(workers, board.lookahead());
            let host = board.new_host(16);
            let id = host.id;
            let exec = mc.add_host(host);
            exec.spawn("busy", |ctx| ctx.work(100_000));
            let fired = Arc::new(AtomicU64::new(0));
            let f = fired.clone();
            let clock = exec.clock().clone();
            assert!(mc.post_control(id, 40_000, move |_| {
                f.store(clock.now(), Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            }));
            assert!(
                !mc.post_control(HostId(999), 40_000, |_| {}),
                "unknown host is refused"
            );
            assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
            fired.load(Ordering::Relaxed) // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        };
        let base = run(1);
        assert!(base >= 40_000, "control action ran at its virtual instant");
        assert_eq!(run(2), base, "2 workers diverged");
    }

    #[test]
    fn mailbox_fault_injection_drops_frames() {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(1, board.lookahead());
        let a = board.new_host(16);
        let b = board.new_host(16);
        let a_eth = a.ethernet.clone();
        let b_nic = b.ethernet.clone();
        let b_endpoint = b.endpoint();
        let ea = mc.add_host(a);
        let _eb = mc.add_host(b);
        let plan = spin_fault::FaultPlan::new(11);
        plan.configure(
            spin_fault::SITE_MAILBOX,
            spin_fault::SiteConfig::fail_always(),
        );
        mc.set_fault_hook(plan.hook(spin_fault::SITE_MAILBOX));
        ea.spawn("sender", move |_| {
            a_eth
                .send(b_endpoint, bytes::Bytes::from_static(b"doomed"))
                .expect("fits mtu");
        });
        assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
        assert_eq!(b_nic.rx_pending(), 0, "the envelope was dropped");
        assert_eq!(mc.stats().mail_dropped, 1);
    }

    #[test]
    fn metrics_expose_shard_counters() {
        let board = MulticoreBoard::new();
        let mut mc = Multicore::new(1, board.lookahead());
        let a = board.new_host(16);
        let b = board.new_host(16);
        let a_eth = a.ethernet.clone();
        let b_endpoint = b.endpoint();
        let ea = mc.add_host(a);
        let _eb = mc.add_host(b);
        let obs = Obs::new(64);
        mc.wire_obs(&obs);
        ea.spawn("sender", move |_| {
            a_eth
                .send(b_endpoint, bytes::Bytes::from_static(b"m"))
                .expect("fits mtu");
        });
        assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
        let text = obs.render_prometheus();
        for needle in [
            "spin_shard_epochs_total",
            "spin_shard_mail_posted_total 1",
            "spin_shard_mail_drained_total 1",
            "spin_shard_mail_dropped_total 0",
            "spin_shard_mail_pending{shard=\"0\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(mc.stats().epochs > 0, "epochs counted");
    }

    #[test]
    fn cross_shard_raise_via_dispatcher_router() {
        let run = |workers: usize| -> (u64, Nanos) {
            let board = MulticoreBoard::new();
            let mut mc = Multicore::new(workers, board.lookahead());
            let a = board.new_host(16);
            let b = board.new_host(16);
            let disp_a = spin_core::Dispatcher::new(a.clock.clone(), a.profile.clone());
            let disp_b = spin_core::Dispatcher::new(b.clock.clone(), b.profile.clone());
            let a_id = a.id;
            let b_id = b.id;
            let ea = mc.add_host(a);
            let eb = mc.add_host(b);
            mc.wire_dispatcher(&disp_a, a_id);
            mc.wire_dispatcher(&disp_b, b_id);
            let (ev, owner) =
                disp_b.define::<u64, u64>("Shard.Pokes", spin_core::Identity::kernel("b"));
            let hits = Arc::new(AtomicU64::new(0));
            let h = hits.clone();
            owner
                .set_primary(move |x| {
                    h.fetch_add(*x, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                    *x
                })
                .expect("primary");
            ea.spawn("raiser", move |ctx| {
                ctx.work(1_000);
                // Cross-shard: the raise is posted through a's dispatcher
                // (the caller's) and delivered by b's event one cross-call
                // latency later; the result is unobservable.
                for _ in 0..3 {
                    let posted = disp_a.raise_on(b_id, &ev, 7).expect("routed");
                    assert!(posted.is_none(), "cross-shard raises are async");
                }
            });
            let _ = (eb, disp_b);
            assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
            (hits.load(Ordering::Relaxed), mc.stats().mail_posted) // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        };
        let base = run(1);
        assert_eq!(run(2), base);
    }
}
