//! `spin-dsm` — distributed shared memory, composed from the fault events
//! and the protocol stack.
//!
//! §4.1 names DSM among the services "implementors of higher level memory
//! management abstractions" can define on the translation events
//! ("distributed shared memory \[Carter et al. 91\]"). This crate builds a
//! two-node, page-granular, write-invalidate DSM entirely from public
//! interfaces:
//!
//! * `Translation.PageNotPresent` / `Translation.ProtectionFault` handlers
//!   fetch pages from the peer (blocking only the faulting strand);
//! * a UDP protocol (`FETCH_READ` / `FETCH_WRITE` / `DATA` / `NACK`)
//!   carries page images between kernels;
//! * per-page **ownership** serializes write grants: the owner downgrades
//!   or invalidates its mapping before shipping the page, so at most one
//!   node ever holds a writable copy, and read-sharing gives both nodes
//!   read-only copies.
//!
//! Transient disagreement about ownership (a grant still in flight) is
//! resolved with NACK + retry; the true owner always answers eventually.

#![forbid(unsafe_code)]

use bytes::{BufMut, BytesMut};
use spin_check::sync::Mutex;
use spin_core::Identity;
use spin_net::{IpAddr, NetStack, UdpPacket};
use spin_sal::mmu::ContextId;
use spin_sal::{PhysMem, Protection, PAGE_SHIFT, PAGE_SIZE};
use spin_sched::{Executor, KChannel};
use spin_vm::{
    FaultAction, FaultInfo, PhysAddrService, PhysAttrib, PhysRegion, TranslationService, VirtRegion,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The UDP port the DSM protocol uses.
pub const DSM_PORT: u16 = 5005;

const MSG_FETCH_READ: u8 = 1;
const MSG_FETCH_WRITE: u8 = 2;
const MSG_DATA_FRAG: u8 = 3;
const MSG_NACK: u8 = 4;
const MSG_INVALIDATE: u8 = 5;
const MSG_INVALIDATE_ACK: u8 = 6;

/// Page images are fragmented to fit any medium's MTU.
const FRAG_BYTES: usize = 1024;
const FRAGS_PER_PAGE: usize = PAGE_SIZE / FRAG_BYTES;

/// Local state of one shared page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// No local copy.
    Invalid,
    /// Read-only copy (possibly shared with the peer).
    Shared,
    /// Writable copy; the peer holds nothing.
    Exclusive,
}

struct PageInfo {
    state: PageState,
    /// Grant authority: exactly one node owns each page.
    owner: bool,
    frame: Option<Arc<PhysRegion>>,
}

/// DSM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmStats {
    pub read_fetches: u64,
    pub write_fetches: u64,
    pub pages_shipped: u64,
    pub invalidations: u64,
    pub nacks: u64,
}

struct NodeState {
    pages: Vec<PageInfo>,
    stats: DsmStats,
}

/// Strands parked waiting for a page's inbound DATA, keyed by page index.
type PageWaiters = HashMap<u32, Arc<KChannel<Option<Vec<u8>>>>>;

/// Partial page images being reassembled, keyed by page index.
type Reassembly = HashMap<u32, Vec<Option<Vec<u8>>>>;

/// One node of the two-node DSM.
pub struct DsmNode {
    stack: NetStack,
    exec: Arc<Executor>,
    trans: TranslationService,
    phys: PhysAddrService,
    mem: PhysMem,
    ctx: ContextId,
    region: Arc<VirtRegion>,
    peer: IpAddr,
    state: Arc<Mutex<NodeState>>,
    /// Waiters for inbound DATA, keyed by page index.
    waiters: Arc<Mutex<PageWaiters>>,
    /// Partial page images being reassembled, keyed by page index.
    reassembly: Arc<Mutex<Reassembly>>,
    /// Waiters for invalidation acknowledgements.
    inval_waiters: Arc<Mutex<HashMap<u32, Arc<KChannel<()>>>>>,
}

impl DsmNode {
    /// Installs a DSM node: `region` (reserved in `ctx`) is kept coherent
    /// with the peer at `peer`. `initial_owner` says whether this node
    /// starts owning (and holding Exclusive copies of) every page.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        stack: &NetStack,
        exec: &Arc<Executor>,
        trans: &TranslationService,
        phys: &PhysAddrService,
        mem: &PhysMem,
        ctx: ContextId,
        region: Arc<VirtRegion>,
        peer: IpAddr,
        initial_owner: bool,
    ) -> Arc<DsmNode> {
        trans.reserve(ctx, &region).expect("region reserved");
        let mut pages = Vec::new();
        for i in 0..region.pages() {
            let (state, frame) = if initial_owner {
                let f = phys
                    .allocate(1, PhysAttrib::default())
                    .expect("initial frames");
                let frame_id = f.with_frames(|fr| fr[0]).expect("live");
                trans
                    .map_page(ctx, region.vpn(i), frame_id, Protection::READ_WRITE)
                    .expect("initial mapping");
                (PageState::Exclusive, Some(f))
            } else {
                (PageState::Invalid, None)
            };
            pages.push(PageInfo {
                state,
                owner: initial_owner,
                frame,
            });
        }
        let node = Arc::new(DsmNode {
            stack: stack.clone(),
            exec: exec.clone(),
            trans: trans.clone(),
            phys: phys.clone(),
            mem: mem.clone(),
            ctx,
            region: region.clone(),
            peer,
            state: Arc::new(Mutex::new(NodeState {
                pages,
                stats: DsmStats::default(),
            })),
            waiters: Arc::new(Mutex::new(HashMap::new())),
            reassembly: Arc::new(Mutex::new(HashMap::new())),
            inval_waiters: Arc::new(Mutex::new(HashMap::new())),
        });

        // Protocol handler: non-blocking, runs on the protocol thread.
        let n2 = node.clone();
        spin_net::UdpSocket::bind_with(stack, DSM_PORT, "DSM", move |p| n2.on_message(p))
            .expect("bind DSM port");

        // Fault handlers: a missing page is a read fetch; a write to a
        // Shared page is a write fetch.
        let n2 = node.clone();
        let (gr_ctx, gr_region) = (ctx, region.clone());
        trans
            .events()
            .page_not_present
            .install_guarded(
                Identity::extension("DSM"),
                move |i: &FaultInfo| i.ctx == gr_ctx && gr_region.contains(i.va),
                move |i: &FaultInfo| n2.on_fault(i),
            )
            .expect("install DSM miss handler");
        let n2 = node.clone();
        let (gr_ctx, gr_region) = (ctx, region.clone());
        trans
            .events()
            .protection_fault
            .install_guarded(
                Identity::extension("DSM"),
                move |i: &FaultInfo| i.ctx == gr_ctx && gr_region.contains(i.va),
                move |i: &FaultInfo| n2.on_fault(i),
            )
            .expect("install DSM write handler");
        node
    }

    fn page_index(&self, va: u64) -> u32 {
        ((va - self.region.base()) >> PAGE_SHIFT) as u32
    }

    /// Fault path (faulting strand): fetch the page from the peer,
    /// retrying through NACKs until the true owner answers.
    fn on_fault(&self, info: &FaultInfo) -> FaultAction {
        let sctx = match self.exec.current_ctx() {
            Some(c) => c,
            None => return FaultAction::Fail,
        };
        let page = self.page_index(info.va);
        let want_write = info.access == spin_sal::mmu::Access::Write;
        // Owner-side upgrade: a write fault on a page we own in the Shared
        // state does not fetch — it invalidates the peer's read copy.
        let owner_upgrade = {
            let mut st = self.state.lock();
            if want_write {
                st.stats.write_fetches += 1;
            } else {
                st.stats.read_fetches += 1;
            }
            let p = &st.pages[page as usize];
            want_write && p.owner && p.state == PageState::Shared
        };
        if owner_upgrade {
            let ch: Arc<KChannel<()>> = KChannel::new(self.exec.clone(), 1);
            self.inval_waiters.lock().insert(page, ch.clone());
            let mut msg = BytesMut::with_capacity(5);
            msg.put_u8(MSG_INVALIDATE);
            msg.put_u32(page);
            if self
                .stack
                .udp_send(DSM_PORT, self.peer, DSM_PORT, &msg)
                .is_err()
            {
                return FaultAction::Fail;
            }
            if ch.recv(&sctx).is_none() {
                return FaultAction::Fail;
            }
            let va = self.region.base() + ((page as u64) << PAGE_SHIFT);
            if self
                .trans
                .protect_page(self.ctx, va, Protection::READ_WRITE)
                .is_err()
            {
                return FaultAction::Fail;
            }
            self.state.lock().pages[page as usize].state = PageState::Exclusive;
            return FaultAction::Resolved;
        }
        for _attempt in 0..64 {
            let ch: Arc<KChannel<Option<Vec<u8>>>> = KChannel::new(self.exec.clone(), 1);
            self.waiters.lock().insert(page, ch.clone());
            let mut msg = BytesMut::with_capacity(5);
            msg.put_u8(if want_write {
                MSG_FETCH_WRITE
            } else {
                MSG_FETCH_READ
            });
            msg.put_u32(page);
            if self
                .stack
                .udp_send(DSM_PORT, self.peer, DSM_PORT, &msg)
                .is_err()
            {
                return FaultAction::Fail;
            }
            match ch.recv(&sctx) {
                Some(Some(data)) => {
                    // Install the page locally.
                    let mut st = self.state.lock();
                    let frame_region = match st.pages[page as usize].frame.clone() {
                        Some(f) => f,
                        None => match self.phys.allocate(1, PhysAttrib::default()) {
                            Ok(f) => f,
                            Err(_) => return FaultAction::Fail,
                        },
                    };
                    let frame = match frame_region.with_frames(|f| f[0]) {
                        Ok(f) => f,
                        Err(_) => return FaultAction::Fail,
                    };
                    self.mem.write(frame, 0, &data);
                    let prot = if want_write {
                        Protection::READ_WRITE
                    } else {
                        Protection::READ
                    };
                    if self
                        .trans
                        .map_page(self.ctx, self.region.vpn(page as u64), frame, prot)
                        .is_err()
                    {
                        return FaultAction::Fail;
                    }
                    let p = &mut st.pages[page as usize];
                    p.frame = Some(frame_region);
                    p.state = if want_write {
                        PageState::Exclusive
                    } else {
                        PageState::Shared
                    };
                    if want_write {
                        p.owner = true; // ownership travelled with the grant
                    }
                    return FaultAction::Resolved;
                }
                Some(None) => {
                    // NACK: the grant may still be in flight; retry.
                    sctx.sleep(500_000);
                }
                None => return FaultAction::Fail,
            }
        }
        FaultAction::Fail
    }

    /// Protocol-thread handler for peer messages. Never blocks.
    fn on_message(&self, p: &UdpPacket) {
        if p.payload.len() < 5 {
            return;
        }
        let kind = p.payload[0];
        let page = u32::from_be_bytes(p.payload[1..5].try_into().expect("checked len"));
        match kind {
            MSG_FETCH_READ | MSG_FETCH_WRITE => {
                let want_write = kind == MSG_FETCH_WRITE;
                match self.grant(page, want_write) {
                    Some(data) => {
                        // Fragment the page image to fit any MTU.
                        for (i, chunk) in data.chunks(FRAG_BYTES).enumerate() {
                            let mut msg = BytesMut::with_capacity(7 + chunk.len());
                            msg.put_u8(MSG_DATA_FRAG);
                            msg.put_u32(page);
                            msg.put_u8(i as u8);
                            msg.put_u8(FRAGS_PER_PAGE as u8);
                            msg.extend_from_slice(chunk);
                            let _ = self.stack.udp_send(DSM_PORT, p.ip.src, DSM_PORT, &msg);
                        }
                    }
                    None => {
                        let mut msg = BytesMut::with_capacity(5);
                        msg.put_u8(MSG_NACK);
                        msg.put_u32(page);
                        self.state.lock().stats.nacks += 1;
                        let _ = self.stack.udp_send(DSM_PORT, p.ip.src, DSM_PORT, &msg);
                    }
                }
            }
            MSG_DATA_FRAG => {
                if p.payload.len() < 7 {
                    return;
                }
                let frag = p.payload[5] as usize;
                let nfrags = (p.payload[6] as usize).max(1);
                let complete = {
                    let mut re = self.reassembly.lock();
                    let slots = re.entry(page).or_insert_with(|| vec![None; nfrags]);
                    if frag < slots.len() {
                        slots[frag] = Some(p.payload[7..].to_vec());
                    }
                    if slots.iter().all(|s| s.is_some()) {
                        let mut full = Vec::with_capacity(PAGE_SIZE);
                        for s in re.remove(&page).expect("present").into_iter() {
                            full.extend_from_slice(&s.expect("checked complete"));
                        }
                        Some(full)
                    } else {
                        None
                    }
                };
                if let Some(full) = complete {
                    if let Some(ch) = self.waiters.lock().remove(&page) {
                        ch.try_push(Some(full));
                    }
                }
            }
            MSG_NACK => {
                if let Some(ch) = self.waiters.lock().remove(&page) {
                    ch.try_push(None);
                }
            }
            MSG_INVALIDATE => {
                // The owner is upgrading: drop our read copy and ack.
                {
                    let mut st = self.state.lock();
                    let info = &mut st.pages[page as usize];
                    let vpn = self.region.vpn(page as u64);
                    let _ = self.trans.mmu().remove(self.ctx, vpn);
                    info.state = PageState::Invalid;
                    st.stats.invalidations += 1;
                }
                let mut msg = BytesMut::with_capacity(5);
                msg.put_u8(MSG_INVALIDATE_ACK);
                msg.put_u32(page);
                let _ = self.stack.udp_send(DSM_PORT, p.ip.src, DSM_PORT, &msg);
            }
            MSG_INVALIDATE_ACK => {
                if let Some(ch) = self.inval_waiters.lock().remove(&page) {
                    ch.try_push(());
                }
            }
            _ => {}
        }
    }

    /// Owner-side grant: ship the page, downgrading or invalidating the
    /// local copy. Returns `None` (NACK) when this node is not the owner.
    fn grant(&self, page: u32, want_write: bool) -> Option<Vec<u8>> {
        let mut st = self.state.lock();
        let info = &mut st.pages[page as usize];
        if !info.owner || info.state == PageState::Invalid {
            return None;
        }
        let frame_region = info.frame.clone()?;
        let frame = frame_region.with_frames(|f| f[0]).ok()?;
        let mut data = vec![0u8; PAGE_SIZE];
        self.mem.read(frame, 0, &mut data);
        let vpn = self.region.vpn(page as u64);
        if want_write {
            // Exclusive transfer: drop the local copy and the ownership.
            let _ = self.trans.mmu().remove(self.ctx, vpn);
            info.state = PageState::Invalid;
            info.owner = false;
            st.stats.invalidations += 1;
        } else {
            // Read share: keep a read-only copy and the grant authority.
            let _ = self.trans.protect_page(
                self.ctx,
                self.region.base() + ((page as u64) << PAGE_SHIFT),
                Protection::READ,
            );
            info.state = PageState::Shared;
        }
        st.stats.pages_shipped += 1;
        Some(data)
    }

    /// This node's counters.
    pub fn stats(&self) -> DsmStats {
        self.state.lock().stats
    }

    /// The shared region's base virtual address.
    pub fn base(&self) -> u64 {
        self.region.base()
    }

    /// The addressing context the region lives in.
    pub fn context(&self) -> ContextId {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_core::Dispatcher;
    use spin_net::{AddressMap, Medium, TwoHosts};

    struct DsmRig {
        rig: TwoHosts,
        node_a: Arc<DsmNode>,
        node_b: Arc<DsmNode>,
        trans_a: TranslationService,
        trans_b: TranslationService,
        mem_a: PhysMem,
        mem_b: PhysMem,
    }

    fn dsm_rig(pages: u64) -> DsmRig {
        let rig = TwoHosts::new();
        let _ = AddressMap::new();
        let disp_a = Dispatcher::new(rig.board.clock.clone(), rig.board.profile.clone());
        let disp_b = Dispatcher::new(rig.board.clock.clone(), rig.board.profile.clone());
        let trans_a = TranslationService::new(
            rig.host_a.mmu.clone(),
            rig.board.clock.clone(),
            rig.board.profile.clone(),
            &disp_a,
        );
        let trans_b = TranslationService::new(
            rig.host_b.mmu.clone(),
            rig.board.clock.clone(),
            rig.board.profile.clone(),
            &disp_b,
        );
        let phys_a = PhysAddrService::new(rig.host_a.mem.clone(), &disp_a);
        let phys_b = PhysAddrService::new(rig.host_b.mem.clone(), &disp_b);
        let virt = spin_vm::VirtAddrService::new();
        // Both nodes agree on the shared region's virtual placement.
        let region = virt.allocate(pages).unwrap();
        let ctx_a = trans_a.create();
        let ctx_b = trans_b.create();
        let node_a = DsmNode::install(
            &rig.a,
            &rig.exec,
            &trans_a,
            &phys_a,
            &rig.host_a.mem,
            ctx_a,
            region.clone(),
            rig.b.ip_on(Medium::Ethernet),
            true, // A starts owning everything
        );
        let node_b = DsmNode::install(
            &rig.b,
            &rig.exec,
            &trans_b,
            &phys_b,
            &rig.host_b.mem,
            ctx_b,
            region,
            rig.a.ip_on(Medium::Ethernet),
            false,
        );
        let (mem_a, mem_b) = (rig.host_a.mem.clone(), rig.host_b.mem.clone());
        DsmRig {
            rig,
            node_a,
            node_b,
            trans_a,
            trans_b,
            mem_a,
            mem_b,
        }
    }

    struct ShardedDsm {
        rig: spin_net::ShardedPair,
        node_a: Arc<DsmNode>,
        node_b: Arc<DsmNode>,
        trans_a: TranslationService,
        trans_b: TranslationService,
        mem_a: PhysMem,
        mem_b: PhysMem,
    }

    /// The DSM rig in multicore mode: each node is a kernel shard with
    /// its own executor and dispatcher; coherence traffic crosses the
    /// shard boundary through the wire mailboxes.
    fn sharded_dsm(pages: u64, workers: usize) -> ShardedDsm {
        let rig = spin_net::ShardedPair::new(workers);
        let trans_a = TranslationService::new(
            rig.host_a.mmu.clone(),
            rig.host_a.clock.clone(),
            rig.host_a.profile.clone(),
            &rig.disp_a,
        );
        let trans_b = TranslationService::new(
            rig.host_b.mmu.clone(),
            rig.host_b.clock.clone(),
            rig.host_b.profile.clone(),
            &rig.disp_b,
        );
        let phys_a = PhysAddrService::new(rig.host_a.mem.clone(), &rig.disp_a);
        let phys_b = PhysAddrService::new(rig.host_b.mem.clone(), &rig.disp_b);
        let virt = spin_vm::VirtAddrService::new();
        let region = virt.allocate(pages).unwrap();
        let (ctx_a, ctx_b) = (trans_a.create(), trans_b.create());
        let node_a = DsmNode::install(
            &rig.a,
            &rig.exec_a,
            &trans_a,
            &phys_a,
            &rig.host_a.mem,
            ctx_a,
            region.clone(),
            rig.b.ip_on(spin_net::Medium::Ethernet),
            true,
        );
        let node_b = DsmNode::install(
            &rig.b,
            &rig.exec_b,
            &trans_b,
            &phys_b,
            &rig.host_b.mem,
            ctx_b,
            region,
            rig.a.ip_on(spin_net::Medium::Ethernet),
            false,
        );
        let (mem_a, mem_b) = (rig.host_a.mem.clone(), rig.host_b.mem.clone());
        ShardedDsm {
            rig,
            node_a,
            node_b,
            trans_a,
            trans_b,
            mem_a,
            mem_b,
        }
    }

    #[test]
    fn sharded_coherence_is_worker_count_invariant() {
        let run = |workers: usize| -> (Vec<u8>, DsmStats, DsmStats, u64, u64) {
            let r = sharded_dsm(2, workers);
            let (ta, ma, ca, base) = (
                r.trans_a.clone(),
                r.mem_a.clone(),
                r.node_a.context(),
                r.node_a.base(),
            );
            let (tb, mb, cb) = (r.trans_b.clone(), r.mem_b.clone(), r.node_b.context());
            let seen = Arc::new(Mutex::new(Vec::new()));
            let s2 = seen.clone();
            r.rig.exec_a.spawn("writer-a", move |ctx| {
                ta.write(ca, base + 10, b"cross-shard!", &ma).unwrap();
                ctx.sleep(1_000_000);
            });
            r.rig.exec_b.spawn("reader-b", move |ctx| {
                // B's write fetch migrates the page across the shard
                // boundary, invalidating A's exclusive copy.
                tb.write(cb, base + 64, b"B", &mb).unwrap();
                ctx.sleep(5_000_000);
                let mut buf = [0u8; 12];
                tb.read(cb, base + 10, &mut buf, &mb).unwrap();
                s2.lock().extend_from_slice(&buf);
            });
            let outcome = r.rig.mc.run_until_idle();
            assert_eq!(outcome, spin_sched::IdleOutcome::AllComplete);
            let seen: Vec<u8> = seen.lock().clone();
            (
                seen,
                r.node_a.stats(),
                r.node_b.stats(),
                r.rig.host_a.clock.now(),
                r.rig.host_b.clock.now(),
            )
        };
        let base = run(1);
        assert_eq!(&base.0[..], b"cross-shard!");
        assert!(base.2.write_fetches >= 1, "B fetched across the boundary");
        assert!(base.1.invalidations + base.1.pages_shipped >= 1);
        assert_eq!(run(2), base, "2 workers diverged");
        assert_eq!(run(4), base, "4 workers diverged");
    }

    #[test]
    fn written_data_becomes_visible_on_the_peer() {
        let r = dsm_rig(4);
        let (ta, ma, ca, base) = (
            r.trans_a.clone(),
            r.mem_a.clone(),
            r.node_a.context(),
            r.node_a.base(),
        );
        let (tb, mb, cb) = (r.trans_b.clone(), r.mem_b.clone(), r.node_b.context());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        r.rig.exec.spawn("writer-a", move |ctx| {
            ta.write(ca, base + 10, b"hello from A", &ma).unwrap();
            ctx.sleep(1_000_000);
        });
        r.rig.exec.spawn("reader-b", move |ctx| {
            ctx.sleep(5_000_000); // let A write first
            let mut buf = [0u8; 12];
            tb.read(cb, base + 10, &mut buf, &mb).unwrap();
            s2.lock().extend_from_slice(&buf);
        });
        r.rig.exec.run_until_idle();
        assert_eq!(&seen.lock()[..], b"hello from A");
        assert!(r.node_b.stats().read_fetches >= 1);
        assert!(r.node_a.stats().pages_shipped >= 1);
    }

    #[test]
    fn write_invalidation_migrates_exclusive_ownership() {
        let r = dsm_rig(2);
        let (ta, ma, ca, base) = (
            r.trans_a.clone(),
            r.mem_a.clone(),
            r.node_a.context(),
            r.node_a.base(),
        );
        let (tb, mb, cb) = (r.trans_b.clone(), r.mem_b.clone(), r.node_b.context());
        let final_at_a = Arc::new(Mutex::new(Vec::new()));
        let f2 = final_at_a.clone();
        r.rig.exec.spawn("b-takes-over", move |ctx| {
            // B writes: fetches exclusive, invalidating A's copy.
            tb.write(cb, base, b"B owns this now", &mb).unwrap();
            ctx.sleep(1_000_000);
        });
        r.rig.exec.spawn("a-reads-back", move |ctx| {
            ctx.sleep(20_000_000); // after B's takeover
                                   // A's copy was invalidated; this read fetches from B.
            let mut buf = [0u8; 15];
            ta.read(ca, base, &mut buf, &ma).unwrap();
            f2.lock().extend_from_slice(&buf);
        });
        r.rig.exec.run_until_idle();
        assert_eq!(&final_at_a.lock()[..], b"B owns this now");
        assert!(
            r.node_a.stats().invalidations >= 1,
            "A's grant invalidated its copy"
        );
        assert!(r.node_a.stats().read_fetches >= 1, "A had to fetch back");
    }

    #[test]
    fn ping_pong_writes_stay_coherent() {
        let r = dsm_rig(1);
        let (ta, ma, ca, base) = (
            r.trans_a.clone(),
            r.mem_a.clone(),
            r.node_a.context(),
            r.node_a.base(),
        );
        let (tb, mb, cb) = (r.trans_b.clone(), r.mem_b.clone(), r.node_b.context());
        const ROUNDS: u64 = 6;
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        r.rig.exec.spawn("a-side", move |ctx| {
            for round in 0..ROUNDS {
                // Wait for our turn (value == 2*round).
                loop {
                    let mut b = [0u8; 8];
                    ta.read(ca, base, &mut b, &ma).unwrap();
                    if u64::from_be_bytes(b) == 2 * round {
                        break;
                    }
                    ctx.sleep(2_000_000);
                }
                ta.write(ca, base, &(2 * round + 1).to_be_bytes(), &ma)
                    .unwrap();
            }
        });
        r.rig.exec.spawn("b-side", move |ctx| {
            for round in 0..ROUNDS {
                loop {
                    let mut b = [0u8; 8];
                    tb.read(cb, base, &mut b, &mb).unwrap();
                    if u64::from_be_bytes(b) == 2 * round + 1 {
                        break;
                    }
                    ctx.sleep(2_000_000);
                }
                tb.write(cb, base, &(2 * round + 2).to_be_bytes(), &mb)
                    .unwrap();
                l2.lock().push(2 * round + 2);
            }
        });
        let outcome = r.rig.exec.run_until_idle();
        assert_eq!(outcome, spin_sched::IdleOutcome::AllComplete);
        assert_eq!(*log.lock(), (1..=ROUNDS).map(|r| 2 * r).collect::<Vec<_>>());
        // Pages bounced back and forth.
        assert!(r.node_a.stats().write_fetches + r.node_b.stats().write_fetches >= ROUNDS);
    }
}
