//! Per-host interrupt controller.
//!
//! Devices *post* interrupts (typically from a timer callback when a disk
//! operation or packet delivery completes); the executor *dispatches* them
//! to registered handlers at safe points, charging the interrupt overhead
//! from the machine profile. Handlers run in interrupt context — in SPIN
//! "protocol processing is done by a separately scheduled kernel thread
//! outside of the interrupt handler" (§5.3), which the network code in
//! `spin-net` reproduces by having its interrupt handlers merely unblock a
//! protocol thread.

use crate::clock::Clock;
use crate::cost::MachineProfile;
use spin_check::sync::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A device interrupt vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IrqVector(pub u32);

/// A posted interrupt awaiting dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Irq {
    pub vector: IrqVector,
}

type IrqHandler = Arc<dyn Fn() + Send + Sync>;

struct IrqState {
    pending: VecDeque<Irq>,
    handlers: HashMap<IrqVector, IrqHandler>,
    /// Interrupts posted for vectors with no handler yet.
    dropped: u64,
}

/// The interrupt controller for one simulated host.
#[derive(Clone)]
pub struct IrqController {
    state: Arc<Mutex<IrqState>>,
    clock: Clock,
    profile: Arc<MachineProfile>,
}

impl IrqController {
    /// Creates a controller with no handlers.
    pub fn new(clock: Clock, profile: Arc<MachineProfile>) -> Self {
        IrqController {
            state: Arc::new(Mutex::new(IrqState {
                pending: VecDeque::new(),
                handlers: HashMap::new(),
                dropped: 0,
            })),
            clock,
            profile,
        }
    }

    /// Registers the handler for a vector, replacing any previous one.
    pub fn register(&self, vector: IrqVector, handler: impl Fn() + Send + Sync + 'static) {
        self.state.lock().handlers.insert(vector, Arc::new(handler));
    }

    /// Posts an interrupt; it stays pending until dispatched.
    pub fn post(&self, vector: IrqVector) {
        self.state.lock().pending.push_back(Irq { vector });
    }

    /// Whether any interrupt is pending.
    pub fn has_pending(&self) -> bool {
        !self.state.lock().pending.is_empty()
    }

    /// Dispatches all pending interrupts in posting order, charging the
    /// profile's interrupt overhead for each. Returns how many ran.
    pub fn dispatch_pending(&self) -> usize {
        let mut dispatched = 0;
        loop {
            let irq = match self.state.lock().pending.pop_front() {
                Some(i) => i,
                None => break,
            };
            self.clock.advance(self.profile.interrupt_overhead);
            // Clone the Arc out so the handler runs without holding the
            // state lock; handlers may post further IRQs or register others.
            let handler = self.state.lock().handlers.get(&irq.vector).cloned();
            match handler {
                Some(f) => f(),
                None => self.state.lock().dropped += 1,
            }
            dispatched += 1;
        }
        dispatched
    }

    /// Number of interrupts dropped for lack of a handler.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::{AtomicUsize, Ordering};

    fn ctl() -> IrqController {
        IrqController::new(Clock::new(), Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    #[test]
    fn dispatch_runs_handlers_in_order() {
        let c = ctl();
        let log = Arc::new(Mutex::new(Vec::new()));
        for v in [1u32, 2] {
            let log = log.clone();
            c.register(IrqVector(v), move || log.lock().push(v));
        }
        c.post(IrqVector(2));
        c.post(IrqVector(1));
        assert!(c.has_pending());
        assert_eq!(c.dispatch_pending(), 2);
        assert_eq!(*log.lock(), vec![2, 1]);
        assert!(!c.has_pending());
    }

    #[test]
    fn unhandled_interrupts_are_counted() {
        let c = ctl();
        c.post(IrqVector(9));
        c.dispatch_pending();
        assert_eq!(c.dropped(), 1);
    }

    #[test]
    fn handlers_may_post_more_interrupts() {
        let c = ctl();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let count2 = count.clone();
        c.register(IrqVector(1), move || {
            // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            if count2.fetch_add(1, Ordering::Relaxed) == 0 {
                c2.post(IrqVector(1));
            }
        });
        c.post(IrqVector(1));
        assert_eq!(c.dispatch_pending(), 2);
        assert_eq!(count.load(Ordering::Relaxed), 2); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn dispatch_charges_interrupt_overhead() {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let c = IrqController::new(clock.clone(), profile.clone());
        c.register(IrqVector(1), || {});
        c.post(IrqVector(1));
        c.post(IrqVector(1));
        c.dispatch_pending();
        assert_eq!(clock.now(), 2 * profile.interrupt_overhead);
    }
}
