//! Machine cost profile for the simulated DEC Alpha AXP 3000/400.
//!
//! The paper measured SPIN on 133 MHz Alpha workstations (74 SPECint 92,
//! 64 MB memory, 512 KB unified external cache, HP C2247-300 disk, 10 Mb/s
//! Lance Ethernet, FORE TCA-100 ATM). We express every primitive hardware
//! cost in virtual nanoseconds on that machine. Higher layers (the SPIN
//! kernel, and the OSF/1 and Mach baselines in `spin-baseline`) compose the
//! *same* primitives differently, so the comparisons in Tables 2-6 reflect
//! structural differences, not per-system fudge factors.
//!
//! Calibration sources, all from the paper itself:
//!
//! * protected in-kernel call: 0.13 µs (Table 2) — an inter-module call,
//! * SPIN null system call: 4 µs; OSF/1: 5 µs; Mach: 7 µs (Table 2),
//! * SPIN kernel-thread Ping-Pong: 17 µs (Table 3),
//! * usable ATM bandwidth is PIO-limited at roughly 53 Mb/s,
//! * the minimum round trip is "roughly 250 µs on Ethernet and 100 µs on
//!   ATM" (§5.3), which bounds wire plus interrupt costs.

/// Nanoseconds per CPU cycle at 133 MHz.
pub const CYCLE_NS: f64 = 7.52;

/// Converts a cycle count to virtual nanoseconds on the 133 MHz Alpha.
#[inline]
pub fn cycles(n: u64) -> u64 {
    (n as f64 * CYCLE_NS) as u64
}

/// Primitive hardware and compiler costs, in virtual nanoseconds.
///
/// All simulated work is charged through one of these fields; the profile is
/// therefore the single calibration point of the reproduction. See the
/// module documentation for the sources of each value.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// A call within one module (compiler fast path).
    pub intra_module_call: u64,
    /// A call across a module/interface boundary. The paper notes its
    /// Modula-3 compiler made these "roughly twice as slow" as intra-module
    /// calls; this is also the cost of a protected in-kernel call (0.13 µs).
    pub inter_module_call: u64,
    /// Entering the kernel on a trap (mode switch, register save, PAL code).
    pub trap_entry: u64,
    /// Returning from the kernel to user mode.
    pub trap_exit: u64,
    /// A fixed, table-driven system-call dispatch (the OSF/1 and Mach path
    /// from trap handler to the C system-call routine).
    pub fixed_syscall_dispatch: u64,
    /// Saving one processor context and loading another (registers + stack).
    pub context_switch: u64,
    /// One scheduling decision (queue manipulation + policy).
    pub sched_decision: u64,
    /// Synchronization primitive (lock/unlock or signal) on this CPU.
    pub sync_op: u64,
    /// Creating a kernel thread context (stack carve-out, queue insert).
    pub thread_create: u64,
    /// Switching address spaces (ASN change plus the cache/TLB disturbance
    /// it causes on this machine). Dominates cross-address-space calls.
    pub as_switch: u64,
    /// Setting up a user-level thread context (stack, descriptor).
    pub user_thread_setup: u64,
    /// Filling one TLB entry after a miss (software miss handler).
    pub tlb_fill: u64,
    /// Installing, removing or changing one page-table entry.
    pub pte_update: u64,
    /// Invalidating one TLB entry.
    pub tlb_invalidate: u64,
    /// One pmap-level page operation beyond the raw PTE write (physical
    /// map lookup, attribute bookkeeping). Calibrated to Table 4's SPIN
    /// Prot100 (213 µs ⇒ ~2 µs/page inclusive).
    pub pmap_op: u64,
    /// Fixed per-call work of a VM service operation reached from an
    /// application-specific syscall (capability validation, region
    /// lookup). Calibrated to Table 4's SPIN Prot1 (16 µs).
    pub vm_call_fixed: u64,
    /// Saving fault state before dispatching a translation-fault event
    /// (registers, fault address bookkeeping).
    pub vm_fault_save: u64,
    /// Copying one byte memory-to-memory (~33 MB/s for uncached streaming
    /// data on this machine's 512 KB external cache).
    pub copy_per_byte_ns_x100: u64,
    /// Moving one byte over programmed I/O (word-at-a-time to the FORE card;
    /// limits usable ATM bandwidth to ~53 Mb/s).
    pub pio_per_byte_ns_x100: u64,
    /// Setting up one DMA transfer (descriptor write + doorbell).
    pub dma_setup: u64,
    /// Fielding one device interrupt (dispatch to the handler, EOI).
    pub interrupt_overhead: u64,
    /// Fixed per-packet device driver CPU overhead (buffer management,
    /// descriptor handling, protocol glue). The paper's unoptimized Lance
    /// and FORE drivers spend heavily here; this is what makes the video
    /// server's CPU grow with client count (Figure 6).
    pub driver_per_packet: u64,
    /// Disk: average seek time.
    pub disk_seek: u64,
    /// Disk: average rotational delay (5400 RPM class).
    pub disk_rotation: u64,
    /// Disk: transfer of one 8 KB block at ~4 MB/s.
    pub disk_block_transfer: u64,
    /// Dispatcher: fixed cost of an event raise that cannot use the
    /// direct-call fast path (handler list lookup).
    pub event_raise_base: u64,
    /// Dispatcher: evaluating one guard predicate.
    pub guard_eval: u64,
    /// Dispatcher: invoking one handler (on top of the call itself).
    pub handler_invoke: u64,
    /// Allocating a small object from the kernel heap fast path.
    pub heap_alloc: u64,
    /// Number of CPUs on the board (multicore mode shards the kernel one
    /// executor per CPU; the shared-timeline mode ignores this).
    pub cpus: usize,
    /// One-way latency of a cross-core call (inter-processor interrupt +
    /// mailbox write). Also the conservative-PDES lookahead floor: no
    /// cross-shard effect lands sooner than this.
    pub xcall_latency: u64,
}

impl MachineProfile {
    /// The paper's testbed: a DEC Alpha AXP 3000/400 at 133 MHz.
    pub fn alpha_axp_3000_400() -> Self {
        MachineProfile {
            intra_module_call: 65,  // ~9 cycles
            inter_module_call: 130, // 0.13 µs (Table 2)
            trap_entry: 1_700,
            trap_exit: 1_700,
            fixed_syscall_dispatch: 1_600, // OSF/1: 5 µs total syscall
            context_switch: 5_200,
            sched_decision: 900,
            sync_op: 650,
            thread_create: 6_000,
            as_switch: 34_000,
            user_thread_setup: 45_000,
            tlb_fill: 400,
            pte_update: 500,
            tlb_invalidate: 300,
            pmap_op: 1_200,
            vm_call_fixed: 9_000,
            vm_fault_save: 2_500,
            copy_per_byte_ns_x100: 3_000, // 30 ns/byte ≈ 33 MB/s streaming
            pio_per_byte_ns_x100: 15_000, // 150 ns/byte ≈ 53 Mb/s cap
            dma_setup: 2_000,
            interrupt_overhead: 4_000,
            driver_per_packet: 60_000,
            disk_seek: 10_000_000,
            disk_rotation: 5_500_000,
            disk_block_transfer: 2_000_000, // 8 KB at ~4 MB/s
            event_raise_base: 260,
            guard_eval: 290,
            handler_invoke: 190,
            heap_alloc: 400,
            cpus: 4,
            xcall_latency: 2_000,
        }
    }

    /// Cost of copying `n` bytes memory-to-memory.
    #[inline]
    pub fn copy(&self, n: usize) -> u64 {
        (n as u64 * self.copy_per_byte_ns_x100) / 100
    }

    /// CPU cost of pushing `n` bytes through programmed I/O.
    #[inline]
    pub fn pio(&self, n: usize) -> u64 {
        (n as u64 * self.pio_per_byte_ns_x100) / 100
    }

    /// Cost of a full user→kernel→user round trip with a fixed dispatcher
    /// (the conventional null system call, minus the work itself).
    #[inline]
    pub fn syscall_round_trip(&self) -> u64 {
        self.trap_entry + self.fixed_syscall_dispatch + self.trap_exit
    }
}

impl Default for MachineProfile {
    fn default() -> Self {
        Self::alpha_axp_3000_400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion_matches_clock_rate() {
        // 133 MHz => 133 cycles per microsecond.
        assert_eq!(cycles(133), 1000);
    }

    #[test]
    fn in_kernel_call_is_paper_value() {
        let p = MachineProfile::alpha_axp_3000_400();
        // Table 2: protected in-kernel call is 0.13 µs.
        assert_eq!(p.inter_module_call, 130);
    }

    #[test]
    fn osf1_syscall_near_five_microseconds() {
        let p = MachineProfile::alpha_axp_3000_400();
        let us = p.syscall_round_trip() as f64 / 1000.0;
        assert!((4.5..5.5).contains(&us), "got {us} µs");
    }

    #[test]
    fn pio_throughput_is_pio_limited() {
        let p = MachineProfile::alpha_axp_3000_400();
        // 150 ns/byte ≈ 6.7 MB/s ≈ 53 Mb/s, the paper's usable ATM cap.
        let mbps = 8.0 * 1e9 / (p.pio(1_000_000) as f64);
        assert!((48.0..58.0).contains(&mbps), "got {mbps} Mb/s");
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let p = MachineProfile::alpha_axp_3000_400();
        assert_eq!(p.copy(0), 0);
        assert_eq!(p.copy(200), 2 * p.copy(100));
    }
}
