//! The simulated memory-management unit: addressing contexts, page tables,
//! protection bits and a TLB.
//!
//! This is the hardware that the `Translation` service in `spin-vm` drives.
//! The sal interface matches the paper's description — "install a page table
//! entry" — and every operation charges the machine profile for PTE updates,
//! TLB fills and invalidations.

use crate::clock::Clock;
use crate::cost::MachineProfile;
use crate::mem::FrameId;
use crate::PAGE_SHIFT;
use spin_check::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an addressing context (an address-space number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u32);

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Protection {
    pub read: bool,
    pub write: bool,
    pub execute: bool,
}

impl Protection {
    /// No access at all (the page is mapped but unreadable).
    pub const NONE: Protection = Protection {
        read: false,
        write: false,
        execute: false,
    };
    /// Read-only access.
    pub const READ: Protection = Protection {
        read: true,
        write: false,
        execute: false,
    };
    /// Read and write access.
    pub const READ_WRITE: Protection = Protection {
        read: true,
        write: true,
        execute: false,
    };
    /// Read and execute access.
    pub const READ_EXECUTE: Protection = Protection {
        read: true,
        write: false,
        execute: true,
    };
    /// Full access.
    pub const ALL: Protection = Protection {
        read: true,
        write: true,
        execute: true,
    };

    /// Whether these bits permit the given access.
    #[inline]
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Execute => self.execute,
        }
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
    Execute,
}

/// A fault reported by the MMU during translation.
///
/// The MMU cannot distinguish "allocated but unmapped" from "never
/// allocated"; both surface as [`MmuFault::Miss`]. The `Translation` service
/// in `spin-vm` consults the `VirtAddr` service to turn a miss into either
/// `PageNotPresent` or `BadAddress`, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuFault {
    /// The addressing context does not exist.
    NoSuchContext(ContextId),
    /// No translation for this virtual page.
    Miss {
        ctx: ContextId,
        vpn: u64,
        access: Access,
    },
    /// A translation exists but forbids the access.
    Protection {
        ctx: ContextId,
        vpn: u64,
        access: Access,
        have: Protection,
    },
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    pub frame: FrameId,
    pub prot: Protection,
    /// Set by the MMU on any successful write translation; the basis of the
    /// paper's `Dirty` query (Table 4), which OSF/1 and Mach cannot express.
    pub dirty: bool,
    /// Set by the MMU on any successful translation.
    pub referenced: bool,
}

/// A per-context page table (single flat level; the shape of the table is
/// not observable through the sal interface).
#[derive(Debug, Default, Clone)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// Number of installed translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

const TLB_SLOTS: usize = 64;

/// A direct-mapped translation lookaside buffer.
///
/// 64 slots indexed by virtual page number; each slot remembers the
/// addressing context it was filled for. `spin-bench` reproduces the TLB
/// fill cost of fault paths through this cache.
#[derive(Debug)]
pub struct Tlb {
    slots: Vec<Option<(ContextId, u64, Pte)>>,
    pub hits: u64,
    pub misses: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb {
            slots: vec![None; TLB_SLOTS],
            hits: 0,
            misses: 0,
        }
    }
}

impl Tlb {
    fn slot(vpn: u64) -> usize {
        (vpn as usize) % TLB_SLOTS
    }

    fn lookup(&mut self, ctx: ContextId, vpn: u64) -> Option<Pte> {
        match self.slots[Self::slot(vpn)] {
            Some((c, v, pte)) if c == ctx && v == vpn => {
                self.hits += 1;
                Some(pte)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn fill(&mut self, ctx: ContextId, vpn: u64, pte: Pte) {
        self.slots[Self::slot(vpn)] = Some((ctx, vpn, pte));
    }

    fn invalidate(&mut self, ctx: ContextId, vpn: u64) {
        if let Some((c, v, _)) = self.slots[Self::slot(vpn)] {
            if c == ctx && v == vpn {
                self.slots[Self::slot(vpn)] = None;
            }
        }
    }

    fn invalidate_context(&mut self, ctx: ContextId) {
        for s in &mut self.slots {
            if matches!(s, Some((c, _, _)) if *c == ctx) {
                *s = None;
            }
        }
    }
}

struct MmuState {
    contexts: HashMap<ContextId, PageTable>,
    tlb: Tlb,
    next_ctx: u32,
}

/// The simulated MMU for one host.
///
/// Clones share state. All mutating operations charge the machine profile
/// through the shared clock.
#[derive(Clone)]
pub struct Mmu {
    state: Arc<Mutex<MmuState>>,
    clock: Clock,
    profile: Arc<MachineProfile>,
}

impl Mmu {
    /// Creates an MMU with no addressing contexts.
    pub fn new(clock: Clock, profile: Arc<MachineProfile>) -> Self {
        Mmu {
            state: Arc::new(Mutex::new(MmuState {
                contexts: HashMap::new(),
                tlb: Tlb::default(),
                next_ctx: 1,
            })),
            clock,
            profile,
        }
    }

    /// Creates a fresh addressing context.
    pub fn create_context(&self) -> ContextId {
        let mut st = self.state.lock();
        let id = ContextId(st.next_ctx);
        st.next_ctx += 1;
        st.contexts.insert(id, PageTable::default());
        self.clock.advance(self.profile.pte_update);
        id
    }

    /// Destroys a context, dropping all of its translations.
    pub fn destroy_context(&self, ctx: ContextId) -> Result<(), MmuFault> {
        let mut st = self.state.lock();
        st.contexts
            .remove(&ctx)
            .ok_or(MmuFault::NoSuchContext(ctx))?;
        st.tlb.invalidate_context(ctx);
        self.clock.advance(self.profile.tlb_invalidate);
        Ok(())
    }

    /// Installs (or replaces) the translation for `vpn`.
    pub fn install(
        &self,
        ctx: ContextId,
        vpn: u64,
        frame: FrameId,
        prot: Protection,
    ) -> Result<(), MmuFault> {
        let mut st = self.state.lock();
        let table = st
            .contexts
            .get_mut(&ctx)
            .ok_or(MmuFault::NoSuchContext(ctx))?;
        table.entries.insert(
            vpn,
            Pte {
                frame,
                prot,
                dirty: false,
                referenced: false,
            },
        );
        st.tlb.invalidate(ctx, vpn);
        self.clock.advance(self.profile.pte_update);
        Ok(())
    }

    /// Removes the translation for `vpn`. Returns the old entry if present.
    pub fn remove(&self, ctx: ContextId, vpn: u64) -> Result<Option<Pte>, MmuFault> {
        let mut st = self.state.lock();
        let table = st
            .contexts
            .get_mut(&ctx)
            .ok_or(MmuFault::NoSuchContext(ctx))?;
        let old = table.entries.remove(&vpn);
        st.tlb.invalidate(ctx, vpn);
        self.clock
            .advance(self.profile.pte_update + self.profile.tlb_invalidate);
        Ok(old)
    }

    /// Changes the protection on an existing translation.
    pub fn protect(&self, ctx: ContextId, vpn: u64, prot: Protection) -> Result<(), MmuFault> {
        let mut st = self.state.lock();
        let table = st
            .contexts
            .get_mut(&ctx)
            .ok_or(MmuFault::NoSuchContext(ctx))?;
        match table.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.prot = prot;
                st.tlb.invalidate(ctx, vpn);
                self.clock
                    .advance(self.profile.pte_update + self.profile.tlb_invalidate);
                Ok(())
            }
            None => Err(MmuFault::Miss {
                ctx,
                vpn,
                access: Access::Read,
            }),
        }
    }

    /// Reads the page-table entry for `vpn` without charging translation
    /// costs (the paper's `Dirty`/`ExamineMapping` query path).
    pub fn examine(&self, ctx: ContextId, vpn: u64) -> Result<Option<Pte>, MmuFault> {
        let st = self.state.lock();
        let table = st.contexts.get(&ctx).ok_or(MmuFault::NoSuchContext(ctx))?;
        Ok(table.entries.get(&vpn).copied())
    }

    /// Translates a virtual address for `access`, updating TLB and
    /// referenced/dirty bits, and returns the physical frame.
    pub fn translate(&self, ctx: ContextId, va: u64, access: Access) -> Result<FrameId, MmuFault> {
        let vpn = va >> PAGE_SHIFT;
        let mut st = self.state.lock();
        if !st.contexts.contains_key(&ctx) {
            return Err(MmuFault::NoSuchContext(ctx));
        }
        // TLB first.
        if let Some(pte) = st.tlb.lookup(ctx, vpn) {
            if pte.prot.allows(access) {
                if access == Access::Write {
                    // Keep the page table's dirty bit authoritative.
                    let table = st.contexts.get_mut(&ctx).expect("checked above");
                    if let Some(e) = table.entries.get_mut(&vpn) {
                        e.dirty = true;
                    }
                }
                return Ok(pte.frame);
            }
            return Err(MmuFault::Protection {
                ctx,
                vpn,
                access,
                have: pte.prot,
            });
        }
        // TLB miss: walk the table and charge the fill.
        self.clock.advance(self.profile.tlb_fill);
        let table = st.contexts.get_mut(&ctx).expect("checked above");
        match table.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.referenced = true;
                if !pte.prot.allows(access) {
                    return Err(MmuFault::Protection {
                        ctx,
                        vpn,
                        access,
                        have: pte.prot,
                    });
                }
                if access == Access::Write {
                    pte.dirty = true;
                }
                let snapshot = *pte;
                st.tlb.fill(ctx, vpn, snapshot);
                Ok(snapshot.frame)
            }
            None => Err(MmuFault::Miss { ctx, vpn, access }),
        }
    }

    /// TLB hit/miss counters, for benchmarks.
    pub fn tlb_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.tlb.hits, st.tlb.misses)
    }

    /// Number of translations installed in a context.
    pub fn mapping_count(&self, ctx: ContextId) -> Result<usize, MmuFault> {
        let st = self.state.lock();
        Ok(st
            .contexts
            .get(&ctx)
            .ok_or(MmuFault::NoSuchContext(ctx))?
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(Clock::new(), Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    #[test]
    fn translate_unmapped_is_miss() {
        let m = mmu();
        let ctx = m.create_context();
        assert_eq!(
            m.translate(ctx, 0x4000, Access::Read),
            Err(MmuFault::Miss {
                ctx,
                vpn: 0x4000 >> PAGE_SHIFT,
                access: Access::Read
            })
        );
    }

    #[test]
    fn install_translate_remove() {
        let m = mmu();
        let ctx = m.create_context();
        m.install(ctx, 5, FrameId(9), Protection::READ_WRITE)
            .unwrap();
        let va = 5 << PAGE_SHIFT;
        assert_eq!(m.translate(ctx, va, Access::Read), Ok(FrameId(9)));
        assert_eq!(m.translate(ctx, va + 100, Access::Write), Ok(FrameId(9)));
        let old = m.remove(ctx, 5).unwrap().unwrap();
        assert_eq!(old.frame, FrameId(9));
        assert!(old.dirty, "write should have set the dirty bit");
        assert!(m.translate(ctx, va, Access::Read).is_err());
    }

    #[test]
    fn protection_is_enforced_even_on_tlb_hits() {
        let m = mmu();
        let ctx = m.create_context();
        m.install(ctx, 1, FrameId(0), Protection::READ).unwrap();
        let va = 1 << PAGE_SHIFT;
        assert!(m.translate(ctx, va, Access::Read).is_ok()); // fills TLB
        let err = m.translate(ctx, va, Access::Write).unwrap_err();
        assert!(matches!(err, MmuFault::Protection { .. }));
    }

    #[test]
    fn protect_downgrade_invalidates_tlb() {
        let m = mmu();
        let ctx = m.create_context();
        m.install(ctx, 1, FrameId(0), Protection::READ_WRITE)
            .unwrap();
        let va = 1 << PAGE_SHIFT;
        assert!(m.translate(ctx, va, Access::Write).is_ok());
        m.protect(ctx, 1, Protection::READ).unwrap();
        assert!(m.translate(ctx, va, Access::Write).is_err());
        assert!(m.translate(ctx, va, Access::Read).is_ok());
    }

    #[test]
    fn contexts_are_isolated() {
        let m = mmu();
        let a = m.create_context();
        let b = m.create_context();
        m.install(a, 1, FrameId(0), Protection::ALL).unwrap();
        assert!(m.translate(b, 1 << PAGE_SHIFT, Access::Read).is_err());
        m.destroy_context(a).unwrap();
        assert_eq!(
            m.translate(a, 1 << PAGE_SHIFT, Access::Read),
            Err(MmuFault::NoSuchContext(a))
        );
        // b still works independently.
        m.install(b, 1, FrameId(1), Protection::ALL).unwrap();
        assert_eq!(
            m.translate(b, 1 << PAGE_SHIFT, Access::Read),
            Ok(FrameId(1))
        );
    }

    #[test]
    fn dirty_bit_tracks_writes_only() {
        let m = mmu();
        let ctx = m.create_context();
        m.install(ctx, 7, FrameId(2), Protection::READ_WRITE)
            .unwrap();
        let va = 7 << PAGE_SHIFT;
        m.translate(ctx, va, Access::Read).unwrap();
        assert!(!m.examine(ctx, 7).unwrap().unwrap().dirty);
        m.translate(ctx, va, Access::Write).unwrap();
        assert!(m.examine(ctx, 7).unwrap().unwrap().dirty);
    }

    #[test]
    fn tlb_charges_fill_on_miss_only() {
        let m = mmu();
        let clock = m.clock.clone();
        let ctx = m.create_context();
        m.install(ctx, 3, FrameId(0), Protection::ALL).unwrap();
        let va = 3 << PAGE_SHIFT;
        let before = clock.now();
        m.translate(ctx, va, Access::Read).unwrap(); // miss + fill
        let after_miss = clock.now();
        m.translate(ctx, va, Access::Read).unwrap(); // hit
        let after_hit = clock.now();
        assert!(after_miss > before);
        assert_eq!(after_hit, after_miss, "TLB hit should be free");
        let (hits, misses) = m.tlb_stats();
        assert_eq!((hits, misses), (1, 1));
    }
}
