//! Zero-copy buffer chains for the protocol graph.
//!
//! A [`BufChain`] is an ordered list of reference-counted [`Bytes`]
//! segments. Protocol layers prepend headers (and append trailers) without
//! copying the payload; the chain is flattened into one contiguous buffer
//! exactly once, at the device boundary, where the NIC needs a single
//! frame. This mirrors the mbuf/skbuff discipline real stacks use and is
//! what makes the webscale send path one-copy instead of one-copy-per-layer.

use bytes::{Bytes, BytesMut};

/// An ordered chain of byte segments, cheap to clone and to extend at
/// either end.
#[derive(Debug, Clone, Default)]
pub struct BufChain {
    segs: Vec<Bytes>,
    len: usize,
}

impl BufChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// A chain holding one segment.
    pub fn from_bytes(b: Bytes) -> Self {
        let len = b.len();
        BufChain { segs: vec![b], len }
    }

    /// Prepends a segment (a header) before the current contents.
    pub fn prepend(&mut self, b: Bytes) {
        self.len += b.len();
        self.segs.insert(0, b);
    }

    /// Appends a segment (payload or trailer) after the current contents.
    pub fn append(&mut self, b: Bytes) {
        self.len += b.len();
        self.segs.push(b);
    }

    /// Total byte length across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chain holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying segments, in order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segs
    }

    /// Flattens the chain into one contiguous buffer. A single-segment
    /// chain is returned as-is (no copy); multi-segment chains pay exactly
    /// one copy — the device-boundary copy.
    pub fn to_bytes(&self) -> Bytes {
        match self.segs.as_slice() {
            [] => Bytes::new(),
            [one] => one.clone(),
            many => {
                let mut b = BytesMut::with_capacity(self.len);
                for s in many {
                    b.extend_from_slice(s);
                }
                b.freeze()
            }
        }
    }
}

impl From<Bytes> for BufChain {
    fn from(b: Bytes) -> Self {
        BufChain::from_bytes(b)
    }
}

impl From<Vec<u8>> for BufChain {
    fn from(v: Vec<u8>) -> Self {
        BufChain::from_bytes(Bytes::from(v))
    }
}

impl From<&'static [u8]> for BufChain {
    fn from(s: &'static [u8]) -> Self {
        BufChain::from_bytes(Bytes::from_static(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_append_flatten_in_order() {
        let mut c = BufChain::from_bytes(Bytes::from_static(b"payload"));
        c.prepend(Bytes::from_static(b"ip|"));
        c.prepend(Bytes::from_static(b"eth|"));
        c.append(Bytes::from_static(b"|crc"));
        assert_eq!(c.len(), 18);
        assert_eq!(c.segments().len(), 4);
        assert_eq!(&c.to_bytes()[..], b"eth|ip|payload|crc");
    }

    #[test]
    fn single_segment_flatten_is_no_copy() {
        let b = Bytes::from_static(b"solo");
        let c = BufChain::from_bytes(b.clone());
        let flat = c.to_bytes();
        // Bytes from the same static slice share the pointer.
        assert_eq!(flat.as_ptr(), b.as_ptr());
    }

    #[test]
    fn empty_chain() {
        let c = BufChain::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.to_bytes().len(), 0);
    }
}
