//! Inter-shard mailboxes: the only channel between per-core kernel shards.
//!
//! In multicore mode every simulated host is a *shard* with its own clock
//! and timer queue. Anything that crosses shards — wire frames, cross-core
//! event raises, DSM coherence messages — is posted into the destination
//! shard's [`Mailbox`] with an absolute virtual delivery time, and drained
//! onto the destination's timer queue at the next conservative-PDES safe
//! point (see `spin_sched::Multicore`).
//!
//! Determinism does not come from the OS scheduler: entries are totally
//! ordered by `(deliver_at, lane, seq)`. The *lane* is derived from the
//! sender (wire lane base + source endpoint, or the cross-call base + the
//! sending host), so concurrent posts from different senders never share a
//! lane, and `seq` is a per-lane counter, so posts from one sender keep
//! their program order. The drain order is therefore a pure function of
//! virtual time, independent of which worker thread posted first.

use crate::clock::Nanos;
use spin_check::sync::{AtomicU64, Mutex, Ordering};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Disjoint lane namespaces: one base per traffic class, plus the sender's
/// endpoint/host number. Two senders (or two media) never share a lane.
pub mod lanes {
    /// Cross-core event raises (`Dispatcher::raise_on`): lane = base + the
    /// sending host id.
    pub const XCALL_BASE: u64 = 0x1_0000;
    /// Ethernet frames: lane = base + the source wire endpoint.
    pub const ETHERNET_BASE: u64 = 0x2_0000;
    /// ATM frames: lane = base + the source wire endpoint.
    pub const ATM_BASE: u64 = 0x3_0000;
    /// T3 frames: lane = base + the source wire endpoint.
    pub const T3_BASE: u64 = 0x4_0000;
    /// Control-plane actions (`Multicore::post_control` — hot-swap
    /// phases): lane = base + the target host id (one controller drives
    /// a target at a time).
    pub const CONTROL_BASE: u64 = 0x5_0000;
}

/// What a post hook decided about one envelope (deterministic fault
/// injection on the mailbox edge).
pub enum MailFate {
    /// Deliver at this (possibly shifted) virtual time.
    Deliver(Nanos),
    /// Drop the envelope on the floor.
    Drop,
}

/// A boxed delivery action: fired with the delivery time on the
/// destination shard.
pub type MailAction = Box<dyn FnOnce(Nanos) + Send>;
type PostHook = Box<dyn Fn(Nanos) -> MailFate + Send + Sync>;
/// Per-lane occupancy gate (kernel resource quotas): consulted on every
/// post with `(lane, entries already pending on that lane)`; returning
/// `false` refuses the post (counted as dropped). Absent, posts pay one
/// `Option` check and no occupancy bookkeeping happens.
type QuotaGate = Box<dyn Fn(u64, u64) -> bool + Send + Sync>;

/// A drained envelope: fire `action` at virtual time `deliver_at` on the
/// destination shard.
pub struct Envelope {
    pub deliver_at: Nanos,
    pub lane: u64,
    pub seq: u64,
    pub action: MailAction,
}

#[derive(Default)]
struct MailboxState {
    /// Total order `(deliver_at, lane, seq)` — see the module docs.
    entries: BTreeMap<(Nanos, u64, u64), MailAction>,
    /// Per-lane sequence counters (program order within one sender).
    lane_seq: HashMap<u64, u64>,
    hook: Option<PostHook>,
    /// Per-lane pending counts, maintained only while a quota gate is
    /// installed (the ungated path does no occupancy bookkeeping).
    lane_pending: HashMap<u64, u64>,
    quota_gate: Option<QuotaGate>,
}

/// One shard's inbound message queue.
#[derive(Clone, Default)]
pub struct Mailbox {
    state: Arc<Mutex<MailboxState>>,
    /// Pending-entry count mirrored outside the lock so the per-epoch
    /// emptiness probe is one atomic load.
    pending: Arc<AtomicU64>,
    posted: Arc<AtomicU64>,
    drained: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts `action` for delivery at `deliver_at` on the given lane.
    ///
    /// The lane must be owned by the posting context (one sender per lane);
    /// the per-lane sequence number then makes the total order independent
    /// of cross-sender races. Returns `false` if a post hook dropped the
    /// envelope.
    pub fn post(
        &self,
        deliver_at: Nanos,
        lane: u64,
        action: impl FnOnce(Nanos) + Send + 'static,
    ) -> bool {
        let mut st = self.state.lock();
        let deliver_at = match st.hook.as_ref().map(|h| h(deliver_at)) {
            Some(MailFate::Drop) => {
                self.dropped.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                return false;
            }
            Some(MailFate::Deliver(at)) => at,
            None => deliver_at,
        };
        if st.quota_gate.is_some() {
            let occupancy = st.lane_pending.get(&lane).copied().unwrap_or(0);
            let admit = st
                .quota_gate
                .as_ref()
                .is_none_or(|gate| gate(lane, occupancy));
            if !admit {
                self.dropped.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                return false;
            }
            *st.lane_pending.entry(lane).or_insert(0) += 1;
        }
        let seq = st.lane_seq.entry(lane).or_insert(0);
        let key = (deliver_at, lane, *seq);
        *seq += 1;
        st.entries.insert(key, Box::new(action));
        self.pending.fetch_add(1, Ordering::Release); // ordering: Release — pairs with the Acquire emptiness probe so a probe that sees the count also sees the entry under the lock.
        self.posted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        true
    }

    /// Posts a batch of envelopes under one lock acquisition.
    ///
    /// Per-envelope semantics — hook, quota gate, per-lane sequencing —
    /// are exactly those of N sequential [`Mailbox::post`] calls in slice
    /// order; only the locking is amortized. Returns how many envelopes
    /// were accepted.
    pub fn post_batch(&self, entries: Vec<(Nanos, u64, MailAction)>) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        let mut accepted = 0u64;
        for (deliver_at, lane, action) in entries {
            let deliver_at = match st.hook.as_ref().map(|h| h(deliver_at)) {
                Some(MailFate::Drop) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                    continue;
                }
                Some(MailFate::Deliver(at)) => at,
                None => deliver_at,
            };
            if st.quota_gate.is_some() {
                let occupancy = st.lane_pending.get(&lane).copied().unwrap_or(0);
                let admit = st
                    .quota_gate
                    .as_ref()
                    .is_none_or(|gate| gate(lane, occupancy));
                if !admit {
                    self.dropped.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                    continue;
                }
                *st.lane_pending.entry(lane).or_insert(0) += 1;
            }
            let seq = st.lane_seq.entry(lane).or_insert(0);
            let key = (deliver_at, lane, *seq);
            *seq += 1;
            st.entries.insert(key, action);
            accepted += 1;
        }
        self.pending.fetch_add(accepted, Ordering::Release); // ordering: Release — pairs with the Acquire emptiness probe so a probe that sees the count also sees the entries under the lock.
        self.posted.fetch_add(accepted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        accepted as usize
    }

    /// Earliest pending delivery time, if any. Fast path: one atomic load
    /// when the mailbox is empty.
    pub fn next_deadline(&self) -> Option<Nanos> {
        // ordering: Acquire — pairs with the Release in `post` so a non-zero count is followed by a consistent read under the lock.
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.state
            .lock()
            .entries
            .keys()
            .next()
            .map(|&(at, _, _)| at)
    }

    /// Drains every pending envelope in `(deliver_at, lane, seq)` order.
    ///
    /// Called by the shard loop at an epoch boundary; the caller schedules
    /// each envelope on the local timer queue (scheduling in ascending
    /// order preserves the total order for equal deadlines, because timer
    /// ids break ties FIFO).
    pub fn drain(&self) -> Vec<Envelope> {
        // ordering: Acquire — pairs with the Release in `post`; an empty probe means nothing to drain.
        if self.pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut st = self.state.lock();
        let out: Vec<Envelope> = std::mem::take(&mut st.entries)
            .into_iter()
            .map(|((deliver_at, lane, seq), action)| Envelope {
                deliver_at,
                lane,
                seq,
                action,
            })
            .collect();
        st.lane_pending.clear();
        self.pending.store(0, Ordering::Release); // ordering: Release — the drain emptied the queue under the lock; publish before the next probe.
        self.drained.fetch_add(out.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        out
    }

    /// Removes every pending envelope on `lane` (domain quarantine: a
    /// misbehaving sender's in-flight traffic is purged with it). Returns
    /// how many envelopes were discarded.
    pub fn purge_lane(&self, lane: u64) -> usize {
        let mut st = self.state.lock();
        let keys: Vec<(Nanos, u64, u64)> = st
            .entries
            .keys()
            .filter(|&&(_, l, _)| l == lane)
            .copied()
            .collect();
        for k in &keys {
            st.entries.remove(k);
        }
        st.lane_pending.remove(&lane);
        self.pending.fetch_sub(keys.len() as u64, Ordering::Release); // ordering: Release — keep the mirrored count consistent with the entries removed under the lock.
        self.dropped.fetch_add(keys.len() as u64, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        keys.len()
    }

    /// Installs a post hook (deterministic fault injection on the mailbox
    /// edge): the hook may shift or drop each envelope.
    pub fn set_post_hook(&self, hook: impl Fn(Nanos) -> MailFate + Send + Sync + 'static) {
        self.state.lock().hook = Some(Box::new(hook));
    }

    /// Installs the per-lane occupancy gate (kernel resource quotas): the
    /// gate sees `(lane, entries already pending on that lane)` and
    /// returning `false` refuses the post, which is counted as dropped.
    /// Occupancy bookkeeping starts here — current entries are counted in
    /// under the lock, so the gate's view is exact from the first post.
    pub fn set_quota_gate(&self, gate: impl Fn(u64, u64) -> bool + Send + Sync + 'static) {
        let mut st = self.state.lock();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &(_, lane, _) in st.entries.keys() {
            *counts.entry(lane).or_insert(0) += 1;
        }
        st.lane_pending = counts;
        st.quota_gate = Some(Box::new(gate));
    }

    /// Entries currently pending on `lane`. With a quota gate installed
    /// this is the gate's own occupancy count; without one it is computed
    /// by scanning (cold path, used by sender-side backpressure probes).
    pub fn lane_pending(&self, lane: u64) -> u64 {
        let st = self.state.lock();
        if st.quota_gate.is_some() {
            st.lane_pending.get(&lane).copied().unwrap_or(0)
        } else {
            st.entries.keys().filter(|&&(_, l, _)| l == lane).count() as u64
        }
    }

    /// Number of pending envelopes.
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire) as usize // ordering: Acquire — pairs with the Release in `post`/`drain`.
    }

    /// Whether the mailbox is empty (one atomic load).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (posted, drained, dropped) envelope counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.posted.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            self.drained.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            self.dropped.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_lane_seq_order() {
        let mb = Mailbox::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let tag = |s: &'static str| {
            let log = log.clone();
            move |_now: Nanos| log.lock().push(s)
        };
        // Same time, different lanes; same lane, later seq; earlier time.
        mb.post(500, 7, tag("t500/l7"));
        mb.post(500, 2, tag("t500/l2#0"));
        mb.post(500, 2, tag("t500/l2#1"));
        mb.post(100, 9, tag("t100/l9"));
        assert_eq!(mb.next_deadline(), Some(100));
        let envs = mb.drain();
        for e in envs {
            (e.action)(e.deliver_at);
        }
        assert_eq!(
            *log.lock(),
            vec!["t100/l9", "t500/l2#0", "t500/l2#1", "t500/l7"]
        );
        assert!(mb.is_empty());
        assert_eq!(mb.stats(), (4, 4, 0));
    }

    #[test]
    fn purge_lane_discards_only_that_sender() {
        let mb = Mailbox::new();
        mb.post(10, 1, |_| {});
        mb.post(20, 2, |_| {});
        mb.post(30, 1, |_| {});
        assert_eq!(mb.purge_lane(1), 2);
        assert_eq!(mb.len(), 1);
        let envs = mb.drain();
        assert_eq!(envs.len(), 1);
        assert_eq!(envs[0].lane, 2);
        assert_eq!(mb.stats(), (3, 1, 2));
    }

    #[test]
    fn post_hook_shifts_and_drops() {
        let mb = Mailbox::new();
        mb.set_post_hook(|at| {
            if at < 100 {
                MailFate::Drop
            } else {
                MailFate::Deliver(at + 1_000)
            }
        });
        assert!(!mb.post(50, 0, |_| {}));
        assert!(mb.post(200, 0, |_| {}));
        assert_eq!(mb.next_deadline(), Some(1_200));
        assert_eq!(mb.stats(), (1, 0, 1));
    }

    #[test]
    fn quota_gate_bounds_lane_occupancy_exactly() {
        let mb = Mailbox::new();
        mb.post(5, 3, |_| {}); // pre-gate entry is counted in
        mb.set_quota_gate(|lane, pending| lane != 3 || pending < 2);
        assert_eq!(mb.lane_pending(3), 1);
        assert!(mb.post(10, 3, |_| {}));
        assert!(!mb.post(20, 3, |_| {}), "lane 3 at its bound");
        assert!(mb.post(20, 4, |_| {}), "other lanes unmetered");
        assert_eq!(mb.lane_pending(3), 2);
        assert_eq!(mb.stats(), (3, 0, 1));
        // Draining releases the occupancy; purging a lane clears its count.
        let _ = mb.drain();
        assert_eq!(mb.lane_pending(3), 0);
        assert!(mb.post(30, 3, |_| {}));
        assert!(mb.post(40, 3, |_| {}));
        assert_eq!(mb.purge_lane(3), 2);
        assert!(mb.post(50, 3, |_| {}));
    }

    #[test]
    fn post_batch_drains_identically_to_sequential_posts() {
        let log_a = Arc::new(Mutex::new(Vec::new()));
        let log_b = Arc::new(Mutex::new(Vec::new()));
        let tag = |log: &Arc<Mutex<Vec<&'static str>>>, s: &'static str| {
            let log = log.clone();
            move |_now: Nanos| log.lock().push(s)
        };
        // Interleaved lanes, ties on deliver_at, out-of-order times.
        let seq = [
            (500u64, 7u64, "t500/l7"),
            (500, 2, "t500/l2#0"),
            (500, 2, "t500/l2#1"),
            (100, 9, "t100/l9"),
            (100, 2, "t100/l2"),
        ];
        let a = Mailbox::new();
        for (at, lane, s) in seq {
            a.post(at, lane, tag(&log_a, s));
        }
        let b = Mailbox::new();
        b.post_batch(
            seq.iter()
                .map(|&(at, lane, s)| (at, lane, Box::new(tag(&log_b, s)) as MailAction))
                .collect(),
        );
        for mb in [&a, &b] {
            for e in mb.drain() {
                (e.action)(e.deliver_at);
            }
        }
        assert_eq!(*log_a.lock(), *log_b.lock());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn post_batch_respects_hook_and_gate() {
        let mb = Mailbox::new();
        mb.set_post_hook(|at| {
            if at < 100 {
                MailFate::Drop
            } else {
                MailFate::Deliver(at)
            }
        });
        mb.set_quota_gate(|lane, pending| lane != 3 || pending < 1);
        let accepted = mb.post_batch(vec![
            (50, 1, Box::new(|_| {}) as MailAction), // hook drops
            (200, 3, Box::new(|_| {}) as MailAction),
            (300, 3, Box::new(|_| {}) as MailAction), // gate refuses
            (400, 4, Box::new(|_| {}) as MailAction),
        ]);
        assert_eq!(accepted, 2);
        assert_eq!(mb.stats(), (2, 0, 2));
    }

    #[test]
    fn empty_probe_is_cheap_and_correct() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        assert_eq!(mb.next_deadline(), None);
        assert!(mb.drain().is_empty());
        mb.post(1, 0, |_| {});
        assert!(!mb.is_empty());
    }
}
