//! Trap descriptors: the hardware events that enter the kernel.
//!
//! In SPIN "the kernel's trap handler raises a `Trap.SystemCall` event which
//! is dispatched to a Modula-3 procedure installed as a handler" (§5.2).
//! This module only *describes* traps; raising them as events is done by the
//! kernel in `spin-core`, and the user/kernel boundary crossing costs are
//! charged from the machine profile by the caller.

use crate::irq::IrqVector;
use crate::mmu::{Access, ContextId, MmuFault};

/// A reason for entering the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// A system call from user mode.
    Syscall {
        /// The system-call number chosen by whatever interface the
        /// application installed.
        number: u64,
        /// Up to six register arguments, as on the Alpha calling convention.
        args: [u64; 6],
    },
    /// A memory-management fault, raised while translating `va`.
    MemoryFault {
        ctx: ContextId,
        va: u64,
        access: Access,
        fault: MmuFault,
    },
    /// A device interrupt.
    Interrupt(IrqVector),
    /// The preemption timer fired.
    TimerTick,
    /// An unaligned access or other machine check (not used by benchmarks,
    /// present for completeness of the trap namespace).
    MachineCheck { info: u64 },
}

impl Trap {
    /// Short name used in traces and dispatcher diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Trap::Syscall { .. } => "Trap.SystemCall",
            Trap::MemoryFault { .. } => "Trap.MemoryFault",
            Trap::Interrupt(_) => "Trap.Interrupt",
            Trap::TimerTick => "Trap.TimerTick",
            Trap::MachineCheck { .. } => "Trap.MachineCheck",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_names_are_stable() {
        let t = Trap::Syscall {
            number: 1,
            args: [0; 6],
        };
        assert_eq!(t.name(), "Trap.SystemCall");
        assert_eq!(Trap::TimerTick.name(), "Trap.TimerTick");
    }
}
