//! Simulated physical memory: an array of page frames.
//!
//! The paper's machines had 64 MB of memory in 8 KB pages. [`PhysMem`] holds
//! the frames' bytes; allocation policy (free lists, colors, contiguity) is
//! the business of the `PhysAddr` service in `spin-vm`, exactly as the paper
//! separates the physical-address *service* from the raw storage.

use crate::PAGE_SIZE;
use spin_check::sync::Mutex;
use std::sync::Arc;

/// Index of a physical page frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

impl FrameId {
    /// Physical byte address of the first byte of this frame.
    #[inline]
    pub fn base(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

/// The machine's physical page frames.
///
/// Cloning shares the underlying storage.
#[derive(Clone)]
pub struct PhysMem {
    frames: Arc<Vec<Mutex<Box<[u8]>>>>,
}

impl PhysMem {
    /// Creates `frames` zeroed page frames.
    pub fn new(frames: usize) -> Self {
        let v = (0..frames)
            .map(|_| Mutex::new(vec![0u8; PAGE_SIZE].into_boxed_slice()))
            .collect();
        PhysMem {
            frames: Arc::new(v),
        }
    }

    /// Number of frames in the machine.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Reads bytes from a frame into `buf`, starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not exist or the range exceeds the page —
    /// those are simulator bugs, not guest errors (the MMU rejects guest
    /// addresses before they get here).
    pub fn read(&self, frame: FrameId, offset: usize, buf: &mut [u8]) {
        let f = self.frames[frame.0 as usize].lock();
        buf.copy_from_slice(&f[offset..offset + buf.len()]);
    }

    /// Writes `buf` into a frame starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PhysMem::read`].
    pub fn write(&self, frame: FrameId, offset: usize, buf: &[u8]) {
        let mut f = self.frames[frame.0 as usize].lock();
        f[offset..offset + buf.len()].copy_from_slice(buf);
    }

    /// Zeroes an entire frame.
    pub fn zero(&self, frame: FrameId) {
        self.frames[frame.0 as usize].lock().fill(0);
    }

    /// Copies one whole frame to another (used by copy-on-write faults).
    pub fn copy_frame(&self, from: FrameId, to: FrameId) {
        assert_ne!(from, to, "copy_frame onto itself");
        let src = self.frames[from.0 as usize].lock();
        let mut dst = self.frames[to.0 as usize].lock();
        dst.copy_from_slice(&src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_start_zeroed_and_round_trip() {
        let m = PhysMem::new(4);
        assert_eq!(m.frame_count(), 4);
        let mut buf = [0xffu8; 8];
        m.read(FrameId(2), 100, &mut buf);
        assert_eq!(buf, [0; 8]);
        m.write(FrameId(2), 100, &[1, 2, 3, 4, 5, 6, 7, 8]);
        m.read(FrameId(2), 100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn frames_are_independent() {
        let m = PhysMem::new(2);
        m.write(FrameId(0), 0, &[42]);
        let mut buf = [0u8; 1];
        m.read(FrameId(1), 0, &mut buf);
        assert_eq!(buf, [0]);
    }

    #[test]
    fn copy_and_zero_frame() {
        let m = PhysMem::new(2);
        m.write(FrameId(0), 10, &[9, 9]);
        m.copy_frame(FrameId(0), FrameId(1));
        let mut buf = [0u8; 2];
        m.read(FrameId(1), 10, &mut buf);
        assert_eq!(buf, [9, 9]);
        m.zero(FrameId(1));
        m.read(FrameId(1), 10, &mut buf);
        assert_eq!(buf, [0, 0]);
    }

    #[test]
    fn frame_base_address() {
        assert_eq!(FrameId(3).base(), 3 * PAGE_SIZE as u64);
    }
}
