//! The global virtual clock and the discrete-event timer queue.
//!
//! All simulated time in the reproduction lives on a single timeline. The
//! currently-running simulated context advances the clock by calling
//! [`Clock::advance`] with a cost drawn from the
//! [`MachineProfile`](crate::MachineProfile); asynchronous completions (disk
//! interrupts, packet arrivals, preemption ticks) are closures scheduled on
//! the [`TimerQueue`] and fired by the executor when the clock passes their
//! deadline.
//!
//! The executor in `spin-sched` installs an *advance hook* on the clock so
//! that every charge is also accounted against the running strand's quantum;
//! that is how the paper's preemptive kernel ("the kernel is preemptive,
//! ensuring that a handler cannot take over the processor", §3.2) is
//! reproduced deterministically.

use spin_check::hooks::HookRegistry;
use spin_check::sync::{AtomicU64, Mutex, Ordering};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Virtual nanoseconds since simulation boot.
pub type Nanos = u64;

/// Observer invoked after every clock advance with the amount charged.
pub type AdvanceHook = Box<dyn Fn(Nanos) + Send + Sync>;

/// Handle to an installed advance hook, usable for removal.
pub type AdvanceHookId = spin_check::hooks::HookId;

/// The shared virtual clock.
///
/// Cheap to clone (`Arc` inside); reads are lock-free.
#[derive(Clone, Default)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

#[derive(Default)]
struct ClockInner {
    now: AtomicU64,
    /// Charge subscribers. The registry publishes an immutable snapshot
    /// and keeps an atomic presence flag, so the per-charge path pays one
    /// relaxed load when no subscriber is installed and calls hooks with
    /// no lock held (a hook may deschedule the calling thread to effect
    /// preemption).
    hooks: HookRegistry<Arc<dyn Fn(Nanos) + Send + Sync>>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.inner.now.load(Ordering::Acquire) // ordering: Acquire — a time read orders after the charge that produced it.
    }

    /// Advances the clock by `ns`, charging the running context.
    ///
    /// The executor's advance hook (if installed) runs after the time is
    /// added; it may deschedule the calling thread to effect preemption.
    pub fn advance(&self, ns: Nanos) {
        if ns == 0 {
            return;
        }
        self.inner.now.fetch_add(ns, Ordering::AcqRel); // ordering: AcqRel — every charge is ordered with every other charge and with now().
        if let Some(hooks) = self.inner.hooks.snapshot() {
            for (_, hook) in hooks.iter() {
                hook(ns);
            }
        }
    }

    /// Moves the clock directly to `t` without charging any context.
    ///
    /// Used by the executor when the system is idle and the next work item
    /// is a timer in the future. Does nothing if `t` is in the past.
    pub fn skip_to(&self, t: Nanos) {
        let mut cur = self.inner.now.load(Ordering::Acquire); // ordering: Acquire — starts the CAS loop from a charge-ordered view.
        while t > cur {
            match self
                .inner
                .now
                .compare_exchange(cur, t, Ordering::AcqRel, Ordering::Acquire) // ordering: AcqRel success orders the jump like a charge; Acquire failure re-reads.
            {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Subscribes `hook` to every charge, alongside any existing hooks.
    ///
    /// Hooks run in installation order after the time is added. The
    /// returned id removes exactly this subscription via
    /// [`Clock::remove_advance_hook`].
    pub fn add_advance_hook(&self, hook: AdvanceHook) -> AdvanceHookId {
        self.inner.hooks.add(Arc::from(hook))
    }

    /// Removes one subscription. Returns `true` if it was still installed.
    pub fn remove_advance_hook(&self, id: AdvanceHookId) -> bool {
        self.inner.hooks.remove(id)
    }

    /// Installs `hook` as the *only* subscriber, replacing any previous
    /// hooks. Single-subscriber convenience kept for tests and simple rigs;
    /// components that must coexist use [`Clock::add_advance_hook`].
    pub fn set_advance_hook(&self, hook: AdvanceHook) {
        self.inner.hooks.replace_all(Arc::from(hook));
    }

    /// Removes every advance hook.
    pub fn clear_advance_hook(&self) {
        self.inner.hooks.clear();
    }

    /// Whether any advance hook is installed — i.e. whether the *number and
    /// granularity* of individual charges is observable, not just their
    /// total. Charge-coalescing optimisations (the dispatcher's compiled
    /// guard walk) must replay charges one by one when this is true.
    pub fn charges_observed(&self) -> bool {
        self.inner.hooks.is_armed()
    }
}

/// Identifier of a scheduled timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

type TimerFn = Box<dyn FnOnce(Nanos) + Send>;

#[derive(Default)]
struct TimerState {
    /// Min-heap of (deadline, id); ids give FIFO order among equal deadlines.
    heap: BinaryHeap<Reverse<(Nanos, TimerId)>>,
    /// Live callbacks; cancelled timers are simply absent.
    callbacks: HashMap<TimerId, TimerFn>,
    next_id: u64,
}

/// A deterministic discrete-event timer queue.
///
/// Deadlines are absolute virtual times. Entries with equal deadlines fire
/// in scheduling order, making multi-host experiments reproducible.
#[derive(Clone, Default)]
pub struct TimerQueue {
    state: Arc<Mutex<TimerState>>,
}

impl TimerQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `f` to run when the clock reaches `at`.
    ///
    /// The callback receives the virtual time at which it actually fired.
    pub fn schedule_at(&self, at: Nanos, f: impl FnOnce(Nanos) + Send + 'static) -> TimerId {
        let mut st = self.state.lock();
        let id = TimerId(st.next_id);
        st.next_id += 1;
        st.heap.push(Reverse((at, id)));
        st.callbacks.insert(id, Box::new(f));
        id
    }

    /// Cancels a pending timer. Returns `true` if it had not yet fired.
    pub fn cancel(&self, id: TimerId) -> bool {
        self.state.lock().callbacks.remove(&id).is_some()
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Nanos> {
        let mut st = self.state.lock();
        // Drop cancelled heap residue so the reported deadline is live.
        while let Some(Reverse((at, id))) = st.heap.peek().copied() {
            if st.callbacks.contains_key(&id) {
                return Some(at);
            }
            st.heap.pop();
        }
        None
    }

    /// Number of pending (uncancelled) timers.
    pub fn pending(&self) -> usize {
        self.state.lock().callbacks.len()
    }

    /// Fires every timer whose deadline is `<= now`. Returns how many ran.
    ///
    /// Callbacks run outside the internal lock, so they may schedule or
    /// cancel further timers.
    pub fn fire_due(&self, now: Nanos) -> usize {
        let mut fired = 0;
        loop {
            let cb = {
                let mut st = self.state.lock();
                match st.heap.peek().copied() {
                    Some(Reverse((at, id))) if at <= now => {
                        st.heap.pop();
                        match st.callbacks.remove(&id) {
                            Some(cb) => cb,
                            None => continue, // cancelled
                        }
                    }
                    _ => break,
                }
            };
            cb(now);
            fired += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::AtomicUsize;

    #[test]
    fn clock_advances_and_skips() {
        let c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(100);
        assert_eq!(c.now(), 100);
        c.skip_to(50); // past: no-op
        assert_eq!(c.now(), 100);
        c.skip_to(500);
        assert_eq!(c.now(), 500);
    }

    #[test]
    fn advance_hook_sees_every_charge() {
        let c = Clock::new();
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        c.set_advance_hook(Box::new(move |ns| {
            t2.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        }));
        c.advance(30);
        c.advance(0); // zero charges do not invoke the hook
        c.advance(12);
        assert_eq!(total.load(Ordering::Relaxed), 42); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn two_subscribers_both_observe_every_charge() {
        // Regression: the hook slot used to be replace-only, so a second
        // subscriber (the observability layer) silently evicted the
        // executor's quantum accounting.
        let c = Clock::new();
        let exec_total = Arc::new(AtomicU64::new(0));
        let obs_total = Arc::new(AtomicU64::new(0));
        let (e2, o2) = (exec_total.clone(), obs_total.clone());
        let exec_id = c.add_advance_hook(Box::new(move |ns| {
            e2.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        }));
        let obs_id = c.add_advance_hook(Box::new(move |ns| {
            o2.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        }));
        for ns in [30, 0, 12, 1, 999] {
            c.advance(ns);
        }
        assert_eq!(exec_total.load(Ordering::Relaxed), 1042); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(obs_total.load(Ordering::Relaxed), 1042); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.

        // Removal is per-subscription: the survivor keeps observing.
        assert!(c.remove_advance_hook(obs_id));
        assert!(!c.remove_advance_hook(obs_id));
        c.advance(8);
        assert_eq!(exec_total.load(Ordering::Relaxed), 1050); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(obs_total.load(Ordering::Relaxed), 1042); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert!(c.remove_advance_hook(exec_id));
        c.advance(5); // no subscribers: single relaxed-flag check, no calls
        assert_eq!(exec_total.load(Ordering::Relaxed), 1050); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn set_advance_hook_replaces_all_subscribers() {
        let c = Clock::new();
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a2, b2) = (a.clone(), b.clone());
        c.add_advance_hook(Box::new(move |ns| {
            a2.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        }));
        c.set_advance_hook(Box::new(move |ns| {
            b2.fetch_add(ns, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        }));
        c.advance(7);
        assert_eq!(a.load(Ordering::Relaxed), 0); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(b.load(Ordering::Relaxed), 7); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        c.clear_advance_hook();
        c.advance(7);
        assert_eq!(b.load(Ordering::Relaxed), 7); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn timers_fire_in_deadline_then_fifo_order() {
        let q = TimerQueue::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (at, tag) in [(50u64, "b"), (10, "a"), (50, "c")] {
            let log = log.clone();
            q.schedule_at(at, move |_| log.lock().push(tag));
        }
        assert_eq!(q.next_deadline(), Some(10));
        assert_eq!(q.fire_due(60), 3);
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let q = TimerQueue::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let id = q.schedule_at(5, move |_| {
            c2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        });
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.fire_due(100), 0);
        assert_eq!(count.load(Ordering::Relaxed), 0); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn callbacks_may_reschedule() {
        let q = TimerQueue::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let q2 = q.clone();
        q.schedule_at(10, move |now| {
            c2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            let c3 = c2.clone();
            q2.schedule_at(now + 10, move |_| {
                c3.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            });
        });
        q.fire_due(10);
        assert_eq!(count.load(Ordering::Relaxed), 1); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        q.fire_due(20);
        assert_eq!(count.load(Ordering::Relaxed), 2); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn fire_due_ignores_future_timers() {
        let q = TimerQueue::new();
        q.schedule_at(100, |_| {});
        assert_eq!(q.fire_due(99), 0);
        assert_eq!(q.pending(), 1);
    }
}
