//! The wire: a point-to-point/switched medium connecting simulated NICs.
//!
//! Transmission is serialized per sender (a 10 Mb/s Ethernet can only push
//! one frame at a time), so saturating workloads see real queueing delay —
//! that is what bends the OSF/1 curve in the Figure 6 reproduction. Delivery
//! happens through the shared timer queue: at arrival time the frame lands
//! in the receiver's queue and the receiver's interrupt vector is posted.

use crate::clock::{Clock, Nanos, TimerQueue};
use crate::devices::nic::Frame;
use crate::irq::{IrqController, IrqVector};
use crate::mailbox::Mailbox;
use spin_check::sync::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// An address on the wire (one per attached NIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireEndpoint(pub u32);

pub(crate) struct Receiver {
    pub rx: Arc<Mutex<VecDeque<Frame>>>,
    pub irqs: IrqController,
    pub vector: IrqVector,
}

/// A shard-attached receiver: frames land in the destination shard's
/// mailbox (multicore mode) instead of the shared timer queue.
struct ShardReceiver {
    rx: Arc<Mutex<VecDeque<Frame>>>,
    irqs: IrqController,
    vector: IrqVector,
    mailbox: Mailbox,
}

struct WireState {
    receivers: HashMap<WireEndpoint, Receiver>,
    shard_receivers: HashMap<WireEndpoint, ShardReceiver>,
    /// Multicore mode: each sender's *own* clock tells wire time (there is
    /// no shared timeline to ask).
    shard_senders: HashMap<WireEndpoint, Clock>,
    busy_until: HashMap<WireEndpoint, Nanos>,
    delivered: u64,
    dropped: u64,
    /// Deterministic fault injection: called with the frame's global
    /// sequence index; `true` drops the frame on the floor.
    drop_filter: Option<Box<dyn Fn(u64) -> bool + Send + Sync>>,
    tx_index: u64,
}

/// The shared medium.
#[derive(Clone)]
pub struct Wire {
    state: Arc<Mutex<WireState>>,
    clock: Clock,
    timers: TimerQueue,
    /// Fixed propagation + switch latency per frame.
    propagation: Nanos,
    /// Mailbox lane namespace for this medium: a frame from endpoint `e`
    /// travels on lane `lane_base + e`, so no two senders (and no two
    /// media) ever share a lane.
    lane_base: u64,
}

impl Wire {
    /// Creates a wire with the given one-way propagation/switch delay.
    pub fn new(clock: Clock, timers: TimerQueue, propagation: Nanos) -> Self {
        Self::with_lane_base(clock, timers, propagation, 0)
    }

    /// [`Wire::new`] with a mailbox lane namespace (multicore boards give
    /// each medium a disjoint base).
    pub fn with_lane_base(
        clock: Clock,
        timers: TimerQueue,
        propagation: Nanos,
        lane_base: u64,
    ) -> Self {
        Wire {
            state: Arc::new(Mutex::new(WireState {
                receivers: HashMap::new(),
                shard_receivers: HashMap::new(),
                shard_senders: HashMap::new(),
                busy_until: HashMap::new(),
                delivered: 0,
                dropped: 0,
                drop_filter: None,
                tx_index: 0,
            })),
            clock,
            timers,
            propagation,
            lane_base,
        }
    }

    pub(crate) fn attach(
        &self,
        endpoint: WireEndpoint,
        rx: Arc<Mutex<VecDeque<Frame>>>,
        irqs: IrqController,
        vector: IrqVector,
    ) {
        self.state
            .lock()
            .receivers
            .insert(endpoint, Receiver { rx, irqs, vector });
    }

    /// Attaches a shard-resident NIC: inbound frames are posted to the
    /// shard's mailbox and outbound transmissions are timed against the
    /// shard's own clock.
    pub(crate) fn attach_shard(
        &self,
        endpoint: WireEndpoint,
        rx: Arc<Mutex<VecDeque<Frame>>>,
        irqs: IrqController,
        vector: IrqVector,
        mailbox: Mailbox,
        clock: Clock,
    ) {
        let mut st = self.state.lock();
        st.shard_receivers.insert(
            endpoint,
            ShardReceiver {
                rx,
                irqs,
                vector,
                mailbox,
            },
        );
        st.shard_senders.insert(endpoint, clock);
    }

    /// The minimum cross-shard delivery delay over this medium (its
    /// propagation): part of the conservative-PDES lookahead bound.
    pub fn propagation(&self) -> Nanos {
        self.propagation
    }

    /// Queues `frame` for transmission at the sender's link rate.
    ///
    /// `bits_on_wire` includes framing overhead. The sender's link is busy
    /// until the frame has left; delivery fires `propagation` later.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub(crate) fn transmit(&self, frame: Frame, bits_on_wire: u64, bandwidth_bps: u64) {
        self.transmit_delayed(frame, bits_on_wire, bandwidth_bps, 0)
    }

    /// [`Wire::transmit`] with an extra fixed delivery delay (adapter
    /// staging) that occupies neither the link nor the CPU.
    pub(crate) fn transmit_delayed(
        &self,
        frame: Frame,
        bits_on_wire: u64,
        bandwidth_bps: u64,
        staging_ns: Nanos,
    ) {
        self.transmit_burst(vec![(frame, bits_on_wire)], bandwidth_bps, staging_ns)
    }

    /// Queues a burst of frames under one state-lock acquisition.
    ///
    /// Per-frame semantics — drop filter, per-sender link serialization,
    /// arrival time, mailbox lane — are exactly those of sequential
    /// [`Wire::transmit_delayed`] calls in slice order; only the locking
    /// and (in multicore mode) the mailbox posts are amortized.
    pub(crate) fn transmit_burst(
        &self,
        frames: Vec<(Frame, u64)>,
        bandwidth_bps: u64,
        staging_ns: Nanos,
    ) {
        // Phase 1 (one lock): serialize each frame on its sender's link
        // and resolve its destination.
        let mut deliveries: Vec<(Nanos, Frame, bool)> = Vec::with_capacity(frames.len());
        {
            let mut st = self.state.lock();
            for (frame, bits_on_wire) in frames {
                let tx_time = bits_on_wire.saturating_mul(1_000_000_000) / bandwidth_bps.max(1);
                let idx = st.tx_index;
                st.tx_index += 1;
                if let Some(f) = st.drop_filter.as_ref() {
                    if f(idx) {
                        st.dropped += 1;
                        continue;
                    }
                }
                // Multicore mode: wire time is the *sender's* virtual time.
                let now = st
                    .shard_senders
                    .get(&frame.src)
                    .map(|c| c.now())
                    .unwrap_or_else(|| self.clock.now());
                let busy = st.busy_until.get(&frame.src).copied().unwrap_or(0);
                let start = busy.max(now);
                let done = start + tx_time;
                st.busy_until.insert(frame.src, done);
                let arrival = done + self.propagation + staging_ns;
                let sharded = st.shard_receivers.contains_key(&frame.dst);
                deliveries.push((arrival, frame, sharded));
            }
        }
        // Phase 2 (no lock): post deliveries. Shard-resident destinations
        // get their mailbox posts batched per destination, preserving
        // slice order (and so per-lane seq order); shared-timeline frames
        // go straight onto the timer queue.
        let mut batches: BTreeMap<u32, Vec<(Nanos, u64, crate::mailbox::MailAction)>> =
            BTreeMap::new();
        for (arrival, frame, sharded) in deliveries {
            let state = self.state.clone();
            let dst = frame.dst;
            if sharded {
                let lane = self.lane_base + frame.src.0 as u64;
                batches.entry(dst.0).or_default().push((
                    arrival,
                    lane,
                    Box::new(move |_| {
                        let mut st = state.lock();
                        if let Some(r) = st.shard_receivers.get(&dst) {
                            r.rx.lock().push_back(frame);
                            let (irqs, vector) = (r.irqs.clone(), r.vector);
                            st.delivered += 1;
                            drop(st);
                            irqs.post(vector);
                        }
                    }),
                ));
            } else {
                self.timers.schedule_at(arrival, move |_| {
                    let mut st = state.lock();
                    match st.receivers.get(&dst) {
                        Some(r) => {
                            r.rx.lock().push_back(frame);
                            let (irqs, vector) = (r.irqs.clone(), r.vector);
                            st.delivered += 1;
                            drop(st);
                            irqs.post(vector);
                        }
                        None => st.dropped += 1,
                    }
                });
            }
        }
        for (dst, entries) in batches {
            let mbox = self
                .state
                .lock()
                .shard_receivers
                .get(&WireEndpoint(dst))
                .map(|r| r.mailbox.clone());
            if let Some(mbox) = mbox {
                mbox.post_batch(entries);
            }
        }
    }

    /// Installs a deterministic drop filter for fault injection (e.g.
    /// "drop every 7th frame" for TCP retransmission tests).
    pub fn set_drop_filter(&self, f: impl Fn(u64) -> bool + Send + Sync + 'static) {
        self.state.lock().drop_filter = Some(Box::new(f));
    }

    /// Removes the drop filter.
    pub fn clear_drop_filter(&self) {
        self.state.lock().drop_filter = None;
    }

    /// (delivered, dropped) frame counters.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.delivered, st.dropped)
    }

    /// Virtual time at which the sender's link becomes free.
    pub fn sender_busy_until(&self, endpoint: WireEndpoint) -> Nanos {
        self.state
            .lock()
            .busy_until
            .get(&endpoint)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineProfile;
    use bytes::Bytes;

    fn rig() -> (
        Wire,
        Clock,
        TimerQueue,
        IrqController,
        Arc<Mutex<VecDeque<Frame>>>,
    ) {
        let clock = Clock::new();
        let timers = TimerQueue::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let wire = Wire::new(clock.clone(), timers.clone(), 1_000);
        let irqs = IrqController::new(clock.clone(), profile);
        let rx = Arc::new(Mutex::new(VecDeque::new()));
        wire.attach(WireEndpoint(2), rx.clone(), irqs.clone(), IrqVector(7));
        (wire, clock, timers, irqs, rx)
    }

    fn frame(payload: &[u8]) -> Frame {
        Frame {
            src: WireEndpoint(1),
            dst: WireEndpoint(2),
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn frame_arrives_after_tx_time_plus_propagation() {
        let (wire, clock, timers, irqs, rx) = rig();
        // 1000 bits at 10 Mb/s = 100 µs on the wire.
        wire.transmit(frame(&[0u8; 125]), 1000, 10_000_000);
        clock.skip_to(100_999);
        timers.fire_due(clock.now());
        assert!(rx.lock().is_empty(), "too early");
        clock.skip_to(101_000);
        timers.fire_due(clock.now());
        assert_eq!(rx.lock().len(), 1);
        assert!(irqs.has_pending());
    }

    #[test]
    fn sender_link_serializes_back_to_back_frames() {
        let (wire, clock, timers, _irqs, rx) = rig();
        wire.transmit(frame(b"a"), 1000, 10_000_000);
        wire.transmit(frame(b"b"), 1000, 10_000_000);
        // Second frame cannot start until the first is done: arrival at
        // 200_000 + 1_000 propagation.
        assert_eq!(wire.sender_busy_until(WireEndpoint(1)), 200_000);
        clock.skip_to(201_000);
        timers.fire_due(clock.now());
        assert_eq!(rx.lock().len(), 2);
    }

    #[test]
    fn frames_to_unknown_endpoints_are_dropped() {
        let (wire, clock, timers, _, _) = rig();
        let f = Frame {
            src: WireEndpoint(1),
            dst: WireEndpoint(99),
            payload: Bytes::new(),
        };
        wire.transmit(f, 8, 10_000_000);
        clock.skip_to(1_000_000);
        timers.fire_due(clock.now());
        assert_eq!(wire.stats(), (0, 1));
    }
}
