//! The simulated disk: "read block 22 from SCSI unit 0" (§5.1).
//!
//! Models the paper's HP C2247-300 1 GB drive with a seek + rotation +
//! transfer latency model. Requests are asynchronous: completion runs from a
//! timer callback which hands the data to the submitted continuation and
//! posts the disk's interrupt vector. Blocking reads are layered on top by
//! the file system using strands.

use crate::clock::{Clock, Nanos, TimerQueue};
use crate::cost::MachineProfile;
use crate::irq::{IrqController, IrqVector};
use spin_check::sync::Mutex;
use std::sync::Arc;

/// Disk block size (one 8 KB page, so paging I/O is one block per page).
pub const BLOCK_SIZE: usize = crate::PAGE_SIZE;

/// Index of a disk block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Physical characteristics of the drive.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    /// Total number of blocks.
    pub blocks: u64,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        // 1 GB drive in 8 KB blocks, like the HP C2247-300.
        DiskGeometry { blocks: 131_072 }
    }
}

/// A queued I/O request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskRequest {
    Read(BlockId),
    Write(BlockId, Vec<u8>),
}

type Completion = Box<dyn FnOnce(Result<Vec<u8>, DiskError>) + Send>;

/// Errors reported at completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The block number is beyond the end of the drive.
    OutOfRange(BlockId),
    /// A write buffer was not exactly one block.
    BadLength(usize),
}

struct DiskState {
    blocks: Vec<Option<Box<[u8]>>>, // None = still zero (never written)
    head: u64,
    in_flight: u64,
    completed: u64,
}

/// The simulated disk.
#[derive(Clone)]
pub struct Disk {
    state: Arc<Mutex<DiskState>>,
    geometry: DiskGeometry,
    clock: Clock,
    timers: TimerQueue,
    irqs: IrqController,
    vector: IrqVector,
    profile: Arc<MachineProfile>,
}

impl Disk {
    /// Creates a zero-filled disk that posts completions on `vector`.
    pub fn new(
        geometry: DiskGeometry,
        clock: Clock,
        timers: TimerQueue,
        irqs: IrqController,
        vector: IrqVector,
        profile: Arc<MachineProfile>,
    ) -> Self {
        let blocks = (0..geometry.blocks).map(|_| None).collect();
        Disk {
            state: Arc::new(Mutex::new(DiskState {
                blocks,
                head: 0,
                in_flight: 0,
                completed: 0,
            })),
            geometry,
            clock,
            timers,
            irqs,
            vector,
            profile,
        }
    }

    /// The drive's interrupt vector.
    pub fn vector(&self) -> IrqVector {
        self.vector
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Latency model: sequential access pays only transfer; anything else
    /// pays an average seek plus half a rotation.
    fn latency(&self, head: u64, target: u64) -> Nanos {
        let p = &self.profile;
        if target == head || target == head + 1 {
            p.disk_block_transfer
        } else {
            p.disk_seek + p.disk_rotation / 2 + p.disk_block_transfer
        }
    }

    /// Submits a request; `done` runs (from a timer) when the media
    /// operation completes, after which the interrupt vector is posted.
    ///
    /// Reads complete with the block contents; writes complete with an
    /// empty buffer.
    pub fn submit(
        &self,
        req: DiskRequest,
        done: impl FnOnce(Result<Vec<u8>, DiskError>) + Send + 'static,
    ) {
        let done: Completion = Box::new(done);
        let block = match &req {
            DiskRequest::Read(b) | DiskRequest::Write(b, _) => *b,
        };
        if block.0 >= self.geometry.blocks {
            done(Err(DiskError::OutOfRange(block)));
            return;
        }
        if let DiskRequest::Write(_, buf) = &req {
            if buf.len() != BLOCK_SIZE {
                done(Err(DiskError::BadLength(buf.len())));
                return;
            }
        }
        let latency = {
            let mut st = self.state.lock();
            let l = self.latency(st.head, block.0);
            st.head = block.0;
            st.in_flight += 1;
            l
        };
        let state = self.state.clone();
        let irqs = self.irqs.clone();
        let vector = self.vector;
        let when = self.clock.now() + latency;
        self.timers.schedule_at(when, move |_| {
            let result = {
                let mut st = state.lock();
                st.in_flight -= 1;
                st.completed += 1;
                match req {
                    DiskRequest::Read(b) => {
                        let data = match &st.blocks[b.0 as usize] {
                            Some(d) => d.to_vec(),
                            None => vec![0u8; BLOCK_SIZE],
                        };
                        Ok(data)
                    }
                    DiskRequest::Write(b, buf) => {
                        st.blocks[b.0 as usize] = Some(buf.into_boxed_slice());
                        Ok(Vec::new())
                    }
                }
            };
            done(result);
            irqs.post(vector);
        });
    }

    /// (in-flight, completed) request counters.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.in_flight, st.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Disk, Clock, TimerQueue, IrqController) {
        let clock = Clock::new();
        let timers = TimerQueue::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let irqs = IrqController::new(clock.clone(), profile.clone());
        let disk = Disk::new(
            DiskGeometry { blocks: 16 },
            clock.clone(),
            timers.clone(),
            irqs.clone(),
            IrqVector(3),
            profile,
        );
        (disk, clock, timers, irqs)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (disk, clock, timers, _irqs) = rig();
        let mut data = vec![0u8; BLOCK_SIZE];
        data[0] = 0xAB;
        let wrote = Arc::new(Mutex::new(false));
        let w2 = wrote.clone();
        disk.submit(DiskRequest::Write(BlockId(5), data), move |r| {
            r.unwrap();
            *w2.lock() = true;
        });
        clock.skip_to(clock.now() + 60_000_000);
        timers.fire_due(clock.now());
        assert!(*wrote.lock());

        let read = Arc::new(Mutex::new(Vec::new()));
        let r2 = read.clone();
        disk.submit(DiskRequest::Read(BlockId(5)), move |r| {
            *r2.lock() = r.unwrap();
        });
        clock.skip_to(clock.now() + 60_000_000);
        timers.fire_due(clock.now());
        assert_eq!(read.lock()[0], 0xAB);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let (disk, clock, timers, _) = rig();
        let read = Arc::new(Mutex::new(Vec::new()));
        let r2 = read.clone();
        disk.submit(DiskRequest::Read(BlockId(0)), move |r| {
            *r2.lock() = r.unwrap();
        });
        clock.skip_to(60_000_000);
        timers.fire_due(clock.now());
        assert_eq!(read.lock().len(), BLOCK_SIZE);
        assert!(read.lock().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_fails_immediately() {
        let (disk, _, _, _) = rig();
        let err = Arc::new(Mutex::new(None));
        let e2 = err.clone();
        disk.submit(DiskRequest::Read(BlockId(999)), move |r| {
            *e2.lock() = Some(r.unwrap_err());
        });
        assert_eq!(*err.lock(), Some(DiskError::OutOfRange(BlockId(999))));
    }

    #[test]
    fn sequential_access_is_cheaper_than_random() {
        let (disk, _, _, _) = rig();
        let seq = disk.latency(4, 5);
        let rand = disk.latency(4, 12);
        assert!(seq < rand);
    }

    #[test]
    fn completion_posts_interrupt() {
        let (disk, clock, timers, irqs) = rig();
        disk.submit(DiskRequest::Read(BlockId(1)), |_| {});
        clock.skip_to(60_000_000);
        timers.fire_due(clock.now());
        assert!(irqs.has_pending());
    }

    #[test]
    fn bad_write_length_rejected() {
        let (disk, _, _, _) = rig();
        let err = Arc::new(Mutex::new(None));
        let e2 = err.clone();
        disk.submit(DiskRequest::Write(BlockId(0), vec![1, 2, 3]), move |r| {
            *e2.lock() = Some(r.unwrap_err());
        });
        assert_eq!(*err.lock(), Some(DiskError::BadLength(3)));
    }
}
