//! Simulated devices: console, disk, and network interfaces.
//!
//! These are the vendor devices of the paper's testbed. SPIN dynamically
//! linked DEC OSF/1 drivers for them ("SPIN's lowest level device interface
//! is identical to the DEC OSF/1 driver interface", §3.1); our equivalents
//! expose small submit/complete interfaces, post interrupts through the
//! host's [`IrqController`](crate::IrqController), and charge the machine
//! profile for driver, copy, PIO/DMA and media time.

pub mod console;
pub mod disk;
pub mod nic;

pub use console::Console;
pub use disk::{BlockId, Disk, DiskGeometry, DiskRequest};
pub use nic::{Frame, IoKind, Nic, NicModel};
