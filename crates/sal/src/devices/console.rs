//! The console device: "get a character from the console" (§5.1).

use crate::clock::Clock;
use crate::cost::MachineProfile;
use spin_check::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct ConsoleState {
    output: Vec<u8>,
    input: VecDeque<u8>,
}

/// A simulated serial console.
///
/// Output accumulates in a buffer that tests and examples can read back;
/// input is injected with [`Console::inject_input`].
#[derive(Clone)]
pub struct Console {
    state: Arc<Mutex<ConsoleState>>,
    clock: Clock,
    profile: Arc<MachineProfile>,
}

impl Console {
    /// Creates an empty console.
    pub fn new(clock: Clock, profile: Arc<MachineProfile>) -> Self {
        Console {
            state: Arc::new(Mutex::new(ConsoleState {
                output: Vec::new(),
                input: VecDeque::new(),
            })),
            clock,
            profile,
        }
    }

    /// Writes one character to the console.
    pub fn put_char(&self, c: u8) {
        self.clock.advance(self.profile.pio(1));
        self.state.lock().output.push(c);
    }

    /// Writes a whole string.
    pub fn put_str(&self, s: &str) {
        self.clock.advance(self.profile.pio(s.len()));
        self.state.lock().output.extend_from_slice(s.as_bytes());
    }

    /// Reads one character, if any is buffered.
    pub fn get_char(&self) -> Option<u8> {
        self.clock.advance(self.profile.pio(1));
        self.state.lock().input.pop_front()
    }

    /// Makes `data` available to subsequent [`Console::get_char`] calls.
    pub fn inject_input(&self, data: &[u8]) {
        self.state.lock().input.extend(data.iter().copied());
    }

    /// Everything written so far, as a lossy string.
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.state.lock().output).into_owned()
    }

    /// Clears the output buffer (useful between test phases).
    pub fn clear_output(&self) {
        self.state.lock().output.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn console() -> Console {
        Console::new(Clock::new(), Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    #[test]
    fn output_accumulates() {
        let c = console();
        c.put_str("Intruder ");
        c.put_str("Alert");
        assert_eq!(c.output(), "Intruder Alert");
        c.clear_output();
        assert_eq!(c.output(), "");
    }

    #[test]
    fn input_is_fifo() {
        let c = console();
        assert_eq!(c.get_char(), None);
        c.inject_input(b"ab");
        assert_eq!(c.get_char(), Some(b'a'));
        assert_eq!(c.get_char(), Some(b'b'));
        assert_eq!(c.get_char(), None);
    }

    #[test]
    fn console_io_costs_time() {
        let c = console();
        let t0 = c.clock.now();
        c.put_str("hello");
        assert!(c.clock.now() > t0);
    }
}
