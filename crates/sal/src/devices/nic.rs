//! Network interface cards: Lance Ethernet, FORE ATM (PIO) and T3 (DMA).
//!
//! The paper's testbed (§5): a 10 Mb/s Lance Ethernet, a FORE TCA-100
//! 155 Mb/s ATM card that "uses programmed I/O and can maximally deliver
//! only about 53 Mb/s", and the experimental Digital T3PKT adapter that
//! "can send 45 Mb/s using DMA". PIO burns CPU per byte (that is what caps
//! the ATM card and dominates the video server's CPU in Figure 6's PIO
//! configuration); DMA costs only a fixed descriptor setup.

use crate::clock::Clock;
use crate::cost::MachineProfile;
use crate::irq::{IrqController, IrqVector};
use crate::wire::{Wire, WireEndpoint};
use bytes::Bytes;
use spin_check::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// How the card moves bytes between memory and the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// The CPU copies every byte to/from the card.
    Pio,
    /// The card DMAs; the CPU pays a fixed setup per packet.
    Dma,
}

/// Static description of a card model.
#[derive(Debug, Clone)]
pub struct NicModel {
    pub name: &'static str,
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum payload per frame.
    pub mtu: usize,
    /// Per-frame framing overhead on the wire, in bytes.
    pub framing_bytes: usize,
    pub io: IoKind,
    /// Card staging latency per frame (buffering inside the adapter and
    /// its firmware), added to delivery time without consuming CPU. The
    /// paper notes "neither the Lance Ethernet driver nor the FORE ATM
    /// driver are optimized for latency" (§5.3); this is where that shows.
    pub staging_ns: u64,
    /// Per-packet driver CPU cost for this device (vendor drivers differ;
    /// the experimental T3PKT driver is the heaviest, which is what makes
    /// Figure 6's utilization grow as fast as it does).
    pub driver_ns: u64,
}

impl NicModel {
    /// The 10 Mb/s Lance Ethernet interface.
    pub fn lance_ethernet() -> Self {
        NicModel {
            name: "Lance Ethernet",
            bandwidth_bps: 10_000_000,
            mtu: 1500,
            framing_bytes: 38, // preamble + header + FCS + IFG
            io: IoKind::Dma,
            staging_ns: 68_000,
            driver_ns: 60_000,
        }
    }

    /// The FORE TCA-100 ATM adapter (programmed I/O).
    pub fn fore_atm() -> Self {
        NicModel {
            name: "FORE TCA-100 ATM",
            bandwidth_bps: 155_000_000,
            mtu: 8132,
            framing_bytes: 60, // AAL5 trailer + cell tax approximation
            io: IoKind::Pio,
            staging_ns: 74_000,
            driver_ns: 60_000,
        }
    }

    /// The experimental Digital T3PKT adapter (45 Mb/s, DMA).
    pub fn t3_dma() -> Self {
        NicModel {
            name: "Digital T3PKT",
            bandwidth_bps: 45_000_000,
            mtu: 8192,
            framing_bytes: 16,
            io: IoKind::Dma,
            staging_ns: 20_000,
            driver_ns: 242_000,
        }
    }
}

/// A frame in flight or in a receive queue.
#[derive(Debug, Clone)]
pub struct Frame {
    pub src: WireEndpoint,
    pub dst: WireEndpoint,
    pub payload: Bytes,
}

/// Errors from the send path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicError {
    /// Payload exceeds the card's MTU.
    TooLarge { len: usize, mtu: usize },
}

#[derive(Default)]
struct NicStats {
    tx_frames: u64,
    tx_bytes: u64,
    rx_frames: u64,
    rx_bytes: u64,
}

/// One installed network interface.
#[derive(Clone)]
pub struct Nic {
    model: NicModel,
    addr: WireEndpoint,
    wire: Wire,
    rx: Arc<Mutex<VecDeque<Frame>>>,
    clock: Clock,
    profile: Arc<MachineProfile>,
    stats: Arc<Mutex<NicStats>>,
}

impl Nic {
    /// Creates a NIC, attaching it to `wire` at address `addr`; received
    /// frames post `vector` on `irqs`.
    pub fn new(
        model: NicModel,
        addr: WireEndpoint,
        wire: Wire,
        irqs: IrqController,
        vector: IrqVector,
        clock: Clock,
        profile: Arc<MachineProfile>,
    ) -> Self {
        let rx = Arc::new(Mutex::new(VecDeque::new()));
        wire.attach(addr, rx.clone(), irqs, vector);
        Nic {
            model,
            addr,
            wire,
            rx,
            clock,
            profile,
            stats: Arc::new(Mutex::new(NicStats::default())),
        }
    }

    /// [`Nic::new`] for a card living on a kernel shard (multicore mode):
    /// inbound frames are posted into the shard's mailbox, and the wire
    /// times this sender against the shard's own clock.
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the shard mailbox
    pub fn new_sharded(
        model: NicModel,
        addr: WireEndpoint,
        wire: Wire,
        irqs: IrqController,
        vector: IrqVector,
        clock: Clock,
        profile: Arc<MachineProfile>,
        mailbox: crate::mailbox::Mailbox,
    ) -> Self {
        let rx = Arc::new(Mutex::new(VecDeque::new()));
        wire.attach_shard(addr, rx.clone(), irqs, vector, mailbox, clock.clone());
        Nic {
            model,
            addr,
            wire,
            rx,
            clock,
            profile,
            stats: Arc::new(Mutex::new(NicStats::default())),
        }
    }

    /// The card model.
    pub fn model(&self) -> &NicModel {
        &self.model
    }

    /// This card's wire address.
    pub fn addr(&self) -> WireEndpoint {
        self.addr
    }

    /// Transmits `payload` to `dst`, charging driver and I/O costs and
    /// handing the frame to the wire.
    pub fn send(&self, dst: WireEndpoint, payload: Bytes) -> Result<(), NicError> {
        if payload.len() > self.model.mtu {
            return Err(NicError::TooLarge {
                len: payload.len(),
                mtu: self.model.mtu,
            });
        }
        let p = &self.profile;
        self.clock.advance(self.model.driver_ns);
        match self.model.io {
            IoKind::Pio => self.clock.advance(p.pio(payload.len())),
            IoKind::Dma => self.clock.advance(p.dma_setup),
        }
        {
            let mut st = self.stats.lock();
            st.tx_frames += 1;
            st.tx_bytes += payload.len() as u64;
        }
        let bits = ((payload.len() + self.model.framing_bytes) * 8) as u64;
        self.wire.transmit_delayed(
            Frame {
                src: self.addr,
                dst,
                payload,
            },
            bits,
            self.model.bandwidth_bps,
            self.model.staging_ns,
        );
        Ok(())
    }

    /// Transmits a burst of payloads, charging per-frame driver and I/O
    /// costs exactly as [`Nic::send`] would, then handing the whole burst
    /// to the wire under one wire-lock acquisition. Stops at the first
    /// oversized payload (frames before it are already committed).
    pub fn send_burst(&self, frames: Vec<(WireEndpoint, Bytes)>) -> Result<(), NicError> {
        if frames.is_empty() {
            return Ok(());
        }
        let p = &self.profile;
        let mut wire_frames = Vec::with_capacity(frames.len());
        for (dst, payload) in frames {
            if payload.len() > self.model.mtu {
                self.wire.transmit_burst(
                    wire_frames,
                    self.model.bandwidth_bps,
                    self.model.staging_ns,
                );
                return Err(NicError::TooLarge {
                    len: payload.len(),
                    mtu: self.model.mtu,
                });
            }
            self.clock.advance(self.model.driver_ns);
            match self.model.io {
                IoKind::Pio => self.clock.advance(p.pio(payload.len())),
                IoKind::Dma => self.clock.advance(p.dma_setup),
            }
            {
                let mut st = self.stats.lock();
                st.tx_frames += 1;
                st.tx_bytes += payload.len() as u64;
            }
            let bits = ((payload.len() + self.model.framing_bytes) * 8) as u64;
            wire_frames.push((
                Frame {
                    src: self.addr,
                    dst,
                    payload,
                },
                bits,
            ));
        }
        self.wire
            .transmit_burst(wire_frames, self.model.bandwidth_bps, self.model.staging_ns);
        Ok(())
    }

    /// Pulls the next received frame, charging the driver and the inbound
    /// copy (PIO cards burn CPU per byte here too).
    pub fn receive(&self) -> Option<Frame> {
        let frame = self.rx.lock().pop_front()?;
        let p = &self.profile;
        self.clock.advance(self.model.driver_ns);
        match self.model.io {
            IoKind::Pio => self.clock.advance(p.pio(frame.payload.len())),
            IoKind::Dma => self.clock.advance(p.dma_setup),
        }
        {
            let mut st = self.stats.lock();
            st.rx_frames += 1;
            st.rx_bytes += frame.payload.len() as u64;
        }
        Some(frame)
    }

    /// Number of frames waiting in the receive queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.lock().len()
    }

    /// (tx frames, tx bytes, rx frames, rx bytes).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        let st = self.stats.lock();
        (st.tx_frames, st.tx_bytes, st.rx_frames, st.rx_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimerQueue;

    fn rig(model: NicModel) -> (Nic, Nic, Clock, TimerQueue, IrqController) {
        let clock = Clock::new();
        let timers = TimerQueue::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let wire = Wire::new(clock.clone(), timers.clone(), 1_000);
        let irqs = IrqController::new(clock.clone(), profile.clone());
        let a = Nic::new(
            model.clone(),
            WireEndpoint(1),
            wire.clone(),
            irqs.clone(),
            IrqVector(10),
            clock.clone(),
            profile.clone(),
        );
        let b = Nic::new(
            model,
            WireEndpoint(2),
            wire,
            irqs.clone(),
            IrqVector(11),
            clock.clone(),
            profile,
        );
        (a, b, clock, timers, irqs)
    }

    #[test]
    fn ethernet_frame_travels_between_nics() {
        let (a, b, clock, timers, irqs) = rig(NicModel::lance_ethernet());
        a.send(WireEndpoint(2), Bytes::from_static(b"ping"))
            .unwrap();
        clock.skip_to(clock.now() + 10_000_000);
        timers.fire_due(clock.now());
        assert!(irqs.has_pending());
        let f = b.receive().expect("frame should have arrived");
        assert_eq!(&f.payload[..], b"ping");
        assert_eq!(f.src, WireEndpoint(1));
        assert_eq!(a.counters().0, 1);
        assert_eq!(b.counters().2, 1);
    }

    #[test]
    fn mtu_is_enforced() {
        let (a, _, _, _, _) = rig(NicModel::lance_ethernet());
        let big = Bytes::from(vec![0u8; 1501]);
        assert_eq!(
            a.send(WireEndpoint(2), big),
            Err(NicError::TooLarge {
                len: 1501,
                mtu: 1500
            })
        );
    }

    #[test]
    fn pio_costs_scale_with_length_dma_does_not() {
        let (atm, _, clock, _, _) = rig(NicModel::fore_atm());
        let t0 = clock.now();
        atm.send(WireEndpoint(2), Bytes::from(vec![0u8; 8000]))
            .unwrap();
        let pio_cost = clock.now() - t0;

        let (t3, _, clock2, _, _) = rig(NicModel::t3_dma());
        let t1 = clock2.now();
        t3.send(WireEndpoint(2), Bytes::from(vec![0u8; 8000]))
            .unwrap();
        let dma_cost = clock2.now() - t1;

        // The T3's driver is itself expensive; compare the byte-dependent
        // portion: PIO must dwarf DMA setup once driver costs are removed.
        let pio_only = pio_cost - NicModel::fore_atm().driver_ns;
        let dma_only = dma_cost - NicModel::t3_dma().driver_ns;
        assert!(
            pio_only > 100 * dma_only.max(1),
            "PIO ({pio_only} ns) should dwarf DMA ({dma_only} ns)"
        );
    }

    #[test]
    fn receive_on_empty_queue_is_none_and_free() {
        let (a, _, clock, _, _) = rig(NicModel::lance_ethernet());
        let t0 = clock.now();
        assert!(a.receive().is_none());
        assert_eq!(clock.now(), t0);
    }
}
