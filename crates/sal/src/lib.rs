//! `spin-sal` — the System Abstraction Layer for the SPIN reproduction.
//!
//! The paper's `sal` component "implements a low-level interface to device
//! drivers and the MMU, offering functionality such as 'install a page table
//! entry', 'get a character from the console', and 'read block 22 from SCSI
//! unit 0'" (§5.1). The original was a trimmed DEC OSF/1 kernel running on a
//! 133 MHz DEC Alpha AXP 3000/400; this crate substitutes a deterministic
//! simulation of that machine:
//!
//! * a global **virtual clock** ([`Clock`]) that all simulated work advances,
//! * a **machine cost profile** ([`MachineProfile`]) calibrated to the paper's
//!   hardware, so higher layers charge for traps, copies, context switches,
//!   wire time and disk time in a structurally faithful way,
//! * **physical memory** ([`PhysMem`]) and an **MMU** ([`Mmu`]) with page
//!   tables, protection bits and a TLB,
//! * **devices**: a console, a seek-model disk, and three network interfaces
//!   matching the paper's testbed (Lance Ethernet, FORE ATM with programmed
//!   I/O, and the experimental T3 DMA adapter),
//! * a **wire** connecting simulated hosts, delivering frames through the
//!   shared timer queue, and
//! * an **interrupt controller** per host.
//!
//! Everything here is passive: devices and the MMU account costs and move
//! bytes, while the executor in `spin-sched` pumps timers and interrupts.
//! Determinism comes from the single timeline, sequence-numbered timers and
//! the absence of wall-clock or unseeded randomness.

#![forbid(unsafe_code)]

pub mod board;
pub mod buf;
pub mod clock;
pub mod cost;
pub mod devices;
pub mod irq;
pub mod mailbox;
pub mod mem;
pub mod mmu;
pub mod trap;
pub mod wire;

pub use board::{Host, HostId, MulticoreBoard, SimBoard};
pub use buf::BufChain;
pub use clock::{AdvanceHookId, Clock, Nanos, TimerQueue};
pub use cost::{cycles, MachineProfile, CYCLE_NS};
pub use irq::{Irq, IrqController, IrqVector};
pub use mailbox::{lanes, Envelope, MailFate, Mailbox};
pub use mem::{FrameId, PhysMem};
pub use mmu::{ContextId, Mmu, MmuFault, PageTable, Protection, Tlb};
pub use trap::Trap;
pub use wire::{Wire, WireEndpoint};

/// The Alpha AXP page size used throughout the simulation (8 KB).
pub const PAGE_SIZE: usize = 8192;

/// Number of bits in the page offset (`log2(PAGE_SIZE)`).
pub const PAGE_SHIFT: u32 = 13;

/// Converts a virtual or physical address to its page number.
#[inline]
pub const fn page_of(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Converts an address to its offset within a page.
#[inline]
pub const fn page_offset(addr: u64) -> usize {
    (addr & (PAGE_SIZE as u64 - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic_round_trips() {
        let addr = 3 * PAGE_SIZE as u64 + 17;
        assert_eq!(page_of(addr), 3);
        assert_eq!(page_offset(addr), 17);
    }

    #[test]
    fn page_size_is_power_of_two() {
        assert_eq!(1usize << PAGE_SHIFT, PAGE_SIZE);
    }
}
