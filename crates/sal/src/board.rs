//! Assembling the simulated testbed: a board (shared timeline + wire) and
//! hosts (CPU-local hardware).
//!
//! The paper's experiments run on one or two DEC Alpha workstations joined
//! by Ethernet and ATM. [`SimBoard::new_host`] builds a fully-populated
//! workstation; multi-host experiments share one [`SimBoard`], hence one
//! virtual timeline, one timer queue and one wire per medium.

use crate::clock::{Clock, Nanos, TimerQueue};
use crate::cost::MachineProfile;
use crate::devices::console::Console;
use crate::devices::disk::{Disk, DiskGeometry};
use crate::devices::nic::{Nic, NicModel};
use crate::irq::IrqController;
use crate::mailbox::{lanes, Mailbox};
use crate::mem::PhysMem;
use crate::mmu::Mmu;
use crate::wire::{Wire, WireEndpoint};
use spin_check::sync::Mutex;
use std::sync::Arc;

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Well-known interrupt vectors, mirroring a fixed motherboard wiring.
pub mod vectors {
    use crate::irq::IrqVector;

    pub const DISK: IrqVector = IrqVector(1);
    pub const ETHERNET: IrqVector = IrqVector(2);
    pub const ATM: IrqVector = IrqVector(3);
    pub const T3: IrqVector = IrqVector(4);
    pub const TIMER: IrqVector = IrqVector(5);
}

/// The shared simulation backplane.
#[derive(Clone)]
pub struct SimBoard {
    pub clock: Clock,
    pub timers: TimerQueue,
    pub profile: Arc<MachineProfile>,
    /// The Ethernet segment joining all hosts.
    pub ethernet: Wire,
    /// The ATM switch joining all hosts.
    pub atm: Wire,
    /// The T3 link (video-server experiment).
    pub t3: Wire,
    next_host: Arc<Mutex<u32>>,
}

impl SimBoard {
    /// Creates a board with the paper's machine profile.
    pub fn new() -> Self {
        Self::with_profile(MachineProfile::alpha_axp_3000_400())
    }

    /// Creates a board with a custom profile (used by ablation benches).
    pub fn with_profile(profile: MachineProfile) -> Self {
        let clock = Clock::new();
        let timers = TimerQueue::new();
        // One-way latency: dominated by the switch/segment, a few µs.
        let ethernet = Wire::new(clock.clone(), timers.clone(), 5_000);
        let atm = Wire::new(clock.clone(), timers.clone(), 3_000);
        let t3 = Wire::new(clock.clone(), timers.clone(), 3_000);
        SimBoard {
            clock,
            timers,
            profile: Arc::new(profile),
            ethernet,
            atm,
            t3,
            next_host: Arc::new(Mutex::new(0)),
        }
    }

    /// Builds a complete workstation attached to all three media.
    ///
    /// Wire addresses are deterministic: host *i* gets endpoint *i* on every
    /// medium.
    pub fn new_host(&self, memory_frames: usize) -> Host {
        let id = {
            let mut n = self.next_host.lock();
            let id = HostId(*n);
            *n += 1;
            id
        };
        let irqs = IrqController::new(self.clock.clone(), self.profile.clone());
        let endpoint = WireEndpoint(id.0);
        Host {
            id,
            mem: PhysMem::new(memory_frames),
            mmu: Mmu::new(self.clock.clone(), self.profile.clone()),
            console: Console::new(self.clock.clone(), self.profile.clone()),
            disk: Disk::new(
                DiskGeometry::default(),
                self.clock.clone(),
                self.timers.clone(),
                irqs.clone(),
                vectors::DISK,
                self.profile.clone(),
            ),
            ethernet: Nic::new(
                NicModel::lance_ethernet(),
                endpoint,
                self.ethernet.clone(),
                irqs.clone(),
                vectors::ETHERNET,
                self.clock.clone(),
                self.profile.clone(),
            ),
            atm: Nic::new(
                NicModel::fore_atm(),
                endpoint,
                self.atm.clone(),
                irqs.clone(),
                vectors::ATM,
                self.clock.clone(),
                self.profile.clone(),
            ),
            t3: Nic::new(
                NicModel::t3_dma(),
                endpoint,
                self.t3.clone(),
                irqs.clone(),
                vectors::T3,
                self.clock.clone(),
                self.profile.clone(),
            ),
            irqs,
            clock: self.clock.clone(),
            timers: self.timers.clone(),
            profile: self.profile.clone(),
            mailbox: Mailbox::new(),
        }
    }
}

impl Default for SimBoard {
    fn default() -> Self {
        Self::new()
    }
}

/// The multicore backplane: every host is a *shard* with its own clock,
/// timer queue and inbound [`Mailbox`]; the wires deliver cross-host frames
/// into the destination's mailbox instead of a shared timer queue.
///
/// A `spin_sched::Multicore` pumps the shards under a conservative-PDES
/// virtual-time barrier, so the virtual-time outputs are byte-identical to
/// a single-threaded pump regardless of how many OS worker threads run the
/// shards.
#[derive(Clone)]
pub struct MulticoreBoard {
    pub profile: Arc<MachineProfile>,
    /// The Ethernet segment joining all hosts.
    pub ethernet: Wire,
    /// The ATM switch joining all hosts.
    pub atm: Wire,
    /// The T3 link.
    pub t3: Wire,
    next_host: Arc<Mutex<u32>>,
}

impl MulticoreBoard {
    /// Creates a multicore board with the paper's machine profile.
    pub fn new() -> Self {
        Self::with_profile(MachineProfile::alpha_axp_3000_400())
    }

    /// Creates a multicore board with a custom profile.
    pub fn with_profile(profile: MachineProfile) -> Self {
        // The wires' fallback clock/timers are never used: every endpoint
        // on a multicore board attaches shard-style.
        let idle_clock = Clock::new();
        let idle_timers = TimerQueue::new();
        let ethernet = Wire::with_lane_base(
            idle_clock.clone(),
            idle_timers.clone(),
            5_000,
            lanes::ETHERNET_BASE,
        );
        let atm = Wire::with_lane_base(
            idle_clock.clone(),
            idle_timers.clone(),
            3_000,
            lanes::ATM_BASE,
        );
        let t3 = Wire::with_lane_base(idle_clock, idle_timers, 3_000, lanes::T3_BASE);
        MulticoreBoard {
            profile: Arc::new(profile),
            ethernet,
            atm,
            t3,
            next_host: Arc::new(Mutex::new(0)),
        }
    }

    /// The conservative-PDES lookahead: the minimum virtual delay of any
    /// cross-shard effect (cross-core call vs. the fastest wire). No mail
    /// posted by a shard at time `t` can be due before `t + lookahead()`.
    pub fn lookahead(&self) -> Nanos {
        self.profile
            .xcall_latency
            .min(self.ethernet.propagation())
            .min(self.atm.propagation())
            .min(self.t3.propagation())
    }

    /// Builds a workstation shard with its own timeline and mailbox,
    /// attached to all three media. Endpoints are deterministic: host *i*
    /// gets endpoint *i* on every medium.
    pub fn new_host(&self, memory_frames: usize) -> Host {
        let id = {
            let mut n = self.next_host.lock();
            let id = HostId(*n);
            *n += 1;
            id
        };
        let clock = Clock::new();
        let timers = TimerQueue::new();
        let mailbox = Mailbox::new();
        let irqs = IrqController::new(clock.clone(), self.profile.clone());
        let endpoint = WireEndpoint(id.0);
        let nic = |model: NicModel, wire: &Wire, vector| {
            Nic::new_sharded(
                model,
                endpoint,
                wire.clone(),
                irqs.clone(),
                vector,
                clock.clone(),
                self.profile.clone(),
                mailbox.clone(),
            )
        };
        Host {
            id,
            mem: PhysMem::new(memory_frames),
            mmu: Mmu::new(clock.clone(), self.profile.clone()),
            console: Console::new(clock.clone(), self.profile.clone()),
            disk: Disk::new(
                DiskGeometry::default(),
                clock.clone(),
                timers.clone(),
                irqs.clone(),
                vectors::DISK,
                self.profile.clone(),
            ),
            ethernet: nic(
                NicModel::lance_ethernet(),
                &self.ethernet,
                vectors::ETHERNET,
            ),
            atm: nic(NicModel::fore_atm(), &self.atm, vectors::ATM),
            t3: nic(NicModel::t3_dma(), &self.t3, vectors::T3),
            irqs,
            clock,
            timers,
            profile: self.profile.clone(),
            mailbox,
        }
    }
}

impl Default for MulticoreBoard {
    fn default() -> Self {
        Self::new()
    }
}

/// One simulated DEC Alpha workstation.
#[derive(Clone)]
pub struct Host {
    pub id: HostId,
    pub mem: PhysMem,
    pub mmu: Mmu,
    pub console: Console,
    pub disk: Disk,
    pub ethernet: Nic,
    pub atm: Nic,
    pub t3: Nic,
    pub irqs: IrqController,
    pub clock: Clock,
    pub timers: TimerQueue,
    pub profile: Arc<MachineProfile>,
    /// Inbound cross-shard messages (multicore mode; empty and unused on a
    /// shared-timeline [`SimBoard`]).
    pub mailbox: Mailbox,
}

impl Host {
    /// This host's address on every wire.
    pub fn endpoint(&self) -> WireEndpoint {
        WireEndpoint(self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn two_hosts_share_a_timeline_and_can_talk() {
        let board = SimBoard::new();
        let a = board.new_host(64);
        let b = board.new_host(64);
        assert_ne!(a.id, b.id);

        a.ethernet
            .send(b.endpoint(), Bytes::from_static(b"hello"))
            .unwrap();
        board.clock.skip_to(board.clock.now() + 10_000_000);
        board.timers.fire_due(board.clock.now());
        b.irqs.dispatch_pending();
        let f = b.ethernet.receive().unwrap();
        assert_eq!(&f.payload[..], b"hello");
    }

    #[test]
    fn hosts_have_isolated_memory_and_mmu() {
        let board = SimBoard::new();
        let a = board.new_host(8);
        let b = board.new_host(8);
        a.mem.write(crate::FrameId(0), 0, &[1]);
        let mut buf = [0u8; 1];
        b.mem.read(crate::FrameId(0), 0, &mut buf);
        assert_eq!(buf, [0]);
        let ctx = a.mmu.create_context();
        assert!(b.mmu.examine(ctx, 0).is_err());
    }

    #[test]
    fn endpoints_are_deterministic() {
        let board = SimBoard::new();
        let a = board.new_host(1);
        let b = board.new_host(1);
        assert_eq!(a.endpoint(), WireEndpoint(0));
        assert_eq!(b.endpoint(), WireEndpoint(1));
    }
}
