//! Property tests for the flight recorder ring: drains preserve record
//! order, overflow drops the *oldest* records, and the `dropped` counter
//! is exact under any interleaving of pushes and drains.

use proptest::prelude::*;
use spin_obs::{DomainId, Ring, TraceKind, TraceRecord};

#[derive(Debug, Clone)]
enum Op {
    /// Push `n` sequentially-numbered records.
    Push { n: usize },
    /// Drain everything pending.
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<usize>().prop_map(|n| Op::Push { n: n % 300 }),
        Just(Op::Drain),
    ]
}

fn rec(i: u64) -> TraceRecord {
    TraceRecord {
        time: i,
        domain: DomainId((i % 5) as u32),
        kind: TraceKind::EventRaise,
        a: i,
        b: !i,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn drain_order_and_exact_drop_accounting(
        cap in 1usize..200,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let ring = Ring::new(cap);
        let mut pushed: u64 = 0;
        let mut seen: u64 = 0; // everything below this was returned or dropped
        let mut returned: u64 = 0;

        for op in ops {
            match op {
                Op::Push { n } => {
                    for _ in 0..n {
                        ring.push(rec(pushed));
                        pushed += 1;
                    }
                }
                Op::Drain => {
                    let got = ring.drain();
                    // Oldest-first, gapless, ending at the write cursor:
                    // exactly the newest `min(pending, cap)` records.
                    let expect_start = seen.max(pushed.saturating_sub(cap as u64));
                    let expect: Vec<u64> = (expect_start..pushed).collect();
                    let got_ids: Vec<u64> = got.iter().map(|r| r.a).collect();
                    prop_assert_eq!(&got_ids, &expect);
                    // Payloads survive intact.
                    for r in &got {
                        prop_assert_eq!(*r, rec(r.a));
                    }
                    returned += got.len() as u64;
                    seen = pushed;
                    // Nothing pending: every record was returned or counted
                    // dropped, exactly.
                    prop_assert!(ring.is_empty());
                    prop_assert_eq!(returned + ring.dropped(), pushed);
                }
            }
        }
        // Terminal accounting: pushed == returned + dropped + pending.
        let pending = ring.len() as u64;
        prop_assert_eq!(returned + ring.dropped() + pending, pushed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-shot overflow: push `n` into capacity `cap`, drain once.
    #[test]
    fn overflow_keeps_newest_with_exact_dropped(cap in 1usize..128, n in 0u64..500) {
        let ring = Ring::new(cap);
        for i in 0..n {
            ring.push(rec(i));
        }
        let expect_dropped = n.saturating_sub(cap as u64);
        prop_assert_eq!(ring.dropped(), expect_dropped);
        let got = ring.drain();
        let got_ids: Vec<u64> = got.iter().map(|r| r.a).collect();
        let expect: Vec<u64> = (expect_dropped..n).collect();
        prop_assert_eq!(got_ids, expect);
        prop_assert_eq!(ring.dropped(), expect_dropped);
        prop_assert_eq!(ring.pushed(), n);
    }
}
