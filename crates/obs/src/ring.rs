//! The flight recorder: a fixed-capacity, lock-free MPSC ring of trace
//! records.
//!
//! Producers are the kernel's hook points (dispatcher raises, context
//! switches, VM faults, GC pauses, packet rx/tx, syscall traps); the single
//! consumer is whoever drains the recorder for a dump. The ring **drops
//! oldest** under overflow: producers never wait and never fail, and the
//! recorder keeps the most recent `capacity` records — exactly what a
//! flight recorder is for. Every overwritten record is tallied in an exact
//! [`Ring::dropped`] counter.
//!
//! Publication uses a per-slot seqlock: a producer claims a position with
//! one `fetch_add` on the write cursor, marks the slot in-progress, stores
//! the record words, and publishes with a release store of the
//! position-derived sequence. The consumer validates the sequence before
//! *and* after reading, so a record overwritten mid-read is detected and
//! counted as dropped rather than returned torn.
//!
//! # Memory-model note
//!
//! The word stores are `Release` and the word loads `Acquire`, not
//! `Relaxed`. A textbook seqlock with relaxed data accesses is unsound
//! under the C11 model (Boehm, "Can seqlocks get along with programming
//! language memory models?"): a reader may observe the *old* sequence
//! twice while a relaxed word load returns a *new* value from a
//! concurrent overwrite — a torn record both validations miss. With
//! Release word stores, a reader that observes any overwritten word
//! synchronizes with the overwriter and is therefore guaranteed to see
//! its `WRITING` sentinel (stored earlier in program order) on the second
//! validation. The `spin-check` model checker explores exactly this
//! interleaving (see `crates/check/tests/checks.rs`, seqlock check).
//!
//! # Safety
//!
//! This module contains the kernel's only `unsafe` blocks: bounds-check
//! elision on the hot-path slot lookup. The invariant is local and
//! unconditional — `slots` is allocated with exactly `cap` elements in
//! [`Ring::new`] and never reallocated, and every index is computed as
//! `pos % cap`, which is `< cap` for any `pos` because `cap >= 1`.

use crate::account::DomainId;
use crate::Nanos;
use spin_check::sync::Mutex;
use spin_check::sync::{AtomicU64, Ordering};

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// An event was raised through the dispatcher (`a` = event id,
    /// `b` = handlers on the snapshot plan).
    EventRaise = 0,
    /// A handler ran (`a` = event id, `b` = handler id).
    HandlerRun = 1,
    /// A guard was evaluated (`a` = event id, `b` = 1 if it passed).
    GuardEval = 2,
    /// The executor switched to a strand (`a` = strand id).
    ContextSwitch = 3,
    /// A VM fault was delivered (`a` = faulting virtual address,
    /// `b` = fault class).
    VmFault = 4,
    /// A garbage collection completed (`a` = live bytes surviving,
    /// `b` = objects copied).
    GcPause = 5,
    /// A frame arrived from the wire (`a` = frame bytes).
    PacketRx = 6,
    /// A frame was transmitted (`a` = frame bytes).
    PacketTx = 7,
    /// A syscall trapped into the kernel (`a` = syscall number).
    SyscallTrap = 8,
    /// A cross-shard envelope was drained for delivery (`a` = lane,
    /// `b` = virtual delivery time).
    MailDeliver = 9,
    /// The multicore barrier opened an epoch (`a` = the epoch's global
    /// virtual time).
    ShardEpoch = 10,
    /// A hot-swap protocol phase was entered (`a` = phase ordinal:
    /// 0 quiesce, 1 transfer, 2 rebind, 3 resume, 4 committed,
    /// 5 rolled back; `b` = phase-specific count — raises held at
    /// quiesce, raises replayed at resume, plan generation at rebind).
    SwapPhase = 11,
    /// A domain crossed a resource-quota escalation boundary (`a` =
    /// ledger ordinal of the domain, `b` = escalation level: 1 throttle
    /// trip, 2 entered shedding, 3 quarantined).
    QuotaBreach = 12,
}

impl TraceKind {
    /// Stable label used by the dump and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::EventRaise => "event_raise",
            TraceKind::HandlerRun => "handler_run",
            TraceKind::GuardEval => "guard_eval",
            TraceKind::ContextSwitch => "context_switch",
            TraceKind::VmFault => "vm_fault",
            TraceKind::GcPause => "gc_pause",
            TraceKind::PacketRx => "packet_rx",
            TraceKind::PacketTx => "packet_tx",
            TraceKind::SyscallTrap => "syscall_trap",
            TraceKind::MailDeliver => "mail_deliver",
            TraceKind::ShardEpoch => "shard_epoch",
            TraceKind::SwapPhase => "swap_phase",
            TraceKind::QuotaBreach => "quota_breach",
        }
    }

    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::EventRaise,
            1 => TraceKind::HandlerRun,
            2 => TraceKind::GuardEval,
            3 => TraceKind::ContextSwitch,
            4 => TraceKind::VmFault,
            5 => TraceKind::GcPause,
            6 => TraceKind::PacketRx,
            7 => TraceKind::PacketTx,
            8 => TraceKind::SyscallTrap,
            9 => TraceKind::MailDeliver,
            10 => TraceKind::ShardEpoch,
            11 => TraceKind::SwapPhase,
            12 => TraceKind::QuotaBreach,
            _ => return None,
        })
    }
}

/// One flight-recorder entry: what happened, where, and at what virtual
/// time. `a`/`b` are kind-specific arguments (see [`TraceKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the record was written.
    pub time: Nanos,
    /// The originating domain.
    pub domain: DomainId,
    /// What happened.
    pub kind: TraceKind,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// Sequence value marking a slot as mid-write.
const WRITING: u64 = u64::MAX;

#[derive(Default)]
struct Slot {
    /// `pos + 1` once the record for position `pos` is fully published;
    /// [`WRITING`] while a producer is storing; 0 if never written.
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

/// The lock-free drop-oldest ring. See the module docs for the protocol.
pub struct Ring {
    slots: Box<[Slot]>,
    cap: u64,
    /// Next position to claim; grows without bound. `pos % cap` is the slot.
    write: AtomicU64,
    /// Next position the consumer will read.
    read: AtomicU64,
    /// Records lost to overwrite (or detected torn), tallied exactly.
    dropped: AtomicU64,
    /// Serializes consumers; producers never take it.
    drain_lock: Mutex<()>,
}

impl Ring {
    /// Creates a ring holding up to `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.max(1);
        Ring {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            cap: cap as u64,
            write: AtomicU64::new(0),
            read: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Appends a record; never blocks, never fails. Overwrites the oldest
    /// pending record when full.
    pub fn push(&self, rec: TraceRecord) {
        // ordering: Relaxed suffices for the claim — the cursor only
        // allocates positions; publication is carried by the slot seqlock.
        let pos = self.write.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `slots` holds exactly `cap` elements (allocated in
        // `new`, never resized) and `pos % cap < cap` since `cap >= 1`.
        let slot = unsafe { self.slots.get_unchecked((pos % self.cap) as usize) };
        // The sentinel orders the *previous* record's words before
        // `WRITING` becomes visible, so a reader that saw the old sequence
        // cannot blame this writer for a torn old record.
        // ordering: Release — sentinel publish.
        slot.seq.store(WRITING, Ordering::Release);
        // Release word stores make any reader that observes one of them
        // synchronize with this writer and hence see `WRITING` on its
        // seqlock re-validation — see the module-level memory-model note.
        // Relaxed here is the classic unsound seqlock.
        // ordering: Release — word publish (see module note).
        slot.words[0].store(rec.time, Ordering::Release);
        slot.words[1].store(
            u64::from(rec.domain.0) | (rec.kind as u64) << 32,
            Ordering::Release, // ordering: word publish (see module note)
        );
        slot.words[2].store(rec.a, Ordering::Release); // ordering: word publish (see module note)
        slot.words[3].store(rec.b, Ordering::Release); // ordering: word publish (see module note)
                                                       // The Release publish of `pos + 1` pairs with the reader's
                                                       // Acquire validation in `read_slot`, ordering the four word
                                                       // stores before the sequence becomes visible.
        #[cfg(not(spin_check_mutant))]
        slot.seq.store(pos + 1, Ordering::Release); // ordering: Release publish (see above)
                                                    // Planted bug for the model checker (`--cfg spin_check_mutant`):
                                                    // a Relaxed publish lets a reader validate the sequence while the
                                                    // word stores are still invisible — a torn record. The seqlock
                                                    // check must catch this with a replayable seed.
        #[cfg(spin_check_mutant)]
        slot.seq.store(pos + 1, Ordering::Relaxed); // ordering: deliberately wrong (mutant)
    }

    /// Total records ever pushed.
    pub fn pushed(&self) -> u64 {
        self.write.load(Ordering::Acquire) // ordering: Acquire — a cursor read orders after the claims it reports.
    }

    /// Records pending for the next drain (saturated at capacity).
    pub fn len(&self) -> usize {
        let end = self.write.load(Ordering::Acquire); // ordering: Acquire — cursor snapshot for a lock-free size estimate.
        let read = self.read.load(Ordering::Acquire); // ordering: Acquire — cursor snapshot for a lock-free size estimate.
        (end - read.max(end.saturating_sub(self.cap))) as usize
    }

    /// Whether a drain would return nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact count of records lost to overwrite, including records that
    /// will be skipped by the next drain because they were already
    /// overwritten.
    pub fn dropped(&self) -> u64 {
        let end = self.write.load(Ordering::Acquire); // ordering: Acquire — cursor snapshot for a lock-free drop estimate.
        let read = self.read.load(Ordering::Acquire); // ordering: Acquire — cursor snapshot for a lock-free drop estimate.
        let lo = end.saturating_sub(self.cap);
        self.dropped.load(Ordering::Acquire) + lo.saturating_sub(read) // ordering: Acquire — pairs with the drain's AcqRel tally updates.
    }

    /// Removes and returns every pending record, oldest first.
    ///
    /// Records overwritten before they could be read — and the rare record
    /// caught mid-overwrite by the seqlock validation — are counted in
    /// [`Ring::dropped`] instead of being returned.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let _guard = self.drain_lock.lock();
        let end = self.write.load(Ordering::Acquire); // ordering: Acquire — the drain sees every claim before its snapshot.
        let read = self.read.load(Ordering::Acquire); // ordering: Acquire — the read cursor is ours (drain lock); Acquire for dropped().
        let start = read.max(end.saturating_sub(self.cap));
        self.dropped.fetch_add(start - read, Ordering::AcqRel); // ordering: AcqRel — exact tally, read lock-free by dropped().
        let mut out = Vec::with_capacity((end - start) as usize);
        for pos in start..end {
            match self.read_slot(pos) {
                Some(rec) => out.push(rec),
                None => {
                    self.dropped.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — exact tally, read lock-free by dropped().
                }
            }
        }
        self.read.store(end, Ordering::Release); // ordering: Release — publishes the consumed range to lock-free len()/dropped().
        out
    }

    /// Seqlock-validated read of position `pos`; `None` if the slot no
    /// longer (or does not yet stably) hold that position's record.
    fn read_slot(&self, pos: u64) -> Option<TraceRecord> {
        // SAFETY: `slots` holds exactly `cap` elements (allocated in
        // `new`, never resized) and `pos % cap < cap` since `cap >= 1`.
        let slot = unsafe { self.slots.get_unchecked((pos % self.cap) as usize) };
        // The first validation pairs with the writer's Release publish of
        // `pos + 1`; the record words are visible once the sequence is.
        // ordering: Acquire — pairs with the Release sequence publish.
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        // Acquire word loads pair with the Release word stores: observing
        // any overwritten word synchronizes with the overwriter, so the
        // re-validation below must see its `WRITING` sentinel (or newer).
        // See the module-level memory-model note.
        let time = slot.words[0].load(Ordering::Acquire); // ordering: word read (see module note)
        let tag = slot.words[1].load(Ordering::Acquire); // ordering: word read (see module note)
        let a = slot.words[2].load(Ordering::Acquire); // ordering: word read (see module note)
        let b = slot.words[3].load(Ordering::Acquire); // ordering: word read (see module note)
                                                       // The re-validation: a concurrent overwrite either left the
                                                       // sequence intact (the record is stable) or this load sees
                                                       // `WRITING`/a newer sequence and the torn read is discarded.
                                                       // ordering: Acquire — re-validation (see module note).
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        Some(TraceRecord {
            time,
            domain: DomainId((tag & 0xffff_ffff) as u32),
            kind: TraceKind::from_u8((tag >> 32) as u8)?,
            a,
            b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            time: i * 10,
            domain: DomainId(i as u32 % 7),
            kind: TraceKind::EventRaise,
            a: i,
            b: i * 2,
        }
    }

    #[test]
    fn drain_returns_records_in_push_order() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(rec(i));
        }
        let got = ring.drain();
        assert_eq!(got.len(), 5);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        assert_eq!(ring.dropped(), 0);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn overflow_drops_oldest_with_exact_count() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6); // observable before the drain
        let got = ring.drain();
        assert_eq!(
            got,
            vec![rec(6), rec(7), rec(8), rec(9)],
            "the newest records survive"
        );
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let ring = Ring::new(1);
        for i in 0..3 {
            ring.push(rec(i));
        }
        assert_eq!(ring.drain(), vec![rec(2)]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn concurrent_producers_lose_nothing_when_capacity_suffices() {
        let ring = std::sync::Arc::new(Ring::new(64 * 1024));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(TraceRecord {
                            time: i,
                            domain: DomainId(t),
                            kind: TraceKind::PacketRx,
                            a: i,
                            b: u64::from(t),
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let got = ring.drain();
        assert_eq!(got.len(), 4000);
        assert_eq!(ring.dropped(), 0);
        // Per-producer order is preserved even though producers interleave.
        for t in 0..4u32 {
            let mine: Vec<u64> = got
                .iter()
                .filter(|r| r.domain == DomainId(t))
                .map(|r| r.a)
                .collect();
            assert_eq!(mine, (0..1000).collect::<Vec<_>>());
        }
    }
}
