//! `spin-obs`: the in-kernel observability subsystem.
//!
//! SPIN's argument is that services live *in* the kernel and are inspected
//! and extended through typed interfaces (§3–§4). This crate is how the
//! reproduction watches itself do that:
//!
//! * a **flight recorder** ([`ring::Ring`]) — a fixed-capacity, lock-free
//!   MPSC ring of typed [`TraceRecord`]s (event raises, handler and guard
//!   outcomes, context switches, VM faults, GC pauses, packet rx/tx,
//!   syscall traps), each stamped with virtual time and the originating
//!   [`DomainId`];
//! * **per-domain accounting** ([`account::Accounting`]) — atomic counters
//!   and histograms keyed by `DomainId`, fed by hook points in the
//!   dispatcher, executor, VM, GC, network stack and UNIX server;
//! * **renderings** ([`render`]) — human dump, JSON trace, and the
//!   Prometheus text served by the in-kernel `/metrics` HTTP extension.
//!
//! **The cost-model invariant.** Nothing in this crate touches the virtual
//! clock. Hook points in the instrumented crates gate on a single relaxed
//! atomic load (the same `has_hook` pattern as `Clock::advance`), so every
//! table and scaling series in EXPERIMENTS.md is byte-identical with the
//! recorder on or off — enforced by `obs_invariance` in `spin-bench` and
//! by `scripts/verify.sh`.
//!
//! The crate sits *below* the kernel crates (it depends on nothing but
//! `parking_lot`) so that every layer from the runtime up can be
//! instrumented; the kernel exports it back out as a SPIN interface
//! through the nameserver (the `ObsService` domain registered by
//! `Kernel::install_obs`) and as the `Obs.Snapshot` dispatcher event.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod account;
pub mod render;
pub mod ring;

pub use account::{Accounting, DomainCounters, DomainId, Histogram};
pub use ring::{Ring, TraceKind, TraceRecord};

use spin_check::sync::{Arc, OnceLock, RwLock};
use spin_check::sync::{AtomicBool, Ordering};

/// Virtual nanoseconds (mirrors `spin_sal::Nanos`; kept local so this
/// crate can sit below the hardware layer).
pub type Nanos = u64;

/// A source of virtual-time stamps for trace records, installed at wiring
/// time (typically `move || clock.now()`).
pub type TimeSource = Arc<dyn Fn() -> Nanos + Send + Sync>;

/// A registered external metric: read on demand at render time.
type Gauge = (String, Arc<dyn Fn() -> u64 + Send + Sync>);

struct ObsInner {
    recording: AtomicBool,
    ring: Ring,
    accounting: Accounting,
    time: OnceLock<TimeSource>,
    gauges: RwLock<Vec<Gauge>>,
}

/// The observability subsystem handle. Cheap to clone; all state is
/// shared.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Obs {
    /// Creates the subsystem with a flight recorder of `capacity` records
    /// (recording starts enabled). The well-known kernel subsystems are
    /// pre-registered so [`DomainId::DISPATCHER`] etc. are valid
    /// immediately.
    pub fn new(capacity: usize) -> Obs {
        let obs = Obs {
            inner: Arc::new(ObsInner {
                recording: AtomicBool::new(true),
                ring: Ring::new(capacity),
                accounting: Accounting::default(),
                time: OnceLock::new(),
                gauges: RwLock::new(Vec::new()),
            }),
        };
        for (i, name) in account::WELL_KNOWN.iter().enumerate() {
            let (id, _) = obs.inner.accounting.register(name);
            debug_assert_eq!(id, DomainId(i as u32));
        }
        obs
    }

    /// Installs the virtual-time source for record stamps. May be called
    /// once; later calls are ignored (records are stamped 0 before this).
    pub fn set_time_source(&self, source: TimeSource) {
        let _ = self.inner.time.set(source);
    }

    /// Current virtual time per the installed source (0 if none).
    pub fn now(&self) -> Nanos {
        self.inner.time.get().map_or(0, |t| t())
    }

    /// Turns the flight recorder on or off. Accounting counters are
    /// unaffected; neither state charges virtual time.
    pub fn set_recording(&self, on: bool) {
        self.inner.recording.store(on, Ordering::Release); // ordering: Release — ring/accounting setup is visible before recording flips on.
    }

    /// Whether the flight recorder accepts records — one relaxed load.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.recording.load(Ordering::Relaxed) // ordering: Relaxed — a stale read only delays or extends recording by one event.
    }

    /// Appends a record if recording (stamps are the caller's).
    pub fn record(&self, rec: TraceRecord) {
        if self.is_recording() {
            self.inner.ring.push(rec);
        }
    }

    /// The flight recorder ring.
    pub fn ring(&self) -> &Ring {
        &self.inner.ring
    }

    /// The accounting registry.
    pub fn accounting(&self) -> &Accounting {
        &self.inner.accounting
    }

    /// Registers an external metric read on demand at render time. `name`
    /// is the exposition suffix after `spin_` and may carry a label set
    /// (e.g. `shard_mail_pending{shard="2"}`). Subsystems whose counters
    /// do not fit the fixed [`DomainCounters`] block — the multicore
    /// barrier, per-shard mailboxes — publish through this.
    pub fn register_gauge(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        self.inner
            .gauges
            .write()
            .push((name.to_string(), Arc::new(read)));
    }

    /// Snapshot of the registered external metrics, in registration order.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(name, read)| (name.clone(), read()))
            .collect()
    }

    /// Registers (or finds) a domain and returns a hook handle for it —
    /// what the instrumented subsystems store in their `OnceLock`s.
    pub fn domain(&self, name: &str) -> ObsHook {
        let (id, counters) = self.inner.accounting.register(name);
        ObsHook {
            obs: self.clone(),
            domain: id,
            counters,
        }
    }

    /// Drains the recorder and renders the human-readable dump.
    pub fn dump(&self) -> String {
        let records = self.inner.ring.drain();
        render::dump(&self.inner.accounting, &records)
    }

    /// Drains the recorder and renders the JSON trace.
    pub fn dump_json(&self) -> String {
        let records = self.inner.ring.drain();
        render::trace_json(&self.inner.accounting, &records)
    }

    /// Renders the Prometheus-style accounting exposition.
    pub fn render_prometheus(&self) -> String {
        render::prometheus(self)
    }
}

/// A per-subsystem hook handle: the obs facade plus the subsystem's
/// pre-resolved domain id and counter block, so the hot path does no
/// registry lookups.
#[derive(Clone)]
pub struct ObsHook {
    obs: Obs,
    /// The subsystem's domain id (stamped into its trace records).
    pub domain: DomainId,
    /// The subsystem's counter block (bump with relaxed `fetch_add`s).
    pub counters: Arc<DomainCounters>,
}

impl ObsHook {
    /// The obs facade this hook feeds.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether trace records would currently be kept — one relaxed load.
    #[inline]
    pub fn recording(&self) -> bool {
        self.obs.is_recording()
    }

    /// Writes a trace record stamped with the current virtual time, if
    /// recording. Never touches the virtual clock.
    #[inline]
    pub fn trace(&self, kind: TraceKind, a: u64, b: u64) {
        if self.obs.is_recording() {
            self.obs.inner.ring.push(TraceRecord {
                time: self.obs.now(),
                domain: self.domain,
                kind,
                a,
                b,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::AtomicU64;

    #[test]
    fn hooks_stamp_domain_and_time() {
        let obs = Obs::new(8);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        obs.set_time_source(Arc::new(move || t2.load(Ordering::Acquire))); // ordering: test plumbing; mirrors the production pairing under test.
        let net = obs.domain("net");
        assert_eq!(net.domain, DomainId::NET);
        t.store(777, Ordering::Release); // ordering: test plumbing; mirrors the production pairing under test.
        net.trace(TraceKind::PacketTx, 60, 0);
        let recs = obs.ring().drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].time, 777);
        assert_eq!(recs[0].domain, DomainId::NET);
        assert_eq!(recs[0].kind, TraceKind::PacketTx);
    }

    #[test]
    fn recording_toggle_gates_the_ring_but_not_counters() {
        let obs = Obs::new(8);
        let hook = obs.domain("vm");
        obs.set_recording(false);
        assert!(!hook.recording());
        hook.trace(TraceKind::VmFault, 0x1000, 1);
        hook.counters.vm_faults.fetch_add(1, Ordering::AcqRel); // ordering: test plumbing; mirrors the production pairing under test.
        assert_eq!(obs.ring().pushed(), 0);
        assert_eq!(hook.counters.vm_faults.load(Ordering::Acquire), 1); // ordering: test plumbing; mirrors the production pairing under test.
        obs.set_recording(true);
        hook.trace(TraceKind::VmFault, 0x2000, 1);
        assert_eq!(obs.ring().pushed(), 1);
    }

    #[test]
    fn dump_json_round_trips_through_the_ring() {
        let obs = Obs::new(8);
        obs.domain("gc").trace(TraceKind::GcPause, 4096, 3);
        let json = obs.dump_json();
        assert!(json.contains("\"kind\": \"gc_pause\""), "{json}");
        assert!(json.contains("\"a\": 4096"), "{json}");
    }
}
