//! Renderings of the recorder and accounting state: a human-readable trace
//! dump, a JSON trace, and Prometheus-style exposition text for the
//! `/metrics` in-kernel extension.

use crate::account::Accounting;
use crate::ring::TraceRecord;
use crate::Obs;
use std::fmt::Write;

/// Escapes `s` as the body of a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn domain_label(accounting: &Accounting, rec: &TraceRecord) -> String {
    accounting
        .name(rec.domain)
        .unwrap_or_else(|| format!("domain-{}", rec.domain.0))
}

/// Human-readable dump, one line per record, oldest first.
pub fn dump(accounting: &Accounting, records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let _ = writeln!(
            out,
            "[{:>12} ns] {:<10} {:<14} a={} b={}",
            rec.time,
            domain_label(accounting, rec),
            rec.kind.label(),
            rec.a,
            rec.b,
        );
    }
    out
}

/// JSON array of records, oldest first.
pub fn trace_json(accounting: &Accounting, records: &[TraceRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"time_ns\": {}, \"domain\": \"{}\", \"kind\": \"{}\", \"a\": {}, \"b\": {}}}{}",
            rec.time,
            json_escape(&domain_label(accounting, rec)),
            rec.kind.label(),
            rec.a,
            rec.b,
            if i + 1 == records.len() { "" } else { "," },
        );
    }
    out.push(']');
    out
}

/// Prometheus-style exposition of the accounting tables and recorder
/// state. Served by the in-kernel `/metrics` HTTP extension.
pub fn prometheus(obs: &Obs) -> String {
    let mut out = String::new();
    out.push_str("# SPIN reproduction: per-domain resource accounting\n");
    for (_, name, counters) in obs.accounting().domains() {
        for (metric, value) in counters.snapshot() {
            let _ = writeln!(out, "spin_{metric}{{domain=\"{name}\"}} {value}");
        }
    }
    for (name, hist) in obs.accounting().histograms() {
        let _ = writeln!(out, "spin_hist_count{{hist=\"{name}\"}} {}", hist.count());
        let _ = writeln!(out, "spin_hist_sum{{hist=\"{name}\"}} {}", hist.sum());
        let _ = writeln!(out, "spin_hist_min{{hist=\"{name}\"}} {}", hist.min());
        let _ = writeln!(out, "spin_hist_max{{hist=\"{name}\"}} {}", hist.max());
        for (upper, count) in hist.buckets() {
            let _ = writeln!(
                out,
                "spin_hist_bucket{{hist=\"{name}\",le=\"{upper}\"}} {count}"
            );
        }
    }
    let _ = writeln!(
        out,
        "spin_trace_recording {}",
        u64::from(obs.is_recording())
    );
    let _ = writeln!(out, "spin_trace_pushed_total {}", obs.ring().pushed());
    let _ = writeln!(out, "spin_trace_dropped_total {}", obs.ring().dropped());
    for (name, value) in obs.gauges() {
        let _ = writeln!(out, "spin_{name} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::DomainId;
    use crate::ring::TraceKind;

    #[test]
    fn json_escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn dump_and_json_name_known_domains() {
        let obs = Obs::new(16);
        obs.record(TraceRecord {
            time: 42,
            domain: DomainId::NET,
            kind: TraceKind::PacketRx,
            a: 1500,
            b: 0,
        });
        let records = obs.ring().drain();
        let text = dump(obs.accounting(), &records);
        assert!(text.contains("net"), "{text}");
        assert!(text.contains("packet_rx"), "{text}");
        let json = trace_json(obs.accounting(), &records);
        assert!(json.contains("\"domain\": \"net\""), "{json}");
    }

    #[test]
    fn prometheus_lists_every_well_known_domain() {
        let obs = Obs::new(16);
        let text = prometheus(&obs);
        for name in ["kernel", "dispatcher", "sched", "vm", "gc", "net", "unix"] {
            assert!(
                text.contains(&format!("domain=\"{name}\"")),
                "missing {name} in:\n{text}"
            );
        }
        assert!(text.contains("spin_trace_recording 1"));
    }
}
