//! Per-domain resource accounting: atomic counters and histograms keyed by
//! [`DomainId`].
//!
//! The paper argues that in-kernel extensions must be *accountable* — the
//! kernel has to know what each logical protection domain is consuming.
//! Here every instrumented subsystem registers a domain and bumps plain
//! `AtomicU64` counters from its hook points. Nothing on these paths
//! touches the virtual clock, so accounting is free on the simulated
//! timeline (the cost-model invariant from DESIGN.md).

use spin_check::sync::RwLock;
use spin_check::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of an accounted domain. Dense and small: ids are assigned in
/// registration order, and the well-known kernel subsystems below are
/// pre-registered by [`Obs::new`](crate::Obs::new) so their ids are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The kernel core (trap entry/exit, nameserver).
    pub const KERNEL: DomainId = DomainId(0);
    /// The event dispatcher.
    pub const DISPATCHER: DomainId = DomainId(1);
    /// The strand executor / global scheduler.
    pub const SCHED: DomainId = DomainId(2);
    /// The virtual memory translation service.
    pub const VM: DomainId = DomainId(3);
    /// The garbage-collected kernel heap.
    pub const GC: DomainId = DomainId(4);
    /// The network stack.
    pub const NET: DomainId = DomainId(5);
    /// The UNIX server extension.
    pub const UNIX: DomainId = DomainId(6);
}

/// Names for the pre-registered subsystems, in id order.
pub(crate) const WELL_KNOWN: [&str; 7] =
    ["kernel", "dispatcher", "sched", "vm", "gc", "net", "unix"];

/// The per-domain counter block. All fields are cumulative totals except
/// `pages_held`, which is a gauge.
#[derive(Default)]
pub struct DomainCounters {
    /// Virtual CPU nanoseconds charged while this domain ran.
    pub cpu_ns: AtomicU64,
    /// Events raised through the dispatcher.
    pub events_raised: AtomicU64,
    /// Handlers invoked.
    pub handlers_run: AtomicU64,
    /// Guards evaluated.
    pub guards_evaluated: AtomicU64,
    /// Context switches performed.
    pub context_switches: AtomicU64,
    /// VM faults delivered.
    pub vm_faults: AtomicU64,
    /// Garbage collections completed.
    pub gc_collections: AtomicU64,
    /// Bytes surviving garbage collections (cumulative).
    pub gc_bytes_surviving: AtomicU64,
    /// Pages currently held (gauge).
    pub pages_held: AtomicU64,
    /// Bytes sent on the wire.
    pub bytes_sent: AtomicU64,
    /// Bytes received from the wire.
    pub bytes_received: AtomicU64,
    /// Frames sent.
    pub packets_sent: AtomicU64,
    /// Frames received.
    pub packets_received: AtomicU64,
    /// Syscalls trapped.
    pub syscalls: AtomicU64,
    /// Handler faults (contained panics, time-bound aborts) attributed
    /// to this domain by the containment layer.
    pub faults: AtomicU64,
    /// Deterministic retries performed on this domain's behalf (RPC
    /// retransmits, forwarder transmit retries).
    pub retries: AtomicU64,
    /// Slow-path raises served by a compiled (key-indexed) guard plan.
    pub dispatch_compiled_raises: AtomicU64,
    /// Guard closure calls the compiled plan avoided (key hits resolved by
    /// table lookup + key misses ruled out by it).
    pub dispatch_compiled_elided: AtomicU64,
    /// Raises delivered through `raise_batch` bursts.
    pub dispatch_batched: AtomicU64,
}

impl DomainCounters {
    /// Snapshot as `(metric name, value)` pairs, in a stable order.
    pub fn snapshot(&self) -> [(&'static str, u64); 19] {
        let ld = |c: &AtomicU64| c.load(Ordering::Acquire); // ordering: Acquire — pairs with the recording sides' AcqRel RMWs.
        [
            ("cpu_virtual_ns", ld(&self.cpu_ns)),
            ("events_raised", ld(&self.events_raised)),
            ("handlers_run", ld(&self.handlers_run)),
            ("guards_evaluated", ld(&self.guards_evaluated)),
            ("context_switches", ld(&self.context_switches)),
            ("vm_faults", ld(&self.vm_faults)),
            ("gc_collections", ld(&self.gc_collections)),
            ("gc_bytes_surviving", ld(&self.gc_bytes_surviving)),
            ("pages_held", ld(&self.pages_held)),
            ("bytes_sent", ld(&self.bytes_sent)),
            ("bytes_received", ld(&self.bytes_received)),
            ("packets_sent", ld(&self.packets_sent)),
            ("packets_received", ld(&self.packets_received)),
            ("syscalls", ld(&self.syscalls)),
            ("faults", ld(&self.faults)),
            ("retries", ld(&self.retries)),
            (
                "dispatch_compiled_raises",
                ld(&self.dispatch_compiled_raises),
            ),
            (
                "dispatch_compiled_elided",
                ld(&self.dispatch_compiled_elided),
            ),
            ("dispatch_batched", ld(&self.dispatch_batched)),
        ]
    }

    /// Sum of all counters — nonzero iff the domain saw any activity.
    pub fn activity(&self) -> u64 {
        self.snapshot().iter().map(|(_, v)| v).sum()
    }
}

/// Number of power-of-two histogram buckets (`u64` value range).
const BUCKETS: usize = 65;

/// A lock-free power-of-two histogram with exact count/sum/min/max.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0 holds the
/// value 0); the mean is exact because the sum is kept separately.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — totally orders this cell's RMWs; cross-cell drift is documented.
        self.sum.fetch_add(value, Ordering::AcqRel); // ordering: AcqRel — totally orders this cell's RMWs; cross-cell drift is documented.
        self.min.fetch_min(value, Ordering::AcqRel); // ordering: AcqRel — totally orders this cell's RMWs; cross-cell drift is documented.
        self.max.fetch_max(value, Ordering::AcqRel); // ordering: AcqRel — totally orders this cell's RMWs; cross-cell drift is documented.
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::AcqRel); // ordering: AcqRel — totally orders this cell's RMWs; cross-cell drift is documented.
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire) // ordering: Acquire — freshest value at render time.
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Acquire) // ordering: Acquire — freshest value at render time.
    }

    /// Exact integer mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Acquire); // ordering: Acquire — freshest value at render time.
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Acquire) // ordering: Acquire — freshest value at render time.
    }

    /// Occupied buckets as `(inclusive upper bound, count)`, smallest first.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Acquire); // ordering: Acquire — freshest value at render time.
                if n == 0 {
                    return None;
                }
                let upper = if i == 0 {
                    0
                } else if i == 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                Some((upper, n))
            })
            .collect()
    }
}

struct DomainEntry {
    name: String,
    counters: Arc<DomainCounters>,
}

/// The accounting registry: domains (dense by id) and named histograms.
#[derive(Default)]
pub struct Accounting {
    domains: RwLock<Vec<DomainEntry>>,
    histograms: RwLock<Vec<(String, Arc<Histogram>)>>,
}

impl Accounting {
    /// Registers `name` (or finds it) and returns its id and counter block.
    pub fn register(&self, name: &str) -> (DomainId, Arc<DomainCounters>) {
        let mut domains = self.domains.write();
        if let Some(i) = domains.iter().position(|d| d.name == name) {
            return (DomainId(i as u32), domains[i].counters.clone());
        }
        let id = DomainId(domains.len() as u32);
        let counters = Arc::new(DomainCounters::default());
        domains.push(DomainEntry {
            name: name.to_string(),
            counters: counters.clone(),
        });
        (id, counters)
    }

    /// The counter block for `id`, if registered.
    pub fn counters(&self, id: DomainId) -> Option<Arc<DomainCounters>> {
        self.domains
            .read()
            .get(id.0 as usize)
            .map(|d| d.counters.clone())
    }

    /// The name registered for `id`.
    pub fn name(&self, id: DomainId) -> Option<String> {
        self.domains
            .read()
            .get(id.0 as usize)
            .map(|d| d.name.clone())
    }

    /// Every registered domain, in id order.
    pub fn domains(&self) -> Vec<(DomainId, String, Arc<DomainCounters>)> {
        self.domains
            .read()
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainId(i as u32), d.name.clone(), d.counters.clone()))
            .collect()
    }

    /// A named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        {
            let hs = self.histograms.read();
            if let Some((_, h)) = hs.iter().find(|(n, _)| n == name) {
                return h.clone();
            }
        }
        let mut hs = self.histograms.write();
        if let Some((_, h)) = hs.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new());
        hs.push((name.to_string(), h.clone()));
        h
    }

    /// Every named histogram, in creation order.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_dense_and_idempotent() {
        let acc = Accounting::default();
        let (a, ca) = acc.register("alpha");
        let (b, _) = acc.register("beta");
        let (a2, ca2) = acc.register("alpha");
        assert_eq!(a, DomainId(0));
        assert_eq!(b, DomainId(1));
        assert_eq!(a2, a);
        assert!(Arc::ptr_eq(&ca, &ca2));
        assert_eq!(acc.name(a).as_deref(), Some("alpha"));
        assert!(acc.counters(DomainId(9)).is_none());
    }

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::new();
        for v in [3u64, 5, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.mean(), 6);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        // 0 → bucket 0; 1 → ≤1; 2,3 → ≤3; 4 → ≤7; 1024 → ≤2047.
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (3, 2), (7, 1), (2047, 1)]);
    }

    #[test]
    fn counters_snapshot_reports_activity() {
        let c = DomainCounters::default();
        assert_eq!(c.activity(), 0);
        c.vm_faults.fetch_add(3, Ordering::AcqRel); // ordering: test plumbing; mirrors the production pairing under test.
        c.cpu_ns.fetch_add(100, Ordering::AcqRel); // ordering: test plumbing; mirrors the production pairing under test.
        assert_eq!(c.activity(), 103);
        let snap = c.snapshot();
        assert!(snap.contains(&("vm_faults", 3)));
        assert!(snap.contains(&("cpu_virtual_ns", 100)));
    }
}
