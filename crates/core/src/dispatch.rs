//! The central event dispatcher — SPIN's dynamic call binding.
//!
//! "An extension installs a handler on an event by explicitly registering
//! the handler with the event through a central dispatcher that routes
//! events to handlers" (§3.2). The reproduction keeps every behaviour the
//! paper describes:
//!
//! * **procedure = event**: an [`Event`] is a typed value that can be
//!   exported through an interface like any procedure; holding it is the
//!   right to raise it;
//! * **primary implementation module**: [`EventOwner`] is held by the
//!   module that statically exports the procedure; installs by others are
//!   authorized by the owner, which "can deny or allow the installation"
//!   and "can provide a guard to be associated with the handler";
//! * **guards**: predicates evaluated before handler invocation, stackable
//!   by the handler's installer, enabling per-instance dispatch (e.g. the
//!   IP module guards each handler on the packet's protocol type);
//! * **constraints**: synchronous/asynchronous execution and a bounded time
//!   quantum, "each ... reflects a different degree of trust";
//! * **result reduction**: "a single result can be communicated back to the
//!   raiser by associating with each event a procedure that ultimately
//!   determines the final result. By default, the dispatcher mimics
//!   procedure call semantics ... and returns the result of the final
//!   handler executed";
//! * **the fast path**: "the dispatcher exploits this similarity to
//!   optimize event raise as a direct procedure call where there is only
//!   one handler for a given event" — reproduced both structurally (the
//!   guard loop is skipped) and in the cost model (a raise with a single
//!   unguarded synchronous handler charges one inter-module call, 0.13 µs).
//!
//! # The snapshot raise path
//!
//! Raising is the hot path of the whole reproduction — every packet in the
//! §5.3 protocol graph, every VM fault and every scheduler transition goes
//! through [`Dispatcher::raise`] — so the read side is engineered like the
//! paper's dispatcher: as close to a direct procedure call as the language
//! allows. Three mechanisms keep locks and copies off the per-raise path:
//!
//! 1. **Cached event resolution.** Each [`Event`] handle resolves its state
//!    through the dispatcher's global table once, then caches a weak
//!    reference ([`OnceLock<Weak<_>>`]); later raises upgrade the weak
//!    pointer without touching the global table. Destroyed events keep
//!    [`DispatchError::UnknownEvent`] semantics via a destroyed flag plus
//!    the weak upgrade failing once the table's strong reference is gone.
//! 2. **RCU-style handler snapshots.** Handlers, guards and the reducer
//!    live in an immutable [`RaisePlan`] behind `RwLock<Arc<RaisePlan>>`.
//!    Writers (install/uninstall/set_reducer/…) rebuild the plan and swap
//!    the `Arc`; raisers clone the `Arc` under a read lock — one refcount
//!    increment, never a deep copy, and raisers never block other raisers.
//!    Fast-path eligibility (a single synchronous unguarded unbounded
//!    handler, no reducer) is precomputed at snapshot-build time.
//! 3. **Atomic statistics.** [`EventStats`] counters are `AtomicU64`s, so
//!    the fast path performs one atomic increment instead of re-locking.
//!
//! The virtual-time cost model is charged exactly as before (see
//! DESIGN.md: "cost-model charges are independent of the real-time
//! optimisation") — this machinery buys real nanoseconds, not simulated
//! microseconds.
//!
//! # Guard-set compilation
//!
//! The paper's dispatcher — and the PR-1 snapshot path — still *interprets*
//! guards: a raise walks every installed handler and calls each opaque
//! guard closure in turn, so per-raise cost grows linearly with installed
//! guards (§5.5; `BENCH_dispatch.json`). Production in-kernel event systems
//! (eBPF, Rex) compile predicates instead. [`GuardSpec`] introduces
//! *structured* guards — [`GuardSpec::KeyEq`], [`GuardSpec::KeyIn`] and
//! [`GuardSpec::KeyRange`] over a shared [`KeyFn`] key extractor (e.g. a
//! packet's destination port), with [`GuardSpec::Opaque`] as the catch-all
//! — and [`RaisePlan::build`] partitions handlers at plan-build time:
//!
//! * entries whose **first** guard is key-matchable go into a per-`KeyFn`
//!   dispatch table (hash map for `KeyEq`/`KeyIn`, a short list for
//!   `KeyRange`); a raise extracts the key once and selects the matching
//!   subset with one lookup;
//! * everything else (unguarded entries, opaque-guarded entries) stays on
//!   a sequential *scan list* evaluated exactly as before.
//!
//! The cost model is untouched by compilation: `guard_eval` is charged per
//! **logically evaluated** guard — a key-indexed entry whose key does not
//! match still charges one `guard_eval` (its failing key guard), exactly
//! as the sequential walk would, and in the same per-entry order, so every
//! virtual-time output is byte-identical with compilation on or off.
//! Consecutive misses are charged as one batched `Clock::advance` only
//! when nobody can observe the difference (no clock advance hooks, no obs
//! tracing); otherwise the charges are replayed one by one.
//!
//! [`Dispatcher::raise_batch`] amortizes the per-raise constant — event
//! resolution, the plan snapshot, obs/fault hook loads — across a packet
//! burst: the batch runs against a single plan snapshot with identical
//! per-item virtual-time charges.
//!
//! # Fault containment
//!
//! Language safety is not liveness: a type-safe handler can still panic.
//! Every handler invocation (fast path included) runs unwind-isolated
//! behind `catch_unwind`; a panic becomes a typed
//! [`HandlerFault`](crate::fault::HandlerFault) delivered to the
//! dispatcher's fault sink (see [`crate::fault::Containment`]), the
//! faulted result is skipped, sibling handlers still run, and the handler
//! is demoted off the direct-call fast path for good (its entry carries a
//! sticky fault flag consulted at plan-build time). Time-bound aborts are
//! reported through the same sink. None of this charges virtual time.

use crate::error::DispatchError;
use crate::fault::{DeadlineExceeded, FaultKind, FaultSink, HandlerFault};
use crate::identity::Identity;
use crate::quota::QuotaCell;
use spin_check::sync::{Arc, OnceLock, Weak};
use spin_check::sync::{AtomicBool, AtomicU64, Ordering};
use spin_check::sync::{Mutex, RwLock};
use spin_fault::{FaultHook, Injection};
use spin_obs::{ObsHook, TraceKind};
use spin_sal::{Clock, HostId, MachineProfile, Nanos};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handler procedure for an event with arguments `A` and result `R`.
pub type Handler<A, R> = Arc<dyn Fn(&A) -> R + Send + Sync>;

/// A guard predicate over the event arguments.
pub type Guard<A> = Arc<dyn Fn(&A) -> bool + Send + Sync>;

/// Global identity allocator for [`KeyFn`]s.
static NEXT_KEYFN: AtomicU64 = AtomicU64::new(1);

/// A key-extraction function with identity.
///
/// Guards built from the *same* `KeyFn` value (clones included) are
/// recognized by the plan compiler as indexable over one key space and
/// collapse into a single dispatch-table lookup per raise. Two `KeyFn`s
/// built from textually identical closures are still distinct keys — share
/// the value, not the code.
pub struct KeyFn<A> {
    id: u64,
    f: Arc<dyn Fn(&A) -> u64 + Send + Sync>,
}

impl<A> Clone for KeyFn<A> {
    fn clone(&self) -> Self {
        KeyFn {
            id: self.id,
            f: self.f.clone(),
        }
    }
}

impl<A> std::fmt::Debug for KeyFn<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyFn#{}", self.id)
    }
}

impl<A> KeyFn<A> {
    /// Wraps a key extractor, allocating a fresh identity.
    // uncharged: constructor; key extraction runs inside the already-charged raise path.
    pub fn new(f: impl Fn(&A) -> u64 + Send + Sync + 'static) -> KeyFn<A> {
        KeyFn {
            id: NEXT_KEYFN.fetch_add(1, Ordering::Relaxed), // ordering: Relaxed — allocates a unique id; the value carrying it is published separately.
            f: Arc::new(f),
        }
    }

    /// Extracts the key from an argument value.
    // uncharged: runs inside the raise path, whose per-handler charge covers key/guard evaluation.
    pub fn extract(&self, args: &A) -> u64 {
        (self.f)(args)
    }
}

/// A structured guard: what the plan compiler can see through.
///
/// One `GuardSpec` is one *logical* guard — it charges exactly one
/// `guard_eval` when (logically) evaluated, whether the evaluation was a
/// closure call, a hash lookup, or a skipped entry the lookup ruled out.
pub enum GuardSpec<A> {
    /// Passes iff the extracted key equals the value.
    KeyEq(KeyFn<A>, u64),
    /// Passes iff the extracted key is one of the listed values.
    KeyIn(KeyFn<A>, Vec<u64>),
    /// Passes iff `lo <= key <= hi` (inclusive).
    KeyRange(KeyFn<A>, u64, u64),
    /// An arbitrary predicate; never indexed.
    Opaque(Guard<A>),
}

impl<A> Clone for GuardSpec<A> {
    fn clone(&self) -> Self {
        match self {
            GuardSpec::KeyEq(f, v) => GuardSpec::KeyEq(f.clone(), *v),
            GuardSpec::KeyIn(f, vs) => GuardSpec::KeyIn(f.clone(), vs.clone()),
            GuardSpec::KeyRange(f, lo, hi) => GuardSpec::KeyRange(f.clone(), *lo, *hi),
            GuardSpec::Opaque(g) => GuardSpec::Opaque(g.clone()),
        }
    }
}

impl<A> GuardSpec<A> {
    /// Evaluates the guard directly (the sequential / residual path).
    fn eval(&self, args: &A) -> bool {
        match self {
            GuardSpec::Opaque(g) => g(args),
            GuardSpec::KeyEq(f, v) => f.extract(args) == *v,
            GuardSpec::KeyIn(f, vs) => vs.contains(&f.extract(args)),
            GuardSpec::KeyRange(f, lo, hi) => {
                let k = f.extract(args);
                *lo <= k && k <= *hi
            }
        }
    }

    /// The key function, when this guard is indexable.
    fn key_fn(&self) -> Option<&KeyFn<A>> {
        match self {
            GuardSpec::KeyEq(f, _) | GuardSpec::KeyIn(f, _) | GuardSpec::KeyRange(f, _, _) => {
                Some(f)
            }
            GuardSpec::Opaque(_) => None,
        }
    }
}

/// Combines the results of all executed synchronous handlers.
pub type Reducer<R> = Arc<dyn Fn(Vec<R>) -> R + Send + Sync>;

/// One asynchronous handler invocation, handed to the [`AsyncRunner`].
pub struct AsyncInvocation {
    /// The contained handler body: runs the handler, catches panics and
    /// settles fault/abort accounting. The runner just calls it.
    pub run: Box<dyn FnOnce() + Send>,
    /// The handler's `time_bound`, if any. A runner that can preempt (the
    /// scheduler's) should abort the invocation once this much virtual
    /// time has passed; the abort is classified and counted by `run`
    /// itself when the unwind carries a [`DeadlineExceeded`] payload.
    pub time_bound: Option<Nanos>,
}

/// Runs asynchronous handler invocations (injected by the scheduler so this
/// crate does not depend on it; the default runs inline).
pub type AsyncRunner = Arc<dyn Fn(AsyncInvocation) + Send + Sync>;

/// How and under what trust a handler executes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraints {
    /// Synchronous handlers run on the raiser's thread and contribute
    /// results; asynchronous ones are isolated from the raiser.
    pub mode: HandlerMode,
    /// If set, a synchronous handler exceeding this budget is aborted: its
    /// result is discarded and the abort is counted.
    pub time_bound: Option<Nanos>,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            mode: HandlerMode::Synchronous,
            time_bound: None,
        }
    }
}

/// Execution mode for a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerMode {
    Synchronous,
    Asynchronous,
}

/// Identifier of an installed handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(u64);

/// A request to install a handler, shown to the event owner's authorizer.
pub struct InstallRequest {
    pub event: String,
    pub installer: Identity,
}

/// The owner's decision about an installation.
pub enum InstallDecision<A: ?Sized> {
    /// Refuse the installation.
    Deny,
    /// Accept, optionally imposing an owner guard and constraints.
    Allow {
        owner_guard: Option<Guard<A>>,
        constraints: Option<Constraints>,
    },
}

impl<A> InstallDecision<A> {
    /// Plain acceptance with defaults.
    // uncharged: pure value constructor (authorizer protocol data).
    pub fn allow() -> Self {
        InstallDecision::Allow {
            owner_guard: None,
            constraints: None,
        }
    }
}

type AuthFn<A> = Arc<dyn Fn(&InstallRequest) -> InstallDecision<A> + Send + Sync>;

struct Entry<A, R> {
    id: HandlerId,
    handler: Handler<A, R>,
    guards: Vec<GuardSpec<A>>,
    constraints: Constraints,
    installer: Identity,
    is_primary: bool,
    /// Sticky "has ever panicked" flag. Shared (via `Arc`) between the
    /// write side and every plan snapshot, so a fault observed mid-raise
    /// is seen by the next plan build and demotes the handler off the
    /// fast path.
    fault_flag: Arc<AtomicBool>,
}

impl<A, R> Clone for Entry<A, R> {
    fn clone(&self) -> Self {
        Entry {
            id: self.id,
            handler: self.handler.clone(),
            guards: self.guards.clone(),
            constraints: self.constraints,
            installer: self.installer.clone(),
            is_primary: self.is_primary,
            fault_flag: self.fault_flag.clone(),
        }
    }
}

/// Per-event dispatch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    pub raises: u64,
    pub fast_path_raises: u64,
    pub guard_evaluations: u64,
    pub handlers_run: u64,
    pub handlers_aborted: u64,
    pub async_dispatches: u64,
    /// Handler invocations that panicked and were contained (sync and
    /// async). Aborts for exceeding `time_bound` are counted separately
    /// in `handlers_aborted`.
    pub handler_faults: u64,
    /// Slow-path raises served by a compiled (key-indexed) plan.
    pub compiled_raises: u64,
    /// Guard closure calls the compiled plan avoided: logically-evaluated
    /// key guards resolved by the dispatch-table lookup instead of a
    /// predicate call. Always `<= guard_evaluations`.
    pub guards_elided: u64,
    /// Raises delivered through [`Dispatcher::raise_batch`] (a subset of
    /// `raises`).
    pub batched_raises: u64,
}

/// Lock-free counters backing [`EventStats`].
#[derive(Default)]
struct AtomicEventStats {
    raises: AtomicU64,
    fast_path_raises: AtomicU64,
    guard_evaluations: AtomicU64,
    handlers_run: AtomicU64,
    handlers_aborted: AtomicU64,
    async_dispatches: AtomicU64,
    handler_faults: AtomicU64,
    compiled_raises: AtomicU64,
    guards_elided: AtomicU64,
    batched_raises: AtomicU64,
}

impl AtomicEventStats {
    fn snapshot(&self) -> EventStats {
        EventStats {
            raises: self.raises.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            fast_path_raises: self.fast_path_raises.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            guard_evaluations: self.guard_evaluations.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            handlers_run: self.handlers_run.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            handlers_aborted: self.handlers_aborted.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            async_dispatches: self.async_dispatches.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            handler_faults: self.handler_faults.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            compiled_raises: self.compiled_raises.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            guards_elided: self.guards_elided.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            batched_raises: self.batched_raises.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }
}

/// One key space's dispatch table inside a [`Compiled`] plan: every entry
/// whose first guard keys off the same [`KeyFn`] (by identity).
struct KeyGroup<A> {
    key: KeyFn<A>,
    /// Exact-match table: key value → entry indices (`KeyEq` and each
    /// deduplicated `KeyIn` value), in install order.
    eq: HashMap<u64, Vec<u32>>,
    /// Inclusive `KeyRange` intervals, scanned after the map lookup.
    ranges: Vec<(u64, u64, u32)>,
}

/// The compiled form of a guard set, built once per plan mutation.
///
/// An entry is *indexed* when its first guard is key-matchable; a raise
/// extracts each group's key once and selects the matching entries by
/// lookup instead of calling their guard closures. Everything else is on
/// the `scan` list and evaluated sequentially, exactly as before. The
/// virtual-time charges of the interpreted walk are reproduced from the
/// `indexed_prefix` counts: a non-matching indexed entry still charges one
/// `guard_eval` (its failing key guard) in per-entry order.
struct Compiled<A> {
    groups: Vec<KeyGroup<A>>,
    /// Entry indices with no indexable first guard (install order).
    scan: Vec<u32>,
    /// `indexed_prefix[i]` = number of indexed entries among `entries[..i]`
    /// (length `entries.len() + 1`), so the misses in any entry range — and
    /// whether entry `i` itself is indexed — are O(1) lookups.
    indexed_prefix: Vec<u32>,
}

impl<A> Compiled<A> {
    fn build<R>(entries: &[Entry<A, R>]) -> Option<Compiled<A>> {
        let mut groups: Vec<KeyGroup<A>> = Vec::new();
        let mut scan: Vec<u32> = Vec::new();
        let mut indexed_prefix: Vec<u32> = Vec::with_capacity(entries.len() + 1);
        indexed_prefix.push(0);
        for (i, entry) in entries.iter().enumerate() {
            let idx = i as u32;
            let indexed = match entry.guards.first().and_then(|spec| spec.key_fn()) {
                Some(kf) => {
                    let gi = match groups.iter().position(|g| g.key.id == kf.id) {
                        Some(gi) => gi,
                        None => {
                            groups.push(KeyGroup {
                                key: kf.clone(),
                                eq: HashMap::new(),
                                ranges: Vec::new(),
                            });
                            groups.len() - 1
                        }
                    };
                    match &entry.guards[0] {
                        GuardSpec::KeyEq(_, v) => groups[gi].eq.entry(*v).or_default().push(idx),
                        GuardSpec::KeyIn(_, vs) => {
                            let mut vals = vs.clone();
                            vals.sort_unstable();
                            vals.dedup();
                            for v in vals {
                                groups[gi].eq.entry(v).or_default().push(idx);
                            }
                        }
                        GuardSpec::KeyRange(_, lo, hi) => groups[gi].ranges.push((*lo, *hi, idx)),
                        GuardSpec::Opaque(_) => unreachable!("key_fn() returned Some"),
                    }
                    true
                }
                None => false,
            };
            if !indexed {
                scan.push(idx);
            }
            let prev = *indexed_prefix.last().expect("seeded with 0");
            indexed_prefix.push(prev + u32::from(indexed));
        }
        if indexed_prefix[entries.len()] == 0 {
            // Nothing indexable: stay on the interpreted walk.
            return None;
        }
        Some(Compiled {
            groups,
            scan,
            indexed_prefix,
        })
    }

    /// Whether entry `i` is served by a dispatch table.
    fn is_indexed(&self, i: usize) -> bool {
        self.indexed_prefix[i + 1] > self.indexed_prefix[i]
    }

    /// Indexed entries in `entries[from..to]` — the key misses to charge
    /// when the table rules that whole range out.
    fn misses_in(&self, from: usize, to: usize) -> u64 {
        u64::from(self.indexed_prefix[to] - self.indexed_prefix[from])
    }
}

/// The immutable per-raise snapshot: everything a raise needs, built once
/// per mutation instead of once per raise.
struct RaisePlan<A, R> {
    entries: Box<[Entry<A, R>]>,
    reducer: Option<Reducer<R>>,
    /// `Some` iff the event qualifies for the paper's direct-call fast
    /// path: exactly one synchronous, unguarded, unbounded handler and no
    /// reducer. Precomputed here so the raise checks a single option.
    fast: Option<Handler<A, R>>,
    /// `Some` iff at least one entry's first guard is key-matchable: the
    /// guard-set compiler's output (see the module docs).
    compiled: Option<Compiled<A>>,
}

impl<A, R> RaisePlan<A, R> {
    fn build(handlers: &[Entry<A, R>], reducer: &Option<Reducer<R>>) -> Arc<RaisePlan<A, R>> {
        let fast = match handlers {
            [only]
                if only.guards.is_empty()
                    && only.constraints.mode == HandlerMode::Synchronous
                    && only.constraints.time_bound.is_none()
                    && reducer.is_none()
                    // A handler that has ever faulted is permanently
                    // demoted to the guarded slow path.
                    // ordering: Relaxed — demotion hint; the rebuild lock is the real barrier.
                    && !only.fault_flag.load(Ordering::Relaxed) =>
            {
                Some(only.handler.clone())
            }
            _ => None,
        };
        Arc::new(RaisePlan {
            entries: handlers.to_vec().into_boxed_slice(),
            reducer: reducer.clone(),
            fast,
            compiled: Compiled::build(handlers),
        })
    }
}

/// Slow-path accumulators for one raise: settled into the event's atomic
/// statistics in a single batch after the walk (one `fetch_add` per
/// counter per raise, not per entry).
struct SlowAcc<R> {
    results: Vec<R>,
    guard_evals: u64,
    /// Guard closure calls avoided by the compiled plan (key hits resolved
    /// by lookup + key misses ruled out by it). Always `<= guard_evals`.
    elided: u64,
    run: u64,
    aborted: u64,
    async_count: u64,
    faulted: u64,
}

/// The mutable write side of an event: mutated under a mutex by the rare
/// install/uninstall/configure operations, then republished as a fresh
/// [`RaisePlan`].
struct WriteSide<A, R> {
    handlers: Vec<Entry<A, R>>,
    auth: Option<AuthFn<A>>,
    reducer: Option<Reducer<R>>,
}

/// Counters for an event's hold queue (the quiesce/park/replay path of a
/// hot swap). All monotonic; reconciles against [`EventStats`] as
/// `attempts = (raises - replayed) + held + overflowed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoldStats {
    /// Raises parked while the event was quiesced.
    pub held: u64,
    /// Parked raises dispatched by a resume (each also counts in
    /// `EventStats::raises` when it replays).
    pub replayed: u64,
    /// Raises dropped because the bounded hold queue was full.
    pub overflowed: u64,
}

/// One parked raise: the virtual instant it arrived plus its total-order
/// key, mirroring the mailbox `(deliver_at, lane, seq)` order so a resume
/// replays exactly the sequence an uninterrupted run would have seen.
struct HeldRaise<A> {
    deliver_at: Nanos,
    lane: u64,
    seq: u64,
    args: A,
}

/// The hold queue proper, guarded by a mutex the raise hot path never
/// touches (parking is reached only behind the quiesce gate).
struct HoldSide<A> {
    queue: Vec<HeldRaise<A>>,
    capacity: usize,
    seq: u64,
}

impl<A> Default for HoldSide<A> {
    fn default() -> Self {
        HoldSide {
            queue: Vec::new(),
            capacity: 65_536,
            seq: 0,
        }
    }
}

/// One handler to install during an [`Event::rebind`]: the new version's
/// replacement for the old version's handlers, applied in the same atomic
/// plan swap that removes them.
pub struct InstallSpec<A, R> {
    /// The identity the new handlers are installed under (the new
    /// version's domain identity — quarantine and fault attribution key
    /// off it).
    pub installer: Identity,
    /// The handler procedure.
    pub handler: Handler<A, R>,
    /// Structured guards, exactly as [`Dispatcher::install_spec`] takes.
    pub guards: Vec<GuardSpec<A>>,
    /// Execution constraints.
    pub constraints: Constraints,
}

/// Undo record for one [`Event::rebind`]: the removed entries with their
/// plan positions and the ids the rebind installed. Feeding it to
/// [`Event::restore`] reverses the rebind in one plan swap.
pub struct RebindReceipt<A, R> {
    old_installer: Identity,
    removed: Vec<(usize, Entry<A, R>)>,
    installed: Vec<HandlerId>,
}

impl<A, R> RebindReceipt<A, R> {
    /// Handler ids the rebind installed (the new version's handlers).
    // uncharged: receipt accessor.
    pub fn installed(&self) -> &[HandlerId] {
        &self.installed
    }

    /// How many of the old version's handlers the rebind removed.
    // uncharged: receipt accessor.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// The identity whose handlers were removed.
    // uncharged: receipt accessor.
    pub fn old_installer(&self) -> &Identity {
        &self.old_installer
    }
}

/// RAII marker counting one raise (or one posted async invocation) as
/// in-flight for the quiesce drain.
struct FlightGuard(Arc<AtomicU64>);

impl FlightGuard {
    fn enter(counter: &Arc<AtomicU64>) -> FlightGuard {
        // The quiesce protocol is a store-buffer pair (increment-then-
        // load-gate vs store-gate-then-load-count); both sides need the
        // single total order or both can miss each other and a raise
        // neither parks nor drains. See `Event::quiesce`.
        // ordering: SeqCst — the store-buffer pair's single total order.
        counter.fetch_add(1, Ordering::SeqCst);
        FlightGuard(counter.clone())
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        // ordering: Release — publishes the dispatch's effects before the
        // drain's zero-read (Acquire-or-stronger) can observe the count.
        self.0.fetch_sub(1, Ordering::Release);
    }
}

struct EventState<A, R> {
    owner: Identity,
    write: Mutex<WriteSide<A, R>>,
    plan: RwLock<Arc<RaisePlan<A, R>>>,
    stats: AtomicEventStats,
    destroyed: AtomicBool,
    /// Quiesce gate: while set, raises park in `held` instead of
    /// dispatching. Checked (one atomic load) on every raise.
    gate: AtomicBool,
    /// Dispatches currently between snapshot and settle, plus async
    /// invocations posted but not finished. `Arc` so [`FlightGuard`]s can
    /// outlive the borrow that created them (async runners).
    in_flight: Arc<AtomicU64>,
    /// Parked raises; only touched behind the gate.
    held: Mutex<HoldSide<A>>,
    /// Plan generation: bumped once per `republish` (so one rebind — or
    /// one rollback — is exactly one bump).
    generation: AtomicU64,
    held_total: AtomicU64,
    replayed_total: AtomicU64,
    overflowed_total: AtomicU64,
    /// Quota cell the event's raises are metered under (see
    /// [`crate::quota`]). Absent — the overwhelming default — every raise
    /// pays exactly one relaxed load here and no admission logic runs.
    quota: OnceLock<Arc<QuotaCell>>,
}

impl<A, R> EventState<A, R> {
    /// Republishes the raise plan from the (locked) write side.
    fn republish(&self, ws: &WriteSide<A, R>) {
        *self.plan.write() = RaisePlan::build(&ws.handlers, &ws.reducer);
        self.generation.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic plan version; the plan RwLock is the real publication barrier.
    }

    fn hold_stats(&self) -> HoldStats {
        HoldStats {
            held: self.held_total.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            replayed: self.replayed_total.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            overflowed: self.overflowed_total.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }
}

/// Type-erased event state: what the dispatcher's global table stores.
/// Besides downcasting back to the typed state, it carries the
/// operations quarantine needs to act across events of unknown types.
trait AnyEventState: Send + Sync {
    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync>;
    /// Removes every handler installed by `who`; returns how many.
    fn purge_installer(&self, who: &Identity) -> usize;
    /// Removes one handler by id.
    fn remove_handler(&self, id: HandlerId) -> bool;
}

impl<A, R> AnyEventState for EventState<A, R>
where
    A: Send + Sync + 'static,
    R: Send + 'static,
{
    fn as_any(self: Arc<Self>) -> Arc<dyn Any + Send + Sync> {
        self
    }

    fn purge_installer(&self, who: &Identity) -> usize {
        let mut ws = self.write.lock();
        let before = ws.handlers.len();
        ws.handlers.retain(|e| e.installer != *who);
        let removed = before - ws.handlers.len();
        if removed > 0 {
            self.republish(&ws);
        }
        removed
    }

    fn remove_handler(&self, id: HandlerId) -> bool {
        let mut ws = self.write.lock();
        match ws.handlers.iter().position(|e| e.id == id) {
            Some(pos) => {
                ws.handlers.remove(pos);
                self.republish(&ws);
                true
            }
            None => false,
        }
    }
}

/// Best-effort extraction of a panic payload's message for the
/// [`HandlerFault`] record.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<spin_fault::InjectedPanic>() {
        format!("injected panic at site {}", p.site)
    } else {
        "opaque panic payload".to_string()
    }
}

/// A typed event. Holding an `Event` value is the right to raise it; the
/// value can be exported through interfaces and passed across domains.
pub struct Event<A, R> {
    id: u64,
    name: Arc<str>,
    dispatcher: Dispatcher,
    /// Resolve-once cache: a weak reference to the event state so raises
    /// skip the dispatcher's global table (and its lock + downcast).
    cached: OnceLock<Weak<EventState<A, R>>>,
    _marker: PhantomData<fn(&A) -> R>,
}

impl<A, R> Clone for Event<A, R> {
    fn clone(&self) -> Self {
        Event {
            id: self.id,
            name: self.name.clone(),
            dispatcher: self.dispatcher.clone(),
            cached: self.cached.clone(),
            _marker: PhantomData,
        }
    }
}

impl<A, R> std::fmt::Debug for Event<A, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Event({})", self.name)
    }
}

/// The capability of the event's primary implementation module.
pub struct EventOwner<A, R> {
    event: Event<A, R>,
    token: Identity,
}

/// Routes a cross-core raise to another shard (multicore mode): posts an
/// action into the target shard's mailbox for delivery at a virtual time.
/// Installed once by the multicore runtime; absent on a shared timeline.
pub struct XcallRouter {
    /// The shard this dispatcher lives on.
    pub home: HostId,
    /// `(target, deliver_at, action)` — returns `false` if the envelope was
    /// dropped (fault injection or unknown target).
    #[allow(clippy::type_complexity)]
    pub post: Arc<dyn Fn(HostId, Nanos, Box<dyn FnOnce(Nanos) + Send>) -> bool + Send + Sync>,
}

struct DispatcherInner {
    events: Mutex<BTreeMap<u64, Arc<dyn AnyEventState>>>,
    next_event: AtomicU64,
    next_handler: AtomicU64,
    async_runner: RwLock<AsyncRunner>,
    clock: Clock,
    profile: Arc<MachineProfile>,
    /// Cross-core raise router: absent until the multicore runtime wires
    /// it, and the local-raise fast path is then a single atomic load.
    xcall: crate::hooks::HookSlot<XcallRouter>,
    /// Observability hook (dispatcher domain): absent until wired, and the
    /// per-raise fast path is then a single atomic load. Nothing recorded
    /// through it charges virtual time.
    obs: crate::hooks::HookSlot<ObsHook>,
    /// Deterministic fault-injection hook (`core.dispatch` site): absent
    /// until wired; a disabled plan's draw is one relaxed load.
    faults: crate::hooks::HookSlot<FaultHook>,
    /// Batch-edge fault hook (`core.dispatch.batch` site): one draw per
    /// [`Dispatcher::raise_batch`] burst, before any item dispatches.
    batch_faults: crate::hooks::HookSlot<FaultHook>,
    /// Invoked — outside every dispatcher lock — for each contained
    /// handler panic and time-bound abort.
    fault_sink: RwLock<Option<FaultSink>>,
}

/// The central dispatcher.
#[derive(Clone)]
pub struct Dispatcher {
    inner: Arc<DispatcherInner>,
}

impl Dispatcher {
    /// Creates a dispatcher charging costs to `clock` per `profile`.
    // uncharged: construction is control-plane, not the measured dispatch path.
    pub fn new(clock: Clock, profile: Arc<MachineProfile>) -> Self {
        Dispatcher {
            inner: Arc::new(DispatcherInner {
                events: Mutex::new(BTreeMap::new()),
                next_event: AtomicU64::new(1),
                next_handler: AtomicU64::new(1),
                async_runner: RwLock::new(Arc::new(|inv: AsyncInvocation| (inv.run)())),
                clock,
                profile,
                xcall: crate::hooks::HookSlot::new(),
                obs: crate::hooks::HookSlot::new(),
                faults: crate::hooks::HookSlot::new(),
                batch_faults: crate::hooks::HookSlot::new(),
                fault_sink: RwLock::new(None),
            }),
        }
    }

    /// A dispatcher with a private clock (unit tests, examples).
    // uncharged: test/example constructor.
    pub fn unmetered() -> Self {
        Self::new(Clock::new(), Arc::new(MachineProfile::alpha_axp_3000_400()))
    }

    /// The clock costs are charged to.
    // uncharged: accessor.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Installs the runner used for asynchronous handlers (the scheduler
    /// provides one that runs the closure on a fresh kernel strand).
    // uncharged: one-shot control-plane wiring.
    pub fn set_async_runner(&self, runner: AsyncRunner) {
        *self.inner.async_runner.write() = runner;
    }

    /// Wires the observability subsystem: raises, guard outcomes and
    /// handler runs are traced and accounted to the dispatcher domain.
    /// One-shot; charges zero virtual time.
    // uncharged: one-shot control-plane wiring.
    pub fn set_obs(&self, hook: ObsHook) {
        let _ = self.inner.obs.set(hook);
    }

    /// Wires deterministic fault injection (the `core.dispatch` site):
    /// draws happen inside each handler's containment region, so injected
    /// panics surface as ordinary handler faults. One-shot; charges zero
    /// virtual time and, while the plan is disabled, costs one relaxed
    /// atomic load per handler invocation.
    // uncharged: one-shot control-plane wiring.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        let _ = self.inner.faults.set(hook);
    }

    /// Wires deterministic fault injection at the batch edge (the
    /// `core.dispatch.batch` site): one draw per [`Dispatcher::raise_batch`]
    /// burst. A `Fail` (or contained `Panic`) drops the whole burst before
    /// any item dispatches; a `Delay` charges its latency to the raiser
    /// once, ahead of the burst. One-shot; charges zero virtual time.
    // uncharged: one-shot control-plane wiring.
    pub fn set_batch_fault_hook(&self, hook: FaultHook) {
        let _ = self.inner.batch_faults.set(hook);
    }

    /// Installs the sink notified of every contained handler fault
    /// (panic or time-bound abort). Called with no dispatcher locks held,
    /// so the sink may uninstall handlers, purge installers or re-raise.
    /// Replaces any previous sink.
    // uncharged: control-plane wiring.
    pub fn set_fault_sink(&self, sink: FaultSink) {
        *self.inner.fault_sink.write() = Some(sink);
    }

    /// Removes every handler installed by `who`, across all events, via
    /// the usual rebuild-and-swap republish. Returns how many handlers
    /// were dropped. This is the quarantine primitive.
    // uncharged: quarantine control plane; not on the per-raise hot path.
    pub fn purge_installer(&self, who: &Identity) -> usize {
        // Purge in event-definition order: the quarantine path must be
        // deterministic so a fault schedule replays identically (the
        // spin-check model checker rejects divergent re-executions). The
        // `BTreeMap` iterates in key order, so no sort is needed.
        let states: Vec<Arc<dyn AnyEventState>> =
            self.inner.events.lock().values().map(Arc::clone).collect();
        states.iter().map(|s| s.purge_installer(who)).sum()
    }

    /// Removes one handler by its id on the event with the given raw id
    /// (no typed handle needed — used by the circuit breaker).
    pub(crate) fn remove_handler_by_id(&self, event_id: u64, id: HandlerId) -> bool {
        let state = self.inner.events.lock().get(&event_id).cloned();
        state.is_some_and(|s| s.remove_handler(id))
    }

    /// Defines a new event. The returned [`EventOwner`] is the primary
    /// implementation module's capability; the [`Event`] is the raisable,
    /// exportable value.
    // uncharged: event definition is control-plane; only raises are metered (Table 2).
    pub fn define<A, R>(&self, name: &str, owner: Identity) -> (Event<A, R>, EventOwner<A, R>)
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let id = self.inner.next_event.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let name: Arc<str> = name.into();
        let state: Arc<EventState<A, R>> = Arc::new(EventState {
            owner: owner.clone(),
            write: Mutex::new(WriteSide {
                handlers: Vec::new(),
                auth: None,
                reducer: None,
            }),
            plan: RwLock::new(RaisePlan::build(&[], &None)),
            stats: AtomicEventStats::default(),
            destroyed: AtomicBool::new(false),
            gate: AtomicBool::new(false),
            in_flight: Arc::new(AtomicU64::new(0)),
            held: Mutex::new(HoldSide::default()),
            generation: AtomicU64::new(0),
            held_total: AtomicU64::new(0),
            replayed_total: AtomicU64::new(0),
            overflowed_total: AtomicU64::new(0),
            quota: OnceLock::new(),
        });
        self.inner
            .events
            .lock()
            .insert(id, state.clone() as Arc<dyn AnyEventState>);
        let cached = OnceLock::new();
        let _ = cached.set(Arc::downgrade(&state));
        let event = Event {
            id,
            name,
            dispatcher: self.clone(),
            cached,
            _marker: PhantomData,
        };
        let owner = EventOwner {
            event: event.clone(),
            token: owner,
        };
        (event, owner)
    }

    /// Resolves an event through the global table (the slow path used once
    /// per handle; raises afterwards go through the handle's cache).
    fn lookup<A, R>(&self, ev: &Event<A, R>) -> Result<Arc<EventState<A, R>>, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let events = self.inner.events.lock();
        let any = events
            .get(&ev.id)
            .ok_or_else(|| DispatchError::UnknownEvent {
                name: ev.name.to_string(),
            })?;
        any.clone()
            .as_any()
            .downcast::<EventState<A, R>>()
            .map_err(|_| DispatchError::UnknownEvent {
                name: ev.name.to_string(),
            })
    }

    /// Installs a handler on `ev` on behalf of `installer`.
    ///
    /// The event owner's authorizer is consulted; it may deny, attach an
    /// owner guard, or constrain the handler. The installer may stack
    /// additional guards of its own.
    // uncharged: handler installation is control-plane; only raises are metered.
    pub fn install<A, R>(
        &self,
        ev: &Event<A, R>,
        installer: Identity,
        handler: Handler<A, R>,
        installer_guards: Vec<Guard<A>>,
    ) -> Result<HandlerId, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        self.install_spec(
            ev,
            installer,
            handler,
            installer_guards
                .into_iter()
                .map(GuardSpec::Opaque)
                .collect(),
        )
    }

    /// Installs a handler with *structured* installer guards, letting the
    /// plan compiler index key-matchable ones (see [`GuardSpec`]). The
    /// authorization protocol and semantics are exactly those of
    /// [`Dispatcher::install`].
    // uncharged: handler installation is control-plane; only raises are metered.
    pub fn install_spec<A, R>(
        &self,
        ev: &Event<A, R>,
        installer: Identity,
        handler: Handler<A, R>,
        installer_guards: Vec<GuardSpec<A>>,
    ) -> Result<HandlerId, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let state = ev.resolved()?;
        // The authorizer runs outside the write lock: it is arbitrary
        // owner code and may re-enter the dispatcher.
        let auth = state.write.lock().auth.clone();
        let decision = match auth {
            Some(auth) => auth(&InstallRequest {
                event: ev.name.to_string(),
                installer: installer.clone(),
            }),
            None => InstallDecision::allow(),
        };
        let (owner_guard, constraints) = match decision {
            InstallDecision::Deny => {
                return Err(DispatchError::InstallDenied {
                    name: ev.name.to_string(),
                    installer: installer.name().to_string(),
                })
            }
            InstallDecision::Allow {
                owner_guard,
                constraints,
            } => (owner_guard, constraints.unwrap_or_default()),
        };
        let id = HandlerId(self.inner.next_handler.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let mut guards = Vec::new();
        if let Some(g) = owner_guard {
            // The owner guard stays opaque (it is arbitrary policy code) and
            // stacks first, so an owner-guarded entry is never indexed.
            guards.push(GuardSpec::Opaque(g));
        }
        guards.extend(installer_guards);
        let mut ws = state.write.lock();
        ws.handlers.push(Entry {
            id,
            handler,
            guards,
            constraints,
            installer,
            is_primary: false,
            fault_flag: Arc::new(AtomicBool::new(false)),
        });
        state.republish(&ws);
        Ok(id)
    }

    /// Removes a handler. Allowed for the handler's installer and for the
    /// event owner (who passes the owner identity).
    // uncharged: handler removal is control-plane; only raises are metered.
    pub fn uninstall<A, R>(
        &self,
        ev: &Event<A, R>,
        id: HandlerId,
        caller: &Identity,
    ) -> Result<(), DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let state = ev.resolved()?;
        let mut ws = state.write.lock();
        let pos = ws
            .handlers
            .iter()
            .position(|e| e.id == id)
            .ok_or(DispatchError::NoSuchHandler)?;
        if ws.handlers[pos].installer != *caller && state.owner != *caller {
            return Err(DispatchError::NotOwner);
        }
        ws.handlers.remove(pos);
        state.republish(&ws);
        Ok(())
    }

    /// Wires the cross-core raise router (multicore mode). One-shot; until
    /// wired — and always on a shared timeline — [`Dispatcher::raise_on`]
    /// degenerates to a local [`Dispatcher::raise`].
    // uncharged: one-shot control-plane wiring.
    pub fn set_xcall_router(
        &self,
        home: HostId,
        post: impl Fn(HostId, Nanos, Box<dyn FnOnce(Nanos) + Send>) -> bool + Send + Sync + 'static,
    ) {
        let _ = self.inner.xcall.set(XcallRouter {
            home,
            post: Arc::new(post),
        });
    }

    /// Raises `ev` on a target core. Call this on the *caller's* shard
    /// dispatcher: when `target` is its home core (or no router is
    /// installed) this is a synchronous co-located [`Dispatcher::raise`]
    /// returning `Some(result)`. Cross-core, the sender charges one sync
    /// op to its own clock and posts the raise to the target shard's
    /// mailbox for delivery one cross-call latency later; `None` is
    /// returned — the result, like the paper's asynchronous handlers, is
    /// not observable by the sender. The delivered raise goes through the
    /// event's defining dispatcher, which must be homed on `target` for
    /// costs to land on the right clock.
    pub fn raise_on<A, R>(
        &self,
        target: HostId,
        ev: &Event<A, R>,
        args: A,
    ) -> Result<Option<R>, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
        Event<A, R>: Send,
    {
        match self.inner.xcall.get() {
            Some(router) if router.home != target => {
                // The sender pays the posting cost; the flight time is
                // virtual and charged to nobody's CPU.
                self.inner.clock.advance(self.inner.profile.sync_op);
                let deliver_at = self.inner.clock.now() + self.inner.profile.xcall_latency;
                let ev = ev.clone();
                (router.post)(
                    target,
                    deliver_at,
                    Box::new(move |_| {
                        // Raise through the event's *defining* dispatcher —
                        // homed on the target shard, so the handlers charge
                        // the target clock on the target thread.
                        let _ = ev.raise(args);
                    }),
                );
                Ok(None)
            }
            _ => self.raise(ev, args).map(Some),
        }
    }

    /// Raises an event: evaluates guards, runs handlers under their
    /// constraints, and reduces the synchronous results.
    ///
    /// This is the hot path. It performs no handler copies and takes no
    /// mutex: one weak-pointer upgrade (cached resolution), one `Arc`
    /// clone under a read lock (the snapshot), and atomic counter updates.
    pub fn raise<A, R>(&self, ev: &Event<A, R>, args: A) -> Result<R, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let state = ev.resolved()?;
        // Count this raise in-flight *before* consulting the quiesce gate
        // (SeqCst on both sides): a quiescer that misses the increment
        // sees a raiser that saw the closed gate and parked; one that
        // sees it waits for the dispatch to settle. Either way no raise
        // slips past the drain.
        let _flight = FlightGuard::enter(&state.in_flight);
        // Quota: absent (the default) this is one relaxed load and the
        // rest of the raise is untouched — the unarmed path charges the
        // identical virtual time.
        let quota = state.quota.get();
        // ordering: SeqCst — store-buffer pair with `quiesce`'s gate store; see FlightGuard::enter.
        let args = if state.gate.load(Ordering::SeqCst) {
            // `park` hands the args back if the gate cleared while it
            // took the hold lock: the resume that cleared it already
            // replayed everything parked before us, so dispatch normally.
            self.park(ev, &state, quota, args)?
        } else {
            args
        };
        // Snapshot: one refcount bump; handlers run outside any lock
        // (they may install/uninstall or re-raise).
        let plan = state.plan.read().clone();
        // Re-check after snapshotting: `destroy` flips the flag before it
        // clears the plan, so a raise racing a destroy settles to
        // `UnknownEvent` — never a stale result, never `NoHandlerRan`
        // from the cleared plan.
        // ordering: Acquire — pairs with destroy's Release flag store; runs after the plan snapshot.
        if state.destroyed.load(Ordering::Acquire) {
            return Err(ev.unknown());
        }
        // Admission control: an over-budget domain gets a typed refusal
        // *before* any virtual time is charged or stats are counted —
        // throttled raises never dispatched, so they are ledger entries,
        // not event raises.
        if let Some(q) = quota {
            if let Err(verdict) = q.admit(self.inner.clock.now()) {
                return Err(verdict.into_error(&ev.name, q.name()));
            }
        }
        state.stats.raises.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        let obs = self.inner.obs.get();
        if let Some(obs) = obs {
            obs.counters.events_raised.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.trace(TraceKind::EventRaise, ev.id, plan.entries.len() as u64);
        }
        let faults = self.inner.faults.get();
        match quota {
            None => self.dispatch_one(ev, &state, &plan, obs, faults, args),
            Some(q) => {
                // Bracket the dispatch so the synchronous virtual time it
                // charged lands on the domain's window, then release the
                // admission slot.
                let before = self.inner.clock.now();
                let out = self.dispatch_one(ev, &state, &plan, obs, faults, args);
                q.complete(self.inner.clock.now().saturating_sub(before));
                out
            }
        }
    }

    /// Raises a burst of events against a single plan snapshot.
    ///
    /// Semantically this is `batch.into_iter().map(|a| raise(ev, a))` —
    /// each item charges exactly the virtual time a lone [`raise`] would —
    /// but the per-raise constants amortize: the event resolves once, the
    /// plan snapshots once, the obs/fault hooks load once, and statistics
    /// settle in one batched increment. Fault injection draws once at the
    /// batch edge (the `core.dispatch.batch` site): a `Fail` or contained
    /// `Panic` drops the whole burst before any item dispatches (every
    /// item reports [`DispatchError::NoHandlerRan`] and no raise is
    /// counted); a `Delay` charges the raiser once, ahead of the burst.
    ///
    /// The burst runs against *one* snapshot: a plan republished mid-batch
    /// (install/uninstall from a handler, fast-path demotion after a
    /// panic) is observed by the next call, not by later items of this
    /// burst.
    ///
    /// [`raise`]: Dispatcher::raise
    pub fn raise_batch<A, R>(
        &self,
        ev: &Event<A, R>,
        batch: Vec<A>,
    ) -> Vec<Result<R, DispatchError>>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let n = batch.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let state = match ev.resolved() {
            Ok(state) => state,
            Err(e) => return batch.iter().map(|_| Err(e.clone())).collect(),
        };
        let _flight = FlightGuard::enter(&state.in_flight);
        let quota = state.quota.get();
        // A gated burst parks item by item — before the batch-edge fault
        // draw, which belongs to dispatched bursts only. Parked items keep
        // their burst order (consecutive hold-queue seqs) and replay as
        // individual raises on resume.
        // ordering: SeqCst — store-buffer pair with `quiesce`'s gate store; see FlightGuard::enter.
        if state.gate.load(Ordering::SeqCst) {
            return batch
                .into_iter()
                .map(|args| match self.park(ev, &state, quota, args) {
                    // Gate cleared mid-burst: dispatch the item singly.
                    Ok(args) => self.raise(ev, args),
                    Err(parked) => Err(parked),
                })
                .collect();
        }
        let plan = state.plan.read().clone();
        // ordering: Acquire — pairs with destroy's Release flag store; runs after the plan snapshot.
        if state.destroyed.load(Ordering::Acquire) {
            let e = ev.unknown();
            return batch.iter().map(|_| Err(e.clone())).collect();
        }
        if let Some(hook) = self.inner.batch_faults.get() {
            match hook.draw() {
                Some(Injection::Delay(ns)) => self.inner.clock.advance(ns),
                Some(fail @ (Injection::Fail | Injection::Panic)) => {
                    if matches!(fail, Injection::Panic) {
                        // Contained at the batch edge; the plan's own
                        // counters record the injection.
                        let _ = catch_unwind(AssertUnwindSafe(|| hook.fire_panic()));
                    }
                    let e = DispatchError::NoHandlerRan {
                        name: ev.name.to_string(),
                    };
                    return batch.iter().map(|_| Err(e.clone())).collect();
                }
                None => {}
            }
        }
        // An unmetered burst settles its statistics up front (the batched
        // fast path); a metered one counts only admitted items, after the
        // per-item admission below.
        if quota.is_none() {
            state.stats.raises.fetch_add(n, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            state.stats.batched_raises.fetch_add(n, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        let obs = self.inner.obs.get();
        if quota.is_none() {
            if let Some(obs) = obs {
                obs.counters.events_raised.fetch_add(n, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                obs.counters
                    .dispatch_batched
                    .fetch_add(n, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
        }
        let faults = self.inner.faults.get();
        let mut out = Vec::with_capacity(batch.len());
        let mut admitted = 0u64;
        for args in batch {
            // Per-item admission: throttled items of a burst surface their
            // typed refusal in place and are never counted as raises, so
            // the batched identity (each item charges what a lone raise
            // would) holds for the admitted remainder.
            if let Some(q) = quota {
                if let Err(verdict) = q.admit(self.inner.clock.now()) {
                    out.push(Err(verdict.into_error(&ev.name, q.name())));
                    continue;
                }
                admitted += 1;
            }
            if let Some(obs) = obs {
                obs.trace(TraceKind::EventRaise, ev.id, plan.entries.len() as u64);
            }
            match quota {
                None => out.push(self.dispatch_one(ev, &state, &plan, obs, faults, args)),
                Some(q) => {
                    let before = self.inner.clock.now();
                    out.push(self.dispatch_one(ev, &state, &plan, obs, faults, args));
                    q.complete(self.inner.clock.now().saturating_sub(before));
                }
            }
        }
        if quota.is_some() && admitted > 0 {
            state.stats.raises.fetch_add(admitted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            state
                .stats
                .batched_raises
                .fetch_add(admitted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            if let Some(obs) = obs {
                obs.counters
                    .events_raised
                    .fetch_add(admitted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                obs.counters
                    .dispatch_batched
                    .fetch_add(admitted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
        }
        out
    }

    /// Parks one raise behind the quiesce gate. Returns `Ok(args)` when
    /// the gate cleared between the caller's fast check and the hold
    /// lock (the caller dispatches normally), otherwise the parked
    /// outcome: [`DispatchError::Held`] with the raise queued, or
    /// [`DispatchError::HoldOverflow`] with it dropped and counted.
    ///
    /// Parking charges no virtual time — the full dispatch cost is
    /// charged when the raise replays, so a resumed timeline carries
    /// exactly the charges an uninterrupted run would.
    fn park<A, R>(
        &self,
        ev: &Event<A, R>,
        state: &Arc<EventState<A, R>>,
        quota: Option<&Arc<QuotaCell>>,
        args: A,
    ) -> Result<A, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let mut held = state.held.lock();
        // Re-check under the hold lock: `resume` clears the gate under
        // this same lock, so seeing it still set here proves the queue
        // has not been taken yet and this raise cannot be stranded.
        // ordering: SeqCst — part of the quiesce protocol's total order; see FlightGuard::enter.
        if !state.gate.load(Ordering::SeqCst) {
            return Ok(args);
        }
        // The hold-queue budget: a metered domain may not flood the gate's
        // queue past its `max_held` — refusals walk the ladder (throttle,
        // then shed) instead of parking.
        if let Some(q) = quota {
            if q.hold_over_budget(held.queue.len()) {
                let verdict = q.refuse(self.inner.clock.now());
                return Err(verdict.into_error(&ev.name, q.name()));
            }
        }
        if held.queue.len() >= held.capacity {
            state.overflowed_total.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            return Err(DispatchError::HoldOverflow {
                name: ev.name.to_string(),
            });
        }
        let seq = held.seq;
        held.seq += 1;
        held.queue.push(HeldRaise {
            deliver_at: self.inner.clock.now(),
            lane: 0,
            seq,
            args,
        });
        state.held_total.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(q) = quota {
            q.note_held();
        }
        Err(DispatchError::Held {
            name: ev.name.to_string(),
        })
    }

    /// Dispatches one already-resolved, already-counted raise against a
    /// plan snapshot: the fast path, the compiled walk or the interpreted
    /// walk. All virtual-time charges happen here.
    fn dispatch_one<A, R>(
        &self,
        ev: &Event<A, R>,
        state: &Arc<EventState<A, R>>,
        plan: &Arc<RaisePlan<A, R>>,
        obs: Option<&ObsHook>,
        faults: Option<&FaultHook>,
        args: A,
    ) -> Result<R, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let profile = &self.inner.profile;
        let clock = &self.inner.clock;

        // Fast path: a single synchronous unguarded unbounded handler is a
        // direct procedure call (eligibility precomputed at plan build).
        // Still unwind-isolated: the first panic demotes the handler off
        // this path for good.
        if let Some(fast) = &plan.fast {
            clock.advance(profile.inter_module_call);
            state.stats.fast_path_raises.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                match faults.and_then(|h| h.draw()) {
                    Some(Injection::Panic) => faults.expect("drawn").fire_panic(),
                    Some(Injection::Delay(ns)) => clock.advance(ns),
                    Some(Injection::Fail) | None => {}
                }
                fast(&args)
            }));
            match outcome {
                Ok(r) => {
                    if let Some(obs) = obs {
                        // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                        obs.counters.handlers_run.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(r);
                }
                Err(payload) => {
                    state.stats.handler_faults.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                    let entry = &plan.entries[0];
                    entry.fault_flag.store(true, Ordering::Relaxed); // ordering: Relaxed — demotion hint; the plan-rebuild lock is the real barrier.
                                                                     // Demote immediately: rebuild the plan so the very
                                                                     // next raise takes the slow path.
                    {
                        let ws = state.write.lock();
                        state.republish(&ws);
                    }
                    self.deliver_fault(
                        ev,
                        entry,
                        FaultKind::Panic {
                            message: panic_message(payload.as_ref()),
                        },
                    );
                    return Err(DispatchError::NoHandlerRan {
                        name: ev.name.to_string(),
                    });
                }
            }
        }

        clock.advance(profile.event_raise_base);
        let args = Arc::new(args);
        let mut acc = SlowAcc::<R> {
            results: Vec::new(),
            guard_evals: 0,
            elided: 0,
            run: 0,
            aborted: 0,
            async_count: 0,
            faulted: 0,
        };

        match plan.compiled.as_ref() {
            Some(c) => {
                // Compiled walk: one key extraction + lookup per group
                // selects the indexed entries; the scan list joins them in
                // install order. Missed indexed entries still charge their
                // failing key guard — batched into one `advance` only when
                // nobody can see the granularity (no obs tracing, no clock
                // advance hooks); otherwise replayed one by one so the
                // trace stream and hook firings match the interpreted walk
                // exactly.
                let replay = obs.is_some() || clock.charges_observed();
                let charge_misses = |acc: &mut SlowAcc<R>, m: u64| {
                    if m == 0 {
                        return;
                    }
                    acc.guard_evals += m;
                    acc.elided += m;
                    if replay {
                        for _ in 0..m {
                            clock.advance(profile.guard_eval);
                            if let Some(obs) = obs {
                                obs.trace(TraceKind::GuardEval, ev.id, 0);
                            }
                        }
                    } else {
                        clock.advance(m * profile.guard_eval);
                    }
                };
                let mut active: Vec<u32> = Vec::with_capacity(c.scan.len() + 4);
                active.extend_from_slice(&c.scan);
                for group in &c.groups {
                    let k = group.key.extract(&args);
                    if let Some(hits) = group.eq.get(&k) {
                        active.extend_from_slice(hits);
                    }
                    for &(lo, hi, idx) in &group.ranges {
                        if lo <= k && k <= hi {
                            active.push(idx);
                        }
                    }
                }
                active.sort_unstable();
                let mut cursor = 0usize;
                for &idx in &active {
                    let idx = idx as usize;
                    charge_misses(&mut acc, c.misses_in(cursor, idx));
                    let entry = &plan.entries[idx];
                    let skip = if c.is_indexed(idx) {
                        // The lookup proved the key guard passes: charge it
                        // as a hit and evaluate only the residual guards.
                        clock.advance(profile.guard_eval);
                        acc.guard_evals += 1;
                        acc.elided += 1;
                        if let Some(obs) = obs {
                            obs.trace(TraceKind::GuardEval, ev.id, 1);
                        }
                        1
                    } else {
                        0
                    };
                    self.run_entry(ev, state, entry, &args, obs, faults, skip, &mut acc);
                    cursor = idx + 1;
                }
                charge_misses(&mut acc, c.misses_in(cursor, plan.entries.len()));
            }
            None => {
                for entry in plan.entries.iter() {
                    self.run_entry(ev, state, entry, &args, obs, faults, 0, &mut acc);
                }
            }
        }

        let stats = &state.stats;
        stats
            .guard_evaluations
            .fetch_add(acc.guard_evals, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        stats.handlers_run.fetch_add(acc.run, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        stats
            .handlers_aborted
            .fetch_add(acc.aborted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        stats
            .async_dispatches
            .fetch_add(acc.async_count, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        stats
            .handler_faults
            .fetch_add(acc.faulted, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if plan.compiled.is_some() {
            stats.compiled_raises.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            stats.guards_elided.fetch_add(acc.elided, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        if let Some(obs) = obs {
            obs.counters
                .guards_evaluated
                .fetch_add(acc.guard_evals, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.counters
                .handlers_run
                .fetch_add(acc.run + acc.async_count, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            if plan.compiled.is_some() {
                obs.counters
                    .dispatch_compiled_raises
                    .fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                obs.counters
                    .dispatch_compiled_elided
                    .fetch_add(acc.elided, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
        }

        if acc.results.is_empty() {
            return Err(DispatchError::NoHandlerRan {
                name: ev.name.to_string(),
            });
        }
        Ok(match plan.reducer.as_ref() {
            Some(reduce) => reduce(acc.results),
            // Default: "returns the result of the final handler executed".
            None => acc.results.pop().expect("non-empty checked above"),
        })
    }

    /// Evaluates one entry's guards (from `skip_guards` on — the compiled
    /// walk has already charged an index-proven prefix) and, if they pass,
    /// runs the handler under its constraints, settling all accounting
    /// into `acc`. Charge order is identical between the interpreted and
    /// compiled walks by construction.
    #[allow(clippy::too_many_arguments)]
    fn run_entry<A, R>(
        &self,
        ev: &Event<A, R>,
        state: &Arc<EventState<A, R>>,
        entry: &Entry<A, R>,
        args: &Arc<A>,
        obs: Option<&ObsHook>,
        faults: Option<&FaultHook>,
        skip_guards: usize,
        acc: &mut SlowAcc<R>,
    ) where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let profile = &self.inner.profile;
        let clock = &self.inner.clock;
        for guard in &entry.guards[skip_guards..] {
            clock.advance(profile.guard_eval);
            acc.guard_evals += 1;
            let ok = guard.eval(args);
            if let Some(obs) = obs {
                obs.trace(TraceKind::GuardEval, ev.id, u64::from(ok));
            }
            if !ok {
                return;
            }
        }
        match entry.constraints.mode {
            HandlerMode::Asynchronous => {
                // "A handler may be asynchronous, which causes it to
                // execute in a separate thread from the raiser."
                let runner = self.inner.async_runner.read().clone();
                acc.async_count += 1;
                runner(self.async_invocation(ev, state, entry, args));
            }
            HandlerMode::Synchronous => {
                clock.advance(profile.handler_invoke + profile.inter_module_call);
                let t0 = clock.now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    match faults.and_then(|h| h.draw()) {
                        Some(Injection::Panic) => faults.expect("drawn").fire_panic(),
                        Some(Injection::Delay(ns)) => clock.advance(ns),
                        Some(Injection::Fail) | None => {}
                    }
                    (entry.handler)(args)
                }));
                match outcome {
                    Ok(r) => {
                        acc.run += 1;
                        if let Some(obs) = obs {
                            obs.trace(TraceKind::HandlerRun, ev.id, entry.id.0);
                        }
                        let elapsed = clock.now().saturating_sub(t0);
                        match entry.constraints.time_bound {
                            Some(bound) if elapsed > bound => {
                                // Aborted: the result is discarded, and only
                                // the misbehaving handler's client is affected.
                                acc.aborted += 1;
                                self.deliver_fault(
                                    ev,
                                    entry,
                                    FaultKind::TimeBound { bound, elapsed },
                                );
                            }
                            _ => acc.results.push(r),
                        }
                    }
                    Err(payload) => {
                        // Contained: the faulted result is skipped and
                        // sibling handlers still run.
                        acc.faulted += 1;
                        entry.fault_flag.store(true, Ordering::Relaxed); // ordering: Relaxed — demotion hint; the plan-rebuild lock is the real barrier.
                        self.deliver_fault(
                            ev,
                            entry,
                            FaultKind::Panic {
                                message: panic_message(payload.as_ref()),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Notifies the fault sink (if any) of a contained fault. Runs with
    /// no dispatcher locks held; reads, but never advances, the clock.
    fn deliver_fault<A, R>(&self, ev: &Event<A, R>, entry: &Entry<A, R>, kind: FaultKind) {
        let sink = self.inner.fault_sink.read().clone();
        if let Some(sink) = sink {
            sink(&HandlerFault {
                event: ev.name.to_string(),
                event_id: ev.id,
                handler: entry.id,
                installer: entry.installer.clone(),
                kind,
                at: self.inner.clock.now(),
            });
        }
    }

    /// Builds the contained closure for one asynchronous invocation: the
    /// handler runs under `catch_unwind` on whatever strand the runner
    /// chooses, and fault/abort accounting is settled here after the
    /// fact — whether the runner preempted the handler at its deadline
    /// (the unwind carries [`DeadlineExceeded`]) or let it finish late.
    fn async_invocation<A, R>(
        &self,
        ev: &Event<A, R>,
        state: &Arc<EventState<A, R>>,
        entry: &Entry<A, R>,
        args: &Arc<A>,
    ) -> AsyncInvocation
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let handler = entry.handler.clone();
        let args = args.clone();
        let clock = self.inner.clock.clone();
        let state = state.clone();
        let sink = self.inner.fault_sink.read().clone();
        let fault_flag = entry.fault_flag.clone();
        let bound = entry.constraints.time_bound;
        let event = ev.name.to_string();
        let event_id = ev.id;
        let handler_id = entry.id;
        let installer = entry.installer.clone();
        // The invocation stays in-flight for the quiesce drain until the
        // runner finishes it (or drops it unrun — the guard's Drop still
        // settles the count).
        let flight = FlightGuard::enter(&state.in_flight);
        AsyncInvocation {
            time_bound: bound,
            run: Box::new(move || {
                let _flight = flight;
                let t0 = clock.now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let _ = handler(&args);
                }));
                let elapsed = clock.now().saturating_sub(t0);
                let fault = match outcome {
                    Ok(()) => match bound {
                        Some(b) if elapsed > b => {
                            // Finished, but late (async results are never
                            // reduced, so there is nothing to discard).
                            state.stats.handlers_aborted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                            Some(FaultKind::TimeBound { bound: b, elapsed })
                        }
                        _ => None,
                    },
                    Err(payload) if payload.downcast_ref::<DeadlineExceeded>().is_some() => {
                        // The executor unwound the strand at its deadline:
                        // an abort, not an organic fault.
                        state.stats.handlers_aborted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                        Some(FaultKind::TimeBound {
                            bound: bound.unwrap_or(0),
                            elapsed,
                        })
                    }
                    Err(payload) => {
                        state.stats.handler_faults.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                        fault_flag.store(true, Ordering::Relaxed); // ordering: Relaxed — demotion hint; the plan-rebuild lock is the real barrier.
                        Some(FaultKind::Panic {
                            message: panic_message(payload.as_ref()),
                        })
                    }
                };
                if let (Some(kind), Some(sink)) = (fault, sink) {
                    sink(&HandlerFault {
                        event,
                        event_id,
                        handler: handler_id,
                        installer,
                        kind,
                        at: clock.now(),
                    });
                }
            }),
        }
    }

    /// The pre-snapshot raise path, kept verbatim for the
    /// `dispatch_snapshot` ablation bench: resolves through the global
    /// table on every raise, deep-clones the handler vector under the
    /// event mutex, and re-locks to update statistics. Semantics and
    /// virtual-time charges match [`Dispatcher::raise`]; real-time cost
    /// does not — that difference is the point of the ablation.
    #[doc(hidden)]
    pub fn raise_locked_baseline<A, R>(&self, ev: &Event<A, R>, args: A) -> Result<R, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let state = self.lookup(ev)?;
        let profile = &self.inner.profile;
        let clock = &self.inner.clock;

        let (entries, reducer) = {
            let ws = state.write.lock();
            state.stats.raises.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            (ws.handlers.clone(), ws.reducer.clone())
        };

        if entries.len() == 1
            && entries[0].guards.is_empty()
            && entries[0].constraints.mode == HandlerMode::Synchronous
            && entries[0].constraints.time_bound.is_none()
            && reducer.is_none()
        {
            clock.advance(profile.inter_module_call);
            {
                // The baseline's second lock acquisition for statistics.
                let _ws = state.write.lock();
                state.stats.fast_path_raises.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
            return Ok((entries[0].handler)(&args));
        }

        clock.advance(profile.event_raise_base);
        let args = Arc::new(args);
        let mut results: Vec<R> = Vec::new();
        for entry in &entries {
            let mut pass = true;
            for guard in &entry.guards {
                clock.advance(profile.guard_eval);
                state
                    .stats
                    .guard_evaluations
                    .fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                if !guard.eval(&args) {
                    pass = false;
                    break;
                }
            }
            if !pass {
                continue;
            }
            if entry.constraints.mode == HandlerMode::Synchronous {
                clock.advance(profile.handler_invoke + profile.inter_module_call);
                let r = (entry.handler)(&args);
                state.stats.handlers_run.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                results.push(r);
            }
        }
        if results.is_empty() {
            return Err(DispatchError::NoHandlerRan {
                name: ev.name.to_string(),
            });
        }
        Ok(match reducer {
            Some(reduce) => reduce(results),
            None => results.pop().expect("non-empty checked above"),
        })
    }

    /// Statistics for an event.
    // uncharged: diagnostics snapshot.
    pub fn stats<A, R>(&self, ev: &Event<A, R>) -> Result<EventStats, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        Ok(ev.resolved()?.stats.snapshot())
    }

    /// Number of handlers currently installed on an event.
    // uncharged: diagnostics snapshot.
    pub fn handler_count<A, R>(&self, ev: &Event<A, R>) -> Result<usize, DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        Ok(ev.resolved()?.plan.read().entries.len())
    }

    /// Destroys an event: later raises, installs and queries on any handle
    /// fail with [`DispatchError::UnknownEvent`]. Only the owner identity
    /// may destroy. The name may subsequently be redefined (fresh state,
    /// fresh statistics).
    // uncharged: control-plane teardown.
    pub fn destroy<A, R>(&self, ev: &Event<A, R>, caller: &Identity) -> Result<(), DispatchError>
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let state = ev.resolved()?;
        if state.owner != *caller {
            return Err(DispatchError::NotOwner);
        }
        // Order matters for raisers that already hold a strong reference:
        // the flag flips first, then the published plan is cleared, then
        // the table's strong reference drops. A raise that snapshots the
        // cleared plan is guaranteed to observe the flag (its re-check
        // runs after the snapshot), so racing raises settle to
        // `UnknownEvent` — never a result from a destroyed event's plan.
        // ordering: Release pairs with the Acquire re-check in `raise`;
        // the flag must be visible before the cleared plan is published.
        #[cfg(not(spin_check_mutant))]
        state.destroyed.store(true, Ordering::Release); // ordering: Release — pairs with the raise path's Acquire re-check.
        {
            let mut ws = state.write.lock();
            ws.handlers.clear();
            ws.reducer = None;
            state.republish(&ws);
        }
        // Planted bug for the model checker (`--cfg spin_check_mutant`):
        // publishing the cleared plan *before* the destroyed flag lets a
        // racing raise snapshot the empty plan while the flag still reads
        // false — it then runs zero handlers instead of settling to
        // `UnknownEvent`. The raise-vs-destroy check must catch this.
        // ordering: deliberately misplaced (mutant under test).
        #[cfg(spin_check_mutant)]
        state.destroyed.store(true, Ordering::Release);
        self.inner.events.lock().remove(&ev.id);
        Ok(())
    }
}

impl<A, R> Event<A, R>
where
    A: Send + Sync + 'static,
    R: Send + 'static,
{
    /// The event's qualified name (e.g. `"IP.PacketArrived"`).
    // uncharged: accessor.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resolves this handle to its event state: upgrades the cached weak
    /// reference, falling back to the global table once per handle.
    fn resolved(&self) -> Result<Arc<EventState<A, R>>, DispatchError> {
        let state = match self.cached.get() {
            Some(weak) => weak.upgrade().ok_or_else(|| self.unknown())?,
            None => {
                let state = self.dispatcher.lookup(self)?;
                // Racing resolvers cache the same weak pointer; first wins.
                let _ = self.cached.set(Arc::downgrade(&state));
                state
            }
        };
        // ordering: Acquire — pairs with destroy's Release flag store; runs after the plan snapshot.
        if state.destroyed.load(Ordering::Acquire) {
            return Err(self.unknown());
        }
        Ok(state)
    }

    fn unknown(&self) -> DispatchError {
        DispatchError::UnknownEvent {
            name: self.name.to_string(),
        }
    }

    /// Raises this event through its dispatcher.
    pub fn raise(&self, args: A) -> Result<R, DispatchError> {
        self.dispatcher.raise(self, args)
    }

    /// Binds the [`QuotaCell`] this event's raises are metered under:
    /// subsequent raises pass admission control against the cell's
    /// [`crate::QuotaSpec`] budgets and charge their dispatch virtual time
    /// to its window ledger. One-shot; returns `false` if a cell was
    /// already bound (the original binding stays). Unbound events pay one
    /// relaxed pointer load per raise and no admission logic runs.
    // uncharged: control-plane wiring.
    pub fn bind_quota(&self, cell: Arc<QuotaCell>) -> Result<bool, DispatchError> {
        Ok(self.resolved()?.quota.set(cell).is_ok())
    }

    /// Installs a handler (authorized by the owner's policy).
    // uncharged: owner-capability installation is control-plane; only raises are metered.
    pub fn install(
        &self,
        installer: Identity,
        handler: impl Fn(&A) -> R + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        self.dispatcher
            .install(self, installer, Arc::new(handler), Vec::new())
    }

    /// Installs a handler with stacked installer guards.
    // uncharged: owner-capability installation is control-plane; only raises are metered.
    pub fn install_guarded(
        &self,
        installer: Identity,
        guard: impl Fn(&A) -> bool + Send + Sync + 'static,
        handler: impl Fn(&A) -> R + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        self.dispatcher
            .install(self, installer, Arc::new(handler), vec![Arc::new(guard)])
    }

    /// Installs a handler with structured (compilable) installer guards.
    // uncharged: owner-capability installation is control-plane; only raises are metered.
    pub fn install_specs(
        &self,
        installer: Identity,
        guards: Vec<GuardSpec<A>>,
        handler: impl Fn(&A) -> R + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        self.dispatcher
            .install_spec(self, installer, Arc::new(handler), guards)
    }

    /// Installs a handler guarded on `key(args) == value` — the compilable
    /// analogue of [`Event::install_guarded`] for the common
    /// per-instance-dispatch case (a protocol number, a port).
    // uncharged: owner-capability installation is control-plane; only raises are metered.
    pub fn install_keyed(
        &self,
        installer: Identity,
        key: &KeyFn<A>,
        value: u64,
        handler: impl Fn(&A) -> R + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        self.dispatcher.install_spec(
            self,
            installer,
            Arc::new(handler),
            vec![GuardSpec::KeyEq(key.clone(), value)],
        )
    }

    /// Raises a burst through this event's dispatcher against one plan
    /// snapshot (see [`Dispatcher::raise_batch`]).
    pub fn raise_batch(&self, batch: Vec<A>) -> Vec<Result<R, DispatchError>> {
        self.dispatcher.raise_batch(self, batch)
    }

    /// Closes the quiesce gate: subsequent raises park in the bounded
    /// hold queue (the raiser sees [`DispatchError::Held`]) until
    /// [`Event::resume`] replays them. Raises already past the gate check
    /// finish normally — [`Event::drain_in_flight`] waits them out.
    ///
    /// This is phase 1 of the hot-swap protocol (see `spin-swap`): gate,
    /// drain, transfer/rebind at a deterministic virtual instant, resume.
    // uncharged: hot-swap control plane.
    pub fn quiesce(&self) -> Result<(), DispatchError> {
        let state = self.resolved()?;
        // Store-buffer pair with the raise path's increment-then-gate-
        // load; both sides need the single total order or a racing
        // raise could neither park nor be drained.
        // ordering: SeqCst — the store-buffer pair's single total order.
        state.gate.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Spins (yielding) until every in-flight dispatch — including posted
    /// async invocations — has settled. Call after [`Event::quiesce`];
    /// calling it from inside one of this event's own handlers deadlocks,
    /// as would waiting on an async invocation whose runner needs this
    /// thread.
    // uncharged: hot-swap control plane.
    pub fn drain_in_flight(&self) -> Result<(), DispatchError> {
        let state = self.resolved()?;
        // ordering: SeqCst — pairs with FlightGuard's SeqCst increment (store-buffer pair, see FlightGuard::enter) and observes its Release decrement.
        while state.in_flight.load(Ordering::SeqCst) != 0 {
            spin_check::thread::yield_now();
        }
        Ok(())
    }

    /// Dispatches currently in flight (diagnostic; racy by nature).
    // uncharged: diagnostics accessor.
    pub fn in_flight(&self) -> Result<u64, DispatchError> {
        // ordering: SeqCst — same protocol as drain_in_flight's probe.
        Ok(self.resolved()?.in_flight.load(Ordering::SeqCst))
    }

    /// Reopens the gate and replays every parked raise in
    /// `(deliver_at, lane, seq)` order — the mailbox total order, so the
    /// replayed timeline is exactly the one an uninterrupted run would
    /// have dispatched. Replayed results are unobservable (like the
    /// paper's asynchronous handlers); each replay charges full dispatch
    /// cost at the *current* virtual instant. Returns how many replayed.
    pub fn resume(&self) -> Result<u64, DispatchError> {
        let state = self.resolved()?;
        let mut parked = {
            let mut held = state.held.lock();
            // Clear the gate *under* the hold lock: a parker acquiring
            // the lock after us sees the open gate and dispatches
            // itself; one that got in before us is in the queue we take.
            // ordering: SeqCst — part of the quiesce protocol's total order; see FlightGuard::enter.
            state.gate.store(false, Ordering::SeqCst);
            std::mem::take(&mut held.queue)
        };
        parked.sort_by_key(|h| (h.deliver_at, h.lane, h.seq));
        let n = parked.len() as u64;
        for h in parked {
            let _ = self.dispatcher.raise(self, h.args);
        }
        state.replayed_total.fetch_add(n, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        Ok(n)
    }

    /// Raises currently parked in the hold queue.
    // uncharged: diagnostics accessor.
    pub fn held_len(&self) -> Result<usize, DispatchError> {
        Ok(self.resolved()?.held.lock().queue.len())
    }

    /// Hold-queue counters (see [`HoldStats`]).
    // uncharged: diagnostics accessor.
    pub fn hold_stats(&self) -> Result<HoldStats, DispatchError> {
        Ok(self.resolved()?.hold_stats())
    }

    /// Bounds the hold queue (default 65 536 parked raises); raises
    /// beyond it are dropped with [`DispatchError::HoldOverflow`].
    // uncharged: control-plane configuration.
    pub fn set_hold_capacity(&self, capacity: usize) -> Result<(), DispatchError> {
        self.resolved()?.held.lock().capacity = capacity;
        Ok(())
    }

    /// The plan generation: bumped once per republish, so one rebind (or
    /// one rollback) is exactly one observable bump.
    // uncharged: diagnostics accessor.
    pub fn generation(&self) -> Result<u64, DispatchError> {
        // ordering: Relaxed — monotonic plan version; the plan RwLock is the real publication barrier.
        Ok(self.resolved()?.generation.load(Ordering::Relaxed))
    }

    /// Atomically replaces every handler installed by `old_installer`
    /// with the given specs, in **one** plan swap (one generation bump):
    /// no raise ever observes a plan with the old version half-removed or
    /// the new one half-installed.
    ///
    /// Allowed for the event owner and for `old_installer` itself (the
    /// swap coordinator acts with the old version's identity). The
    /// owner's install authorizer is *not* consulted — a rebind is a
    /// capability operation, not a third-party installation; guards and
    /// constraints come verbatim from the specs. Returns the undo record
    /// for [`Event::restore`].
    // uncharged: hot-swap control plane (the s8 bench measures the swap at its own grain).
    pub fn rebind(
        &self,
        caller: &Identity,
        old_installer: &Identity,
        installs: Vec<InstallSpec<A, R>>,
    ) -> Result<RebindReceipt<A, R>, DispatchError> {
        let state = self.resolved()?;
        if state.owner != *caller && old_installer != caller {
            return Err(DispatchError::NotOwner);
        }
        let disp = &self.dispatcher;
        let mut ws = state.write.lock();
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(ws.handlers.len());
        for (pos, entry) in ws.handlers.drain(..).enumerate() {
            if entry.installer == *old_installer {
                removed.push((pos, entry));
            } else {
                kept.push(entry);
            }
        }
        ws.handlers = kept;
        let mut installed = Vec::with_capacity(installs.len());
        for spec in installs {
            let id = HandlerId(disp.inner.next_handler.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
            installed.push(id);
            ws.handlers.push(Entry {
                id,
                handler: spec.handler,
                guards: spec.guards,
                constraints: spec.constraints,
                installer: spec.installer,
                is_primary: false,
                fault_flag: Arc::new(AtomicBool::new(false)),
            });
        }
        state.republish(&ws);
        Ok(RebindReceipt {
            old_installer: old_installer.clone(),
            removed,
            installed,
        })
    }

    /// Reverses a rebind: removes the handlers it installed and restores
    /// the removed entries at their original plan positions — again in
    /// one plan swap. Handler ids, guards, constraints and sticky fault
    /// flags of the restored entries are preserved. Allowed for the event
    /// owner and the receipt's old installer.
    // uncharged: hot-swap rollback control plane.
    pub fn restore(
        &self,
        caller: &Identity,
        receipt: RebindReceipt<A, R>,
    ) -> Result<(), DispatchError> {
        let state = self.resolved()?;
        if state.owner != *caller && receipt.old_installer != *caller {
            return Err(DispatchError::NotOwner);
        }
        let mut ws = state.write.lock();
        ws.handlers.retain(|e| !receipt.installed.contains(&e.id));
        // `removed` is in ascending original position, so inserting in
        // order lands each entry back where the old plan had it.
        for (pos, entry) in receipt.removed {
            let at = pos.min(ws.handlers.len());
            ws.handlers.insert(at, entry);
        }
        state.republish(&ws);
        Ok(())
    }
}

/// Type-erased quiesce surface of an [`Event`]: what a hot-swap
/// coordinator holds over the events of a domain whose argument/result
/// types it does not know. Implemented by every `Event<A, R>`; errors
/// (destroyed events) degrade to `false`/`0` — a destroyed event is
/// trivially quiescent.
pub trait GatedEvent: Send + Sync {
    /// The event's qualified name.
    fn gated_name(&self) -> &str;
    /// [`Event::quiesce`]; `false` if the event is gone.
    fn quiesce(&self) -> bool;
    /// [`Event::drain_in_flight`]; `false` if the event is gone.
    fn drain_in_flight(&self) -> bool;
    /// [`Event::resume`]; how many parked raises replayed.
    fn resume(&self) -> u64;
    /// [`Event::held_len`].
    fn held_len(&self) -> usize;
    /// [`Event::hold_stats`].
    fn hold_stats(&self) -> HoldStats;
    /// [`Event::generation`].
    fn generation(&self) -> u64;
}

impl<A, R> GatedEvent for Event<A, R>
where
    A: Send + Sync + 'static,
    R: Send + 'static,
{
    fn gated_name(&self) -> &str {
        self.name()
    }

    fn quiesce(&self) -> bool {
        Event::quiesce(self).is_ok()
    }

    fn drain_in_flight(&self) -> bool {
        Event::drain_in_flight(self).is_ok()
    }

    fn resume(&self) -> u64 {
        Event::resume(self).unwrap_or(0)
    }

    fn held_len(&self) -> usize {
        Event::held_len(self).unwrap_or(0)
    }

    fn hold_stats(&self) -> HoldStats {
        Event::hold_stats(self).unwrap_or_default()
    }

    fn generation(&self) -> u64 {
        Event::generation(self).unwrap_or(0)
    }
}

impl<A, R> EventOwner<A, R>
where
    A: Send + Sync + 'static,
    R: Send + 'static,
{
    /// The owned event.
    // uncharged: accessor.
    pub fn event(&self) -> &Event<A, R> {
        &self.event
    }

    /// The owning identity.
    // uncharged: accessor.
    pub fn identity(&self) -> &Identity {
        &self.token
    }

    /// Installs the default implementation (the primary handler), bypassing
    /// authorization: "the primary right to handle an event is restricted
    /// to the default implementation module".
    // uncharged: owner control-plane operation; only raises are metered.
    pub fn set_primary(
        &self,
        handler: impl Fn(&A) -> R + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        let disp = &self.event.dispatcher;
        let state = self.event.resolved()?;
        let id = HandlerId(disp.inner.next_handler.fetch_add(1, Ordering::Relaxed)); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        let mut ws = state.write.lock();
        ws.handlers.push(Entry {
            id,
            handler: Arc::new(handler),
            guards: Vec::new(),
            constraints: Constraints::default(),
            installer: self.token.clone(),
            is_primary: true,
            fault_flag: Arc::new(AtomicBool::new(false)),
        });
        state.republish(&ws);
        Ok(id)
    }

    /// Sets the authorization policy consulted on every install.
    // uncharged: owner control-plane operation; only raises are metered.
    pub fn set_auth(
        &self,
        auth: impl Fn(&InstallRequest) -> InstallDecision<A> + Send + Sync + 'static,
    ) -> Result<(), DispatchError> {
        let state = self.event.resolved()?;
        state.write.lock().auth = Some(Arc::new(auth));
        Ok(())
    }

    /// Sets the result-combination procedure.
    // uncharged: owner control-plane operation; only raises are metered.
    pub fn set_reducer(
        &self,
        reduce: impl Fn(Vec<R>) -> R + Send + Sync + 'static,
    ) -> Result<(), DispatchError> {
        let state = self.event.resolved()?;
        let mut ws = state.write.lock();
        ws.reducer = Some(Arc::new(reduce));
        state.republish(&ws);
        Ok(())
    }

    /// Removes the primary handler ("or even remove the primary handler").
    // uncharged: owner control-plane operation; only raises are metered.
    pub fn remove_primary(&self) -> Result<(), DispatchError> {
        let state = self.event.resolved()?;
        let mut ws = state.write.lock();
        let before = ws.handlers.len();
        ws.handlers.retain(|e| !e.is_primary);
        if ws.handlers.len() == before {
            return Err(DispatchError::NoSuchHandler);
        }
        state.republish(&ws);
        Ok(())
    }

    /// Uninstalls any handler by owner right.
    // uncharged: owner control-plane operation; only raises are metered.
    pub fn uninstall(&self, id: HandlerId) -> Result<(), DispatchError> {
        self.event
            .dispatcher
            .uninstall(&self.event, id, &self.token)
    }

    /// Destroys the owned event (owner right).
    // uncharged: owner control-plane teardown.
    pub fn destroy(self) -> Result<(), DispatchError> {
        self.event.dispatcher.destroy(&self.event, &self.token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spin_check::sync::AtomicUsize;

    fn disp() -> Dispatcher {
        Dispatcher::unmetered()
    }

    #[test]
    fn single_handler_behaves_like_a_procedure_call() {
        let d = disp();
        let (ev, owner) = d.define::<u32, u32>("Math.Double", Identity::kernel("math"));
        owner.set_primary(|x| x * 2).unwrap();
        assert_eq!(ev.raise(21), Ok(42));
        let stats = d.stats(&ev).unwrap();
        assert_eq!(stats.raises, 1);
        assert_eq!(stats.fast_path_raises, 1);
    }

    #[test]
    fn fast_path_costs_one_inter_module_call() {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let d = Dispatcher::new(clock.clone(), profile.clone());
        let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("k"));
        owner.set_primary(|_| ()).unwrap();
        let t0 = clock.now();
        ev.raise(()).unwrap();
        assert_eq!(clock.now() - t0, profile.inter_module_call);
    }

    #[test]
    fn raise_with_no_handlers_is_an_error() {
        let d = disp();
        let (ev, _owner) = d.define::<(), ()>("Empty", Identity::kernel("k"));
        assert!(matches!(
            ev.raise(()),
            Err(DispatchError::NoHandlerRan { .. })
        ));
    }

    #[test]
    fn default_reduction_returns_final_handler_result() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        ev.install(Identity::extension("x"), |_| 2).unwrap();
        assert_eq!(ev.raise(()), Ok(2));
    }

    #[test]
    fn custom_reducer_combines_results() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 10).unwrap();
        ev.install(Identity::extension("x"), |_| 32).unwrap();
        owner.set_reducer(|rs| rs.into_iter().sum()).unwrap();
        assert_eq!(ev.raise(()), Ok(42));
    }

    #[test]
    fn guards_gate_handlers_per_instance() {
        let d = disp();
        let (ev, owner) = d.define::<u32, &'static str>("IP.PacketArrived", Identity::kernel("ip"));
        owner.set_primary(|_| "default").unwrap();
        // A handler interested only in protocol 17 (UDP).
        ev.install_guarded(Identity::extension("udp"), |proto| *proto == 17, |_| "udp")
            .unwrap();
        assert_eq!(ev.raise(17), Ok("udp"));
        assert_eq!(ev.raise(6), Ok("default"));
        let stats = d.stats(&ev).unwrap();
        assert_eq!(stats.guard_evaluations, 2);
    }

    #[test]
    fn owner_auth_can_deny_and_can_impose_guards() {
        let d = disp();
        let (ev, owner) = d.define::<u32, u32>("E", Identity::kernel("k"));
        owner.set_primary(|x| *x).unwrap();
        owner
            .set_auth(|req| {
                if req.installer.name() == "rogue" {
                    InstallDecision::Deny
                } else {
                    // Owner-imposed guard: only even arguments.
                    InstallDecision::Allow {
                        owner_guard: Some(Arc::new(|x: &u32| x.is_multiple_of(2))),
                        constraints: None,
                    }
                }
            })
            .unwrap();
        assert!(matches!(
            ev.install(Identity::extension("rogue"), |_| 0),
            Err(DispatchError::InstallDenied { .. })
        ));
        ev.install(Identity::extension("good"), |_| 100).unwrap();
        assert_eq!(ev.raise(2), Ok(100)); // guard passes; final handler wins
        assert_eq!(ev.raise(3), Ok(3)); // guard fails; primary result
    }

    #[test]
    fn handlers_can_be_uninstalled_by_installer_or_owner_only() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        let ext = Identity::extension("x");
        let id = ev.install(ext.clone(), |_| 2).unwrap();
        assert!(matches!(
            d.uninstall(&ev, id, &Identity::extension("other")),
            Err(DispatchError::NotOwner)
        ));
        d.uninstall(&ev, id, &ext).unwrap();
        assert_eq!(ev.raise(()), Ok(1));
        assert!(matches!(
            d.uninstall(&ev, id, &ext),
            Err(DispatchError::NoSuchHandler)
        ));
    }

    #[test]
    fn primary_can_be_removed() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        ev.install(Identity::extension("replacement"), |_| 2)
            .unwrap();
        owner.remove_primary().unwrap();
        assert_eq!(ev.raise(()), Ok(2));
        assert_eq!(d.handler_count(&ev).unwrap(), 1);
    }

    #[test]
    fn async_handlers_run_but_contribute_no_result() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 7).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        // Owner constrains this installer to asynchronous execution.
        owner
            .set_auth(|_| InstallDecision::Allow {
                owner_guard: None,
                constraints: Some(Constraints {
                    mode: HandlerMode::Asynchronous,
                    time_bound: None,
                }),
            })
            .unwrap();
        ev.install(Identity::extension("monitor"), move |_| {
            ran2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            99
        })
        .unwrap();
        assert_eq!(ev.raise(()), Ok(7), "async results are not reduced");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "default runner is inline"); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(d.stats(&ev).unwrap().async_dispatches, 1);
    }

    #[test]
    fn time_bounded_handlers_are_aborted() {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let d = Dispatcher::new(clock.clone(), profile);
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        owner
            .set_auth(|_| InstallDecision::Allow {
                owner_guard: None,
                constraints: Some(Constraints {
                    mode: HandlerMode::Synchronous,
                    time_bound: Some(1_000),
                }),
            })
            .unwrap();
        let clock2 = clock.clone();
        ev.install(Identity::extension("slow"), move |_| {
            clock2.advance(50_000); // simulated runaway handler
            1_000_000
        })
        .unwrap();
        // The runaway result is discarded; the primary's result stands.
        assert_eq!(ev.raise(()), Ok(1));
        assert_eq!(d.stats(&ev).unwrap().handlers_aborted, 1);
    }

    #[test]
    fn panicking_handler_is_contained_and_siblings_still_run() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        ev.install(Identity::extension("buggy"), |_| -> u32 {
            panic!("extension bug")
        })
        .unwrap();
        let sibling_ran = Arc::new(AtomicUsize::new(0));
        let s2 = sibling_ran.clone();
        ev.install(Identity::extension("sibling"), move |_| {
            s2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
            7
        })
        .unwrap();
        assert_eq!(ev.raise(()), Ok(7), "the sibling's result stands");
        assert_eq!(sibling_ran.load(Ordering::Relaxed), 1); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        let stats = d.stats(&ev).unwrap();
        assert_eq!(stats.handler_faults, 1);
        assert_eq!(stats.handlers_run, 2, "primary and sibling completed");
        assert_eq!(stats.handlers_aborted, 0);
    }

    #[test]
    fn fault_sink_receives_typed_handler_faults() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("Svc.Event", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        let log: Arc<Mutex<Vec<HandlerFault>>> = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        d.set_fault_sink(Arc::new(move |f: &HandlerFault| l2.lock().push(f.clone())));
        let id = ev
            .install(Identity::extension("buggy"), |_| -> u32 {
                panic!("division by zero")
            })
            .unwrap();
        assert_eq!(ev.raise(()), Ok(1));
        let faults = log.lock();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].event, "Svc.Event");
        assert_eq!(faults[0].handler, id);
        assert_eq!(faults[0].installer.name(), "buggy");
        match &faults[0].kind {
            FaultKind::Panic { message } => assert_eq!(message, "division by zero"),
            other => panic!("expected a panic fault, got {other:?}"),
        }
    }

    #[test]
    fn a_fast_path_panic_demotes_the_handler_for_good() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        owner
            .set_primary(move |_| -> u32 {
                c2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                panic!("primary bug")
            })
            .unwrap();
        // First raise rides the fast path and the panic is contained there.
        assert!(matches!(
            ev.raise(()),
            Err(DispatchError::NoHandlerRan { .. })
        ));
        let s1 = d.stats(&ev).unwrap();
        assert_eq!(s1.fast_path_raises, 1);
        assert_eq!(s1.handler_faults, 1);
        // The handler has faulted once, so it is demoted: later raises take
        // the slow path (still contained, still invoked).
        assert!(matches!(
            ev.raise(()),
            Err(DispatchError::NoHandlerRan { .. })
        ));
        let s2 = d.stats(&ev).unwrap();
        assert_eq!(s2.fast_path_raises, 1, "no fast-path raise after demotion");
        assert_eq!(s2.handler_faults, 2);
        assert_eq!(calls.load(Ordering::Relaxed), 2); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
    }

    #[test]
    fn injected_panics_are_contained_and_attributed() {
        let d = disp();
        let plan = spin_fault::FaultPlan::new(42);
        d.set_fault_hook(plan.hook(spin_fault::SITE_DISPATCH));
        plan.configure(
            spin_fault::SITE_DISPATCH,
            spin_fault::SiteConfig::panic_always(),
        );
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        let log: Arc<Mutex<Vec<HandlerFault>>> = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        d.set_fault_sink(Arc::new(move |f: &HandlerFault| l2.lock().push(f.clone())));
        assert!(ev.raise(()).is_err(), "every handler invocation faults");
        assert_eq!(plan.injected_panics(), 1);
        let faults = log.lock();
        assert_eq!(faults.len(), 1);
        match &faults[0].kind {
            FaultKind::Panic { message } => {
                assert!(
                    message.contains("core.dispatch"),
                    "the injected panic names its site: {message}"
                );
            }
            other => panic!("expected a panic fault, got {other:?}"),
        }
        // Injection off: the same event dispatches cleanly (the faulted
        // primary was demoted but still runs on the slow path).
        plan.set_enabled(false);
        assert_eq!(ev.raise(()), Ok(1));
    }

    #[test]
    fn dispatch_cost_scales_linearly_with_guards() {
        let clock = Clock::new();
        let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
        let d = Dispatcher::new(clock.clone(), profile.clone());
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 0).unwrap();
        for _ in 0..50 {
            ev.install_guarded(Identity::extension("x"), |_| false, |_| 1)
                .unwrap();
        }
        let t0 = clock.now();
        ev.raise(()).unwrap();
        let cost = clock.now() - t0;
        let expected = profile.event_raise_base
            + 50 * profile.guard_eval
            + profile.handler_invoke
            + profile.inter_module_call;
        assert_eq!(cost, expected);
    }

    #[test]
    fn handlers_may_reenter_the_dispatcher() {
        let d = disp();
        let (inner_ev, inner_owner) = d.define::<(), u32>("Inner", Identity::kernel("k"));
        inner_owner.set_primary(|_| 5).unwrap();
        let (outer_ev, outer_owner) = d.define::<(), u32>("Outer", Identity::kernel("k"));
        let inner2 = inner_ev.clone();
        outer_owner
            .set_primary(move |_| inner2.raise(()).unwrap() + 1)
            .unwrap();
        assert_eq!(outer_ev.raise(()), Ok(6));
    }

    #[test]
    fn destroyed_events_become_unknown_on_every_handle() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        let other_handle = ev.clone();
        assert_eq!(ev.raise(()), Ok(1));
        owner.destroy().unwrap();
        for handle in [&ev, &other_handle] {
            assert!(matches!(
                handle.raise(()),
                Err(DispatchError::UnknownEvent { .. })
            ));
        }
        assert!(matches!(
            ev.install(Identity::extension("late"), |_| 2),
            Err(DispatchError::UnknownEvent { .. })
        ));
        assert!(d.stats(&ev).is_err());
    }

    #[test]
    fn destroy_requires_the_owner_identity() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        assert!(matches!(
            d.destroy(&ev, &Identity::extension("rogue")),
            Err(DispatchError::NotOwner)
        ));
        assert_eq!(ev.raise(()), Ok(1), "event survives a denied destroy");
    }

    #[test]
    fn redefining_a_destroyed_name_starts_fresh() {
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 1).unwrap();
        ev.raise(()).unwrap();
        owner.destroy().unwrap();
        let (ev2, owner2) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner2.set_primary(|_| 2).unwrap();
        assert_eq!(ev2.raise(()), Ok(2));
        let stats = d.stats(&ev2).unwrap();
        assert_eq!(stats.raises, 1, "fresh statistics after redefinition");
        assert!(ev.raise(()).is_err(), "stale handles stay unknown");
    }

    #[test]
    fn in_flight_snapshots_are_isolated_from_writers() {
        // A handler that installs another handler mid-raise: the in-flight
        // raise must still see the old snapshot, the next raise the new one.
        let d = disp();
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        let ev2 = ev.clone();
        let installed = Arc::new(AtomicUsize::new(0));
        let installed2 = installed.clone();
        owner
            .set_primary(move |_| {
                // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                if installed2.swap(1, Ordering::Relaxed) == 0 {
                    ev2.install(Identity::extension("late"), |_| 99).unwrap();
                }
                1
            })
            .unwrap();
        // First raise: snapshot predates the install; the new handler does
        // not run (the primary's result stands).
        assert_eq!(ev.raise(()), Ok(1));
        // Second raise: the republished snapshot includes it.
        assert_eq!(ev.raise(()), Ok(99));
    }

    #[test]
    fn baseline_raise_path_matches_semantics() {
        let d = disp();
        let (ev, owner) = d.define::<u32, u32>("E", Identity::kernel("k"));
        owner.set_primary(|x| x + 1).unwrap();
        assert_eq!(d.raise_locked_baseline(&ev, 1), Ok(2));
        ev.install_guarded(
            Identity::extension("g"),
            |x| x.is_multiple_of(2),
            |x| x * 10,
        )
        .unwrap();
        assert_eq!(d.raise_locked_baseline(&ev, 4), Ok(40));
        assert_eq!(d.raise_locked_baseline(&ev, 3), Ok(4));
        assert_eq!(ev.raise(4), Ok(40), "snapshot path agrees");
    }
}
