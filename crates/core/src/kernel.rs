//! The kernel: boot, the `SpinPublic` domain, extension loading, and the
//! system-call trap path.
//!
//! A [`Kernel`] ties together one simulated host's hardware, the central
//! dispatcher, the nameserver, and the garbage-collected kernel heap. It
//! reproduces two specific mechanisms from the paper:
//!
//! * "the domain `SpinPublic` combines the system's public interfaces into
//!   a single domain available to extensions" (§3.1) — extensions loaded
//!   with [`Kernel::load_extension`] are resolved against it;
//! * "the kernel's trap handler raises a `Trap.SystemCall` event which is
//!   dispatched to a Modula-3 procedure installed as a handler" (§5.2) —
//!   [`Kernel::syscall`] charges the trap crossing and raises
//!   [`Kernel::trap_syscall`], on which extensions install guarded handlers
//!   to define *application-specific system calls*.

use crate::capability::ExternTable;
use crate::dispatch::{Dispatcher, Event, EventOwner, HandlerId};
use crate::domain::Domain;
use crate::error::{CoreError, DispatchError};
use crate::fault::{Containment, ContainmentPolicy};
use crate::identity::Identity;
use crate::nameserver::NameServer;
use crate::objfile::{ObjectFile, Provenance};
use spin_check::sync::Mutex;
use spin_check::sync::{Arc, AtomicU64, Ordering};
use spin_obs::{Obs, ObsHook, TraceKind};
use spin_rt::KernelHeap;
use spin_sal::Host;
use std::ops::Range;

/// Arguments of a system-call trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syscall {
    pub number: u64,
    pub args: [u64; 6],
}

/// The result of a system call (negative values are errors, as in OSF/1).
pub type SysResult = i64;

/// Returned by [`Kernel::syscall`] when no handler claimed the number.
pub const ENOSYS: SysResult = -78;

struct KernelInner {
    host: Host,
    dispatcher: Dispatcher,
    nameserver: NameServer,
    heap: KernelHeap,
    spin_public: Domain,
    trap_syscall: Event<Syscall, SysResult>,
    trap_owner: EventOwner<Syscall, SysResult>,
    asserted_safe: AtomicU64,
    extensions: Mutex<Vec<Domain>>,
    /// Observability hook (kernel domain): absent until wired via
    /// [`Kernel::install_obs`]; the trap path then pays one atomic load.
    obs: crate::hooks::HookSlot<ObsHook>,
}

/// One booted SPIN kernel.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<KernelInner>,
}

impl Kernel {
    /// Boots a kernel on `host`.
    pub fn boot(host: Host) -> Kernel {
        let dispatcher = Dispatcher::new(host.clock.clone(), host.profile.clone());
        let nameserver = NameServer::new();
        let spin_public = Domain::combine("SpinPublic", &[]).expect("empty combine");
        let (trap_syscall, trap_owner) =
            dispatcher.define::<Syscall, SysResult>("Trap.SystemCall", Identity::kernel("Trap"));
        nameserver
            .register(
                "SpinPublic",
                spin_public.clone(),
                Identity::kernel("kernel"),
            )
            .expect("fresh nameserver");
        Kernel {
            inner: Arc::new(KernelInner {
                host,
                dispatcher,
                nameserver,
                heap: KernelHeap::new(),
                spin_public,
                trap_syscall,
                trap_owner,
                asserted_safe: AtomicU64::new(0),
                extensions: Mutex::new(Vec::new()),
                obs: crate::hooks::HookSlot::new(),
            }),
        }
    }

    /// Wires the observability subsystem into the kernel, dogfooding the
    /// paper's machinery on the way:
    ///
    /// * the dispatcher and the trap path get their accounting hooks;
    /// * trace records are stamped with this host's virtual clock;
    /// * an `Obs.Snapshot` event is defined whose primary handler renders
    ///   the Prometheus accounting text — any holder of the returned
    ///   [`Event`] (e.g. the in-kernel `/metrics` HTTP extension) raises
    ///   it like any other kernel procedure;
    /// * an `ObsService` domain exporting the subsystem handle and the
    ///   snapshot event is registered with the nameserver, so extensions
    ///   import observability exactly like every other kernel interface.
    ///
    /// Returns the `Obs.Snapshot` event handle. Idempotent wiring: hooks
    /// are one-shot, but each call defines a fresh snapshot event.
    pub fn install_obs(&self, obs: &Obs) -> Event<(), String> {
        let clock = self.inner.host.clock.clone();
        obs.set_time_source(Arc::new(move || clock.now()));
        self.inner.dispatcher.set_obs(obs.domain("dispatcher"));
        self.inner.heap.set_obs(obs.domain("gc"));
        let _ = self.inner.obs.set(obs.domain("kernel"));

        let (snapshot, snap_owner) = self
            .inner
            .dispatcher
            .define::<(), String>("Obs.Snapshot", Identity::kernel("obs"));
        let render_obs = obs.clone();
        snap_owner
            .set_primary(move |_| render_obs.render_prometheus())
            .expect("fresh Obs.Snapshot event");

        let iface = crate::interface::Interface::new("ObsService")
            .export("obs", Arc::new(obs.clone()))
            .export("snapshot", Arc::new(snapshot.clone()));
        let domain = Domain::create_from_module("ObsService", vec![iface]);
        // Re-wiring (tests boot several kernels against one obs) keeps the
        // first registration.
        let _ = self
            .inner
            .nameserver
            .register("ObsService", domain, Identity::kernel("obs"));
        snapshot
    }

    /// Installs the standard fault-containment policy: the circuit
    /// breaker becomes the dispatcher's fault sink and quarantine is
    /// armed against this kernel's nameserver, so a repeatedly faulting
    /// extension loses its handlers *and* its exported interfaces. See
    /// [`Containment`] for the supervision story (`Core.DomainFault`).
    pub fn install_fault_containment(&self, policy: ContainmentPolicy) -> Arc<Containment> {
        Containment::install(&self.inner.dispatcher, Some(&self.inner.nameserver), policy)
    }

    /// The simulated hardware this kernel runs on.
    pub fn host(&self) -> &Host {
        &self.inner.host
    }

    /// The central event dispatcher.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.inner.dispatcher
    }

    /// The in-kernel nameserver.
    pub fn nameserver(&self) -> &NameServer {
        &self.inner.nameserver
    }

    /// The garbage-collected kernel heap.
    pub fn heap(&self) -> &KernelHeap {
        &self.inner.heap
    }

    /// The aggregate domain of public kernel interfaces.
    pub fn spin_public(&self) -> &Domain {
        &self.inner.spin_public
    }

    /// Exports an interface into `SpinPublic` (done by core services as
    /// they initialize).
    pub fn publish(&self, interface: crate::interface::Interface) {
        self.inner.spin_public.add_export(interface);
    }

    /// The `Trap.SystemCall` event.
    pub fn trap_syscall(&self) -> &Event<Syscall, SysResult> {
        &self.inner.trap_syscall
    }

    /// Loads an extension: creates a domain from `objfile` (counting
    /// asserted-safe files), links it against `SpinPublic`, and requires it
    /// to be fully resolved before it is registered.
    pub fn load_extension(&self, objfile: ObjectFile) -> Result<Domain, CoreError> {
        if objfile.provenance() == Provenance::AssertedSafe {
            self.inner.asserted_safe.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        let domain = Domain::create(objfile)?;
        Domain::resolve(&self.inner.spin_public, &domain)?;
        domain.require_resolved()?;
        self.inner.extensions.lock().push(domain.clone());
        Ok(domain)
    }

    /// Number of loaded extensions.
    pub fn extension_count(&self) -> usize {
        self.inner.extensions.lock().len()
    }

    /// How many object files were trusted by assertion rather than by the
    /// compiler (the paper tracks these as disproportionate bug sources).
    pub fn asserted_safe_count(&self) -> u64 {
        self.inner.asserted_safe.load(Ordering::Relaxed) // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
    }

    /// Creates a fresh externalized-reference table for an application.
    pub fn new_extern_table(&self) -> ExternTable {
        ExternTable::new()
    }

    /// Installs a handler for a range of system-call numbers — an
    /// application-specific system call (§5.2's VM benchmarks use these).
    pub fn register_syscalls(
        &self,
        installer: Identity,
        numbers: Range<u64>,
        handler: impl Fn(&Syscall) -> SysResult + Send + Sync + 'static,
    ) -> Result<HandlerId, DispatchError> {
        self.inner.trap_syscall.install_guarded(
            installer,
            move |sc: &Syscall| numbers.contains(&sc.number),
            handler,
        )
    }

    /// The user→kernel→user system-call path: charges the trap crossing
    /// and raises `Trap.SystemCall`.
    pub fn syscall(&self, number: u64, args: [u64; 6]) -> SysResult {
        let profile = &self.inner.host.profile;
        let clock = &self.inner.host.clock;
        if let Some(obs) = self.inner.obs.get() {
            obs.counters.syscalls.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            obs.trace(TraceKind::SyscallTrap, number, 0);
        }
        clock.advance(profile.trap_entry);
        let result = self
            .inner
            .trap_syscall
            .raise(Syscall { number, args })
            .unwrap_or(ENOSYS);
        clock.advance(profile.trap_exit);
        result
    }

    /// The primary owner capability for `Trap.SystemCall` (used by trusted
    /// services to set dispatch policy).
    pub fn trap_owner(&self) -> &EventOwner<Syscall, SysResult> {
        &self.inner.trap_owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Interface;
    use crate::objfile::ObjectFileBuilder;
    use spin_sal::SimBoard;

    fn kernel() -> Kernel {
        let board = SimBoard::new();
        Kernel::boot(board.new_host(256))
    }

    #[test]
    fn boot_registers_spin_public() {
        let k = kernel();
        assert!(k.nameserver().names().contains(&"SpinPublic".to_string()));
        assert_eq!(k.spin_public().name(), "SpinPublic");
    }

    #[test]
    fn extensions_link_against_spin_public() {
        let k = kernel();
        k.publish(Interface::new("Math").export("answer", Arc::new(42u32)));
        let mut b = ObjectFileBuilder::new("ext");
        let slot = b.import::<u32>("Math", "answer");
        let d = k.load_extension(b.sign()).unwrap();
        assert!(d.fully_resolved());
        assert_eq!(*slot.get().unwrap(), 42);
        assert_eq!(k.extension_count(), 1);
    }

    #[test]
    fn extension_with_missing_import_fails_to_load() {
        let k = kernel();
        let mut b = ObjectFileBuilder::new("ext");
        let _slot = b.import::<u32>("NoSuch", "thing");
        assert!(matches!(
            k.load_extension(b.sign()),
            Err(CoreError::Unresolved { .. })
        ));
        assert_eq!(k.extension_count(), 0);
    }

    #[test]
    fn asserted_safe_files_are_counted() {
        let k = kernel();
        let f = ObjectFile::unsigned("vendor_tcp", vec![]).assert_safe();
        k.load_extension(f).unwrap();
        assert_eq!(k.asserted_safe_count(), 1);
    }

    #[test]
    fn syscalls_dispatch_to_guarded_handlers() {
        let k = kernel();
        k.register_syscalls(Identity::extension("vmext"), 100..110, |sc| {
            (sc.number as i64) + (sc.args[0] as i64)
        })
        .unwrap();
        assert_eq!(k.syscall(105, [1, 0, 0, 0, 0, 0]), 106);
        assert_eq!(k.syscall(5, [0; 6]), ENOSYS);
    }

    #[test]
    fn spin_syscall_costs_about_four_microseconds() {
        let k = kernel();
        k.register_syscalls(Identity::extension("null"), 0..1, |_| 0)
            .unwrap();
        let clock = k.host().clock.clone();
        let t0 = clock.now();
        k.syscall(0, [0; 6]);
        let us = (clock.now() - t0) as f64 / 1000.0;
        // Table 2: SPIN's null system call is 4 µs.
        assert!((3.5..4.8).contains(&us), "syscall cost {us} µs");
    }
}
