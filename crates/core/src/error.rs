//! Error types for the extensibility machinery.

use std::fmt;

/// Errors from domain creation, linking and the nameserver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The object file is neither compiler-signed nor asserted safe.
    UnsafeObjectFile { module: String },
    /// `Resolve` finished but the target still has unresolved imports.
    Unresolved { symbols: Vec<String> },
    /// Import and export agree on a name but disagree on its type — the
    /// paper's "type conflict that results in an error" (§3.1).
    TypeConflict {
        symbol: String,
        expected: &'static str,
        found: &'static str,
    },
    /// Two combined domains export the same symbol with different types.
    ExportConflict { symbol: String },
    /// The nameserver has no domain registered under this name.
    NameNotFound { name: String },
    /// A nameserver authorizer rejected the importer.
    AuthorizationDenied { name: String, importer: String },
    /// A name is already registered.
    NameExists { name: String },
    /// An externalized reference was invalid or of the wrong type.
    BadExternRef,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsafeObjectFile { module } => {
                write!(
                    f,
                    "object file for `{module}` is not safe (unsigned and not asserted)"
                )
            }
            CoreError::Unresolved { symbols } => {
                write!(f, "unresolved imports remain: {symbols:?}")
            }
            CoreError::TypeConflict {
                symbol,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type conflict on `{symbol}`: import wants {expected}, export is {found}"
                )
            }
            CoreError::ExportConflict { symbol } => {
                write!(f, "conflicting exports of `{symbol}` in combined domain")
            }
            CoreError::NameNotFound { name } => write!(f, "no interface named `{name}`"),
            CoreError::AuthorizationDenied { name, importer } => {
                write!(f, "importer `{importer}` denied access to `{name}`")
            }
            CoreError::NameExists { name } => write!(f, "name `{name}` already registered"),
            CoreError::BadExternRef => write!(f, "invalid externalized reference"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors from the event dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The event is not (or no longer) defined.
    UnknownEvent { name: String },
    /// Every handler was guarded off, asynchronous, or absent; no result
    /// could be produced.
    NoHandlerRan { name: String },
    /// The primary implementation module denied the installation (§3.2:
    /// "The implementation module can deny or allow the installation").
    InstallDenied { name: String, installer: String },
    /// The caller does not hold the owner capability for this operation.
    NotOwner,
    /// No handler with that id is installed.
    NoSuchHandler,
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownEvent { name } => write!(f, "unknown event `{name}`"),
            DispatchError::NoHandlerRan { name } => {
                write!(f, "no handler produced a result for `{name}`")
            }
            DispatchError::InstallDenied { name, installer } => {
                write!(f, "`{installer}` denied installation on `{name}`")
            }
            DispatchError::NotOwner => write!(f, "caller is not the event owner"),
            DispatchError::NoSuchHandler => write!(f, "no such handler"),
        }
    }
}

impl std::error::Error for DispatchError {}
