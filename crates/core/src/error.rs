//! Error types for the extensibility machinery.

use std::fmt;

/// One colliding export discovered by `Domain::combine`: the same
/// interface/symbol name exported by two member domains at different types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolConflict {
    /// `interface.symbol` key that collided.
    pub symbol: String,
    /// The domain whose export was seen first.
    pub first_domain: String,
    /// The domain whose conflicting export was seen second.
    pub second_domain: String,
    /// Type name of the first export.
    pub first_type: &'static str,
    /// Type name of the second export.
    pub second_type: &'static str,
}

impl fmt::Display for SymbolConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}`: {} exports {}, {} exports {}",
            self.symbol, self.first_domain, self.first_type, self.second_domain, self.second_type
        )
    }
}

/// Errors from domain creation, linking and the nameserver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The object file is neither compiler-signed nor asserted safe.
    UnsafeObjectFile { module: String },
    /// `Resolve` finished but the target still has unresolved imports.
    Unresolved { symbols: Vec<String> },
    /// Import and export agree on a name but disagree on its type — the
    /// paper's "type conflict that results in an error" (§3.1).
    TypeConflict {
        symbol: String,
        expected: &'static str,
        found: &'static str,
    },
    /// Combined domains export overlapping symbols at different types.
    /// Every collision is reported (API v2), not just the first.
    ExportConflict { conflicts: Vec<SymbolConflict> },
    /// The nameserver has no domain registered under this name.
    NameNotFound { name: String },
    /// A nameserver authorizer rejected the importer.
    AuthorizationDenied { name: String, importer: String },
    /// A name is already registered.
    NameExists { name: String },
    /// An externalized reference was invalid or of the wrong type.
    BadExternRef,
    /// Typed import found no registration exporting the requested type.
    ServiceNotFound { type_name: &'static str },
    /// Typed import matched more than one registration; the caller must
    /// disambiguate (the candidate registration names are sorted).
    AmbiguousService {
        type_name: &'static str,
        candidates: Vec<String>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsafeObjectFile { module } => {
                write!(
                    f,
                    "object file for `{module}` is not safe (unsigned and not asserted)"
                )
            }
            CoreError::Unresolved { symbols } => {
                write!(f, "unresolved imports remain: {symbols:?}")
            }
            CoreError::TypeConflict {
                symbol,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type conflict on `{symbol}`: import wants {expected}, export is {found}"
                )
            }
            CoreError::ExportConflict { conflicts } => {
                write!(f, "conflicting exports in combined domain: ")?;
                for (i, c) in conflicts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            CoreError::NameNotFound { name } => write!(f, "no interface named `{name}`"),
            CoreError::AuthorizationDenied { name, importer } => {
                write!(f, "importer `{importer}` denied access to `{name}`")
            }
            CoreError::NameExists { name } => write!(f, "name `{name}` already registered"),
            CoreError::BadExternRef => write!(f, "invalid externalized reference"),
            CoreError::ServiceNotFound { type_name } => {
                write!(f, "no registered domain exports a `{type_name}` service")
            }
            CoreError::AmbiguousService {
                type_name,
                candidates,
            } => {
                write!(
                    f,
                    "multiple registrations export `{type_name}`: {candidates:?}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors from the event dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The event is not (or no longer) defined.
    UnknownEvent { name: String },
    /// Every handler was guarded off, asynchronous, or absent; no result
    /// could be produced.
    NoHandlerRan { name: String },
    /// The primary implementation module denied the installation (§3.2:
    /// "The implementation module can deny or allow the installation").
    InstallDenied { name: String, installer: String },
    /// The caller does not hold the owner capability for this operation.
    NotOwner,
    /// No handler with that id is installed.
    NoSuchHandler,
    /// The event is quiesced for a hot swap: the raise was parked in the
    /// hold queue and will be dispatched — in `(deliver_at, lane, seq)`
    /// order — when the swap resumes the event.
    Held { name: String },
    /// The event is quiesced and its hold queue is full; the raise was
    /// dropped (counted in [`crate::HoldStats::overflowed`]).
    HoldOverflow { name: String },
    /// The raise was refused by admission control: the domain the event is
    /// metered under is over one of its [`crate::QuotaSpec`] budgets. The
    /// caller may retry once budget is released (a completed dispatch or a
    /// window roll); nothing was queued or charged.
    Throttled { name: String, domain: String },
    /// The raise was deterministically dropped by load shedding: the
    /// metered domain escalated past throttling (counted in
    /// [`crate::QuotaSnapshot::shed`]). Retrying is futile until the
    /// domain's shedding window rolls or a supervisor intervenes.
    Shed { name: String, domain: String },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownEvent { name } => write!(f, "unknown event `{name}`"),
            DispatchError::NoHandlerRan { name } => {
                write!(f, "no handler produced a result for `{name}`")
            }
            DispatchError::InstallDenied { name, installer } => {
                write!(f, "`{installer}` denied installation on `{name}`")
            }
            DispatchError::NotOwner => write!(f, "caller is not the event owner"),
            DispatchError::NoSuchHandler => write!(f, "no such handler"),
            DispatchError::Held { name } => {
                write!(f, "`{name}` is quiesced; raise parked in the hold queue")
            }
            DispatchError::HoldOverflow { name } => {
                write!(f, "`{name}` is quiesced and its hold queue is full")
            }
            DispatchError::Throttled { name, domain } => {
                write!(f, "`{name}` throttled: domain `{domain}` is over budget")
            }
            DispatchError::Shed { name, domain } => {
                write!(f, "`{name}` shed: domain `{domain}` is shedding load")
            }
        }
    }
}

impl std::error::Error for DispatchError {}
