//! Identities: who is exporting, importing, installing.
//!
//! The paper's nameserver "will be called with the identity of the importer
//! whenever the interface is imported" (§3.1), and the dispatcher passes an
//! installer's identity to the primary implementation module. An
//! [`Identity`] is that principal.

use std::fmt;
use std::sync::Arc;

/// The kind of principal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdentityKind {
    /// Trusted core services shipped with the kernel.
    KernelCore,
    /// A dynamically-loaded kernel extension.
    Extension,
    /// A user-level application (outside the kernel address space).
    Application,
}

/// A principal known to the kernel.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Identity {
    name: Arc<str>,
    kind: IdentityKind,
}

impl Identity {
    /// A trusted core-service identity.
    pub fn kernel(name: &str) -> Self {
        Identity {
            name: name.into(),
            kind: IdentityKind::KernelCore,
        }
    }

    /// An extension identity.
    pub fn extension(name: &str) -> Self {
        Identity {
            name: name.into(),
            kind: IdentityKind::Extension,
        }
    }

    /// An application identity.
    pub fn application(name: &str) -> Self {
        Identity {
            name: name.into(),
            kind: IdentityKind::Application,
        }
    }

    /// The principal's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The principal's kind.
    pub fn kind(&self) -> IdentityKind {
        self.kind
    }

    /// Whether this is a trusted core-service identity.
    pub fn is_kernel(&self) -> bool {
        self.kind == IdentityKind::KernelCore
    }
}

impl fmt::Debug for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{}", self.kind, self.name)
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let k = Identity::kernel("Console");
        assert!(k.is_kernel());
        assert_eq!(k.name(), "Console");
        let e = Identity::extension("VideoClient");
        assert!(!e.is_kernel());
        assert_eq!(e.kind(), IdentityKind::Extension);
        assert_ne!(k, e);
        assert_eq!(e, Identity::extension("VideoClient"));
    }
}
