//! Safe object files: the unit a domain is created from.
//!
//! "A domain ... corresponds to one or more safe object files with one or
//! more exported interfaces. An object file is safe if it is unknown to the
//! kernel but has been signed by the Modula-3 compiler, or if the kernel
//! can otherwise assert the object file to be safe" (§3.1).
//!
//! Our "compiler signature" is construction through [`ObjectFileBuilder`]:
//! every import it declares carries its full Rust type, so resolution is
//! type-checked — the analogue of Modula-3's typed linkage. A *foreign*
//! object file (the paper's C device drivers and TCP engine) is built with
//! [`ObjectFile::unsigned`] and must be explicitly asserted safe before a
//! domain will accept it; the paper notes such files "tend to be the source
//! of more than their fair share of bugs", and the kernel keeps a count of
//! them for exactly that reason.

use crate::error::CoreError;
use crate::interface::{Interface, Symbol};
use spin_check::sync::RwLock;
use std::any::Any;
use std::sync::Arc;

/// How an object file came to be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Produced by the safe-language toolchain (the builder).
    CompilerSigned,
    /// Foreign code whose safety the kernel asserted (discouraged).
    AssertedSafe,
    /// Foreign code with no safety evidence; unusable for domains.
    Unsigned,
}

/// A patchable import: code in the importing domain calls through this
/// slot, and [`resolve`](crate::domain::Domain::resolve) fills it.
///
/// After resolution a call through the slot is one `Arc` dereference —
/// "once resolved, domains are able to share resources at memory speed".
pub struct ImportSlot<T: ?Sized + Send + Sync> {
    cell: Arc<RwLock<Option<Arc<T>>>>,
}

impl<T: ?Sized + Send + Sync> Clone for ImportSlot<T> {
    fn clone(&self) -> Self {
        ImportSlot {
            cell: self.cell.clone(),
        }
    }
}

impl<T: Send + Sync + 'static> ImportSlot<T> {
    fn new() -> Self {
        ImportSlot {
            cell: Arc::new(RwLock::new(None)),
        }
    }

    /// The resolved value.
    ///
    /// Fails with [`CoreError::Unresolved`] until a `Resolve` operation has
    /// patched this slot.
    pub fn get(&self) -> Result<Arc<T>, CoreError> {
        self.cell
            .read()
            .clone()
            .ok_or_else(|| CoreError::Unresolved {
                symbols: vec![std::any::type_name::<T>().to_string()],
            })
    }

    /// Whether the slot has been patched.
    pub fn is_resolved(&self) -> bool {
        self.cell.read().is_some()
    }
}

/// Type-erased fill protocol used by the linker.
pub(crate) trait SlotFill: Send + Sync {
    fn fill(&self, symbol: &Symbol) -> Result<(), CoreError>;
    fn is_filled(&self) -> bool;
    fn expected_type_name(&self) -> &'static str;
}

struct TypedFill<T: Send + Sync + 'static> {
    slot: ImportSlot<T>,
}

impl<T: Any + Send + Sync> SlotFill for TypedFill<T> {
    fn fill(&self, symbol: &Symbol) -> Result<(), CoreError> {
        let value = symbol.get::<T>()?;
        *self.slot.cell.write() = Some(value);
        Ok(())
    }
    fn is_filled(&self) -> bool {
        self.slot.is_resolved()
    }
    fn expected_type_name(&self) -> &'static str {
        std::any::type_name::<T>()
    }
}

/// One declared import: `interface.symbol` at a specific type.
pub struct ImportDecl {
    pub interface: String,
    pub symbol: String,
    pub(crate) fill: Arc<dyn SlotFill>,
}

impl ImportDecl {
    /// `Interface.Symbol`, for diagnostics.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.interface, self.symbol)
    }

    /// Whether this import has been resolved.
    pub fn is_resolved(&self) -> bool {
        self.fill.is_filled()
    }
}

impl std::fmt::Debug for ImportDecl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "import {}: {}",
            self.qualified_name(),
            self.fill.expected_type_name()
        )
    }
}

/// A compiled module image: exported interfaces plus typed imports.
pub struct ObjectFile {
    pub(crate) module: String,
    pub(crate) exports: Vec<Interface>,
    pub(crate) imports: Vec<ImportDecl>,
    pub(crate) provenance: Provenance,
}

impl ObjectFile {
    /// The module name embedded in the file.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// The file's trust provenance.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Builds a foreign (unsigned) object file, e.g. a vendor device driver
    /// written in C. A domain will reject it until the kernel asserts its
    /// safety with [`ObjectFile::assert_safe`].
    pub fn unsigned(module: &str, exports: Vec<Interface>) -> Self {
        ObjectFile {
            module: module.to_string(),
            exports,
            imports: Vec::new(),
            provenance: Provenance::Unsigned,
        }
    }

    /// Marks a foreign object file as safe by kernel assertion.
    ///
    /// "We prefer to avoid using object files that are 'safe by assertion'
    /// rather than by compiler verification" (§3.1) — callers should treat
    /// this as a last resort; the kernel counts each use.
    pub fn assert_safe(mut self) -> Self {
        if self.provenance == Provenance::Unsigned {
            self.provenance = Provenance::AssertedSafe;
        }
        self
    }
}

/// The safe-language toolchain: builds compiler-signed object files.
pub struct ObjectFileBuilder {
    module: String,
    exports: Vec<Interface>,
    imports: Vec<ImportDecl>,
}

impl ObjectFileBuilder {
    /// Starts a new module.
    pub fn new(module: &str) -> Self {
        ObjectFileBuilder {
            module: module.to_string(),
            exports: Vec::new(),
            imports: Vec::new(),
        }
    }

    /// Exports an interface from the module.
    pub fn export(mut self, interface: Interface) -> Self {
        self.exports.push(interface);
        self
    }

    /// Declares a typed import and returns the slot the module's code will
    /// call through once linked.
    pub fn import<T: Any + Send + Sync>(&mut self, interface: &str, symbol: &str) -> ImportSlot<T> {
        let slot = ImportSlot::<T>::new();
        self.imports.push(ImportDecl {
            interface: interface.to_string(),
            symbol: symbol.to_string(),
            fill: Arc::new(TypedFill { slot: slot.clone() }),
        });
        slot
    }

    /// Signs and seals the object file.
    pub fn sign(self) -> ObjectFile {
        ObjectFile {
            module: self.module,
            exports: self.exports,
            imports: self.imports,
            provenance: Provenance::CompilerSigned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_signed_files() {
        let f = ObjectFileBuilder::new("gatekeeper").sign();
        assert_eq!(f.provenance(), Provenance::CompilerSigned);
        assert_eq!(f.module(), "gatekeeper");
    }

    #[test]
    fn unsigned_files_can_be_asserted() {
        let f = ObjectFile::unsigned("lance_driver", vec![]);
        assert_eq!(f.provenance(), Provenance::Unsigned);
        let f = f.assert_safe();
        assert_eq!(f.provenance(), Provenance::AssertedSafe);
    }

    #[test]
    fn import_slots_start_unresolved() {
        let mut b = ObjectFileBuilder::new("m");
        let slot = b.import::<u32>("Math", "answer");
        assert!(!slot.is_resolved());
        assert!(matches!(slot.get(), Err(CoreError::Unresolved { .. })));
        let f = b.sign();
        assert_eq!(f.imports.len(), 1);
        assert_eq!(f.imports[0].qualified_name(), "Math.answer");
    }

    #[test]
    fn fill_checks_types() {
        let mut b = ObjectFileBuilder::new("m");
        let slot = b.import::<u32>("Math", "answer");
        let f = b.sign();
        let wrong = Symbol::new("answer", Arc::new("not a number".to_string()));
        assert!(matches!(
            f.imports[0].fill.fill(&wrong),
            Err(CoreError::TypeConflict { .. })
        ));
        let right = Symbol::new("answer", Arc::new(42u32));
        f.imports[0].fill.fill(&right).unwrap();
        assert_eq!(*slot.get().unwrap(), 42);
    }
}
