//! `spin-core` — the extensibility machinery of the SPIN operating system.
//!
//! This crate is the paper's `sys` component: "the extensibility machinery,
//! domains, naming, linking, and dispatching" (§5.1, Table 1). It
//! implements the four techniques of §1.1 in Rust:
//!
//! * **Co-location** — extensions are Rust values living in the kernel's
//!   (process's) address space; calling them is a procedure call.
//! * **Enforced modularity** — Rust's type system and privacy stand in for
//!   Modula-3's compiler-enforced interfaces: an extension holding an
//!   opaque handle cannot reach its fields, and a [`Symbol`] can only be
//!   recovered at its exported type.
//! * **Logical protection domains** — [`Domain`] with `create`,
//!   `create_from_module`, `resolve` and `combine`, fed by compiler-signed
//!   [`ObjectFile`]s and coordinated by the [`NameServer`] with per-import
//!   authorization.
//! * **Dynamic call binding** — the central [`Dispatcher`] with typed
//!   [`Event`]s, owner-authorized installation, guards, synchronous /
//!   asynchronous / time-bounded constraints, result reducers, and a
//!   direct-procedure-call fast path.
//!
//! The [`Kernel`] ties these to a simulated host from `spin-sal` and adds
//! the `Trap.SystemCall` path and `SpinPublic` linkage domain.

#![forbid(unsafe_code)]

pub mod capability;
pub mod dispatch;
pub mod domain;
pub mod error;
pub mod fault;
/// Hook registration primitives (API v2): every subsystem's observability /
/// fault / clock hook point goes through [`hooks::HookSlot`] or
/// [`hooks::HookRegistry`] instead of hand-rolled `OnceLock` patterns. The
/// implementation lives in `spin-check` (the bottom of the dependency
/// stack) so `sal` and `sched` share it; this is the kernel-facing name.
pub mod hooks {
    pub use spin_check::hooks::{HookId, HookRegistry, HookSlot};
}
pub mod identity;
pub mod interface;
pub mod kernel;
pub mod nameserver;
pub mod objfile;
pub mod quota;

pub use capability::{ExternRef, ExternTable};
pub use dispatch::{
    AsyncInvocation, Constraints, Dispatcher, Event, EventOwner, EventStats, GatedEvent, Guard,
    GuardSpec, Handler, HandlerId, HandlerMode, HoldStats, InstallDecision, InstallRequest,
    InstallSpec, KeyFn, RebindReceipt, Reducer, XcallRouter,
};
pub use domain::{Domain, ResolveReport};
pub use error::{CoreError, DispatchError, SymbolConflict};
pub use fault::{
    Containment, ContainmentPolicy, DeadlineExceeded, DomainFaultInfo, FaultKind, FaultSink,
    HandlerFault,
};
pub use identity::{Identity, IdentityKind};
pub use interface::{Interface, Symbol};
pub use kernel::{Kernel, SysResult, Syscall, ENOSYS};
pub use nameserver::{Authorizer, ExportRebind, NameServer, ServiceRef};
pub use objfile::{ImportDecl, ImportSlot, ObjectFile, ObjectFileBuilder, Provenance};
pub use quota::{
    post_with_backpressure, BackoffPolicy, EscalationSink, PostOutcome, QuotaBreach, QuotaCell,
    QuotaLedger, QuotaSnapshot, QuotaSpec, QuotaState, QuotaVerdict,
};
