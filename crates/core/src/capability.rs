//! Externalized references: passing in-kernel capabilities to user level.
//!
//! "A pointer can be passed from the kernel to a user-level application,
//! which cannot be assumed to be type safe, as an externalized reference.
//! An externalized reference is an index into a per-application table that
//! contains type safe references to in-kernel data structures" (§3.1).
//!
//! Each application gets an [`ExternTable`]; the kernel externalizes an
//! `Arc` and hands back an opaque [`ExternRef`]. User code can only return
//! the index, and recovery checks both the table and the type — a forged or
//! stale index yields an error, never a misinterpreted object.

use crate::error::CoreError;
use spin_check::sync::Mutex;
use spin_check::sync::{AtomicU64, Ordering};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

static NEXT_TABLE: AtomicU64 = AtomicU64::new(1);

/// An opaque handle given to user level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExternRef {
    table: u64,
    index: u64,
}

/// One application's table of externalized kernel references.
pub struct ExternTable {
    id: u64,
    entries: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    next: AtomicU64,
}

impl Default for ExternTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ExternTable {
    /// Creates a table with a process-unique id.
    pub fn new() -> Self {
        ExternTable {
            id: NEXT_TABLE.fetch_add(1, Ordering::Relaxed), // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
            entries: Mutex::new(HashMap::new()),
            next: AtomicU64::new(1),
        }
    }

    /// Externalizes a kernel reference, returning the index to pass out.
    pub fn externalize<T: Any + Send + Sync>(&self, value: Arc<T>) -> ExternRef {
        let index = self.next.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — allocates a unique id; the handle carrying it is published separately.
        self.entries.lock().insert(index, value);
        ExternRef {
            table: self.id,
            index,
        }
    }

    /// Recovers a reference at its externalized type.
    ///
    /// Fails if the handle belongs to a different application's table, was
    /// revoked, or names an object of a different type.
    pub fn recover<T: Any + Send + Sync>(&self, r: ExternRef) -> Result<Arc<T>, CoreError> {
        if r.table != self.id {
            return Err(CoreError::BadExternRef);
        }
        let entries = self.entries.lock();
        let v = entries.get(&r.index).ok_or(CoreError::BadExternRef)?;
        v.clone()
            .downcast::<T>()
            .map_err(|_| CoreError::BadExternRef)
    }

    /// Revokes a previously-externalized reference.
    pub fn revoke(&self, r: ExternRef) -> Result<(), CoreError> {
        if r.table != self.id {
            return Err(CoreError::BadExternRef);
        }
        self.entries
            .lock()
            .remove(&r.index)
            .map(|_| ())
            .ok_or(CoreError::BadExternRef)
    }

    /// Number of live externalized references.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PhysPage {
        frame: u32,
    }

    #[test]
    fn externalize_and_recover() {
        let t = ExternTable::new();
        let r = t.externalize(Arc::new(PhysPage { frame: 7 }));
        let page = t.recover::<PhysPage>(r).unwrap();
        assert_eq!(page.frame, 7);
    }

    #[test]
    fn wrong_type_is_rejected() {
        let t = ExternTable::new();
        let r = t.externalize(Arc::new(PhysPage { frame: 7 }));
        assert!(matches!(t.recover::<u32>(r), Err(CoreError::BadExternRef)));
    }

    #[test]
    fn cross_table_handles_are_rejected() {
        let t1 = ExternTable::new();
        let t2 = ExternTable::new();
        let r = t1.externalize(Arc::new(1u32));
        assert!(matches!(t2.recover::<u32>(r), Err(CoreError::BadExternRef)));
    }

    #[test]
    fn forged_indices_are_rejected() {
        let t = ExternTable::new();
        let real = t.externalize(Arc::new(1u32));
        let forged = ExternRef {
            table: real.table,
            index: real.index + 1000,
        };
        assert!(matches!(
            t.recover::<u32>(forged),
            Err(CoreError::BadExternRef)
        ));
    }

    #[test]
    fn revocation_invalidates() {
        let t = ExternTable::new();
        let r = t.externalize(Arc::new(1u32));
        assert_eq!(t.len(), 1);
        t.revoke(r).unwrap();
        assert!(t.is_empty());
        assert!(t.recover::<u32>(r).is_err());
        assert!(t.revoke(r).is_err());
    }
}
