//! Logical protection domains and the in-kernel dynamic linker.
//!
//! "A SPIN protection domain defines a set of names, or program symbols,
//! that can be referenced by code with access to the domain. A domain,
//! named by a capability, is used to control dynamic linking" (§3.1). The
//! four operations of Figure 2 are reproduced here:
//!
//! * [`Domain::create`] — initialize a domain from a safe object file,
//! * [`Domain::create_from_module`] — a module names and exports itself,
//! * [`Domain::resolve`] — patch the target's undefined symbols against the
//!   source's exports (cross-linking is a pair of resolves),
//! * [`Domain::combine`] — an aggregate domain exporting the union.
//!
//! A `Domain` value *is* the capability for the domain: it is unforgeable
//! (private constructor) and holding it grants the right to link against
//! the domain's exports.

use crate::error::{CoreError, SymbolConflict};
use crate::interface::{Interface, Symbol};
use crate::objfile::{ImportDecl, ObjectFile, Provenance};
use spin_check::sync::{Mutex, RwLock};
use std::any::Any;
use std::sync::Arc;

/// What one [`Domain::resolve`] pass accomplished (API v2 structured
/// result — callers previously got a bare patched-count `usize`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveReport {
    /// Imports patched against the source's exports in this pass.
    pub resolved: usize,
    /// Qualified names (`Interface.symbol`) still unresolved afterwards;
    /// a later resolve against a different source may fill them.
    pub unresolved: Vec<String>,
    /// Name of the source domain that provided the exports.
    pub provider_domain: String,
}

struct DomainInner {
    name: String,
    provenance: Provenance,
    exports: RwLock<Vec<Interface>>,
    /// Imports not yet patched.
    unresolved: Mutex<Vec<ImportDecl>>,
    /// Domains aggregated by `combine`.
    children: RwLock<Vec<Domain>>,
}

/// A logical protection domain (and the capability that names it).
#[derive(Clone)]
pub struct Domain {
    inner: Arc<DomainInner>,
}

impl Domain {
    /// Creates a domain from a safe object file.
    ///
    /// Rejects unsigned files: "an object file is safe if it ... has been
    /// signed by the Modula-3 compiler, or if the kernel can otherwise
    /// assert the object file to be safe".
    pub fn create(objfile: ObjectFile) -> Result<Domain, CoreError> {
        if objfile.provenance == Provenance::Unsigned {
            return Err(CoreError::UnsafeObjectFile {
                module: objfile.module,
            });
        }
        Ok(Domain {
            inner: Arc::new(DomainInner {
                name: objfile.module,
                provenance: objfile.provenance,
                exports: RwLock::new(objfile.exports),
                unresolved: Mutex::new(objfile.imports),
                children: RwLock::new(Vec::new()),
            }),
        })
    }

    /// Creates a domain containing interfaces defined by the calling
    /// module — "this function allows modules to name and export themselves
    /// at runtime" (Figure 2).
    pub fn create_from_module(module: &str, interfaces: Vec<Interface>) -> Domain {
        Domain {
            inner: Arc::new(DomainInner {
                name: module.to_string(),
                provenance: Provenance::CompilerSigned,
                exports: RwLock::new(interfaces),
                unresolved: Mutex::new(Vec::new()),
                children: RwLock::new(Vec::new()),
            }),
        }
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// How the domain's code was trusted.
    pub fn provenance(&self) -> Provenance {
        self.inner.provenance
    }

    /// Resolves the **target**'s undefined symbols against the **source**'s
    /// exports. "Resolution only resolves the target domain's undefined
    /// symbols; it does not cause additional symbols to be exported."
    ///
    /// Imports that find no matching export remain unresolved (another
    /// `resolve` against a different source may fill them). A name match
    /// with a type mismatch is an error: the link is aborted mid-way with
    /// the offending symbol reported.
    ///
    /// Returns a [`ResolveReport`] recording what was patched, what is
    /// still missing, and which domain provided the exports.
    pub fn resolve(source: &Domain, target: &Domain) -> Result<ResolveReport, CoreError> {
        let mut unresolved = target.inner.unresolved.lock();
        let mut patched = 0;
        let mut remaining = Vec::new();
        for import in unresolved.drain(..) {
            match source.lookup_symbol(&import.interface, &import.symbol) {
                Some(symbol) => {
                    import.fill.fill(&symbol)?;
                    patched += 1;
                }
                None => remaining.push(import),
            }
        }
        let report = ResolveReport {
            resolved: patched,
            unresolved: remaining.iter().map(|i| i.qualified_name()).collect(),
            provider_domain: source.inner.name.clone(),
        };
        *unresolved = remaining;
        Ok(report)
    }

    /// Creates an aggregate domain exporting the union of the given
    /// domains' interfaces (the paper's `SpinPublic` is built this way).
    ///
    /// A symbol exported by two constituents at *different types* is an
    /// [`CoreError::ExportConflict`]; identical re-exports are allowed and
    /// the first constituent wins on lookup. *Every* collision across the
    /// constituents is collected and reported (API v2), so a failed
    /// combine names all offending domain pairs at once instead of
    /// aborting on the first.
    pub fn combine(name: &str, domains: &[Domain]) -> Result<Domain, CoreError> {
        // Conflict check across constituents.
        let mut seen: Vec<(String, std::any::TypeId, String, &'static str)> = Vec::new();
        let mut conflicts: Vec<SymbolConflict> = Vec::new();
        for d in domains {
            for (iface, sym, tid, tname) in d.all_symbol_types() {
                let key = format!("{iface}.{sym}");
                if let Some((_, prev, owner, prev_tname)) = seen.iter().find(|(k, ..)| *k == key) {
                    if *prev != tid {
                        conflicts.push(SymbolConflict {
                            symbol: key,
                            first_domain: owner.clone(),
                            second_domain: d.name().to_string(),
                            first_type: prev_tname,
                            second_type: tname,
                        });
                    }
                } else {
                    seen.push((key, tid, d.name().to_string(), tname));
                }
            }
        }
        if !conflicts.is_empty() {
            return Err(CoreError::ExportConflict { conflicts });
        }
        Ok(Domain {
            inner: Arc::new(DomainInner {
                name: name.to_string(),
                provenance: Provenance::CompilerSigned,
                exports: RwLock::new(Vec::new()),
                unresolved: Mutex::new(Vec::new()),
                children: RwLock::new(domains.to_vec()),
            }),
        })
    }

    /// Adds an interface to this domain's own exports.
    pub fn add_export(&self, interface: Interface) {
        self.inner.exports.write().push(interface);
    }

    /// Finds an exported symbol, searching own exports then children in
    /// combine order.
    pub fn lookup_symbol(&self, interface: &str, symbol: &str) -> Option<Symbol> {
        for iface in self.inner.exports.read().iter() {
            if iface.name() == interface {
                if let Some(s) = iface.symbol(symbol) {
                    return Some(s.clone());
                }
            }
        }
        for child in self.inner.children.read().iter() {
            if let Some(s) = child.lookup_symbol(interface, symbol) {
                return Some(s);
            }
        }
        None
    }

    /// Recovers an exported symbol at its type, like client code importing
    /// through a resolved slot.
    pub fn get<T: Any + Send + Sync>(
        &self,
        interface: &str,
        symbol: &str,
    ) -> Result<Arc<T>, CoreError> {
        self.lookup_symbol(interface, symbol)
            .ok_or_else(|| CoreError::NameNotFound {
                name: format!("{interface}.{symbol}"),
            })?
            .get::<T>()
    }

    /// Returns the full interface by name (own exports, then children).
    pub fn interface(&self, name: &str) -> Option<Interface> {
        for iface in self.inner.exports.read().iter() {
            if iface.name() == name {
                return Some(iface.clone());
            }
        }
        for child in self.inner.children.read().iter() {
            if let Some(i) = child.interface(name) {
                return Some(i);
            }
        }
        None
    }

    /// Names of imports that are still unresolved.
    pub fn unresolved(&self) -> Vec<String> {
        self.inner
            .unresolved
            .lock()
            .iter()
            .map(|i| i.qualified_name())
            .collect()
    }

    /// Whether every declared import has been patched.
    pub fn fully_resolved(&self) -> bool {
        self.inner.unresolved.lock().is_empty()
    }

    /// Fails unless the domain is fully resolved (used before activating an
    /// extension).
    pub fn require_resolved(&self) -> Result<(), CoreError> {
        let u = self.unresolved();
        if u.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Unresolved { symbols: u })
        }
    }

    fn all_symbol_types(&self) -> Vec<(String, String, std::any::TypeId, &'static str)> {
        let mut out = Vec::new();
        for iface in self.inner.exports.read().iter() {
            for s in iface.symbols() {
                out.push((
                    iface.name().to_string(),
                    s.name().to_string(),
                    s.type_id(),
                    s.type_name(),
                ));
            }
        }
        for child in self.inner.children.read().iter() {
            out.extend(child.all_symbol_types());
        }
        out
    }

    /// First exported symbol of dynamic type `tid` (own exports in
    /// declaration order, then children in combine order). Backs the
    /// nameserver's typed import.
    pub(crate) fn symbol_of_type(&self, tid: std::any::TypeId) -> Option<Symbol> {
        for iface in self.inner.exports.read().iter() {
            for s in iface.symbols() {
                if s.type_id() == tid {
                    return Some(s.clone());
                }
            }
        }
        for child in self.inner.children.read().iter() {
            if let Some(s) = child.symbol_of_type(tid) {
                return Some(s);
            }
        }
        None
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Domain({})", self.inner.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objfile::ObjectFileBuilder;

    fn math_domain() -> Domain {
        Domain::create_from_module(
            "math",
            vec![Interface::new("Math").export("answer", Arc::new(42u32))],
        )
    }

    #[test]
    fn create_rejects_unsigned_files() {
        let f = ObjectFile::unsigned("driver", vec![]);
        assert!(matches!(
            Domain::create(f),
            Err(CoreError::UnsafeObjectFile { .. })
        ));
        let f = ObjectFile::unsigned("driver", vec![]).assert_safe();
        let d = Domain::create(f).unwrap();
        assert_eq!(d.provenance(), Provenance::AssertedSafe);
    }

    #[test]
    fn resolve_patches_imports() {
        let source = math_domain();
        let mut b = ObjectFileBuilder::new("client");
        let slot = b.import::<u32>("Math", "answer");
        let target = Domain::create(b.sign()).unwrap();
        assert!(!target.fully_resolved());
        let report = Domain::resolve(&source, &target).unwrap();
        assert_eq!(report.resolved, 1);
        assert!(report.unresolved.is_empty());
        assert_eq!(report.provider_domain, "math");
        assert!(target.fully_resolved());
        assert_eq!(*slot.get().unwrap(), 42);
    }

    #[test]
    fn resolve_reports_type_conflicts() {
        let source = math_domain();
        let mut b = ObjectFileBuilder::new("client");
        let _slot = b.import::<String>("Math", "answer"); // wrong type
        let target = Domain::create(b.sign()).unwrap();
        assert!(matches!(
            Domain::resolve(&source, &target),
            Err(CoreError::TypeConflict { .. })
        ));
    }

    #[test]
    fn unmatched_imports_remain_for_later_sources() {
        let source = math_domain();
        let mut b = ObjectFileBuilder::new("client");
        let _a = b.import::<u32>("Math", "answer");
        let _b = b.import::<u32>("Physics", "c");
        let target = Domain::create(b.sign()).unwrap();
        let report = Domain::resolve(&source, &target).unwrap();
        assert_eq!(report.resolved, 1);
        assert_eq!(report.unresolved, vec!["Physics.c".to_string()]);
        assert_eq!(target.unresolved(), vec!["Physics.c".to_string()]);
        let physics = Domain::create_from_module(
            "physics",
            vec![Interface::new("Physics").export("c", Arc::new(299_792_458u32))],
        );
        assert_eq!(Domain::resolve(&physics, &target).unwrap().resolved, 1);
        assert!(target.fully_resolved());
        assert!(target.require_resolved().is_ok());
    }

    #[test]
    fn cross_linking_is_a_pair_of_resolves() {
        let mut ab = ObjectFileBuilder::new("a");
        let a_needs = ab.import::<u32>("B", "bval");
        let a = Domain::create(ab.sign()).unwrap();
        a.add_export(Interface::new("A").export("aval", Arc::new(1u32)));

        let mut bb = ObjectFileBuilder::new("b");
        let b_needs = bb.import::<u32>("A", "aval");
        let b = Domain::create(bb.sign()).unwrap();
        b.add_export(Interface::new("B").export("bval", Arc::new(2u32)));

        Domain::resolve(&a, &b).unwrap();
        Domain::resolve(&b, &a).unwrap();
        assert_eq!(*a_needs.get().unwrap(), 2);
        assert_eq!(*b_needs.get().unwrap(), 1);
    }

    #[test]
    fn combine_exports_the_union() {
        let m = math_domain();
        let p = Domain::create_from_module(
            "physics",
            vec![Interface::new("Physics").export("c", Arc::new(3u32))],
        );
        let public = Domain::combine("SpinPublic", &[m, p]).unwrap();
        assert_eq!(*public.get::<u32>("Math", "answer").unwrap(), 42);
        assert_eq!(*public.get::<u32>("Physics", "c").unwrap(), 3);
        assert!(public.lookup_symbol("Nope", "x").is_none());
    }

    #[test]
    fn combine_rejects_conflicting_types() {
        let a =
            Domain::create_from_module("a", vec![Interface::new("I").export("x", Arc::new(1u32))]);
        let b = Domain::create_from_module(
            "b",
            vec![Interface::new("I").export("x", Arc::new("s".to_string()))],
        );
        assert!(matches!(
            Domain::combine("C", &[a, b]),
            Err(CoreError::ExportConflict { .. })
        ));
    }

    #[test]
    fn combine_reports_every_conflict_with_both_domains() {
        // Two distinct collisions across three domains: the error carries
        // them all, attributed to the colliding domain pair, not just the
        // first one found.
        let a = Domain::create_from_module(
            "a",
            vec![Interface::new("I")
                .export("x", Arc::new(1u32))
                .export("y", Arc::new(2u64))],
        );
        let b = Domain::create_from_module(
            "b",
            vec![Interface::new("I").export("x", Arc::new("s".to_string()))],
        );
        let c =
            Domain::create_from_module("c", vec![Interface::new("I").export("y", Arc::new(true))]);
        let err = Domain::combine("C", &[a, b, c]).unwrap_err();
        let CoreError::ExportConflict { conflicts } = err else {
            panic!("expected ExportConflict");
        };
        assert_eq!(conflicts.len(), 2, "{conflicts:?}");
        assert_eq!(conflicts[0].symbol, "I.x");
        assert_eq!(conflicts[0].first_domain, "a");
        assert_eq!(conflicts[0].second_domain, "b");
        assert_eq!(conflicts[1].symbol, "I.y");
        assert_eq!(conflicts[1].first_domain, "a");
        assert_eq!(conflicts[1].second_domain, "c");
        assert!(conflicts[0].first_type.contains("u32"), "{conflicts:?}");
        assert!(conflicts[0].second_type.contains("String"), "{conflicts:?}");
    }

    #[test]
    fn resolve_does_not_reexport() {
        // C imports from B which imported from A; resolving B against C
        // must not expose A's symbols through B unless B exports them.
        let a = math_domain();
        let mut bb = ObjectFileBuilder::new("b");
        let _slot = bb.import::<u32>("Math", "answer");
        let b = Domain::create(bb.sign()).unwrap();
        Domain::resolve(&a, &b).unwrap();
        // B exports nothing, so a client resolving against B finds nothing.
        let mut cb = ObjectFileBuilder::new("c");
        let _c_slot = cb.import::<u32>("Math", "answer");
        let c = Domain::create(cb.sign()).unwrap();
        assert_eq!(Domain::resolve(&b, &c).unwrap().resolved, 0);
        assert!(!c.fully_resolved());
    }
}
