//! Interfaces and symbols: the language-level units of protection.
//!
//! In SPIN "an interface declares the visible parts of an implementation
//! module" and "capabilities are implemented directly using pointers, which
//! are supported by the language" (§3.1). Here an [`Interface`] is a named
//! set of typed [`Symbol`]s; a symbol's value is an `Arc` of the exported
//! item (a procedure wrapper, an event, an opaque service handle). Rust's
//! type system plays Modula-3's role: a symbol can only be recovered at its
//! exported type, so holding an `Arc<Console>` without the fields being
//! public is exactly the paper's opaque `Console.T`.

use crate::error::CoreError;
use std::any::{Any, TypeId};
use std::sync::Arc;

/// A typed, named item exported from an interface.
#[derive(Clone)]
pub struct Symbol {
    name: Arc<str>,
    value: Arc<dyn Any + Send + Sync>,
    type_id: TypeId,
    type_name: &'static str,
}

impl Symbol {
    /// Wraps `value` as an exported symbol.
    pub fn new<T: Any + Send + Sync>(name: &str, value: Arc<T>) -> Self {
        Symbol {
            name: name.into(),
            value,
            type_id: TypeId::of::<T>(),
            type_name: std::any::type_name::<T>(),
        }
    }

    /// The symbol's name within its interface.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exported Rust type's name (diagnostics only).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    pub(crate) fn type_id(&self) -> TypeId {
        self.type_id
    }

    /// Recovers the symbol at its exported type.
    ///
    /// A mismatch is the paper's *type conflict* and yields an error rather
    /// than a misinterpreted pointer.
    pub fn get<T: Any + Send + Sync>(&self) -> Result<Arc<T>, CoreError> {
        self.value
            .clone()
            .downcast::<T>()
            .map_err(|_| CoreError::TypeConflict {
                symbol: self.name.to_string(),
                expected: std::any::type_name::<T>(),
                found: self.type_name,
            })
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.type_name)
    }
}

/// A named collection of symbols — the unit of export, import and
/// authorization.
#[derive(Clone, Debug)]
pub struct Interface {
    name: Arc<str>,
    symbols: Vec<Symbol>,
}

impl Interface {
    /// Creates an interface named `name` (the paper's
    /// `Console.InterfaceName` global).
    pub fn new(name: &str) -> Self {
        Interface {
            name: name.into(),
            symbols: Vec::new(),
        }
    }

    /// The interface's global name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a symbol, replacing any previous one of the same name.
    pub fn export<T: Any + Send + Sync>(mut self, symbol: &str, value: Arc<T>) -> Self {
        self.symbols.retain(|s| s.name() != symbol);
        self.symbols.push(Symbol::new(symbol, value));
        self
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name() == name)
    }

    /// Recovers a symbol at its exported type.
    pub fn get<T: Any + Send + Sync>(&self, symbol: &str) -> Result<Arc<T>, CoreError> {
        self.symbol(symbol)
            .ok_or_else(|| CoreError::NameNotFound {
                name: format!("{}.{}", self.name, symbol),
            })?
            .get::<T>()
    }

    /// All symbols, in export order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConsoleT {
        device: &'static str,
    }

    #[test]
    fn symbols_round_trip_at_their_type() {
        let iface = Interface::new("ConsoleService")
            .export("console", Arc::new(ConsoleT { device: "tga0" }))
            .export("version", Arc::new(3u32));
        assert_eq!(iface.get::<u32>("version").unwrap().as_ref(), &3);
        assert_eq!(iface.get::<ConsoleT>("console").unwrap().device, "tga0");
    }

    #[test]
    fn wrong_type_is_a_type_conflict() {
        let iface = Interface::new("I").export("x", Arc::new(1u32));
        let err = iface.get::<u64>("x").unwrap_err();
        assert!(matches!(err, CoreError::TypeConflict { .. }));
    }

    #[test]
    fn missing_symbol_is_name_not_found() {
        let iface = Interface::new("I");
        assert!(matches!(
            iface.get::<u32>("x"),
            Err(CoreError::NameNotFound { .. })
        ));
    }

    #[test]
    fn re_export_replaces() {
        let iface = Interface::new("I")
            .export("x", Arc::new(1u32))
            .export("x", Arc::new(2u32));
        assert_eq!(iface.symbols().len(), 1);
        assert_eq!(*iface.get::<u32>("x").unwrap(), 2);
    }
}
