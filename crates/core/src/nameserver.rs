//! The in-kernel nameserver.
//!
//! "A module that exports an interface explicitly creates a domain for its
//! interface, and exports the domain through an in-kernel nameserver. ...
//! An exporter can register an authorization procedure with the nameserver
//! that will be called with the identity of the importer whenever the
//! interface is imported. This fine-grained control has low cost because
//! the importer, exporter, and authorizer interact through direct procedure
//! calls" (§3.1).

use crate::domain::Domain;
use crate::error::CoreError;
use crate::identity::Identity;
use spin_check::sync::Mutex;
use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Decides whether `importer` may import the named interface.
pub type Authorizer = Arc<dyn Fn(&Identity) -> bool + Send + Sync>;

/// A typed capability returned by [`NameServer::import_typed`]: the
/// resolved service handle plus the domain it was exported from.
///
/// Dereferences to `T`, so call sites use the service directly; the
/// domain stays available for further symbol lookups (API v2 replaces the
/// stringly `import(&str) -> Domain` flow, where every caller re-did the
/// downcast by hand).
#[derive(Clone)]
pub struct ServiceRef<T: ?Sized> {
    name: String,
    domain: Domain,
    service: Arc<T>,
}

impl<T: ?Sized> ServiceRef<T> {
    /// The registration name the service resolved through.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exporting domain (for linking or further lookups).
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The shared service handle.
    pub fn service(&self) -> &Arc<T> {
        &self.service
    }
}

impl<T: ?Sized> std::ops::Deref for ServiceRef<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.service
    }
}

impl<T: ?Sized> std::fmt::Debug for ServiceRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServiceRef<{}>({})",
            std::any::type_name::<T>(),
            self.name
        )
    }
}

struct Registration {
    domain: Domain,
    exporter: Identity,
    authorizer: Option<Authorizer>,
    imports: u64,
    denials: u64,
}

/// Undo record for one [`NameServer::rebind_exports`]: the names that
/// were re-pointed, each with the domain it pointed at before. Feeding it
/// to [`NameServer::restore_exports`] reverses the rebind.
pub struct ExportRebind {
    old_exporter: Identity,
    new_exporter: Identity,
    rebound: Vec<(String, Domain)>,
}

impl ExportRebind {
    /// The rebound names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.rebound.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// How many registrations were re-pointed.
    pub fn len(&self) -> usize {
        self.rebound.len()
    }

    /// `true` when the old exporter had no registrations.
    pub fn is_empty(&self) -> bool {
        self.rebound.is_empty()
    }

    /// The identity the rebind installed as exporter.
    pub fn new_exporter(&self) -> &Identity {
        &self.new_exporter
    }
}

/// The kernel's name → domain registry.
#[derive(Clone, Default)]
pub struct NameServer {
    names: Arc<Mutex<BTreeMap<String, Registration>>>,
}

impl NameServer {
    /// An empty nameserver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `domain` under `name` with no import restriction.
    pub fn register(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
    ) -> Result<(), CoreError> {
        self.register_with_authorizer(name, domain, exporter, None)
    }

    /// Registers `domain` under `name`, guarding imports with `authorizer`.
    pub fn register_with_authorizer(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
        authorizer: Option<Authorizer>,
    ) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return Err(CoreError::NameExists {
                name: name.to_string(),
            });
        }
        names.insert(
            name.to_string(),
            Registration {
                domain,
                exporter,
                authorizer,
                imports: 0,
                denials: 0,
            },
        );
        Ok(())
    }

    /// Name-keyed lookup behind the typed path once it has picked its
    /// unique registration. The string `import` this once backed is gone
    /// (API v2): string lookups bypassed the interface type ids that make
    /// linking safe — [`NameServer::import_typed`] is the import surface.
    fn import_by_name(&self, name: &str, importer: &Identity) -> Result<Domain, CoreError> {
        let mut names = self.names.lock();
        let reg = names.get_mut(name).ok_or_else(|| CoreError::NameNotFound {
            name: name.to_string(),
        })?;
        if let Some(auth) = &reg.authorizer {
            if !auth(importer) {
                reg.denials += 1;
                return Err(CoreError::AuthorizationDenied {
                    name: name.to_string(),
                    importer: importer.name().to_string(),
                });
            }
        }
        reg.imports += 1;
        Ok(reg.domain.clone())
    }

    /// Imports a service by its *exported type* instead of a registration
    /// string: scans registrations (in sorted-name order) for domains
    /// exporting a symbol of type `T` via `Interface::export::<T>`.
    ///
    /// Exactly one registration may match — zero is
    /// [`CoreError::ServiceNotFound`], several are
    /// [`CoreError::AmbiguousService`] with the sorted candidate names.
    /// The matching exporter's authorizer is consulted (and denials
    /// counted) exactly as for the string path.
    pub fn import_typed<T: Any + Send + Sync>(
        &self,
        importer: &Identity,
    ) -> Result<ServiceRef<T>, CoreError> {
        let tid = TypeId::of::<T>();
        let candidates: Vec<String> = {
            let names = self.names.lock();
            names
                .iter()
                .filter(|(_, r)| r.domain.symbol_of_type(tid).is_some())
                .map(|(n, _)| n.clone())
                .collect()
        };
        let name = match candidates.as_slice() {
            [] => {
                return Err(CoreError::ServiceNotFound {
                    type_name: std::any::type_name::<T>(),
                })
            }
            [one] => one.clone(),
            _ => {
                return Err(CoreError::AmbiguousService {
                    type_name: std::any::type_name::<T>(),
                    candidates,
                })
            }
        };
        let domain = self.import_by_name(&name, importer)?;
        let service = domain
            .symbol_of_type(tid)
            .ok_or(CoreError::ServiceNotFound {
                type_name: std::any::type_name::<T>(),
            })?
            .get::<T>()?;
        Ok(ServiceRef {
            name,
            domain,
            service,
        })
    }

    /// Removes a registration; only the original exporter may do so.
    pub fn unregister(&self, name: &str, caller: &Identity) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        match names.get(name) {
            Some(reg) if reg.exporter == *caller => {
                names.remove(name);
                Ok(())
            }
            Some(_) => Err(CoreError::AuthorizationDenied {
                name: name.to_string(),
                importer: caller.name().to_string(),
            }),
            None => Err(CoreError::NameNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Removes every registration exported by `exporter` and returns the
    /// revoked names, sorted. This is the quarantine primitive: a domain
    /// that has tripped its failure budget loses its exported interfaces
    /// so no further imports can bind to it.
    pub fn revoke_exports(&self, exporter: &Identity) -> Vec<String> {
        let mut names = self.names.lock();
        let revoked: Vec<String> = names
            .iter()
            .filter(|(_, r)| r.exporter == *exporter)
            .map(|(n, _)| n.clone())
            .collect();
        for name in &revoked {
            names.remove(name);
        }
        revoked
    }

    /// Atomically re-points every registration exported by
    /// `old_exporter` at `new_domain` under `new_exporter`, keeping the
    /// names, authorizers and import/denial counters — under **one** lock
    /// acquisition, so no importer ever observes a name revoked but not
    /// yet re-registered. This is the hot-swap rebind: `import_typed`
    /// holders resolving those names get the new version from the instant
    /// the lock drops. Returns the undo record for
    /// [`NameServer::restore_exports`]; its names are sorted.
    pub fn rebind_exports(
        &self,
        old_exporter: &Identity,
        new_domain: &Domain,
        new_exporter: &Identity,
    ) -> ExportRebind {
        let mut names = self.names.lock();
        let mut rebound: Vec<(String, Domain)> = Vec::new();
        for (name, reg) in names.iter_mut() {
            if reg.exporter == *old_exporter {
                let old_domain = std::mem::replace(&mut reg.domain, new_domain.clone());
                reg.exporter = new_exporter.clone();
                rebound.push((name.clone(), old_domain));
            }
        }
        ExportRebind {
            old_exporter: old_exporter.clone(),
            new_exporter: new_exporter.clone(),
            rebound,
        }
    }

    /// Reverses a [`NameServer::rebind_exports`]: restores the old domain
    /// and exporter on every rebound name still registered — again under
    /// one lock acquisition. Names unregistered in between are skipped.
    /// Counters accumulated while the new version served stay (they are
    /// per-name, not per-version).
    pub fn restore_exports(&self, receipt: ExportRebind) {
        let mut names = self.names.lock();
        for (name, old_domain) in receipt.rebound {
            if let Some(reg) = names.get_mut(&name) {
                reg.domain = old_domain;
                reg.exporter = receipt.old_exporter.clone();
            }
        }
    }

    /// All registered names, sorted (diagnostics).
    pub fn names(&self) -> Vec<String> {
        self.names.lock().keys().cloned().collect()
    }

    /// (successful imports, denials) for a name.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.names.lock().get(name).map(|r| (r.imports, r.denials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Interface;

    fn console_domain() -> Domain {
        Domain::create_from_module(
            "console",
            vec![Interface::new("Console").export("version", Arc::new(1u32))],
        )
    }

    #[test]
    fn register_and_import() {
        let ns = NameServer::new();
        ns.register(
            "ConsoleService",
            console_domain(),
            Identity::kernel("console"),
        )
        .unwrap();
        let svc = ns
            .import_typed::<u32>(&Identity::extension("gatekeeper"))
            .unwrap();
        assert_eq!(*svc, 1);
        assert_eq!(svc.name(), "ConsoleService");
        assert_eq!(*svc.domain().get::<u32>("Console", "version").unwrap(), 1);
        assert_eq!(ns.stats("ConsoleService"), Some((1, 0)));
    }

    /// The deprecated string `import` is gone; what it used to give a
    /// caller — the exporting domain for hand-rolled symbol lookups — is
    /// still reachable through the typed path's [`ServiceRef::domain`].
    #[test]
    fn typed_path_covers_removed_string_import() {
        let ns = NameServer::new();
        ns.register(
            "ConsoleService",
            console_domain(),
            Identity::kernel("console"),
        )
        .unwrap();
        let svc = ns
            .import_typed::<u32>(&Identity::extension("gatekeeper"))
            .unwrap();
        let d = svc.domain();
        assert_eq!(*d.get::<u32>("Console", "version").unwrap(), 1);
        assert_eq!(ns.stats("ConsoleService"), Some((1, 0)));
    }

    #[test]
    fn rebind_exports_swaps_domain_atomically_and_restores() {
        let ns = NameServer::new();
        let v1 = Identity::extension("fwd-v1");
        let v2 = Identity::extension("fwd-v2");
        ns.register("Forward", console_domain(), v1.clone())
            .unwrap();
        let who = Identity::extension("client");
        assert_eq!(*ns.import_typed::<u32>(&who).unwrap(), 1);

        let new_domain = Domain::create_from_module(
            "console2",
            vec![Interface::new("Console").export("version", Arc::new(2u32))],
        );
        let receipt = ns.rebind_exports(&v1, &new_domain, &v2);
        assert_eq!(receipt.names(), vec!["Forward"]);
        assert_eq!(receipt.len(), 1);
        assert_eq!(receipt.new_exporter(), &v2);
        // Same name, new version — and the import counter carried over.
        assert_eq!(*ns.import_typed::<u32>(&who).unwrap(), 2);
        assert_eq!(ns.stats("Forward"), Some((2, 0)));
        // The new exporter owns the name now; the old one cannot touch it.
        assert!(ns.unregister("Forward", &v1).is_err());

        ns.restore_exports(receipt);
        assert_eq!(*ns.import_typed::<u32>(&who).unwrap(), 1);
        assert!(ns.unregister("Forward", &v1).is_ok());
    }

    #[test]
    fn rebind_exports_of_unknown_exporter_is_empty() {
        let ns = NameServer::new();
        ns.register("X", console_domain(), Identity::kernel("a"))
            .unwrap();
        let receipt = ns.rebind_exports(
            &Identity::extension("nobody"),
            &console_domain(),
            &Identity::extension("new"),
        );
        assert!(receipt.is_empty());
        ns.restore_exports(receipt);
        assert_eq!(ns.names(), vec!["X".to_string()]);
    }

    #[test]
    fn typed_import_reports_missing_and_ambiguous_services() {
        let ns = NameServer::new();
        let who = Identity::kernel("probe");
        let err = ns.import_typed::<u32>(&who).unwrap_err();
        assert!(matches!(err, CoreError::ServiceNotFound { .. }));

        ns.register("B", console_domain(), Identity::kernel("b"))
            .unwrap();
        ns.register("A", console_domain(), Identity::kernel("a"))
            .unwrap();
        match ns.import_typed::<u32>(&who).unwrap_err() {
            CoreError::AmbiguousService { candidates, .. } => {
                assert_eq!(candidates, vec!["A".to_string(), "B".to_string()]);
            }
            other => panic!("expected AmbiguousService, got {other:?}"),
        }
        // Neither candidate was charged an import.
        assert_eq!(ns.stats("A"), Some((0, 0)));
        assert_eq!(ns.stats("B"), Some((0, 0)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let ns = NameServer::new();
        ns.register("X", console_domain(), Identity::kernel("a"))
            .unwrap();
        assert!(matches!(
            ns.register("X", console_domain(), Identity::kernel("b")),
            Err(CoreError::NameExists { .. })
        ));
    }

    #[test]
    fn authorizer_gates_imports() {
        let ns = NameServer::new();
        ns.register_with_authorizer(
            "Device",
            console_domain(),
            Identity::kernel("driver"),
            Some(Arc::new(|who: &Identity| who.is_kernel())),
        )
        .unwrap();
        assert!(ns.import_typed::<u32>(&Identity::kernel("fs")).is_ok());
        let err = ns
            .import_typed::<u32>(&Identity::extension("rogue"))
            .unwrap_err();
        assert!(matches!(err, CoreError::AuthorizationDenied { .. }));
        assert_eq!(ns.stats("Device"), Some((1, 1)));
    }

    #[test]
    fn only_exporter_may_unregister() {
        let ns = NameServer::new();
        let owner = Identity::kernel("console");
        ns.register("C", console_domain(), owner.clone()).unwrap();
        assert!(ns.unregister("C", &Identity::extension("evil")).is_err());
        ns.unregister("C", &owner).unwrap();
        assert!(matches!(
            ns.import_typed::<u32>(&owner),
            Err(CoreError::ServiceNotFound { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let ns = NameServer::new();
        ns.register("b", console_domain(), Identity::kernel("x"))
            .unwrap();
        ns.register("a", console_domain(), Identity::kernel("x"))
            .unwrap();
        assert_eq!(ns.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
