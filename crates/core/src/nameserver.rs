//! The in-kernel nameserver.
//!
//! "A module that exports an interface explicitly creates a domain for its
//! interface, and exports the domain through an in-kernel nameserver. ...
//! An exporter can register an authorization procedure with the nameserver
//! that will be called with the identity of the importer whenever the
//! interface is imported. This fine-grained control has low cost because
//! the importer, exporter, and authorizer interact through direct procedure
//! calls" (§3.1).

use crate::domain::Domain;
use crate::error::CoreError;
use crate::identity::Identity;
use spin_check::sync::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

/// Decides whether `importer` may import the named interface.
pub type Authorizer = Arc<dyn Fn(&Identity) -> bool + Send + Sync>;

/// A typed capability returned by [`NameServer::import_typed`]: the
/// resolved service handle plus the domain it was exported from.
///
/// Dereferences to `T`, so call sites use the service directly; the
/// domain stays available for further symbol lookups (API v2 replaces the
/// stringly `import(&str) -> Domain` flow, where every caller re-did the
/// downcast by hand).
#[derive(Clone)]
pub struct ServiceRef<T: ?Sized> {
    name: String,
    domain: Domain,
    service: Arc<T>,
}

impl<T: ?Sized> ServiceRef<T> {
    /// The registration name the service resolved through.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The exporting domain (for linking or further lookups).
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The shared service handle.
    pub fn service(&self) -> &Arc<T> {
        &self.service
    }
}

impl<T: ?Sized> std::ops::Deref for ServiceRef<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.service
    }
}

impl<T: ?Sized> std::fmt::Debug for ServiceRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServiceRef<{}>({})",
            std::any::type_name::<T>(),
            self.name
        )
    }
}

struct Registration {
    domain: Domain,
    exporter: Identity,
    authorizer: Option<Authorizer>,
    imports: u64,
    denials: u64,
}

/// The kernel's name → domain registry.
#[derive(Clone, Default)]
pub struct NameServer {
    names: Arc<Mutex<HashMap<String, Registration>>>,
}

impl NameServer {
    /// An empty nameserver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `domain` under `name` with no import restriction.
    pub fn register(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
    ) -> Result<(), CoreError> {
        self.register_with_authorizer(name, domain, exporter, None)
    }

    /// Registers `domain` under `name`, guarding imports with `authorizer`.
    pub fn register_with_authorizer(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
        authorizer: Option<Authorizer>,
    ) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return Err(CoreError::NameExists {
                name: name.to_string(),
            });
        }
        names.insert(
            name.to_string(),
            Registration {
                domain,
                exporter,
                authorizer,
                imports: 0,
                denials: 0,
            },
        );
        Ok(())
    }

    /// Imports the domain registered under `name`, consulting the
    /// exporter's authorizer with the importer's identity.
    ///
    /// Deprecated (API v2): string lookups bypass the interface type ids
    /// that make linking safe — use [`NameServer::import_typed`], which
    /// resolves through `Interface::export::<T>` types instead of names.
    #[deprecated(
        since = "0.5.0",
        note = "use import_typed::<T>() — string lookups bypass interface type ids"
    )]
    pub fn import(&self, name: &str, importer: &Identity) -> Result<Domain, CoreError> {
        self.import_by_name(name, importer)
    }

    /// Shared lookup behind both the deprecated string path and the typed
    /// path once it has picked its unique registration.
    fn import_by_name(&self, name: &str, importer: &Identity) -> Result<Domain, CoreError> {
        let mut names = self.names.lock();
        let reg = names.get_mut(name).ok_or_else(|| CoreError::NameNotFound {
            name: name.to_string(),
        })?;
        if let Some(auth) = &reg.authorizer {
            if !auth(importer) {
                reg.denials += 1;
                return Err(CoreError::AuthorizationDenied {
                    name: name.to_string(),
                    importer: importer.name().to_string(),
                });
            }
        }
        reg.imports += 1;
        Ok(reg.domain.clone())
    }

    /// Imports a service by its *exported type* instead of a registration
    /// string: scans registrations (in sorted-name order) for domains
    /// exporting a symbol of type `T` via `Interface::export::<T>`.
    ///
    /// Exactly one registration may match — zero is
    /// [`CoreError::ServiceNotFound`], several are
    /// [`CoreError::AmbiguousService`] with the sorted candidate names.
    /// The matching exporter's authorizer is consulted (and denials
    /// counted) exactly as for the string path.
    pub fn import_typed<T: Any + Send + Sync>(
        &self,
        importer: &Identity,
    ) -> Result<ServiceRef<T>, CoreError> {
        let tid = TypeId::of::<T>();
        let candidates: Vec<String> = {
            let names = self.names.lock();
            let mut v: Vec<String> = names
                .iter()
                .filter(|(_, r)| r.domain.symbol_of_type(tid).is_some())
                .map(|(n, _)| n.clone())
                .collect();
            v.sort();
            v
        };
        let name = match candidates.as_slice() {
            [] => {
                return Err(CoreError::ServiceNotFound {
                    type_name: std::any::type_name::<T>(),
                })
            }
            [one] => one.clone(),
            _ => {
                return Err(CoreError::AmbiguousService {
                    type_name: std::any::type_name::<T>(),
                    candidates,
                })
            }
        };
        let domain = self.import_by_name(&name, importer)?;
        let service = domain
            .symbol_of_type(tid)
            .ok_or(CoreError::ServiceNotFound {
                type_name: std::any::type_name::<T>(),
            })?
            .get::<T>()?;
        Ok(ServiceRef {
            name,
            domain,
            service,
        })
    }

    /// Removes a registration; only the original exporter may do so.
    pub fn unregister(&self, name: &str, caller: &Identity) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        match names.get(name) {
            Some(reg) if reg.exporter == *caller => {
                names.remove(name);
                Ok(())
            }
            Some(_) => Err(CoreError::AuthorizationDenied {
                name: name.to_string(),
                importer: caller.name().to_string(),
            }),
            None => Err(CoreError::NameNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Removes every registration exported by `exporter` and returns the
    /// revoked names, sorted. This is the quarantine primitive: a domain
    /// that has tripped its failure budget loses its exported interfaces
    /// so no further imports can bind to it.
    pub fn revoke_exports(&self, exporter: &Identity) -> Vec<String> {
        let mut names = self.names.lock();
        let mut revoked: Vec<String> = names
            .iter()
            .filter(|(_, r)| r.exporter == *exporter)
            .map(|(n, _)| n.clone())
            .collect();
        for name in &revoked {
            names.remove(name);
        }
        revoked.sort();
        revoked
    }

    /// All registered names, sorted (diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.names.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// (successful imports, denials) for a name.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.names.lock().get(name).map(|r| (r.imports, r.denials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Interface;

    fn console_domain() -> Domain {
        Domain::create_from_module(
            "console",
            vec![Interface::new("Console").export("version", Arc::new(1u32))],
        )
    }

    #[test]
    fn register_and_import() {
        let ns = NameServer::new();
        ns.register(
            "ConsoleService",
            console_domain(),
            Identity::kernel("console"),
        )
        .unwrap();
        let svc = ns
            .import_typed::<u32>(&Identity::extension("gatekeeper"))
            .unwrap();
        assert_eq!(*svc, 1);
        assert_eq!(svc.name(), "ConsoleService");
        assert_eq!(*svc.domain().get::<u32>("Console", "version").unwrap(), 1);
        assert_eq!(ns.stats("ConsoleService"), Some((1, 0)));
    }

    #[test]
    fn deprecated_string_import_still_resolves() {
        let ns = NameServer::new();
        ns.register(
            "ConsoleService",
            console_domain(),
            Identity::kernel("console"),
        )
        .unwrap();
        #[allow(deprecated)]
        let d = ns
            .import("ConsoleService", &Identity::extension("gatekeeper"))
            .unwrap();
        assert_eq!(*d.get::<u32>("Console", "version").unwrap(), 1);
        assert_eq!(ns.stats("ConsoleService"), Some((1, 0)));
    }

    #[test]
    fn typed_import_reports_missing_and_ambiguous_services() {
        let ns = NameServer::new();
        let who = Identity::kernel("probe");
        let err = ns.import_typed::<u32>(&who).unwrap_err();
        assert!(matches!(err, CoreError::ServiceNotFound { .. }));

        ns.register("B", console_domain(), Identity::kernel("b"))
            .unwrap();
        ns.register("A", console_domain(), Identity::kernel("a"))
            .unwrap();
        match ns.import_typed::<u32>(&who).unwrap_err() {
            CoreError::AmbiguousService { candidates, .. } => {
                assert_eq!(candidates, vec!["A".to_string(), "B".to_string()]);
            }
            other => panic!("expected AmbiguousService, got {other:?}"),
        }
        // Neither candidate was charged an import.
        assert_eq!(ns.stats("A"), Some((0, 0)));
        assert_eq!(ns.stats("B"), Some((0, 0)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let ns = NameServer::new();
        ns.register("X", console_domain(), Identity::kernel("a"))
            .unwrap();
        assert!(matches!(
            ns.register("X", console_domain(), Identity::kernel("b")),
            Err(CoreError::NameExists { .. })
        ));
    }

    #[test]
    fn authorizer_gates_imports() {
        let ns = NameServer::new();
        ns.register_with_authorizer(
            "Device",
            console_domain(),
            Identity::kernel("driver"),
            Some(Arc::new(|who: &Identity| who.is_kernel())),
        )
        .unwrap();
        assert!(ns.import_typed::<u32>(&Identity::kernel("fs")).is_ok());
        let err = ns
            .import_typed::<u32>(&Identity::extension("rogue"))
            .unwrap_err();
        assert!(matches!(err, CoreError::AuthorizationDenied { .. }));
        assert_eq!(ns.stats("Device"), Some((1, 1)));
    }

    #[test]
    fn only_exporter_may_unregister() {
        let ns = NameServer::new();
        let owner = Identity::kernel("console");
        ns.register("C", console_domain(), owner.clone()).unwrap();
        assert!(ns.unregister("C", &Identity::extension("evil")).is_err());
        ns.unregister("C", &owner).unwrap();
        assert!(matches!(
            ns.import_typed::<u32>(&owner),
            Err(CoreError::ServiceNotFound { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let ns = NameServer::new();
        ns.register("b", console_domain(), Identity::kernel("x"))
            .unwrap();
        ns.register("a", console_domain(), Identity::kernel("x"))
            .unwrap();
        assert_eq!(ns.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
