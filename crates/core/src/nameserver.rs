//! The in-kernel nameserver.
//!
//! "A module that exports an interface explicitly creates a domain for its
//! interface, and exports the domain through an in-kernel nameserver. ...
//! An exporter can register an authorization procedure with the nameserver
//! that will be called with the identity of the importer whenever the
//! interface is imported. This fine-grained control has low cost because
//! the importer, exporter, and authorizer interact through direct procedure
//! calls" (§3.1).

use crate::domain::Domain;
use crate::error::CoreError;
use crate::identity::Identity;
use spin_check::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Decides whether `importer` may import the named interface.
pub type Authorizer = Arc<dyn Fn(&Identity) -> bool + Send + Sync>;

struct Registration {
    domain: Domain,
    exporter: Identity,
    authorizer: Option<Authorizer>,
    imports: u64,
    denials: u64,
}

/// The kernel's name → domain registry.
#[derive(Clone, Default)]
pub struct NameServer {
    names: Arc<Mutex<HashMap<String, Registration>>>,
}

impl NameServer {
    /// An empty nameserver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `domain` under `name` with no import restriction.
    pub fn register(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
    ) -> Result<(), CoreError> {
        self.register_with_authorizer(name, domain, exporter, None)
    }

    /// Registers `domain` under `name`, guarding imports with `authorizer`.
    pub fn register_with_authorizer(
        &self,
        name: &str,
        domain: Domain,
        exporter: Identity,
        authorizer: Option<Authorizer>,
    ) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return Err(CoreError::NameExists {
                name: name.to_string(),
            });
        }
        names.insert(
            name.to_string(),
            Registration {
                domain,
                exporter,
                authorizer,
                imports: 0,
                denials: 0,
            },
        );
        Ok(())
    }

    /// Imports the domain registered under `name`, consulting the
    /// exporter's authorizer with the importer's identity.
    pub fn import(&self, name: &str, importer: &Identity) -> Result<Domain, CoreError> {
        let mut names = self.names.lock();
        let reg = names.get_mut(name).ok_or_else(|| CoreError::NameNotFound {
            name: name.to_string(),
        })?;
        if let Some(auth) = &reg.authorizer {
            if !auth(importer) {
                reg.denials += 1;
                return Err(CoreError::AuthorizationDenied {
                    name: name.to_string(),
                    importer: importer.name().to_string(),
                });
            }
        }
        reg.imports += 1;
        Ok(reg.domain.clone())
    }

    /// Removes a registration; only the original exporter may do so.
    pub fn unregister(&self, name: &str, caller: &Identity) -> Result<(), CoreError> {
        let mut names = self.names.lock();
        match names.get(name) {
            Some(reg) if reg.exporter == *caller => {
                names.remove(name);
                Ok(())
            }
            Some(_) => Err(CoreError::AuthorizationDenied {
                name: name.to_string(),
                importer: caller.name().to_string(),
            }),
            None => Err(CoreError::NameNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Removes every registration exported by `exporter` and returns the
    /// revoked names, sorted. This is the quarantine primitive: a domain
    /// that has tripped its failure budget loses its exported interfaces
    /// so no further imports can bind to it.
    pub fn revoke_exports(&self, exporter: &Identity) -> Vec<String> {
        let mut names = self.names.lock();
        let mut revoked: Vec<String> = names
            .iter()
            .filter(|(_, r)| r.exporter == *exporter)
            .map(|(n, _)| n.clone())
            .collect();
        for name in &revoked {
            names.remove(name);
        }
        revoked.sort();
        revoked
    }

    /// All registered names, sorted (diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.names.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// (successful imports, denials) for a name.
    pub fn stats(&self, name: &str) -> Option<(u64, u64)> {
        self.names.lock().get(name).map(|r| (r.imports, r.denials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Interface;

    fn console_domain() -> Domain {
        Domain::create_from_module(
            "console",
            vec![Interface::new("Console").export("version", Arc::new(1u32))],
        )
    }

    #[test]
    fn register_and_import() {
        let ns = NameServer::new();
        ns.register(
            "ConsoleService",
            console_domain(),
            Identity::kernel("console"),
        )
        .unwrap();
        let d = ns
            .import("ConsoleService", &Identity::extension("gatekeeper"))
            .unwrap();
        assert_eq!(*d.get::<u32>("Console", "version").unwrap(), 1);
        assert_eq!(ns.stats("ConsoleService"), Some((1, 0)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let ns = NameServer::new();
        ns.register("X", console_domain(), Identity::kernel("a"))
            .unwrap();
        assert!(matches!(
            ns.register("X", console_domain(), Identity::kernel("b")),
            Err(CoreError::NameExists { .. })
        ));
    }

    #[test]
    fn authorizer_gates_imports() {
        let ns = NameServer::new();
        ns.register_with_authorizer(
            "Device",
            console_domain(),
            Identity::kernel("driver"),
            Some(Arc::new(|who: &Identity| who.is_kernel())),
        )
        .unwrap();
        assert!(ns.import("Device", &Identity::kernel("fs")).is_ok());
        let err = ns
            .import("Device", &Identity::extension("rogue"))
            .unwrap_err();
        assert!(matches!(err, CoreError::AuthorizationDenied { .. }));
        assert_eq!(ns.stats("Device"), Some((1, 1)));
    }

    #[test]
    fn only_exporter_may_unregister() {
        let ns = NameServer::new();
        let owner = Identity::kernel("console");
        ns.register("C", console_domain(), owner.clone()).unwrap();
        assert!(ns.unregister("C", &Identity::extension("evil")).is_err());
        ns.unregister("C", &owner).unwrap();
        assert!(matches!(
            ns.import("C", &owner),
            Err(CoreError::NameNotFound { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let ns = NameServer::new();
        ns.register("b", console_domain(), Identity::kernel("x"))
            .unwrap();
        ns.register("a", console_domain(), Identity::kernel("x"))
            .unwrap();
        assert_eq!(ns.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
