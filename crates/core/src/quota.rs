//! Per-domain resource quotas: overload containment for a multi-tenant
//! kernel.
//!
//! SPIN's protection model isolates extension *namespaces*; nothing in the
//! paper stops a greedy extension from exhausting the *shared* resources —
//! dispatcher bandwidth, mailbox slots, handler virtual time, heap bytes —
//! and collapsing latency for every other domain. This module is the
//! reproduction's answer (in the spirit of Rex's runtime
//! resource-exhaustion defenses and Tock's per-client grants): a
//! per-domain ledger of atomic counter blocks (the same shape as
//! `spin_obs::Accounting`) with declarative [`QuotaSpec`] budgets,
//! enforced at the kernel's existing choke points:
//!
//! * **`Dispatcher::raise` / `raise_batch`** — admission control. An event
//!   bound to a metered domain consults [`QuotaCell::admit`] before any
//!   virtual time is charged; over-budget raises get a typed
//!   [`DispatchError::Throttled`] (or [`DispatchError::Shed`]) instead of
//!   queueing without bound.
//! * **`spin_sal::Mailbox::post`** — bounded per-lane occupancy. A quota
//!   gate refuses posts past the budget; the sender side retries through
//!   [`post_with_backpressure`], charging a doubling, capped virtual-time
//!   penalty per refused attempt (the `net::rpc` backoff shape).
//! * **`sched::executor`** — a window-based virtual-time throttle. A
//!   domain that burns its window budget is *demoted* to a deferred
//!   priority lane ([`QuotaCell::deferred`]) rather than starved; the
//!   next window restores it.
//!
//! Escalation reuses the containment ladder: repeated throttle trips in
//! one window move the domain to **shedding** (deterministic drops with a
//! typed error and counter); repeated sheds move it to **quarantine**.
//! Both transitions are reported through the ledger's escalation sink —
//! [`QuotaLedger::wire_containment`] routes them to the PR-3
//! [`Containment`](crate::fault::Containment) breaker (obs attribution,
//! quarantine purge + export revocation, and a `Core.DomainFault` raise
//! that the PR-7 `SwapSupervisor` can answer with a degraded-mode
//! fallback swap).
//!
//! **The cost-model invariant.** An event with no quota cell bound pays
//! one relaxed atomic load per raise (the `OnceLock` presence check) and
//! *nothing* touches the virtual clock; Tables 2/5/6 are byte-identical
//! with the machinery compiled in but unarmed (`quota_invariance` in
//! `spin-bench`). Every armed decision — window rolls, trips, shedding,
//! demotion — is a pure function of virtual-time state, so 1/2/4-worker
//! multicore runs stay byte-identical (`s9_overload`).

use crate::error::DispatchError;
use crate::fault::Containment;
use crate::hooks::HookSlot;
use crate::identity::Identity;
use spin_check::sync::{Arc, Mutex, OnceLock, Weak};
use spin_check::sync::{AtomicU64, Ordering};
use spin_fault::{FaultHook, Injection};
use spin_obs::{Obs, ObsHook, TraceKind};
use spin_sal::{Clock, Mailbox, Nanos};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Declarative per-domain budgets. A field of `0` means *unlimited* (that
/// axis is unmetered); the default spec meters nothing, so registering a
/// domain is free until a budget is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuotaSpec {
    /// Concurrent raises admitted (in-flight between admission and
    /// completion).
    pub max_in_flight: u64,
    /// Parked hold-queue entries the domain may accumulate behind a
    /// quiesce gate before admission refuses further parking.
    pub max_held: u64,
    /// Pending mailbox envelopes per lane owned by the domain.
    pub max_lane_occupancy: u64,
    /// The budget window (virtual nanoseconds). `0` disables window
    /// accounting (and with it shedding escalation and executor
    /// demotion).
    pub window: Nanos,
    /// Cumulative synchronous handler virtual time the domain may charge
    /// per window.
    pub window_vt_budget: Nanos,
    /// Live `spin_rt` heap bytes (read through the bound probe) above
    /// which admission refuses.
    pub max_heap_bytes: u64,
    /// Throttle trips within one window that escalate the domain to
    /// shedding. `0` = never shed.
    pub shed_after_trips: u32,
    /// Sheds while shedding that escalate to quarantine. `0` = never
    /// quarantine.
    pub quarantine_after_sheds: u32,
    /// The deferred executor lane an over-window domain is demoted to.
    pub deferred_priority: u8,
}

/// Where a domain sits on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaState {
    /// Under budget (or merely throttling individual raises).
    Normal,
    /// Over the trip budget: every raise is deterministically dropped
    /// with [`DispatchError::Shed`] until the window rolls.
    Shedding,
    /// Past the shed budget: dropped until a supervisor calls
    /// [`QuotaCell::release`].
    Quarantined,
}

/// How an admission refusal surfaces to the raiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaVerdict {
    /// Over budget; retry after a release or window roll.
    Throttled,
    /// Shedding or quarantined; the raise was deliberately dropped.
    Shed,
}

impl QuotaVerdict {
    /// Maps the verdict to the dispatcher's typed error.
    pub fn into_error(self, event: &str, domain: &str) -> DispatchError {
        match self {
            QuotaVerdict::Throttled => DispatchError::Throttled {
                name: event.to_string(),
                domain: domain.to_string(),
            },
            QuotaVerdict::Shed => DispatchError::Shed {
                name: event.to_string(),
                domain: domain.to_string(),
            },
        }
    }
}

/// One escalation crossing, delivered to the ledger's sink.
#[derive(Debug, Clone)]
pub struct QuotaBreach {
    /// The metered domain's registered name.
    pub domain: String,
    /// Virtual time of the crossing.
    pub at: Nanos,
    /// The state entered ([`QuotaState::Shedding`] or
    /// [`QuotaState::Quarantined`]).
    pub entered: QuotaState,
}

/// The ledger's escalation callback, invoked with no quota locks held.
pub type EscalationSink = Arc<dyn Fn(&QuotaBreach) + Send + Sync>;

/// A point-in-time copy of one domain's ledger counters. The
/// reconciliation identity the proptest and the `s9_overload` bench hold
/// exact: `attempts == admitted + throttled + shed + held` and
/// `admitted == completed + in_flight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuotaSnapshot {
    /// Raise attempts that reached the admission gate or the hold queue.
    pub attempts: u64,
    /// Attempts admitted to dispatch.
    pub admitted: u64,
    /// Admitted dispatches that completed (released their slot).
    pub completed: u64,
    /// Attempts refused with [`QuotaVerdict::Throttled`].
    pub throttled: u64,
    /// Attempts refused with [`QuotaVerdict::Shed`].
    pub shed: u64,
    /// Attempts parked in a quiesce hold queue (replays re-enter as fresh
    /// attempts).
    pub held: u64,
    /// Throttle trips charged to the ladder.
    pub trips: u64,
    /// Escalation crossings (shedding or quarantine entries).
    pub breaches: u64,
    /// Currently admitted, not yet completed.
    pub in_flight: u64,
    /// Total synchronous dispatch virtual time charged.
    pub vt_charged: Nanos,
    /// Mailbox posts refused by the occupancy gate.
    pub mail_refused: u64,
    /// Mailbox posts abandoned after the backoff budget.
    pub mail_shed: u64,
}

struct Window {
    start: Nanos,
    vt: Nanos,
    trips: u32,
    sheds: u32,
    state: QuotaState,
}

/// One domain's resource ledger: the atomic counter block plus the
/// windowed escalation state. Created by [`QuotaLedger::register`]; bound
/// to events with `Event::bind_quota`.
pub struct QuotaCell {
    name: Arc<str>,
    ord: u32,
    spec: QuotaSpec,
    in_flight: AtomicU64,
    window: Mutex<Window>,
    attempts: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    throttled: AtomicU64,
    shed: AtomicU64,
    held: AtomicU64,
    trips: AtomicU64,
    breaches: AtomicU64,
    vt_charged: AtomicU64,
    mail_refused: AtomicU64,
    mail_shed: AtomicU64,
    /// Live-bytes probe for the heap budget (absent = axis unmetered).
    heap_probe: OnceLock<Arc<dyn Fn() -> u64 + Send + Sync>>,
    ledger: Weak<LedgerInner>,
}

impl QuotaCell {
    /// The domain name this cell meters.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's dense ledger ordinal (stamped into `QuotaBreach` trace
    /// records).
    pub fn ord(&self) -> u32 {
        self.ord
    }

    /// The budgets this cell enforces.
    pub fn spec(&self) -> &QuotaSpec {
        &self.spec
    }

    /// Binds the live-heap-bytes probe (typically
    /// `move || heap.live_bytes() as u64`). One-shot.
    pub fn bind_heap_probe(&self, probe: Arc<dyn Fn() -> u64 + Send + Sync>) {
        let _ = self.heap_probe.set(probe);
    }

    /// Admission control for one raise at virtual time `now`. `Ok(())`
    /// takes an in-flight slot the caller must release with
    /// [`QuotaCell::complete`]; `Err` is a refusal already counted on the
    /// ladder. Pure function of virtual-time state — no clock charge.
    pub fn admit(&self, now: Nanos) -> Result<(), QuotaVerdict> {
        self.attempts.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                                                       // The `core.quota` injection site: a Fail is a spurious throttle,
                                                       // a Delay holds the window's charge longer (delayed budget
                                                       // release), a Panic is contained right here at the admission edge
                                                       // and then counted as a throttle.
        let mut forced = false;
        if let Some(hook) = self.fault_hook() {
            match hook.draw() {
                Some(Injection::Fail) => forced = true,
                Some(Injection::Panic) => {
                    let _ = catch_unwind(AssertUnwindSafe(|| hook.fire_panic()));
                    forced = true;
                }
                Some(Injection::Delay(ns)) => {
                    let mut w = self.window.lock();
                    w.vt = w.vt.saturating_add(ns);
                }
                None => {}
            }
        }
        let decision = {
            let mut w = self.window.lock();
            self.roll(&mut w, now);
            if w.state != QuotaState::Normal || forced || self.over_budget(&w) {
                Some(self.ladder_refuse(&mut w))
            } else {
                // Take the in-flight slot by CAS so a racing release
                // (`complete`) can never be double-spent past the budget:
                // a stale load either re-loops or refuses, never admits
                // over the cap.
                let max = self.spec.max_in_flight;
                let took = loop {
                    // ordering: Acquire — pairs with complete's Release sub; an observed release implies its dispatch settled.
                    let cur = self.in_flight.load(Ordering::Acquire);
                    if max > 0 && cur >= max {
                        break false;
                    }
                    if self
                        .in_flight
                        // ordering: AcqRel — the slot take is both an acquire of prior releases and a publication to racing admits.
                        .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break true;
                    }
                };
                if took {
                    None
                } else {
                    Some(self.ladder_refuse(&mut w))
                }
            }
        };
        match decision {
            None => {
                self.admitted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                Ok(())
            }
            Some((verdict, entered)) => {
                self.settle_refusal(verdict, entered, now);
                Err(verdict)
            }
        }
    }

    /// Releases the in-flight slot taken by a successful [`admit`] and
    /// charges `vt` of synchronous dispatch virtual time to the window.
    ///
    /// [`admit`]: QuotaCell::admit
    pub fn complete(&self, vt: Nanos) {
        self.completed.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.vt_charged.fetch_add(vt, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        {
            let mut w = self.window.lock();
            w.vt = w.vt.saturating_add(vt);
        }
        // ordering: Release — the budget release publishes the settled dispatch before an admit's Acquire can reuse the slot.
        self.in_flight.fetch_sub(1, Ordering::Release);
    }

    /// Books one raise parked in a quiesce hold queue (it replays as a
    /// fresh attempt on resume).
    pub fn note_held(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        self.held.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
    }

    /// Whether the hold-queue budget refuses parking another raise on top
    /// of `queued` already-parked entries.
    pub fn hold_over_budget(&self, queued: usize) -> bool {
        self.spec.max_held > 0 && queued as u64 >= self.spec.max_held
    }

    /// Books an admission-stage refusal that happened *outside*
    /// [`admit`] (the hold-queue budget check): counts the attempt and
    /// walks the same ladder.
    ///
    /// [`admit`]: QuotaCell::admit
    pub fn refuse(&self, now: Nanos) -> QuotaVerdict {
        self.attempts.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        let (verdict, entered) = {
            let mut w = self.window.lock();
            self.roll(&mut w, now);
            self.ladder_refuse(&mut w)
        };
        self.settle_refusal(verdict, entered, now);
        verdict
    }

    /// Executor-side throttle probe: `true` while the domain should run
    /// on its deferred lane (over the window's virtual-time budget, or
    /// shedding/quarantined). Pure function of virtual-time state.
    pub fn deferred(&self, now: Nanos) -> bool {
        let mut w = self.window.lock();
        self.roll(&mut w, now);
        w.state != QuotaState::Normal
            || (self.spec.window_vt_budget > 0 && w.vt >= self.spec.window_vt_budget)
    }

    /// Mailbox-gate probe: whether a post on a lane already holding
    /// `pending` envelopes is admitted. Refusals are counted.
    pub fn admit_post(&self, pending: u64) -> bool {
        if self.spec.max_lane_occupancy > 0 && pending >= self.spec.max_lane_occupancy {
            self.mail_refused.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            false
        } else {
            true
        }
    }

    /// Books a post abandoned after the sender's backoff budget.
    pub fn note_mail_shed(&self) {
        self.mail_shed.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
    }

    /// The ladder position at virtual time `now`.
    pub fn state(&self, now: Nanos) -> QuotaState {
        let mut w = self.window.lock();
        self.roll(&mut w, now);
        w.state
    }

    /// Supervisor override: lifts a quarantine (or shedding) back to
    /// normal and restarts the window at `now`.
    pub fn release(&self, now: Nanos) {
        let mut w = self.window.lock();
        w.state = QuotaState::Normal;
        w.start = now;
        w.vt = 0;
        w.trips = 0;
        w.sheds = 0;
    }

    /// A copy of the counters (see [`QuotaSnapshot`] for the identity).
    pub fn snapshot(&self) -> QuotaSnapshot {
        QuotaSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            admitted: self.admitted.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            completed: self.completed.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            throttled: self.throttled.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            shed: self.shed.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            held: self.held.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            trips: self.trips.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            breaches: self.breaches.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            in_flight: self.in_flight.load(Ordering::Acquire), // ordering: Acquire — pairs with complete's Release so a settled dispatch is visible before its slot reads free.
            vt_charged: self.vt_charged.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            mail_refused: self.mail_refused.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            mail_shed: self.mail_shed.load(Ordering::Relaxed), // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
    }

    fn fault_hook(&self) -> Option<FaultHook> {
        self.ledger.upgrade().and_then(|l| l.faults.get().cloned())
    }

    /// Rolls the window forward to cover `now`, resetting the per-window
    /// budgets and decaying shedding back to normal (demote, don't
    /// starve). Quarantine never decays — only [`release`] lifts it.
    ///
    /// [`release`]: QuotaCell::release
    fn roll(&self, w: &mut Window, now: Nanos) {
        let window = self.spec.window;
        if window == 0 || now < w.start + window {
            return;
        }
        let elapsed = (now - w.start) / window;
        w.start += elapsed * window;
        w.vt = 0;
        w.trips = 0;
        if w.state == QuotaState::Shedding {
            w.state = QuotaState::Normal;
            w.sheds = 0;
        }
    }

    fn over_budget(&self, w: &Window) -> bool {
        if self.spec.window_vt_budget > 0 && w.vt >= self.spec.window_vt_budget {
            return true;
        }
        if self.spec.max_heap_bytes > 0 {
            if let Some(probe) = self.heap_probe.get() {
                if probe() > self.spec.max_heap_bytes {
                    return true;
                }
            }
        }
        false
    }

    /// One step down the ladder, under the window lock: returns the
    /// verdict and the state entered (if this refusal crossed a
    /// boundary).
    fn ladder_refuse(&self, w: &mut Window) -> (QuotaVerdict, Option<QuotaState>) {
        match w.state {
            QuotaState::Quarantined => (QuotaVerdict::Shed, None),
            QuotaState::Shedding => {
                w.sheds += 1;
                if self.spec.quarantine_after_sheds > 0
                    && w.sheds >= self.spec.quarantine_after_sheds
                {
                    w.state = QuotaState::Quarantined;
                    (QuotaVerdict::Shed, Some(QuotaState::Quarantined))
                } else {
                    (QuotaVerdict::Shed, None)
                }
            }
            QuotaState::Normal => {
                w.trips += 1;
                if self.spec.shed_after_trips > 0 && w.trips >= self.spec.shed_after_trips {
                    w.state = QuotaState::Shedding;
                    w.sheds = 0;
                    (QuotaVerdict::Throttled, Some(QuotaState::Shedding))
                } else {
                    (QuotaVerdict::Throttled, None)
                }
            }
        }
    }

    /// Counter, trace and escalation bookkeeping for one refusal; runs
    /// with no quota locks held.
    fn settle_refusal(&self, verdict: QuotaVerdict, entered: Option<QuotaState>, now: Nanos) {
        match verdict {
            QuotaVerdict::Throttled => {
                self.throttled.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
                self.trips.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
            QuotaVerdict::Shed => {
                self.shed.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
            }
        }
        let ledger = self.ledger.upgrade();
        if let Some(obs) = ledger.as_ref().and_then(|l| l.obs.get()) {
            let level = match entered {
                Some(QuotaState::Quarantined) => 3,
                Some(_) => 2,
                None => 1,
            };
            obs.trace(TraceKind::QuotaBreach, self.ord as u64, level);
        }
        let Some(entered) = entered else { return };
        self.breaches.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        if let Some(sink) = ledger.as_ref().and_then(|l| l.escalation.get()) {
            sink(&QuotaBreach {
                domain: self.name.to_string(),
                at: now,
                entered,
            });
        }
    }
}

struct CellRegistry {
    list: Vec<Arc<QuotaCell>>,
    by_name: HashMap<String, u32>,
}

struct LedgerInner {
    cells: Mutex<CellRegistry>,
    obs: OnceLock<ObsHook>,
    escalation: OnceLock<EscalationSink>,
    /// The `core.quota` fault-injection site (spurious throttles,
    /// delayed releases).
    faults: HookSlot<FaultHook>,
}

/// The kernel-wide quota registry: one [`QuotaCell`] per metered domain,
/// dense and idempotent like `spin_obs::Accounting`. Cheap to clone.
#[derive(Clone)]
pub struct QuotaLedger {
    inner: Arc<LedgerInner>,
}

impl Default for QuotaLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl QuotaLedger {
    /// An empty ledger.
    pub fn new() -> QuotaLedger {
        QuotaLedger {
            inner: Arc::new(LedgerInner {
                cells: Mutex::new(CellRegistry {
                    list: Vec::new(),
                    by_name: HashMap::new(),
                }),
                obs: OnceLock::new(),
                escalation: OnceLock::new(),
                faults: HookSlot::new(),
            }),
        }
    }

    /// Registers (or finds) the cell metering `name`. Idempotent: a
    /// second registration returns the existing cell and ignores the new
    /// spec, matching `Accounting::register`.
    pub fn register(&self, name: &str, spec: QuotaSpec) -> Arc<QuotaCell> {
        let mut reg = self.inner.cells.lock();
        if let Some(&ord) = reg.by_name.get(name) {
            return reg.list[ord as usize].clone();
        }
        let ord = reg.list.len() as u32;
        let cell = Arc::new(QuotaCell {
            name: Arc::from(name),
            ord,
            spec,
            in_flight: AtomicU64::new(0),
            window: Mutex::new(Window {
                start: 0,
                vt: 0,
                trips: 0,
                sheds: 0,
                state: QuotaState::Normal,
            }),
            attempts: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            held: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            breaches: AtomicU64::new(0),
            vt_charged: AtomicU64::new(0),
            mail_refused: AtomicU64::new(0),
            mail_shed: AtomicU64::new(0),
            heap_probe: OnceLock::new(),
            ledger: Arc::downgrade(&self.inner),
        });
        reg.by_name.insert(name.to_string(), ord);
        reg.list.push(cell.clone());
        drop(reg);
        if let Some(obs) = self.inner.obs.get() {
            Self::register_gauges(obs.obs(), &cell);
        }
        cell
    }

    /// The cell metering `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<QuotaCell>> {
        let reg = self.inner.cells.lock();
        reg.by_name
            .get(name)
            .map(|&ord| reg.list[ord as usize].clone())
    }

    /// Every registered cell, in registration order.
    pub fn cells(&self) -> Vec<Arc<QuotaCell>> {
        self.inner.cells.lock().list.clone()
    }

    /// Installs the escalation sink. One-shot.
    pub fn set_escalation_sink(&self, sink: EscalationSink) {
        let _ = self.inner.escalation.set(sink);
    }

    /// Wires the `core.quota` fault-injection site. One-shot; with the
    /// plan disabled each metered admission pays one relaxed load.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        let _ = self.inner.faults.set(hook);
    }

    /// Wires observability: `QuotaBreach` trace records under the
    /// `quota` domain, plus per-domain `spin_quota_*` gauges for every
    /// cell (current and future). One-shot; charges zero virtual time.
    pub fn wire_obs(&self, obs: &Obs) {
        if self.inner.obs.set(obs.domain("quota")).is_err() {
            return;
        }
        for cell in self.cells() {
            Self::register_gauges(obs, &cell);
        }
    }

    fn register_gauges(obs: &Obs, cell: &Arc<QuotaCell>) {
        type Read = fn(&QuotaCell) -> u64;
        let gauges: [(&str, Read); 6] = [
            ("quota_in_flight", |c| c.snapshot().in_flight),
            ("quota_held", |c| c.snapshot().held),
            ("quota_shed", |c| c.snapshot().shed),
            ("quota_throttle_trips", |c| c.snapshot().trips),
            ("quota_mail_refused", |c| c.snapshot().mail_refused),
            ("quota_breaches", |c| c.snapshot().breaches),
        ];
        for (metric, read) in gauges {
            let cell = cell.clone();
            obs.register_gauge(
                &format!("{}{{domain=\"{}\"}}", metric, cell.name()),
                move || read(&cell),
            );
        }
    }

    /// Routes escalations into the PR-3 containment ladder: a shedding
    /// domain is attributed an external fault and `Core.DomainFault` is
    /// raised (so a supervisor — e.g. the PR-7 `SwapSupervisor` — can
    /// fallback-swap it to a degraded build); a quarantined domain is
    /// additionally purged from the dispatcher and its exports revoked.
    /// One-shot (installs the escalation sink).
    pub fn wire_containment(&self, containment: &Arc<Containment>) {
        let containment = containment.clone();
        self.set_escalation_sink(Arc::new(move |breach| {
            let who = Identity::extension(&breach.domain);
            containment.report_overload(&who, breach.at, breach.entered == QuotaState::Quarantined);
        }));
    }

    /// Installs the per-lane occupancy gate on a mailbox: posts on a lane
    /// assigned to a metered domain are refused past that domain's
    /// `max_lane_occupancy`. Unassigned lanes are never refused.
    pub fn install_mailbox_gate(&self, mailbox: &Mailbox, lanes: Vec<(u64, Arc<QuotaCell>)>) {
        let map: HashMap<u64, Arc<QuotaCell>> = lanes.into_iter().collect();
        mailbox.set_quota_gate(move |lane, pending| match map.get(&lane) {
            Some(cell) => cell.admit_post(pending),
            None => true,
        });
    }
}

/// Sender-side deterministic backpressure for a quota-gated mailbox lane:
/// the capped doubling backoff of `net::rpc`, in virtual time.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Penalty charged for the first refused attempt.
    pub base_penalty: Nanos,
    /// Penalties double per refusal up to this cap.
    pub max_penalty: Nanos,
    /// Post attempts (initial + retries) before the post is shed.
    pub attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_penalty: 50_000,   // 50 µs
            max_penalty: 1_000_000, // 1 ms
            attempts: 4,
        }
    }
}

/// Outcome of [`post_with_backpressure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOutcome {
    /// The envelope was posted on attempt `attempts` (1-based).
    Posted { attempts: u32 },
    /// Every attempt found the lane over budget (or the mailbox dropped
    /// the envelope); counted in [`QuotaSnapshot::mail_shed`].
    Shed { attempts: u32 },
}

/// Posts `action` for delivery `deliver_gap` after the current virtual
/// time, honouring the domain's lane-occupancy budget with capped
/// exponential backoff: each refused attempt charges the *sender* a
/// doubling virtual-time penalty (the `net::rpc` retry shape) and
/// re-probes. Deterministic: the outcome is a pure function of virtual
/// time and mailbox state.
pub fn post_with_backpressure(
    cell: &QuotaCell,
    clock: &Clock,
    mailbox: &Mailbox,
    deliver_gap: Nanos,
    lane: u64,
    policy: BackoffPolicy,
    action: impl FnOnce(Nanos) + Send + 'static,
) -> PostOutcome {
    let attempts = policy.attempts.max(1);
    let mut penalty = policy.base_penalty;
    let mut action = Some(action);
    for attempt in 1..=attempts {
        let pending = mailbox.lane_pending(lane);
        let admit = cell.spec.max_lane_occupancy == 0 || pending < cell.spec.max_lane_occupancy;
        if admit {
            let a = action.take().expect("action unconsumed until first post");
            if mailbox.post(clock.now() + deliver_gap, lane, a) {
                return PostOutcome::Posted { attempts: attempt };
            }
            // The mailbox's own hook (fault injection) or the gate
            // dropped it; the envelope is gone — shed.
            cell.note_mail_shed();
            return PostOutcome::Shed { attempts: attempt };
        }
        // Refused: the sender pays the penalty and retries later.
        cell.mail_refused.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        clock.advance(penalty);
        penalty = (penalty * 2).min(policy.max_penalty.max(policy.base_penalty));
    }
    cell.note_mail_shed();
    PostOutcome::Shed { attempts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metered(spec: QuotaSpec) -> (QuotaLedger, Arc<QuotaCell>) {
        let ledger = QuotaLedger::new();
        let cell = ledger.register("tenant", spec);
        (ledger, cell)
    }

    #[test]
    fn in_flight_budget_throttles_and_releases() {
        let (_l, cell) = metered(QuotaSpec {
            max_in_flight: 2,
            ..QuotaSpec::default()
        });
        assert_eq!(cell.admit(0), Ok(()));
        assert_eq!(cell.admit(0), Ok(()));
        assert_eq!(cell.admit(0), Err(QuotaVerdict::Throttled));
        cell.complete(10);
        assert_eq!(cell.admit(0), Ok(()));
        let s = cell.snapshot();
        assert_eq!(s.attempts, 4);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.throttled, 1);
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);
    }

    #[test]
    fn window_budget_rolls_on_virtual_time() {
        let (_l, cell) = metered(QuotaSpec {
            window: 1_000,
            window_vt_budget: 100,
            ..QuotaSpec::default()
        });
        assert_eq!(cell.admit(0), Ok(()));
        cell.complete(150); // over the window budget
        assert_eq!(cell.admit(10), Err(QuotaVerdict::Throttled));
        // The next window restores the budget.
        assert_eq!(cell.admit(1_000), Ok(()));
        cell.complete(1);
    }

    #[test]
    fn ladder_escalates_throttle_to_shed_to_quarantine() {
        let (_l, cell) = metered(QuotaSpec {
            max_in_flight: 1,
            window: 1_000_000,
            shed_after_trips: 2,
            quarantine_after_sheds: 2,
            ..QuotaSpec::default()
        });
        assert_eq!(cell.admit(0), Ok(())); // holds the only slot
        assert_eq!(cell.admit(1), Err(QuotaVerdict::Throttled)); // trip 1
        assert_eq!(cell.state(1), QuotaState::Normal);
        assert_eq!(cell.admit(2), Err(QuotaVerdict::Throttled)); // trip 2 → shedding
        assert_eq!(cell.state(2), QuotaState::Shedding);
        assert_eq!(cell.admit(3), Err(QuotaVerdict::Shed)); // shed 1
        assert_eq!(cell.admit(4), Err(QuotaVerdict::Shed)); // shed 2 → quarantine
        assert_eq!(cell.state(4), QuotaState::Quarantined);
        // Quarantine does not decay with the window.
        assert_eq!(cell.admit(5_000_000), Err(QuotaVerdict::Shed));
        cell.release(5_000_000);
        assert_eq!(cell.state(5_000_000), QuotaState::Normal);
        let s = cell.snapshot();
        assert_eq!(s.throttled, 2);
        assert_eq!(s.shed, 3);
        assert_eq!(s.breaches, 2);
        assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);
    }

    #[test]
    fn shedding_decays_when_the_window_rolls() {
        let (_l, cell) = metered(QuotaSpec {
            window: 1_000,
            window_vt_budget: 10,
            shed_after_trips: 1,
            ..QuotaSpec::default()
        });
        assert_eq!(cell.admit(0), Ok(()));
        cell.complete(50);
        assert_eq!(cell.admit(1), Err(QuotaVerdict::Throttled)); // trip → shedding
        assert_eq!(cell.state(2), QuotaState::Shedding);
        assert!(cell.deferred(2));
        assert_eq!(cell.state(1_500), QuotaState::Normal, "window roll decays");
        assert!(!cell.deferred(1_500));
    }

    #[test]
    fn heap_probe_gates_admission() {
        let (_l, cell) = metered(QuotaSpec {
            max_heap_bytes: 1_000,
            ..QuotaSpec::default()
        });
        let live = Arc::new(AtomicU64::new(0));
        let l2 = live.clone();
        cell.bind_heap_probe(Arc::new(move || l2.load(Ordering::Relaxed))); // ordering: Relaxed — test plumbing; the assert sequencing is the sync.
        assert_eq!(cell.admit(0), Ok(()));
        cell.complete(0);
        live.store(2_000, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the assert sequencing is the sync.
        assert_eq!(cell.admit(1), Err(QuotaVerdict::Throttled));
    }

    #[test]
    fn backpressure_charges_capped_doubling_penalties() {
        let (_l, cell) = metered(QuotaSpec {
            max_lane_occupancy: 1,
            ..QuotaSpec::default()
        });
        let clock = Clock::new();
        let mb = Mailbox::new();
        let policy = BackoffPolicy {
            base_penalty: 10,
            max_penalty: 30,
            attempts: 3,
        };
        assert_eq!(
            post_with_backpressure(&cell, &clock, &mb, 5, 7, policy, |_| {}),
            PostOutcome::Posted { attempts: 1 }
        );
        // Lane full: 3 refused probes charge 10 + 20 + 30 (capped) ns.
        let before = clock.now();
        assert_eq!(
            post_with_backpressure(&cell, &clock, &mb, 5, 7, policy, |_| {}),
            PostOutcome::Shed { attempts: 3 }
        );
        assert_eq!(clock.now() - before, 60);
        let s = cell.snapshot();
        assert_eq!(s.mail_refused, 3);
        assert_eq!(s.mail_shed, 1);
        // Draining the lane releases the budget.
        let _ = mb.drain();
        assert_eq!(
            post_with_backpressure(&cell, &clock, &mb, 5, 7, policy, |_| {}),
            PostOutcome::Posted { attempts: 1 }
        );
    }

    #[test]
    fn ledger_registration_is_dense_and_idempotent() {
        let ledger = QuotaLedger::new();
        let a = ledger.register("a", QuotaSpec::default());
        let b = ledger.register("b", QuotaSpec::default());
        let a2 = ledger.register(
            "a",
            QuotaSpec {
                max_in_flight: 99,
                ..QuotaSpec::default()
            },
        );
        assert_eq!(a.ord(), 0);
        assert_eq!(b.ord(), 1);
        assert_eq!(a2.ord(), 0);
        assert_eq!(a2.spec().max_in_flight, 0, "second spec ignored");
        assert_eq!(ledger.cells().len(), 2);
        assert!(ledger.get("b").is_some());
        assert!(ledger.get("c").is_none());
    }
}
