//! Fault containment policy: the circuit breaker and domain quarantine.
//!
//! The dispatcher (see `dispatch.rs`) turns handler panics and time-bound
//! overruns into typed [`HandlerFault`] records and hands them to a fault
//! sink. This module is the standard sink: a per-handler circuit breaker
//! with a failure budget, escalating to per-domain quarantine.
//!
//! The units are deliberate and mirror the paper's trust structure:
//!
//! * **containment unit = handler** — one faulting handler never takes
//!   down the raise, its siblings, or the kernel;
//! * **recovery unit = domain** — a handler that keeps faulting (N
//!   strikes inside a virtual-time window) is uninstalled; a domain whose
//!   handlers keep tripping is *quarantined*: the dispatcher drops every
//!   handler it installed (rebuild-and-swap, the same path as uninstall)
//!   and the nameserver revokes its exported interfaces;
//! * **supervision via events** — every trip raises `Core.DomainFault`,
//!   dogfooding the dispatcher exactly like `spin-obs` does for
//!   `Obs.Snapshot`: a supervisor extension installs a handler to log,
//!   reinstall a fixed domain, or make the unload permanent.
//!
//! Nothing here advances the virtual clock on the fault-free path; the
//! breaker only runs when a fault has already been delivered.

use crate::dispatch::{Dispatcher, Event, HandlerId};
use crate::identity::Identity;
use crate::nameserver::NameServer;
use spin_check::sync::{Arc, OnceLock, Weak};
use spin_check::sync::{Mutex, Ordering};
use spin_obs::Obs;
use spin_sal::Nanos;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// What went wrong inside one handler invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The handler panicked and the unwind was contained.
    Panic {
        /// Best-effort panic message.
        message: String,
    },
    /// The handler exceeded its `time_bound`: either its result was
    /// discarded (synchronous), or the executor aborted its strand at the
    /// deadline (asynchronous).
    TimeBound {
        /// The constraint it was installed under.
        bound: Nanos,
        /// Virtual time it actually consumed.
        elapsed: Nanos,
    },
}

/// One contained handler fault, as delivered to the dispatcher's sink.
#[derive(Debug, Clone)]
pub struct HandlerFault {
    /// The event being raised.
    pub event: String,
    /// The event's dispatcher-internal id.
    pub event_id: u64,
    /// The faulting handler.
    pub handler: HandlerId,
    /// Who installed it — the domain the fault is attributed to.
    pub installer: Identity,
    /// Panic or time-bound overrun.
    pub kind: FaultKind,
    /// Virtual time of delivery (read, never advanced).
    pub at: Nanos,
}

/// The dispatcher's fault notification callback. Invoked with no
/// dispatcher locks held.
pub type FaultSink = Arc<dyn Fn(&HandlerFault) + Send + Sync>;

/// Panic payload used by the executor to unwind a strand that ran past
/// its virtual-time deadline. The dispatcher's async containment wrapper
/// recognizes it and books an abort rather than a fault.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineExceeded {
    /// The virtual time the deadline was set for.
    pub deadline: Nanos,
}

/// The failure budget: how much misbehaviour a handler gets before the
/// breaker trips, and how many trips a domain gets before quarantine.
#[derive(Debug, Clone, Copy)]
pub struct ContainmentPolicy {
    /// Faults within `window` that trip the breaker (uninstalling the
    /// handler).
    pub strikes: u32,
    /// The virtual-time window the strikes must fall in.
    pub window: Nanos,
    /// Breaker trips, across all of a domain's handlers, that quarantine
    /// the domain.
    pub trips_to_quarantine: u32,
}

impl Default for ContainmentPolicy {
    fn default() -> Self {
        ContainmentPolicy {
            strikes: 3,
            window: 1_000_000_000, // one virtual second
            trips_to_quarantine: 2,
        }
    }
}

/// Payload of the `Core.DomainFault` event, raised on every breaker trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainFaultInfo {
    /// The faulting domain (the handler installer's name).
    pub domain: String,
    /// Cumulative trips charged to the domain, this one included.
    pub trips: u32,
    /// Virtual time of the trip.
    pub at: Nanos,
    /// Whether this trip crossed the quarantine threshold.
    pub quarantined: bool,
}

#[derive(Default)]
struct BreakerState {
    /// Fault timestamps per handler, pruned to the policy window.
    strikes: HashMap<HandlerId, VecDeque<Nanos>>,
    /// Breaker trips per domain name.
    trips: HashMap<String, u32>,
    /// Currently quarantined domain names.
    quarantined: BTreeSet<String>,
    /// Total faults delivered (diagnostics).
    faults_seen: u64,
}

/// The standard fault sink: circuit breaker plus quarantine. Create with
/// [`Containment::install`]; the kernel offers
/// [`install_fault_containment`](crate::kernel::Kernel::install_fault_containment)
/// as a convenience that wires the nameserver too.
pub struct Containment {
    dispatcher: Dispatcher,
    nameserver: Option<NameServer>,
    policy: ContainmentPolicy,
    domain_fault: Event<DomainFaultInfo, ()>,
    state: Mutex<BreakerState>,
    /// Per-domain fault attribution for `/metrics`, if wired.
    obs: OnceLock<Obs>,
}

impl Containment {
    /// Installs the breaker as `dispatcher`'s fault sink, defines the
    /// `Core.DomainFault` event (with a no-op primary so it is always
    /// raisable) and, when a nameserver is given, arms export revocation
    /// for quarantined domains.
    pub fn install(
        dispatcher: &Dispatcher,
        nameserver: Option<&NameServer>,
        policy: ContainmentPolicy,
    ) -> Arc<Containment> {
        let (domain_fault, owner) =
            dispatcher.define::<DomainFaultInfo, ()>("Core.DomainFault", Identity::kernel("core"));
        owner
            .set_primary(|_| ())
            .expect("freshly defined Core.DomainFault accepts a primary");
        let containment = Arc::new(Containment {
            dispatcher: dispatcher.clone(),
            nameserver: nameserver.cloned(),
            policy,
            domain_fault,
            state: Mutex::new(BreakerState::default()),
            obs: OnceLock::new(),
        });
        // Weak: the dispatcher holds the sink, the containment holds the
        // dispatcher — a strong capture would leak the pair.
        let weak: Weak<Containment> = Arc::downgrade(&containment);
        dispatcher.set_fault_sink(Arc::new(move |fault| {
            if let Some(c) = weak.upgrade() {
                c.on_fault(fault);
            }
        }));
        containment
    }

    /// Wires per-domain fault attribution: every delivered fault bumps the
    /// installer domain's `faults` counter in the obs accounting (and so
    /// the `/metrics` route). One-shot.
    pub fn set_obs(&self, obs: &Obs) {
        let _ = self.obs.set(obs.clone());
    }

    /// The `Core.DomainFault` event — supervisors install handlers here.
    pub fn domain_fault_event(&self) -> &Event<DomainFaultInfo, ()> {
        &self.domain_fault
    }

    /// Whether `domain` is quarantined.
    pub fn is_quarantined(&self, domain: &str) -> bool {
        self.state.lock().quarantined.contains(domain)
    }

    /// Currently quarantined domains, sorted (`BTreeSet` key order).
    pub fn quarantined(&self) -> Vec<String> {
        self.state.lock().quarantined.iter().cloned().collect()
    }

    /// Breaker trips charged to `domain` so far.
    pub fn trips(&self, domain: &str) -> u32 {
        self.state.lock().trips.get(domain).copied().unwrap_or(0)
    }

    /// Total faults delivered to the breaker.
    pub fn faults_seen(&self) -> u64 {
        self.state.lock().faults_seen
    }

    /// Lifts a quarantine (supervisor decision after a reinstall). The
    /// trip count is reset; the domain's handlers and exports are *not*
    /// restored — that is the supervisor's job.
    pub fn release(&self, domain: &str) {
        let mut st = self.state.lock();
        st.quarantined.remove(domain);
        st.trips.remove(domain);
    }

    /// Accounts a fault contained *outside* the dispatcher — e.g. a
    /// hot-swap state transfer that panicked and was unwound by the swap
    /// coordinator. The fault is attributed to `domain` in the obs
    /// accounting (the `spin_faults{domain=...}` series in `/metrics`)
    /// and counted in `faults_seen`. No breaker strike is charged: there
    /// is no installed handler to strike, and the caller's rollback *is*
    /// the containment action.
    pub fn note_external_fault(&self, domain: &Identity) {
        if let Some(obs) = self.obs.get() {
            let (_, counters) = obs.accounting().register(domain.name());
            counters.faults.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        self.state.lock().faults_seen += 1;
    }

    /// Reports a resource-overload escalation from the quota ledger
    /// (see [`crate::quota`]): the breach is attributed to `domain` in
    /// the obs accounting and counted as an external fault, a breaker
    /// trip is charged, and `Core.DomainFault` is raised so a supervisor
    /// (e.g. the swap supervisor's fallback machinery) can respond —
    /// typically by swapping the domain to a degraded-mode build. With
    /// `quarantine` set the domain is additionally quarantined: its
    /// handlers are purged and its exports revoked, exactly the breaker's
    /// own quarantine path. Idempotent for an already-quarantined domain.
    pub fn report_overload(&self, domain: &Identity, at: Nanos, quarantine: bool) {
        self.note_external_fault(domain);
        let trips = {
            let mut st = self.state.lock();
            if st.quarantined.contains(domain.name()) {
                return; // already contained; stragglers are no-ops
            }
            let entry = st.trips.entry(domain.name().to_string()).or_insert(0);
            *entry += 1;
            let trips = *entry;
            if quarantine {
                st.quarantined.insert(domain.name().to_string());
            }
            trips
        };
        if quarantine {
            self.dispatcher.purge_installer(domain);
            if let Some(ns) = &self.nameserver {
                let _ = ns.revoke_exports(domain);
            }
        }
        let _ = self.domain_fault.raise(DomainFaultInfo {
            domain: domain.name().to_string(),
            trips,
            at,
            quarantined: quarantine,
        });
    }

    /// The sink: account the fault, charge a strike, and trip/quarantine
    /// when the budget is exhausted. Breaker actions (uninstall, purge,
    /// revoke, the `Core.DomainFault` raise) run *after* the breaker
    /// mutex is dropped, so supervisor handlers may re-enter freely.
    fn on_fault(&self, fault: &HandlerFault) {
        if let Some(obs) = self.obs.get() {
            let (_, counters) = obs.accounting().register(fault.installer.name());
            counters.faults.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; readers take a snapshot, not a sync point.
        }
        let domain = fault.installer.name().to_string();
        let tripped = {
            let mut st = self.state.lock();
            st.faults_seen += 1;
            if st.quarantined.contains(&domain) {
                // Stragglers from in-flight raises; already contained.
                return;
            }
            let strikes = st.strikes.entry(fault.handler).or_default();
            strikes.push_back(fault.at);
            let cutoff = fault.at.saturating_sub(self.policy.window);
            while strikes.front().is_some_and(|&t| t < cutoff) {
                strikes.pop_front();
            }
            if (strikes.len() as u32) < self.policy.strikes {
                None
            } else {
                st.strikes.remove(&fault.handler);
                let trips = st.trips.entry(domain.clone()).or_insert(0);
                *trips += 1;
                let trips = *trips;
                let quarantine = trips >= self.policy.trips_to_quarantine;
                if quarantine {
                    st.quarantined.insert(domain.clone());
                }
                Some((trips, quarantine))
            }
        };
        let Some((trips, quarantine)) = tripped else {
            return;
        };
        if quarantine {
            self.dispatcher.purge_installer(&fault.installer);
            if let Some(ns) = &self.nameserver {
                let _ = ns.revoke_exports(&fault.installer);
            }
        } else {
            self.dispatcher
                .remove_handler_by_id(fault.event_id, fault.handler);
        }
        let _ = self.domain_fault.raise(DomainFaultInfo {
            domain,
            trips,
            at: fault.at,
            quarantined: quarantine,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatcher;
    use spin_check::sync::{AtomicU32, Ordering};

    fn panicky_dispatcher() -> (Dispatcher, Event<u32, u32>, Arc<Containment>) {
        let d = Dispatcher::unmetered();
        let c = Containment::install(
            &d,
            None,
            ContainmentPolicy {
                strikes: 2,
                window: u64::MAX,
                trips_to_quarantine: 2,
            },
        );
        let (ev, owner) = d.define::<u32, u32>("E", Identity::kernel("k"));
        owner.set_primary(|x| *x).unwrap();
        (d, ev, c)
    }

    #[test]
    fn breaker_uninstalls_after_the_strike_budget() {
        let (d, ev, c) = panicky_dispatcher();
        ev.install(Identity::extension("flaky"), |_| panic!("boom"))
            .unwrap();
        assert_eq!(d.handler_count(&ev).unwrap(), 2);
        assert_eq!(ev.raise(1), Ok(1), "primary result survives the fault");
        assert_eq!(d.handler_count(&ev).unwrap(), 2, "one strike: still in");
        assert_eq!(ev.raise(2), Ok(2));
        assert_eq!(d.handler_count(&ev).unwrap(), 1, "second strike trips");
        assert_eq!(c.trips("flaky"), 1);
        assert!(!c.is_quarantined("flaky"));
        assert_eq!(c.faults_seen(), 2);
    }

    #[test]
    fn repeated_trips_quarantine_the_domain_and_raise_domain_fault() {
        let (d, ev, c) = panicky_dispatcher();
        let trips_seen = Arc::new(AtomicU32::new(0));
        let t2 = trips_seen.clone();
        c.domain_fault_event()
            .install(Identity::extension("supervisor"), move |info| {
                t2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
                assert_eq!(info.domain, "flaky");
            })
            .unwrap();
        let flaky = Identity::extension("flaky");
        ev.install(flaky.clone(), |_| panic!("boom")).unwrap();
        ev.raise(0).unwrap();
        ev.raise(0).unwrap(); // trip 1: uninstalled
        ev.install(flaky.clone(), |_| panic!("boom again")).unwrap();
        ev.raise(0).unwrap();
        ev.raise(0).unwrap(); // trip 2: quarantine
        assert_eq!(c.trips("flaky"), 2);
        assert!(c.is_quarantined("flaky"));
        assert_eq!(c.quarantined(), vec!["flaky".to_string()]);
        assert_eq!(trips_seen.load(Ordering::Relaxed), 2); // ordering: Relaxed — test plumbing; the join/assert sequencing is the sync.
        assert_eq!(d.handler_count(&ev).unwrap(), 1, "purged on quarantine");
        c.release("flaky");
        assert!(!c.is_quarantined("flaky"));
        assert_eq!(c.trips("flaky"), 0);
    }

    #[test]
    fn quarantine_revokes_nameserver_exports() {
        let d = Dispatcher::unmetered();
        let ns = NameServer::new();
        let flaky = Identity::extension("flaky");
        ns.register(
            "FlakyService",
            crate::domain::Domain::create_from_module("flaky", vec![]),
            flaky.clone(),
        )
        .unwrap();
        let c = Containment::install(
            &d,
            Some(&ns),
            ContainmentPolicy {
                strikes: 1,
                window: u64::MAX,
                trips_to_quarantine: 1,
            },
        );
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 0).unwrap();
        ev.install(flaky, |_| panic!("boom")).unwrap();
        ev.raise(()).unwrap();
        assert!(c.is_quarantined("flaky"));
        assert!(
            !ns.names().contains(&"FlakyService".to_string()),
            "quarantine must revoke the domain's exports"
        );
    }

    #[test]
    fn strikes_outside_the_window_do_not_accumulate() {
        let d = Dispatcher::unmetered();
        let clock = d.clock().clone();
        let c = Containment::install(
            &d,
            None,
            ContainmentPolicy {
                strikes: 2,
                window: 100,
                trips_to_quarantine: 99,
            },
        );
        let (ev, owner) = d.define::<(), u32>("E", Identity::kernel("k"));
        owner.set_primary(|_| 0).unwrap();
        ev.install(Identity::extension("slowburn"), |_| panic!("x"))
            .unwrap();
        ev.raise(()).unwrap();
        clock.advance(1_000); // the first strike ages out of the window
        ev.raise(()).unwrap();
        assert_eq!(c.trips("slowburn"), 0, "strikes were never concurrent");
        assert_eq!(d.handler_count(&ev).unwrap(), 2);
    }
}
