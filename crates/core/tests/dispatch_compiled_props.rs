//! Property tests for the guard-set compiler: for arbitrary mixes of
//! key-matchable and opaque guards, a compiled dispatcher selects exactly
//! the handler set a sequential (all-opaque) dispatcher selects, charges
//! identical virtual time, and accounts identical guard evaluations —
//! including across install/uninstall churn in the middle of a raise
//! stream.

use proptest::prelude::*;
use spin_core::{Dispatcher, Event, GuardSpec, Identity, KeyFn};
use std::sync::Arc;

/// One handler's guard in model form; `to_spec` produces the structured
/// (compilable) guard and `matches` is the reference predicate.
#[derive(Debug, Clone)]
enum GuardModel {
    Eq(u64),
    In(Vec<u64>),
    Range(u64, u64),
    /// `value % divisor == 0` — never expressible as a key guard.
    OpaqueMod(u64),
}

impl GuardModel {
    fn matches(&self, value: u64) -> bool {
        match self {
            GuardModel::Eq(v) => value == *v,
            GuardModel::In(vs) => vs.contains(&value),
            GuardModel::Range(lo, hi) => {
                let (lo, hi) = (*lo.min(hi), *lo.max(hi));
                lo <= value && value <= hi
            }
            GuardModel::OpaqueMod(d) => value.is_multiple_of(*d),
        }
    }

    fn to_spec(&self, key: &KeyFn<u64>) -> GuardSpec<u64> {
        match self {
            GuardModel::Eq(v) => GuardSpec::KeyEq(key.clone(), *v),
            GuardModel::In(vs) => GuardSpec::KeyIn(key.clone(), vs.clone()),
            GuardModel::Range(lo, hi) => GuardSpec::KeyRange(key.clone(), *lo.min(hi), *lo.max(hi)),
            GuardModel::OpaqueMod(d) => {
                let d = *d;
                GuardSpec::Opaque(Arc::new(move |x: &u64| x.is_multiple_of(d)))
            }
        }
    }

    /// The same predicate as an opaque closure — the sequential baseline.
    fn to_opaque(&self) -> GuardSpec<u64> {
        let model = self.clone();
        GuardSpec::Opaque(Arc::new(move |x: &u64| model.matches(*x)))
    }
}

fn guard_model() -> impl Strategy<Value = GuardModel> {
    prop_oneof![
        (0u64..32).prop_map(GuardModel::Eq),
        prop::collection::vec(0u64..32, 0..4).prop_map(GuardModel::In),
        (0u64..32, 0u64..32).prop_map(|(a, b)| GuardModel::Range(a, b)),
        (1u64..7).prop_map(GuardModel::OpaqueMod),
    ]
}

/// A dispatcher/event pair whose handlers report their index as a bit, so
/// a sum reducer identifies the exact selected handler set.
struct Rig {
    d: Dispatcher,
    ev: Event<u64, u64>,
}

fn build_rig(models: &[GuardModel], structured: bool) -> (Rig, Vec<spin_core::HandlerId>) {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("E", Identity::kernel("m"));
    owner.set_primary(|_| 0).expect("fresh");
    owner.set_reducer(|rs| rs.into_iter().sum()).expect("fresh");
    let key = KeyFn::new(|x: &u64| *x);
    let ids = models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let bit = 1u64 << i;
            let spec = if structured {
                m.to_spec(&key)
            } else {
                m.to_opaque()
            };
            ev.install_specs(Identity::extension("h"), vec![spec], move |_: &u64| bit)
                .expect("allowed")
        })
        .collect();
    (Rig { d, ev }, ids)
}

/// The reference model's answer: the bit-sum of live matching handlers.
fn model_sum(models: &[GuardModel], live: &[bool], value: u64) -> u64 {
    models
        .iter()
        .enumerate()
        .filter(|(i, m)| live[*i] && m.matches(value))
        .map(|(i, _)| 1u64 << i)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any guard mix and raise stream, compiled and sequential
    /// dispatch agree on the handler set, the virtual clock, and the
    /// guard-evaluation count — before and after mid-stream uninstalls
    /// and a mid-stream install.
    #[test]
    fn compiled_dispatch_equals_sequential_dispatch(
        models in prop::collection::vec(guard_model(), 1..10),
        stream in prop::collection::vec(0u64..40, 1..20),
        churn_at in 0usize..20,
        remove_mask in any::<u16>(),
        late_guard in guard_model(),
    ) {
        let (compiled, compiled_ids) = build_rig(&models, true);
        let (opaque, opaque_ids) = build_rig(&models, false);
        let mut live = vec![true; models.len()];
        let mut models = models;
        let churn_at = churn_at.min(stream.len());

        for (step, &value) in stream.iter().enumerate() {
            if step == churn_at {
                // Mid-stream churn: drop a subset of handlers from both
                // rigs, then add one more (which re-compiles the plan).
                for i in 0..models.len().min(16) {
                    if remove_mask & (1 << i) != 0 && live[i] {
                        live[i] = false;
                        compiled.d
                            .uninstall(&compiled.ev, compiled_ids[i], &Identity::extension("h"))
                            .expect("installer may remove");
                        opaque.d
                            .uninstall(&opaque.ev, opaque_ids[i], &Identity::extension("h"))
                            .expect("installer may remove");
                    }
                }
                let bit = 1u64 << models.len();
                let key = KeyFn::new(|x: &u64| *x);
                compiled.ev
                    .install_specs(
                        Identity::extension("h"),
                        vec![late_guard.to_spec(&key)],
                        move |_: &u64| bit,
                    )
                    .expect("allowed");
                opaque.ev
                    .install_specs(
                        Identity::extension("h"),
                        vec![late_guard.to_opaque()],
                        move |_: &u64| bit,
                    )
                    .expect("allowed");
                models.push(late_guard.clone());
                live.push(true);
            }
            let expected = model_sum(&models, &live, value);
            let t_c = compiled.d.clock().now();
            let t_o = opaque.d.clock().now();
            prop_assert_eq!(compiled.ev.raise(value), Ok(expected));
            prop_assert_eq!(opaque.ev.raise(value), Ok(expected));
            // Identical virtual charge per raise, not just in aggregate.
            prop_assert_eq!(
                compiled.d.clock().now() - t_c,
                opaque.d.clock().now() - t_o
            );
        }

        let cs = compiled.d.stats(&compiled.ev).expect("stats");
        let os = opaque.d.stats(&opaque.ev).expect("stats");
        prop_assert_eq!(cs.guard_evaluations, os.guard_evaluations);
        prop_assert_eq!(cs.handlers_run, os.handlers_run);
        prop_assert_eq!(cs.raises, os.raises);
        // The structured rig actually exercised the compiled path whenever
        // any key-matchable guard was installed.
        let any_indexed = models.iter().any(|m| !matches!(m, GuardModel::OpaqueMod(_)));
        if any_indexed {
            prop_assert!(cs.compiled_raises > 0);
            prop_assert!(cs.guards_elided <= cs.guard_evaluations);
        }
        // The all-opaque rig never compiles.
        prop_assert_eq!(os.compiled_raises, 0);
    }

    /// `raise_batch` returns item-for-item what looped `raise` returns
    /// and charges the same virtual time, for any burst.
    #[test]
    fn batched_raises_match_looped_raises(
        models in prop::collection::vec(guard_model(), 1..8),
        burst in prop::collection::vec(0u64..40, 1..16),
    ) {
        let (batched, _) = build_rig(&models, true);
        let (looped, _) = build_rig(&models, true);
        let live = vec![true; models.len()];

        let t_b = batched.d.clock().now();
        let got = batched.ev.raise_batch(burst.clone());
        let batched_delta = batched.d.clock().now() - t_b;

        let t_l = looped.d.clock().now();
        let want: Vec<_> = burst.iter().map(|&v| looped.ev.raise(v)).collect();
        let looped_delta = looped.d.clock().now() - t_l;

        prop_assert_eq!(&got, &want);
        for (&value, result) in burst.iter().zip(got) {
            prop_assert_eq!(result, Ok(model_sum(&models, &live, value)));
        }
        prop_assert_eq!(batched_delta, looped_delta);
        let bs = batched.d.stats(&batched.ev).expect("stats");
        let ls = looped.d.stats(&looped.ev).expect("stats");
        prop_assert_eq!(bs.guard_evaluations, ls.guard_evaluations);
        prop_assert_eq!(bs.raises, ls.raises);
        prop_assert_eq!(bs.batched_raises, burst.len() as u64);
        prop_assert_eq!(ls.batched_raises, 0);
    }
}
