//! Stress tests for the hot-swap quiesce/hold/rebind machinery.
//!
//! Raisers hammer one event while a churn thread runs the swap protocol
//! in a loop — quiesce, drain, rebind (sometimes immediately rolled back
//! via `restore`), resume. Afterwards every counter must reconcile
//! exactly: a raise attempt either completed a dispatch, parked in the
//! hold queue (and was replayed), or bounced off a full hold queue.
//!
//!     attempts = (raises − replayed) + held + overflowed

use spin_core::{Constraints, DispatchError, Dispatcher, Identity, InstallSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const RAISERS: usize = 4;
const RAISES_PER_THREAD: u64 = 20_000;

fn version_spec(ident: &Identity, bump: &Arc<AtomicU64>, bias: u64) -> InstallSpec<u64, u64> {
    let bump = bump.clone();
    InstallSpec {
        installer: ident.clone(),
        handler: Arc::new(move |x: &u64| {
            bump.fetch_add(1, Ordering::Relaxed);
            x + bias
        }),
        guards: Vec::new(),
        constraints: Constraints::default(),
    }
}

/// Concurrent raisers race swap/rollback churn. No raise may be lost or
/// misreported, and the hold-queue statistics must reconcile exactly with
/// what the raisers observed.
#[test]
fn concurrent_raises_survive_swap_and_rollback_churn() {
    let d = Dispatcher::unmetered();
    let (ev, _owner) = d.define::<u64, u64>("Swap.Stress", Identity::kernel("stress"));
    ev.set_hold_capacity(256).expect("event alive");

    let v1 = Identity::extension("fwd-v1");
    let v2 = Identity::extension("fwd-v2");
    let v1_runs = Arc::new(AtomicU64::new(0));
    let v2_runs = Arc::new(AtomicU64::new(0));
    {
        let bump = v1_runs.clone();
        ev.install(v1.clone(), move |x: &u64| {
            bump.fetch_add(1, Ordering::Relaxed);
            x + 1
        })
        .expect("install v1");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut raisers = Vec::new();
    for t in 0..RAISERS {
        let ev = ev.clone();
        raisers.push(thread::spawn(move || {
            // (ok, held, overflowed) as observed by this raiser.
            let mut tally = (0u64, 0u64, 0u64);
            for i in 0..RAISES_PER_THREAD {
                let v = (t as u64) << 32 | i;
                match ev.raise(v) {
                    Ok(r) => {
                        assert!(
                            r == v + 1 || r == v + 2,
                            "result from a version that was never installed: {r}"
                        );
                        tally.0 += 1;
                    }
                    Err(DispatchError::Held { .. }) => tally.1 += 1,
                    Err(DispatchError::HoldOverflow { .. }) => tally.2 += 1,
                    Err(e) => panic!("raise must not fail under swap churn: {e:?}"),
                }
            }
            tally
        }));
    }

    let churn = {
        let ev = ev.clone();
        let stop = stop.clone();
        let (v1, v2) = (v1.clone(), v2.clone());
        let (v1_runs, v2_runs) = (v1_runs.clone(), v2_runs.clone());
        thread::spawn(move || {
            let mut current = v1.clone();
            let mut cycle = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cycle += 1;
                ev.quiesce().expect("event alive");
                ev.drain_in_flight().expect("event alive");
                let (next, bump, bias) = if current == v1 {
                    (v2.clone(), &v2_runs, 2)
                } else {
                    (v1.clone(), &v1_runs, 1)
                };
                let receipt = ev
                    .rebind(&current, &current, vec![version_spec(&next, bump, bias)])
                    .expect("rebind under churn");
                if cycle.is_multiple_of(3) {
                    // Simulated rollback: reverse the rebind before resume,
                    // exactly as the swap coordinator's undo chain does.
                    ev.restore(&current, receipt).expect("restore under churn");
                } else {
                    current = next;
                }
                ev.resume().expect("event alive");
            }
            cycle
        })
    };

    let mut attempts = 0u64;
    let (mut ok, mut held, mut overflowed) = (0u64, 0u64, 0u64);
    for t in raisers {
        let (o, h, f) = t.join().expect("raisers must not panic");
        attempts += RAISES_PER_THREAD;
        ok += o;
        held += h;
        overflowed += f;
    }
    stop.store(true, Ordering::Relaxed);
    let cycles = churn.join().expect("churn thread must not panic");
    assert!(cycles > 0, "churn must have overlapped the raisers");

    let stats = d.stats(&ev).expect("event alive");
    let hold = ev.hold_stats().expect("event alive");
    assert_eq!(hold.held, held, "every Held error left a parked raise");
    assert_eq!(
        hold.overflowed, overflowed,
        "every HoldOverflow error was counted"
    );
    assert_eq!(
        hold.replayed, hold.held,
        "the final resume left nothing parked"
    );
    assert_eq!(ev.held_len().expect("event alive"), 0);
    assert_eq!(
        stats.raises,
        ok + hold.replayed,
        "completed dispatches = raiser-visible Oks + replays"
    );
    assert_eq!(
        attempts,
        (stats.raises - hold.replayed) + hold.held + hold.overflowed,
        "hold-queue reconciliation"
    );
    assert_eq!(
        v1_runs.load(Ordering::Relaxed) + v2_runs.load(Ordering::Relaxed),
        stats.raises,
        "exactly one version ran per completed dispatch"
    );
    assert!(
        ev.generation().expect("event alive") >= cycles,
        "every rebind and restore bumped the plan generation"
    );
}

/// Parked raises replay in `(deliver_at, lane, seq)` order — FIFO here,
/// since parking charges no virtual time.
#[test]
fn hold_queue_replays_in_park_order() {
    let d = Dispatcher::unmetered();
    let (ev, _owner) = d.define::<u64, u64>("Swap.Order", Identity::kernel("stress"));
    let log = Arc::new(Mutex::new(Vec::new()));
    {
        let log = log.clone();
        ev.install(Identity::extension("v1"), move |x: &u64| {
            log.lock().unwrap().push(*x);
            *x
        })
        .expect("install");
    }

    ev.quiesce().expect("event alive");
    for i in 0..5u64 {
        assert!(matches!(ev.raise(i), Err(DispatchError::Held { .. })));
    }
    assert_eq!(ev.held_len().expect("event alive"), 5);
    assert!(log.lock().unwrap().is_empty(), "parked raises must not run");
    assert_eq!(ev.resume().expect("event alive"), 5);
    assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

/// A full hold queue bounces raises with `HoldOverflow`; the bounced
/// raises are dropped, not replayed.
#[test]
fn hold_queue_overflow_is_bounded_and_counted() {
    let d = Dispatcher::unmetered();
    let (ev, _owner) = d.define::<u64, u64>("Swap.Overflow", Identity::kernel("stress"));
    ev.set_hold_capacity(2).expect("event alive");
    ev.install(Identity::extension("v1"), |x: &u64| *x)
        .expect("install");

    ev.quiesce().expect("event alive");
    assert!(matches!(ev.raise(0), Err(DispatchError::Held { .. })));
    assert!(matches!(ev.raise(1), Err(DispatchError::Held { .. })));
    assert!(matches!(
        ev.raise(2),
        Err(DispatchError::HoldOverflow { .. })
    ));
    assert_eq!(ev.resume().expect("event alive"), 2);
    let hold = ev.hold_stats().expect("event alive");
    assert_eq!((hold.held, hold.replayed, hold.overflowed), (2, 2, 1));
    let stats = d.stats(&ev).expect("event alive");
    assert_eq!(stats.raises, 2, "only replayed raises completed");
}

/// A destroyed event degrades gracefully through the `GatedEvent` facade:
/// quiesce/drain report `false`, resume replays nothing.
#[test]
fn gated_event_facade_survives_destruction() {
    use spin_core::GatedEvent;

    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("Swap.Gone", Identity::kernel("stress"));
    let gate: Arc<dyn GatedEvent> = Arc::new(ev.clone());
    assert!(gate.quiesce());
    owner.destroy().expect("owner may destroy");
    assert!(!gate.quiesce(), "a destroyed event is trivially quiescent");
    assert!(!gate.drain_in_flight());
    assert_eq!(gate.resume(), 0);
    assert_eq!(gate.held_len(), 0);
    let _ = d; // keep the dispatcher alive to the end
}
