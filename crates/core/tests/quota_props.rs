//! Property tests for the quota ledger: for ANY interleaving of raise
//! admissions, completions, parked holds, hold-budget refusals, window
//! advances and supervisor releases, the [`QuotaCell`] counters reconcile
//! exactly against a reference model stepped op by op — the identity
//! `attempts == admitted + throttled + shed + held` and
//! `admitted == completed + in_flight` holds at every step, and the
//! escalation ladder (Normal → Shedding → Quarantined, with shedding
//! decaying on window rolls and quarantine decaying never) matches the
//! model's state machine move for move.

use proptest::prelude::*;
use spin_core::{
    Dispatcher, Identity, QuotaCell, QuotaLedger, QuotaSpec, QuotaState, QuotaVerdict,
};
use std::sync::Arc;

const MAX_IN_FLIGHT: u64 = 2;
const WINDOW: u64 = 1_000;
const VT_BUDGET: u64 = 100;
const SHED_AFTER_TRIPS: u32 = 2;
const QUARANTINE_AFTER_SHEDS: u32 = 2;
const COMPLETE_VT: u64 = 40;
const ADVANCE: u64 = 450;

const OP_ADMIT: u8 = 0;
const OP_COMPLETE: u8 = 1;
const OP_HELD: u8 = 2;
const OP_REFUSE: u8 = 3;
const OP_ADVANCE: u8 = 4;
const OP_RELEASE: u8 = 5;

fn spec() -> QuotaSpec {
    QuotaSpec {
        max_in_flight: MAX_IN_FLIGHT,
        window: WINDOW,
        window_vt_budget: VT_BUDGET,
        shed_after_trips: SHED_AFTER_TRIPS,
        quarantine_after_sheds: QUARANTINE_AFTER_SHEDS,
        ..QuotaSpec::default()
    }
}

/// The reference model: the window state machine plus every counter.
#[derive(Default)]
struct Model {
    now: u64,
    // Window state (mirrors quota.rs's `Window`).
    start: u64,
    vt: u64,
    wtrips: u32,
    wsheds: u32,
    state: u8, // 0 normal, 1 shedding, 2 quarantined
    // Counters (mirrors `QuotaSnapshot`).
    attempts: u64,
    admitted: u64,
    completed: u64,
    throttled: u64,
    shed: u64,
    held: u64,
    trips: u64,
    breaches: u64,
    in_flight: u64,
    vt_charged: u64,
}

impl Model {
    fn roll(&mut self) {
        if self.now < self.start + WINDOW {
            return;
        }
        let elapsed = (self.now - self.start) / WINDOW;
        self.start += elapsed * WINDOW;
        self.vt = 0;
        self.wtrips = 0;
        if self.state == 1 {
            self.state = 0;
            self.wsheds = 0;
        }
    }

    /// One ladder step; returns the verdict and whether a boundary was
    /// crossed (a breach).
    fn ladder_refuse(&mut self) -> (QuotaVerdict, bool) {
        let (verdict, breach) = match self.state {
            2 => (QuotaVerdict::Shed, false),
            1 => {
                self.wsheds += 1;
                if self.wsheds >= QUARANTINE_AFTER_SHEDS {
                    self.state = 2;
                    (QuotaVerdict::Shed, true)
                } else {
                    (QuotaVerdict::Shed, false)
                }
            }
            _ => {
                self.wtrips += 1;
                if self.wtrips >= SHED_AFTER_TRIPS {
                    self.state = 1;
                    self.wsheds = 0;
                    (QuotaVerdict::Throttled, true)
                } else {
                    (QuotaVerdict::Throttled, false)
                }
            }
        };
        match verdict {
            QuotaVerdict::Throttled => {
                self.throttled += 1;
                self.trips += 1;
            }
            QuotaVerdict::Shed => self.shed += 1,
        }
        if breach {
            self.breaches += 1;
        }
        (verdict, breach)
    }

    fn admit(&mut self) -> Result<(), QuotaVerdict> {
        self.attempts += 1;
        self.roll();
        let over = self.state != 0 || self.vt >= VT_BUDGET || self.in_flight >= MAX_IN_FLIGHT;
        if over {
            Err(self.ladder_refuse().0)
        } else {
            self.in_flight += 1;
            self.admitted += 1;
            Ok(())
        }
    }

    fn complete(&mut self, vt: u64) {
        self.completed += 1;
        self.vt_charged += vt;
        self.vt += vt;
        self.in_flight -= 1;
    }

    fn refuse(&mut self) -> QuotaVerdict {
        self.attempts += 1;
        self.roll();
        self.ladder_refuse().0
    }

    fn release(&mut self) {
        self.state = 0;
        self.start = self.now;
        self.vt = 0;
        self.wtrips = 0;
        self.wsheds = 0;
    }

    fn state_enum(&mut self) -> QuotaState {
        self.roll();
        match self.state {
            2 => QuotaState::Quarantined,
            1 => QuotaState::Shedding,
            _ => QuotaState::Normal,
        }
    }

    fn check(&self, cell: &QuotaCell) {
        let s = cell.snapshot();
        prop_assert_eq!(s.attempts, self.attempts);
        prop_assert_eq!(s.admitted, self.admitted);
        prop_assert_eq!(s.completed, self.completed);
        prop_assert_eq!(s.throttled, self.throttled);
        prop_assert_eq!(s.shed, self.shed);
        prop_assert_eq!(s.held, self.held);
        prop_assert_eq!(s.trips, self.trips);
        prop_assert_eq!(s.breaches, self.breaches);
        prop_assert_eq!(s.in_flight, self.in_flight);
        prop_assert_eq!(s.vt_charged, self.vt_charged);
        // The ledger identity: no attempt is lost or double-counted.
        prop_assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);
        prop_assert_eq!(s.admitted, s.completed + s.in_flight);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Driving the cell API directly: every counter matches the model
    /// after every op.
    #[test]
    fn ledger_counters_reconcile_under_any_interleaving(
        ops in prop::collection::vec(0u8..6, 1..80),
    ) {
        let ledger = QuotaLedger::new();
        let cell = ledger.register("tenant", spec());
        let mut m = Model::default();

        for op in ops {
            match op {
                OP_ADMIT => {
                    let got = cell.admit(m.now);
                    let want = m.admit();
                    prop_assert_eq!(got, want);
                }
                OP_COMPLETE => {
                    if m.in_flight > 0 {
                        cell.complete(COMPLETE_VT);
                        m.complete(COMPLETE_VT);
                    }
                }
                OP_HELD => {
                    cell.note_held();
                    m.attempts += 1;
                    m.held += 1;
                }
                OP_REFUSE => {
                    let got = cell.refuse(m.now);
                    let want = m.refuse();
                    prop_assert_eq!(got, want);
                }
                OP_ADVANCE => {
                    m.now += ADVANCE;
                }
                OP_RELEASE => {
                    cell.release(m.now);
                    m.release();
                }
                _ => unreachable!("op range is 0..6"),
            }
            prop_assert_eq!(cell.state(m.now), m.state_enum());
            m.check(&cell);
        }
    }

    /// Driving through the dispatcher: an event bound to a metered cell
    /// books exactly the admitted raises in its stats (throttled raises
    /// are ledger entries, not event raises), and the window charge per
    /// dispatch equals the handler's virtual-time cost.
    #[test]
    fn metered_raises_reconcile_through_the_dispatcher(
        ops in prop::collection::vec(0u8..2, 1..60),
    ) {
        let d = Dispatcher::unmetered();
        let clock = d.clock().clone();
        let ledger = QuotaLedger::new();
        // No concurrency in this test, so the in-flight axis never
        // refuses; the window budget does all the throttling.
        let cell = ledger.register(
            "tenant",
            QuotaSpec { max_in_flight: 0, ..spec() },
        );
        let (ev, owner) = d.define::<(), u64>("Q", Identity::kernel("k"));
        let clk = clock.clone();
        owner
            .set_primary(move |_| {
                clk.advance(COMPLETE_VT);
                7
            })
            .expect("fresh event");
        prop_assert_eq!(ev.bind_quota(Arc::clone(&cell)), Ok(true));
        prop_assert_eq!(ev.bind_quota(Arc::clone(&cell)), Ok(false), "one-shot");

        let mut m = Model::default();
        for op in ops {
            match op {
                0 => {
                    m.now = clock.now();
                    let want = m.admit();
                    match want {
                        Ok(()) => {
                            // The dispatcher charges its own dispatch costs
                            // on top of the handler's advance; the window
                            // is charged the whole observed delta.
                            let before = clock.now();
                            prop_assert_eq!(ev.raise(()), Ok(7));
                            m.complete(clock.now() - before);
                            m.now = clock.now();
                        }
                        Err(v) => {
                            let err = v.into_error("Q", "tenant");
                            prop_assert_eq!(ev.raise(()), Err(err));
                        }
                    }
                }
                _ => clock.advance(ADVANCE),
            }
            m.check(&cell);
        }
        let stats = d.stats(&ev).expect("event alive");
        prop_assert_eq!(stats.raises, m.admitted, "throttled raises never count as raises");
    }
}
