//! Concurrency stress tests for the snapshot raise path.
//!
//! The dispatcher's read side promises that raisers never block each other
//! and never observe a torn handler list: every raise runs against one
//! immutable [`RaisePlan`] snapshot. These tests hammer that promise from
//! real threads — raisers racing handler churn and racing event
//! destruction/redefinition — and then reconcile every counter:
//! no lost raises, no panics, statistics that add up exactly.

use spin_core::{DispatchError, Dispatcher, Event, Identity, KeyFn};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const RAISERS: usize = 4;
const RAISES_PER_THREAD: u64 = 20_000;
const CHURN_CYCLES: u64 = 2_000;

/// Raisers hammer one event while a churn thread installs and uninstalls
/// extra handlers. The primary handler is never removed, so every raise
/// must succeed, and the statistics must reconcile exactly:
///
/// * `raises` == total raises issued;
/// * the primary runs exactly once per raise (fast or slow path);
/// * `handlers_run` (slow-path executions) == slow-path raises (primary)
///   plus extra-handler executions.
#[test]
fn concurrent_raises_survive_handler_churn() {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("Stress.Churn", Identity::kernel("stress"));

    let primary_runs = Arc::new(AtomicU64::new(0));
    let extra_runs = Arc::new(AtomicU64::new(0));

    let pr = primary_runs.clone();
    owner
        .set_primary(move |x| {
            pr.fetch_add(1, Ordering::Relaxed);
            *x
        })
        .expect("fresh event");

    let stop = Arc::new(AtomicBool::new(false));
    let mut raisers = Vec::new();
    for t in 0..RAISERS {
        let ev = ev.clone();
        raisers.push(thread::spawn(move || {
            let mut ok = 0u64;
            for i in 0..RAISES_PER_THREAD {
                let v = (t as u64) << 32 | i;
                match ev.raise(v) {
                    Ok(_) => ok += 1,
                    Err(e) => panic!("raise must not fail under churn: {e:?}"),
                }
            }
            ok
        }));
    }

    let churn = {
        let d = d.clone();
        let ev = ev.clone();
        let stop = stop.clone();
        let extra = extra_runs.clone();
        thread::spawn(move || {
            let ident = Identity::extension("churner");
            let mut cycles = 0u64;
            while !stop.load(Ordering::Relaxed) && cycles < CHURN_CYCLES * 50 {
                cycles += 1;
                let e1 = extra.clone();
                let id1 = ev
                    .install(ident.clone(), move |x: &u64| {
                        e1.fetch_add(1, Ordering::Relaxed);
                        x + 1
                    })
                    .expect("install plain");
                let e2 = extra.clone();
                let id2 = ev
                    .install_guarded(
                        ident.clone(),
                        |x: &u64| x.is_multiple_of(2),
                        move |x: &u64| {
                            e2.fetch_add(1, Ordering::Relaxed);
                            x + 2
                        },
                    )
                    .expect("install guarded");
                d.uninstall(&ev, id1, &ident).expect("uninstall 1");
                d.uninstall(&ev, id2, &ident).expect("uninstall 2");
            }
        })
    };

    let total_ok: u64 = raisers
        .into_iter()
        .map(|t| t.join().expect("no panics"))
        .sum();
    stop.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread must not panic");

    let expected = RAISERS as u64 * RAISES_PER_THREAD;
    assert_eq!(total_ok, expected, "no lost raises");

    let stats = d.stats(&ev).expect("event alive");
    assert_eq!(stats.raises, expected, "every raise was counted");
    assert_eq!(
        primary_runs.load(Ordering::Relaxed),
        expected,
        "the primary ran exactly once per raise"
    );
    // Slow-path raises each run the primary; extra handlers only ever run
    // on the slow path (their presence disqualifies the fast path).
    let slow_raises = stats.raises - stats.fast_path_raises;
    assert_eq!(
        stats.handlers_run,
        slow_raises + extra_runs.load(Ordering::Relaxed),
        "slow-path executions reconcile: primary per slow raise + extras"
    );
    assert_eq!(stats.handlers_aborted, 0);
    assert_eq!(stats.async_dispatches, 0);
}

/// Raisers race an owner that destroys and re-defines the event. Every
/// raise must either succeed (running the handler exactly once) or fail
/// with `UnknownEvent` — never panic, never lose an execution. The
/// successful-raise count observed by raisers must equal the execution
/// count observed inside handlers.
#[test]
fn concurrent_raises_survive_destroy_and_redefine() {
    const GENERATIONS: u64 = 400;

    let d = Dispatcher::unmetered();
    let runs = Arc::new(AtomicU64::new(0));
    let ok_raises = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // The currently-live handle, republished each generation.
    let slot: Arc<Mutex<Option<Event<u64, u64>>>> = Arc::new(Mutex::new(None));

    let lifecycle = {
        let d = d.clone();
        let slot = slot.clone();
        let runs = runs.clone();
        thread::spawn(move || {
            for generation in 0..GENERATIONS {
                let (ev, owner) =
                    d.define::<u64, u64>("Stress.Flicker", Identity::kernel("stress"));
                let r = runs.clone();
                owner
                    .set_primary(move |_| {
                        r.fetch_add(1, Ordering::Relaxed);
                        generation
                    })
                    .expect("fresh event");
                // Publish only after the primary exists, so a live handle
                // never yields NoHandlerRan.
                *slot.lock().unwrap() = Some(ev);
                thread::yield_now();
                *slot.lock().unwrap() = None;
                owner.destroy().expect("owner may destroy");
            }
        })
    };

    let mut raisers = Vec::new();
    for _ in 0..RAISERS {
        let slot = slot.clone();
        let stop = stop.clone();
        let ok_raises = ok_raises.clone();
        raisers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let handle = slot.lock().unwrap().clone();
                let Some(ev) = handle else {
                    thread::yield_now();
                    continue;
                };
                // Raise repeatedly on this handle; destruction mid-stream
                // must surface as UnknownEvent, nothing else.
                for i in 0..64u64 {
                    match ev.raise(i) {
                        Ok(_) => {
                            ok_raises.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(DispatchError::UnknownEvent { .. }) => break,
                        Err(e) => panic!("unexpected raise failure: {e:?}"),
                    }
                }
            }
        }));
    }

    lifecycle.join().expect("lifecycle thread must not panic");
    stop.store(true, Ordering::Relaxed);
    for t in raisers {
        t.join().expect("raisers must not panic");
    }

    assert_eq!(
        ok_raises.load(Ordering::Relaxed),
        runs.load(Ordering::Relaxed),
        "every successful raise ran the handler exactly once, \
         every failed raise ran it zero times"
    );
    // The name is gone after the final destroy: a fresh definition starts
    // a fresh generation with clean statistics.
    let (ev, owner) = d.define::<u64, u64>("Stress.Flicker", Identity::kernel("stress"));
    owner.set_primary(|_| 7).expect("fresh event");
    assert_eq!(ev.raise(0), Ok(7));
    assert_eq!(d.stats(&ev).expect("alive").raises, 1);
}

/// Regression test for the raise/destroy race. `destroy` clears the
/// event's handler plan, so a raiser that snapshots the plan while the
/// destroy is mid-flight could observe an empty plan and misreport
/// `NoHandlerRan` — as if the (still-installed) primary had declined to
/// run. The fix re-checks the destroyed flag *after* snapshotting:
/// because `destroy` flips the flag before it clears the plan, a raise
/// that loses the race settles to `UnknownEvent`.
///
/// Here every generation has a primary installed for its whole lifetime,
/// so `NoHandlerRan` is impossible under correct semantics: each raise
/// must yield exactly `Ok(generation)` or `UnknownEvent`.
#[test]
fn raises_racing_destroy_never_misreport_no_handler_ran() {
    const GENERATIONS: u64 = 600;

    let d = Dispatcher::unmetered();

    for generation in 0..GENERATIONS {
        let (ev, owner) = d.define::<u64, u64>("Stress.Teardown", Identity::kernel("stress"));
        owner.set_primary(move |_| generation).expect("fresh event");

        let barrier = Arc::new(std::sync::Barrier::new(RAISERS + 1));
        let mut raisers = Vec::new();
        for _ in 0..RAISERS {
            let ev = ev.clone();
            let barrier = barrier.clone();
            raisers.push(thread::spawn(move || {
                barrier.wait();
                loop {
                    match ev.raise(0) {
                        Ok(v) => assert_eq!(v, generation, "stale plan from a prior generation"),
                        Err(DispatchError::UnknownEvent { name }) => {
                            assert_eq!(name, "Stress.Teardown");
                            break;
                        }
                        Err(e) => {
                            panic!("a raise racing destroy must settle to UnknownEvent, got {e:?}")
                        }
                    }
                }
            }));
        }

        // Release the raisers and tear the event down under their feet.
        barrier.wait();
        owner.destroy().expect("owner may destroy");
        for t in raisers {
            t.join().expect("raisers must not panic");
        }
    }
}

/// Deterministic reconciliation of the compiled-dispatch counters: with a
/// known mix of keyed and opaque guards and a known raise stream, every
/// statistic has a closed-form expected value. Guard evaluations are
/// charged per *logically evaluated* guard — one per guarded entry per
/// raise — whether the decision came from the dispatch table or from
/// running the closure, so the count is identical to sequential dispatch.
#[test]
fn compiled_statistics_reconcile_exactly() {
    const KEYED: u64 = 5;
    const OPAQUE: u64 = 3;

    let build = || {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("Stress.Compiled", Identity::kernel("stress"));
        owner.set_primary(|x| *x).expect("fresh event");
        owner
            .set_reducer(|rs| rs.into_iter().sum())
            .expect("fresh event");
        let key = KeyFn::new(|x: &u64| *x);
        for i in 0..KEYED {
            ev.install_keyed(Identity::extension("k"), &key, i, move |_| i)
                .expect("install keyed");
        }
        for i in 0..OPAQUE {
            ev.install_guarded(
                Identity::extension("o"),
                move |x: &u64| x.is_multiple_of(i + 2),
                move |_| 100 + i,
            )
            .expect("install opaque");
        }
        (d, ev)
    };
    let stream: Vec<u64> = (0..50).map(|i| i % 9).collect();
    let expected_matches: u64 = stream
        .iter()
        .map(|&v| {
            let keyed = u64::from(v < KEYED);
            let opaque = (0..OPAQUE).filter(|i| v % (i + 2) == 0).count() as u64;
            keyed + opaque
        })
        .sum();

    let (d, ev) = build();
    for &v in &stream {
        ev.raise(v).expect("raise");
    }
    let stats = d.stats(&ev).expect("alive");
    let n = stream.len() as u64;
    assert_eq!(stats.raises, n);
    assert_eq!(stats.fast_path_raises, 0, "multiple handlers: slow path");
    assert_eq!(
        stats.compiled_raises, n,
        "a plan with keyed entries dispatches compiled"
    );
    assert_eq!(
        stats.guard_evaluations,
        n * (KEYED + OPAQUE),
        "one charged evaluation per guarded entry per raise, exactly as sequential"
    );
    assert_eq!(
        stats.guards_elided,
        n * KEYED,
        "every keyed entry's decision came from the dispatch table"
    );
    assert_eq!(
        stats.handlers_run,
        n + expected_matches,
        "primary + matches"
    );
    assert_eq!(stats.batched_raises, 0);

    // The same stream as one burst reconciles identically, plus the
    // batched counter.
    let (d, ev) = build();
    for r in ev.raise_batch(stream.clone()) {
        r.expect("batched raise");
    }
    let batched = d.stats(&ev).expect("alive");
    assert_eq!(batched.raises, n);
    assert_eq!(batched.batched_raises, n);
    assert_eq!(batched.compiled_raises, n);
    assert_eq!(batched.guard_evaluations, stats.guard_evaluations);
    assert_eq!(batched.guards_elided, stats.guards_elided);
    assert_eq!(batched.handlers_run, stats.handlers_run);
}

/// Raisers hammer a keyed event while a churn thread installs and
/// uninstalls keyed handlers, forcing plan recompiles under fire. The
/// compiled counters must stay consistent: every slow-path raise against
/// a plan holding a keyed entry is a compiled raise, and elisions never
/// exceed charged evaluations.
#[test]
fn concurrent_keyed_churn_reconciles() {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("Stress.KeyedChurn", Identity::kernel("stress"));

    let primary_runs = Arc::new(AtomicU64::new(0));
    let extra_runs = Arc::new(AtomicU64::new(0));

    let pr = primary_runs.clone();
    owner
        .set_primary(move |x| {
            pr.fetch_add(1, Ordering::Relaxed);
            *x
        })
        .expect("fresh event");

    let stop = Arc::new(AtomicBool::new(false));
    let mut raisers = Vec::new();
    for t in 0..RAISERS {
        let ev = ev.clone();
        raisers.push(thread::spawn(move || {
            for i in 0..RAISES_PER_THREAD {
                let v = (t as u64) << 32 | i;
                ev.raise(v).expect("raise must not fail under churn");
            }
        }));
    }

    let churn = {
        let d = d.clone();
        let ev = ev.clone();
        let stop = stop.clone();
        let extra = extra_runs.clone();
        thread::spawn(move || {
            let ident = Identity::extension("churner");
            let key = KeyFn::new(|x: &u64| x & 1);
            let mut cycles = 0u64;
            while !stop.load(Ordering::Relaxed) && cycles < CHURN_CYCLES * 50 {
                cycles += 1;
                let e1 = extra.clone();
                let id1 = ev
                    .install_keyed(ident.clone(), &key, 0, move |x: &u64| {
                        e1.fetch_add(1, Ordering::Relaxed);
                        x + 1
                    })
                    .expect("install keyed even");
                let e2 = extra.clone();
                let id2 = ev
                    .install_keyed(ident.clone(), &key, 1, move |x: &u64| {
                        e2.fetch_add(1, Ordering::Relaxed);
                        x + 2
                    })
                    .expect("install keyed odd");
                d.uninstall(&ev, id1, &ident).expect("uninstall even");
                d.uninstall(&ev, id2, &ident).expect("uninstall odd");
            }
        })
    };

    for t in raisers {
        t.join().expect("no panics");
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().expect("churn thread must not panic");

    let expected = RAISERS as u64 * RAISES_PER_THREAD;
    let stats = d.stats(&ev).expect("alive");
    assert_eq!(stats.raises, expected, "every raise was counted");
    assert_eq!(
        primary_runs.load(Ordering::Relaxed),
        expected,
        "the primary ran exactly once per raise"
    );
    let slow_raises = stats.raises - stats.fast_path_raises;
    assert_eq!(
        stats.handlers_run,
        slow_raises + extra_runs.load(Ordering::Relaxed),
        "slow-path executions reconcile: primary per slow raise + extras"
    );
    // Keyed extras disqualify the fast path AND index the plan: every
    // slow-path snapshot here holds at least one keyed entry, so every
    // slow raise is a compiled raise — and each evaluated its keyed
    // guards via the table.
    assert_eq!(
        stats.compiled_raises, slow_raises,
        "slow raises under keyed churn all dispatch compiled"
    );
    assert!(stats.guards_elided <= stats.guard_evaluations);
    assert_eq!(stats.handlers_aborted, 0);
}

/// Many threads raising concurrently with no writers: pure read-side
/// scaling. Statistics must account for every raise exactly.
#[test]
fn parallel_fast_path_raises_reconcile() {
    let d = Dispatcher::unmetered();
    let (ev, owner) = d.define::<u64, u64>("Stress.Fast", Identity::kernel("stress"));
    owner.set_primary(|x| x * 2).expect("fresh event");

    let mut threads = Vec::new();
    for _ in 0..RAISERS {
        let ev = ev.clone();
        threads.push(thread::spawn(move || {
            for i in 0..RAISES_PER_THREAD {
                assert_eq!(ev.raise(i), Ok(i * 2));
            }
        }));
    }
    for t in threads {
        t.join().expect("no panics");
    }

    let stats = d.stats(&ev).expect("alive");
    let expected = RAISERS as u64 * RAISES_PER_THREAD;
    assert_eq!(stats.raises, expected);
    assert_eq!(
        stats.fast_path_raises, expected,
        "a lone unguarded synchronous handler stays on the fast path"
    );
    assert_eq!(stats.handlers_run, 0, "fast path bypasses the slow loop");
}
