//! Property tests for fault containment: for ANY interleaving of clean
//! raises, injected panics, time-bound overruns and reinstalls, the
//! dispatcher's [`EventStats`] fault/abort counters, the circuit
//! breaker's trip/quarantine state and the fault plan's injection
//! counters reconcile exactly against a reference model stepped op by
//! op. Nothing is lost, double-counted, or attributed to the wrong
//! bucket — no matter how the breaker uninstalls and the test reinstalls
//! along the way.

use proptest::prelude::*;
use spin_core::{
    Constraints, Containment, ContainmentPolicy, Dispatcher, HandlerMode, Identity, InstallDecision,
};
use spin_fault::{FaultPlan, Injection, SiteConfig};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const BOUND: u64 = 1_000;
const STRIKES: u32 = 2;
const TRIPS_TO_QUARANTINE: u32 = 3;

/// What the flaky handler does on its next invocation.
const MODE_OK: u8 = 0;
const MODE_PANIC: u8 = 1;
const MODE_SLOW: u8 = 2;
const OP_REINSTALL: u8 = 3;

/// The reference model: breaker state plus every counter we check.
#[derive(Default)]
struct Model {
    installed: bool,
    strikes: u32,
    trips: u32,
    quarantined: bool,
    raises: u64,
    fast_raises: u64,
    runs: u64,
    faults: u64,
    aborted: u64,
}

impl Model {
    /// A delivered fault (panic or overrun) charges the breaker, unless
    /// the domain is already quarantined (stragglers are only counted).
    fn strike(&mut self) {
        if self.quarantined {
            return;
        }
        self.strikes += 1;
        if self.strikes >= STRIKES {
            self.strikes = 0;
            self.trips += 1;
            self.installed = false;
            if self.trips >= TRIPS_TO_QUARANTINE {
                self.quarantined = true;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fault_and_abort_counters_reconcile_under_any_interleaving(
        ops in prop::collection::vec(0u8..4, 1..60),
    ) {
        let d = Dispatcher::unmetered();
        let clock = d.clock().clone();
        let c = Containment::install(
            &d,
            None,
            ContainmentPolicy {
                strikes: STRIKES,
                window: u64::MAX,
                trips_to_quarantine: TRIPS_TO_QUARANTINE,
            },
        );
        let plan = FaultPlan::new(0xF00D);
        plan.configure("props.flaky", SiteConfig::panic_always());
        let hook = plan.hook("props.flaky");

        let (ev, owner) = d.define::<(), u32>("P", Identity::kernel("k"));
        owner.set_primary(|_| 0).expect("fresh event");
        owner
            .set_auth(|req| {
                // The flaky extension runs synchronously under a time
                // bound; anyone else (nobody here) installs unconstrained.
                if req.installer.name() == "flaky" {
                    InstallDecision::Allow {
                        owner_guard: None,
                        constraints: Some(Constraints {
                            mode: HandlerMode::Synchronous,
                            time_bound: Some(BOUND),
                        }),
                    }
                } else {
                    InstallDecision::Allow { owner_guard: None, constraints: None }
                }
            })
            .expect("fresh event");

        let mode = Arc::new(AtomicU8::new(MODE_OK));
        let flaky = Identity::extension("flaky");
        let install = |ev: &spin_core::Event<(), u32>| {
            let m = mode.clone();
            let h = hook.clone();
            let clk = clock.clone();
            ev.install(flaky.clone(), move |_| {
                match m.load(Ordering::Relaxed) {
                    MODE_PANIC => {
                        if let Some(Injection::Panic) = h.draw() {
                            h.fire_panic()
                        }
                        unreachable!("panic_always never declines")
                    }
                    MODE_SLOW => {
                        clk.advance(BOUND + 1);
                        2
                    }
                    _ => 1,
                }
            })
            .expect("install the flaky handler")
        };

        let mut model = Model { installed: true, ..Model::default() };
        install(&ev);

        for op in ops {
            if op == OP_REINSTALL {
                // Quarantine never blocks the *install*; it just stops
                // charging strikes. Reinstalling is the supervisor's
                // prerogative (and mistake) to make.
                if !model.installed {
                    install(&ev);
                    model.installed = true;
                }
                continue;
            }
            mode.store(op, Ordering::Relaxed);
            model.raises += 1;
            let expect = if !model.installed {
                // Lone unguarded primary: the snapshot fast path.
                model.fast_raises += 1;
                0
            } else {
                match op {
                    MODE_PANIC => {
                        model.runs += 1; // the primary
                        model.faults += 1;
                        model.strike();
                        0
                    }
                    MODE_SLOW => {
                        // The overrunner completes (runs) but its result
                        // is discarded, so the primary's stands.
                        model.runs += 2;
                        model.aborted += 1;
                        model.strike();
                        0
                    }
                    _ => {
                        model.runs += 2;
                        1 // last-result semantics: the flaky handler's value
                    }
                }
            };
            prop_assert_eq!(ev.raise(()), Ok(expect));
        }

        let stats = d.stats(&ev).expect("event alive");
        prop_assert_eq!(stats.raises, model.raises);
        prop_assert_eq!(stats.fast_path_raises, model.fast_raises);
        prop_assert_eq!(stats.handlers_run, model.runs);
        prop_assert_eq!(stats.handler_faults, model.faults);
        prop_assert_eq!(stats.handlers_aborted, model.aborted);
        prop_assert_eq!(stats.async_dispatches, 0);

        // The breaker's view reconciles too: every panic and every abort
        // was delivered to the sink, trips and quarantine followed the
        // budget exactly, and every contained panic was plan-injected.
        prop_assert_eq!(c.faults_seen(), model.faults + model.aborted);
        prop_assert_eq!(c.trips("flaky"), model.trips);
        prop_assert_eq!(c.is_quarantined("flaky"), model.quarantined);
        prop_assert_eq!(plan.injected_panics(), model.faults);
        prop_assert_eq!(
            d.handler_count(&ev).expect("event alive"),
            if model.installed { 2 } else { 1 }
        );
    }
}
