//! Property tests for the dispatcher and capability tables: guard
//! semantics match a reference predicate model, reducers see exactly the
//! guarded-in results in installation order, and externalized references
//! never confuse objects.

use proptest::prelude::*;
use spin_core::{Dispatcher, ExternTable, Identity};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any set of (divisor, addend) handlers guarded on
    /// `value % divisor == 0`, a raise returns exactly what the reference
    /// model predicts under last-result semantics, and a sum-reducer
    /// returns the model's sum.
    #[test]
    fn guards_and_reducers_match_the_reference_model(
        handlers in prop::collection::vec((1u64..7, 0u64..100), 1..10),
        value in 0u64..1000,
    ) {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<u64, u64>("E", Identity::kernel("m"));
        owner.set_primary(|x| *x).expect("fresh");
        for (divisor, addend) in &handlers {
            let (divisor, addend) = (*divisor, *addend);
            ev.install_guarded(
                Identity::extension("h"),
                move |x: &u64| x.is_multiple_of(divisor),
                move |x: &u64| x + addend,
            ).expect("allowed");
        }
        // Reference model: primary first, then handlers in install order.
        let mut results = vec![value];
        for (divisor, addend) in &handlers {
            if value % divisor == 0 {
                results.push(value + addend);
            }
        }
        prop_assert_eq!(ev.raise(value), Ok(*results.last().expect("primary always runs")));

        // With a sum reducer the same set is summed.
        owner.set_reducer(|rs| rs.into_iter().sum()).expect("fresh");
        let expected: u64 = results.iter().sum();
        prop_assert_eq!(ev.raise(value), Ok(expected));
    }

    /// Uninstalling any subset of handlers leaves exactly the others.
    #[test]
    fn uninstall_removes_exactly_the_chosen_handlers(
        count in 1usize..8,
        remove_mask in any::<u8>(),
    ) {
        let d = Dispatcher::unmetered();
        let (ev, owner) = d.define::<(), u64>("E", Identity::kernel("m"));
        owner.set_primary(|_| 0).expect("fresh");
        owner.set_reducer(|rs| rs.into_iter().sum()).expect("fresh");
        let ident = Identity::extension("x");
        let ids: Vec<_> = (0..count)
            .map(|i| {
                let bit = 1u64 << i;
                ev.install(ident.clone(), move |_| bit).expect("allowed")
            })
            .collect();
        let mut expected = 0u64;
        for (i, id) in ids.iter().enumerate() {
            if remove_mask & (1 << i) != 0 {
                d.uninstall(&ev, *id, &ident).expect("installer may remove");
            } else {
                expected |= 1 << i;
            }
        }
        prop_assert_eq!(ev.raise(()), Ok(expected));
    }

    /// Externalized references recover exactly what was externalized,
    /// across interleaved revocations; revoked or foreign handles fail.
    #[test]
    fn extern_table_is_a_faithful_partial_map(
        values in prop::collection::vec(any::<u64>(), 1..30),
        revoke_mask in any::<u32>(),
    ) {
        let table = ExternTable::new();
        let other = ExternTable::new();
        let handles: Vec<_> =
            values.iter().map(|&v| table.externalize(Arc::new(v))).collect();
        for (i, h) in handles.iter().enumerate() {
            if revoke_mask & (1 << (i % 32)) != 0 {
                table.revoke(*h).expect("first revocation succeeds");
            }
        }
        for (i, (h, &v)) in handles.iter().zip(values.iter()).enumerate() {
            let revoked = revoke_mask & (1 << (i % 32)) != 0;
            match table.recover::<u64>(*h) {
                Ok(got) => {
                    prop_assert!(!revoked);
                    prop_assert_eq!(*got, v);
                }
                Err(_) => prop_assert!(revoked),
            }
            // A different application's table never resolves our handles.
            prop_assert!(other.recover::<u64>(*h).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Domain linking: for any split of symbols between two source
    /// domains, resolving against both fills every import exactly once.
    #[test]
    fn resolution_is_complete_and_source_order_independent(
        names in prop::collection::hash_set("[a-z]{3,8}", 1..12),
        split_mask in any::<u16>(),
        flip_order in any::<bool>(),
    ) {
        use spin_core::{Domain, Interface, ObjectFileBuilder};
        let names: Vec<String> = names.into_iter().collect();
        let mut iface_a = Interface::new("I");
        let mut iface_b = Interface::new("I");
        for (i, n) in names.iter().enumerate() {
            let value = Arc::new(i as u64);
            if split_mask & (1 << (i % 16)) != 0 {
                iface_a = iface_a.export(n, value);
            } else {
                iface_b = iface_b.export(n, value);
            }
        }
        let src_a = Domain::create_from_module("a", vec![iface_a]);
        let src_b = Domain::create_from_module("b", vec![iface_b]);

        let mut builder = ObjectFileBuilder::new("client");
        let slots: Vec<_> = names.iter().map(|n| builder.import::<u64>("I", n)).collect();
        let target = Domain::create(builder.sign()).expect("signed");

        let (first, second) = if flip_order { (&src_b, &src_a) } else { (&src_a, &src_b) };
        let r1 = Domain::resolve(first, &target).expect("no type conflicts");
        let r2 = Domain::resolve(second, &target).expect("no type conflicts");
        prop_assert_eq!(r1.resolved + r2.resolved, names.len());
        prop_assert!(r2.unresolved.is_empty(), "{:?}", r2.unresolved);
        prop_assert!(target.fully_resolved());
        for (i, slot) in slots.iter().enumerate() {
            prop_assert_eq!(*slot.get().expect("resolved"), i as u64);
        }
    }
}
