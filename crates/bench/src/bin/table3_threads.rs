//! Table 3: thread management overhead in microseconds.
//!
//! Fork-Join and Ping-Pong for kernel and user threads on DEC OSF/1, Mach
//! and SPIN, including SPIN's two C-Threads structures (layered vs
//! integrated). SPIN rows are measured; baselines are modelled.

use spin_baseline::{MachModel, Osf1Model};
use spin_bench::{render_table, us, JsonReport, Row};
use spin_sal::{MachineProfile, SimBoard};
use spin_sched::{
    measure_fork_join, measure_kernel_fork_join, measure_kernel_ping_pong, measure_ping_pong,
    CThreadsImpl, Executor,
};
use std::sync::Arc;

fn exec() -> Arc<Executor> {
    let board = SimBoard::new();
    Executor::new(
        board.clock.clone(),
        board.timers.clone(),
        board.profile.clone(),
    )
}

fn main() {
    let p = Arc::new(MachineProfile::alpha_axp_3000_400());
    let osf1 = Osf1Model::new(p.clone());
    let mach = MachModel::new(p);

    let rows = vec![
        Row::new(
            "Fork-Join: DEC OSF/1 kernel",
            198.0,
            us(osf1.kernel_fork_join()),
        ),
        Row::new(
            "Fork-Join: DEC OSF/1 user",
            1230.0,
            us(osf1.user_fork_join()),
        ),
        Row::new("Fork-Join: Mach kernel", 101.0, us(mach.kernel_fork_join())),
        Row::new("Fork-Join: Mach user", 338.0, us(mach.user_fork_join())),
        Row::new(
            "Fork-Join: SPIN kernel",
            22.0,
            us(measure_kernel_fork_join(&exec())),
        ),
        Row::new(
            "Fork-Join: SPIN user layered",
            262.0,
            us(measure_fork_join(CThreadsImpl::Layered, &exec())),
        ),
        Row::new(
            "Fork-Join: SPIN user integrated",
            111.0,
            us(measure_fork_join(CThreadsImpl::Integrated, &exec())),
        ),
        Row::new(
            "Ping-Pong: DEC OSF/1 kernel",
            21.0,
            us(osf1.kernel_ping_pong()),
        ),
        Row::new(
            "Ping-Pong: DEC OSF/1 user",
            264.0,
            us(osf1.user_ping_pong()),
        ),
        Row::new("Ping-Pong: Mach kernel", 71.0, us(mach.kernel_ping_pong())),
        Row::new("Ping-Pong: Mach user", 115.0, us(mach.user_ping_pong())),
        Row::new(
            "Ping-Pong: SPIN kernel",
            17.0,
            us(measure_kernel_ping_pong(&exec())),
        ),
        Row::new(
            "Ping-Pong: SPIN user layered",
            159.0,
            us(measure_ping_pong(CThreadsImpl::Layered, &exec())),
        ),
        Row::new(
            "Ping-Pong: SPIN user integrated",
            85.0,
            us(measure_ping_pong(CThreadsImpl::Integrated, &exec())),
        ),
    ];
    print!(
        "{}",
        render_table("Table 3: thread management overhead", "µs", &rows)
    );
    JsonReport::new(
        "table3_threads",
        "Table 3: thread management overhead",
        "µs",
    )
    .rows(&rows)
    .write_if_requested();
}
