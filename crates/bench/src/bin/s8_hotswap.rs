//! §4.3 extension: hot-swapping the Table 6 UDP forwarder mid-storm.
//!
//! One client → forwarder → echo chain (the `table6_forward` topology,
//! each host a kernel shard) takes a storm of uniquely-numbered UDP
//! packets. At virtual instant `T_QUIESCE` a [`SwapCoordinator`] closes
//! the gate on the forwarder's `UDP.PktArrived` event via
//! [`Multicore::post_control`] — arrivals park in the hold queue — and at
//! `T_COMMIT` it transfers the live flow table into a freshly built v2,
//! rebinds the handlers in one generation bump and replays the parked
//! packets in `(deliver_at, lane, seq)` order.
//!
//! Three properties are asserted, all exit-nonzero on failure:
//!
//! 1. **Zero drop**: every storm packet echoes and every echo returns to
//!    the client, with the hold queue reconciling exactly (`held ==
//!    replayed`, `overflowed == 0`) and ≥ 10 000 packets parked at the
//!    commit instant — the swap really happened mid-storm.
//! 2. **Semantic invariance**: packet counts, order-independent payload
//!    checksums and flow-table totals are identical to an uninterrupted
//!    run of the same storm (v2 is built from the transferred snapshot,
//!    so forwarding is semantically identical).
//! 3. **Worker invariance**: every virtual output — including the swap's
//!    own park/replay counters — is byte-identical at 1, 2 and 4 shard
//!    workers; only the wall clock may move.
//!
//! The emitted `BENCH_hotswap.json` contains only virtual-time numbers
//! and is golden-diffed byte-for-byte by `scripts/verify.sh`.

use parking_lot::Mutex;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{Dispatcher, GatedEvent};
use spin_net::{AddressMap, Forwarder, IpAddr, Medium, NetStack};
use spin_sal::{MulticoreBoard, Nanos};
use spin_sched::{IdleOutcome, Multicore};
use spin_swap::{SwapCoordinator, SwapReport, SwapSession, UndoAction};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const ECHO_PORT: u16 = 7;
const CLIENT_PORT: u16 = 9000;
/// Storm size: one packet per [`SEND_GAP`] of virtual time.
const STORM: u64 = 24_000;
const SEND_GAP: Nanos = 1_000;
/// Each send also charges the profile's real protocol cost (~80 µs), so
/// the 24 000-packet storm spans ~1.9 s of virtual time. The gate closes
/// 200 ms in and commits at 1.5 s: well over 10 000 packets (plus the
/// echo replies in flight) arrive into the closed gate and park.
const T_QUIESCE: Nanos = 200_000_000;
const T_COMMIT: Nanos = 1_500_000_000;
/// The "mid-storm" gate from the acceptance bar.
const MIN_IN_FLIGHT: u64 = 10_000;

/// splitmix64 — order-independent payload checksum ingredient.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Outputs that must match between the hot-swapped and uninterrupted
/// runs: counts, order-independent checksums, flow-table totals. No
/// timing — parked packets legitimately reply later than unparked ones.
#[derive(Debug, PartialEq, Eq)]
struct Semantics {
    echo_count: u64,
    echo_xor: u64,
    reply_count: u64,
    reply_xor: u64,
    forwarded: u64,
    replies: u64,
    flows: u64,
}

/// Everything a scenario must reproduce exactly at any worker count.
#[derive(Debug, PartialEq, Eq)]
struct VirtualOutputs {
    sem: Semantics,
    rtt_sum: Nanos,
    last_reply: Nanos,
    clocks: Vec<Nanos>,
    epochs: u64,
    shard_runs: u64,
    mail_posted: u64,
    mail_drained: u64,
    held: u64,
    replayed: u64,
    overflowed: u64,
    drain_ns: Nanos,
    generation: u64,
}

struct RunResult {
    virt: VirtualOutputs,
    wall_ms: f64,
}

fn run(workers: usize, swap: bool) -> RunResult {
    let board = MulticoreBoard::new();
    let mut mc = Multicore::new(workers, board.lookahead());
    let addrs = AddressMap::new();
    let mut stacks = Vec::new();
    for n in 1..=3u8 {
        let host = board.new_host(256);
        let exec = mc.add_host(host.clone());
        let disp = Dispatcher::new(host.clock.clone(), host.profile.clone());
        mc.wire_dispatcher(&disp, host.id);
        let stack = NetStack::install(
            &host,
            &exec,
            &disp,
            &addrs,
            IpAddr::new(10, 0, 0, n),
            IpAddr::new(10, 1, 0, n),
            IpAddr::new(10, 2, 0, n),
        );
        stacks.push((host, exec, stack));
    }
    let (host_a, exec_a, a) = stacks.remove(0);
    let (host_b, _exec_b, b) = stacks.remove(0);
    let (_host_c, _exec_c, c) = stacks.remove(0);

    let medium = Medium::Ethernet;
    let target = c.ip_on(medium);
    let fwd = Arc::new(Forwarder::install_udp(&b, ECHO_PORT, target));

    let echo_count = Arc::new(AtomicU64::new(0));
    let echo_xor = Arc::new(AtomicU64::new(0));
    {
        let (cnt, xor, c2) = (echo_count.clone(), echo_xor.clone(), c.clone());
        spin_net::UdpSocket::bind_with(&c, ECHO_PORT, "echo", move |p| {
            let seq = u64::from_le_bytes(p.payload[0..8].try_into().unwrap());
            cnt.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            xor.fetch_xor(mix(seq), Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            let _ = c2.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
        })
        .expect("bind echo");
    }

    let reply_count = Arc::new(AtomicU64::new(0));
    let reply_xor = Arc::new(AtomicU64::new(0));
    let rtt_sum = Arc::new(AtomicU64::new(0));
    let last_reply = Arc::new(AtomicU64::new(0));
    {
        let (cnt, xor) = (reply_count.clone(), reply_xor.clone());
        let (rtt, last) = (rtt_sum.clone(), last_reply.clone());
        let clock = host_a.clock.clone();
        spin_net::UdpSocket::bind_with(&a, CLIENT_PORT, "client", move |p| {
            let seq = u64::from_le_bytes(p.payload[0..8].try_into().unwrap());
            let sent = u64::from_le_bytes(p.payload[8..16].try_into().unwrap());
            cnt.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            xor.fetch_xor(mix(seq), Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            rtt.fetch_add(clock.now() - sent, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            last.fetch_max(clock.now(), Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
        })
        .expect("bind client");
    }

    // The storm: one uniquely-numbered, send-timestamped packet per gap.
    {
        let a2 = a.clone();
        let b_ip = b.ip_on(medium);
        let clock = host_a.clock.clone();
        exec_a.spawn("storm", move |ctx| {
            for seq in 0..STORM {
                let mut payload = [0u8; 16];
                payload[0..8].copy_from_slice(&seq.to_le_bytes());
                payload[8..16].copy_from_slice(&clock.now().to_le_bytes());
                a2.udp_send(CLIENT_PORT, b_ip, ECHO_PORT, &payload).unwrap();
                ctx.work(SEND_GAP);
            }
        });
    }

    // The swap phases ride the control lane: each runs on the forwarder
    // shard's own pumping thread at an exact virtual instant, totally
    // ordered with packet deliveries — identical at any worker count.
    let coord = SwapCoordinator::new(host_b.clock.clone());
    let v2_slot: Arc<Mutex<Option<Forwarder>>> = Arc::new(Mutex::new(None));
    let report_slot: Arc<Mutex<Option<SwapReport>>> = Arc::new(Mutex::new(None));
    if swap {
        let session_slot: Arc<Mutex<Option<SwapSession>>> = Arc::new(Mutex::new(None));
        {
            let coord = coord.clone();
            let ev = b.events().udp_arrived.clone();
            let slot = session_slot.clone();
            assert!(
                mc.post_control(host_b.id, T_QUIESCE, move |_now| {
                    let gate = Arc::new(ev) as Arc<dyn GatedEvent>;
                    *slot.lock() = Some(coord.begin("Forward", vec![gate]));
                }),
                "post quiesce phase"
            );
        }
        {
            let coord = coord.clone();
            let (fwd, b2) = (fwd.clone(), b.clone());
            let (v2_slot, report_slot) = (v2_slot.clone(), report_slot.clone());
            assert!(
                mc.post_control(host_b.id, T_COMMIT, move |_now| {
                    let session = session_slot
                        .lock()
                        .take()
                        .expect("quiesce phase ran at T_QUIESCE");
                    let ev = b2.events().udp_arrived.clone();
                    let ident = fwd.identity().clone();
                    let report = coord
                        .complete(
                            session,
                            fwd.identity(),
                            &*fwd,
                            |old| old.snapshot(),
                            None,
                            move |snapshot| {
                                let (v2, specs) = Forwarder::udp_swap_specs(
                                    &b2,
                                    ECHO_PORT,
                                    target,
                                    "Forward-v2",
                                    snapshot,
                                );
                                let receipt = ev
                                    .rebind(&ident, &ident, specs)
                                    .expect("rebind forwarder to v2");
                                *v2_slot.lock() = Some(v2);
                                vec![Box::new(move || {
                                    ev.restore(&ident, receipt).expect("restore v1");
                                }) as UndoAction]
                            },
                        )
                        .expect("mid-storm swap commits");
                    *report_slot.lock() = Some(report);
                }),
                "post transfer/rebind/resume phase"
            );
        }
    }

    let t0 = Instant::now();
    assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let ev = &b.events().udp_arrived;
    let hold = ev.hold_stats().expect("event alive");
    let report = report_slot.lock().take();
    let fwd_stats = match v2_slot.lock().as_ref() {
        // The snapshot carries the counters, so v2 continues v1's totals.
        Some(v2) => v2.stats(),
        None => fwd.stats(),
    };

    // Zero drop: every packet echoed, every echo returned, the hold queue
    // reconciles exactly and the commit really happened mid-storm.
    assert_eq!(echo_count.load(Ordering::Relaxed), STORM); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
    assert_eq!(reply_count.load(Ordering::Relaxed), STORM); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
    assert_eq!(hold.replayed, hold.held, "resume drained the hold queue");
    assert_eq!(hold.overflowed, 0, "the hold queue never overflowed");
    assert_eq!(ev.held_len().expect("event alive"), 0);
    if swap {
        let report = report.as_ref().expect("commit phase ran");
        assert!(
            report.held >= MIN_IN_FLIGHT,
            "only {} packets parked at commit; the swap missed the storm",
            report.held
        );
        assert_eq!(report.held, hold.held);
        assert_eq!(report.replayed, hold.replayed);
        let st = coord.stats();
        assert_eq!((st.attempted, st.committed, st.rolled_back), (1, 1, 0));
    } else {
        assert_eq!(hold.held, 0, "nothing parks without a swap");
    }

    RunResult {
        virt: VirtualOutputs {
            sem: Semantics {
                echo_count: echo_count.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                echo_xor: echo_xor.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                reply_count: reply_count.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                reply_xor: reply_xor.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                forwarded: fwd_stats.forwarded,
                replies: fwd_stats.replies,
                flows: fwd_stats.flows,
            },
            rtt_sum: rtt_sum.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            last_reply: last_reply.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            clocks: mc.shards().iter().map(|sh| sh.host.clock.now()).collect(),
            epochs: mc.stats().epochs,
            shard_runs: mc.stats().shard_runs,
            mail_posted: mc.stats().mail_posted,
            mail_drained: mc.stats().mail_drained,
            held: hold.held,
            replayed: hold.replayed,
            overflowed: hold.overflowed,
            drain_ns: report.as_ref().map_or(0, |r| r.drain_ns),
            generation: ev.generation().expect("event alive"),
        },
        wall_ms,
    }
}

fn main() {
    // Each scenario sweeps 1/2/4 workers and must be byte-identical.
    let sweep = |swap: bool| -> Vec<(usize, RunResult)> {
        [1usize, 2, 4].iter().map(|&w| (w, run(w, swap))).collect()
    };
    let plain = sweep(false);
    let swapped = sweep(true);
    for runs in [&plain, &swapped] {
        let base = &runs[0].1;
        for (w, r) in &runs[1..] {
            assert_eq!(
                r.virt, base.virt,
                "virtual outputs diverged at {w} workers — the barrier is broken"
            );
        }
    }
    let base = &plain[0].1.virt;
    let hot = &swapped[0].1.virt;

    // The online-upgrade promise: the hot-swapped storm's packet counts,
    // checksums and flow totals match the uninterrupted run exactly.
    assert_eq!(
        hot.sem, base.sem,
        "hot-swapped outputs diverged from the uninterrupted run"
    );

    let rows = vec![
        Row::extra("storm packets sent", STORM as f64),
        Row::extra("parked at commit instant", hot.held as f64),
        Row::extra("replayed on resume", hot.replayed as f64),
        Row::extra("hold-queue overflows", hot.overflowed as f64),
        Row::extra("gate window / drain (µs)", us(hot.drain_ns)),
        Row::extra("storm completion, uninterrupted (µs)", us(base.last_reply)),
        Row::extra("storm completion, hot-swapped (µs)", us(hot.last_reply)),
        Row::extra("plan generation after swap", hot.generation as f64),
    ];
    print!(
        "{}",
        render_table(
            "S8: live forwarder hot-swap mid-storm (Table 6 topology)",
            "µs",
            &rows
        )
    );
    println!(
        "\nZero dropped packets; semantics identical to the uninterrupted run; \
         outputs byte-identical at 1/2/4 workers."
    );
    for (label, runs) in [("uninterrupted", &plain), ("hot-swapped", &swapped)] {
        let walls: Vec<String> = runs
            .iter()
            .map(|(w, r)| format!("{w}w {:.1}ms", r.wall_ms))
            .collect();
        println!("wall-clock ({label}): {}", walls.join(", "));
    }

    JsonReport::new(
        "hotswap",
        "S8: live forwarder hot-swap mid-storm (Table 6 topology)",
        "µs",
    )
    .rows(&rows)
    .number("storm", STORM as f64)
    .number("min_in_flight_gate", MIN_IN_FLIGHT as f64)
    .number("echo_count", hot.sem.echo_count as f64)
    .number("reply_count", hot.sem.reply_count as f64)
    .number("forwarded", hot.sem.forwarded as f64)
    .number("flow_replies", hot.sem.replies as f64)
    .number("flows", hot.sem.flows as f64)
    .number("quiesce_at_us", us(T_QUIESCE))
    .number("commit_at_us", us(T_COMMIT))
    .text("workers_checked", "1/2/4 byte-identical")
    .text(
        "semantics",
        "hot-swapped == uninterrupted (counts, checksums, flow totals)",
    )
    .write_if_requested();
}
