//! §5.7 extension: multicore shard scaling on the Table 6 forwarding
//! topology.
//!
//! Four independent client → forwarder → echo chains (the `table6_forward`
//! UDP/Ethernet shape), each host a kernel shard, run under the
//! [`Multicore`] barrier at 1, 2 and 4 worker threads. Every virtual-time
//! output — per-chain checksums, round-trip means, shard clocks, mailbox
//! and epoch counters — must be byte-identical across worker counts (the
//! binary exits nonzero otherwise); only the wall clock is allowed to
//! move. Each round burns real CPU alongside its virtual charge so the
//! wall clock has something to parallelise.
//!
//! On a single-core host a ≥2× wall-clock speedup is physically
//! unobtainable, so the headline `speedup_4w` falls back to the
//! deterministic parallelism the epoch plan exposed (average shards
//! granted per epoch, capped at the worker count); `speedup_basis` in
//! `BENCH_multicore.json` says which basis was used.

use parking_lot::Mutex;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::Dispatcher;
use spin_net::{AddressMap, Forwarder, IpAddr, Medium, NetStack};
use spin_sal::{MulticoreBoard, Nanos};
use spin_sched::{IdleOutcome, Multicore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const CHAINS: u64 = 4;
const ROUNDS: u64 = 10;
/// Real-CPU xorshift iterations per client round / echo packet.
const CLIENT_BURN: u64 = 2_000_000;
const ECHO_BURN: u64 = 1_000_000;
/// Virtual charge accompanying each client burn (dwarfs the wire RTT so
/// the chains overlap in virtual time and the plan exposes parallelism).
const WORK_NS: Nanos = 150_000;

/// Deterministic xorshift64 burn — real CPU, data-dependent result.
fn burn(seed: u64, iters: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x)
}

/// Everything a run must reproduce exactly at any worker count.
#[derive(Debug, PartialEq, Eq)]
struct VirtualOutputs {
    /// Per chain: (client checksum, echo checksum, mean RTT ns).
    chains: Vec<(u64, u64, Nanos)>,
    /// Final clock of every shard, in shard order.
    clocks: Vec<Nanos>,
    epochs: u64,
    shard_runs: u64,
    mail_posted: u64,
    mail_drained: u64,
}

struct RunResult {
    virt: VirtualOutputs,
    wall_ms: f64,
}

fn run(workers: usize) -> RunResult {
    let board = MulticoreBoard::new();
    let mut mc = Multicore::new(workers, board.lookahead());
    let addrs = AddressMap::new();
    let mut forwarders = Vec::new();
    let mut chains = Vec::new();
    for c in 0..CHAINS {
        let mut stacks = Vec::new();
        for n in 1..=3u8 {
            let host = board.new_host(256);
            let exec = mc.add_host(host.clone());
            let disp = Dispatcher::new(host.clock.clone(), host.profile.clone());
            mc.wire_dispatcher(&disp, host.id);
            let stack = NetStack::install(
                &host,
                &exec,
                &disp,
                &addrs,
                IpAddr::new(10, 0, c as u8, n),
                IpAddr::new(10, 1, c as u8, n),
                IpAddr::new(10, 2, c as u8, n),
            );
            stacks.push((host, exec, stack));
        }
        let (host_a, exec_a, a) = stacks.remove(0);
        let (_host_b, _exec_b, b) = stacks.remove(0);
        let (_host_c, _exec_c, cstk) = stacks.remove(0);

        forwarders.push(Forwarder::install_udp(&b, 7, cstk.ip_on(Medium::Ethernet)));
        let echo_sum = Arc::new(AtomicU64::new(0));
        let es = echo_sum.clone();
        let c2 = cstk.clone();
        spin_net::UdpSocket::bind_with(&cstk, 7, "echo", move |p| {
            // xor-fold is order-independent, so the sum is deterministic
            // even though handler ordering across packets is not a
            // contract here.
            es.fetch_xor(
                burn(p.payload.len() as u64 ^ 0x9e37_79b9, ECHO_BURN),
                Ordering::Relaxed, // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            );
            let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
        })
        .expect("bind echo");

        let reply = spin_net::UdpSocket::bind(&a, 9000, "client", 4).expect("bind client");
        let b_ip = b.ip_on(Medium::Ethernet);
        let clock = host_a.clock.clone();
        let result: Arc<Mutex<(u64, Nanos)>> = Arc::new(Mutex::new((0, 0)));
        let r2 = result.clone();
        exec_a.spawn("client", move |ctx| {
            a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
            reply.recv(ctx); // warm-up
            let mut sum = 0u64;
            let mut rtt = 0u64;
            for round in 0..ROUNDS {
                sum ^= burn((c << 32) | round, CLIENT_BURN);
                ctx.work(WORK_NS);
                let t0 = clock.now();
                a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
                reply.recv(ctx);
                rtt += clock.now() - t0;
            }
            *r2.lock() = (sum, rtt / ROUNDS);
        });
        chains.push((result, echo_sum));
    }

    let t0 = Instant::now();
    assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let st = mc.stats();
    RunResult {
        virt: VirtualOutputs {
            chains: chains
                .iter()
                .map(|(res, echo)| {
                    let (sum, rtt) = *res.lock();
                    (sum, echo.load(Ordering::Relaxed), rtt) // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                })
                .collect(),
            clocks: mc.shards().iter().map(|sh| sh.host.clock.now()).collect(),
            epochs: st.epochs,
            shard_runs: st.shard_runs,
            mail_posted: st.mail_posted,
            mail_drained: st.mail_drained,
        },
        wall_ms,
    }
}

fn main() {
    let sweep: Vec<(usize, RunResult)> = [1usize, 2, 4].iter().map(|&w| (w, run(w))).collect();
    let base = &sweep[0].1;
    for (w, r) in &sweep[1..] {
        assert_eq!(
            r.virt, base.virt,
            "virtual outputs diverged at {w} workers — the barrier is broken"
        );
    }

    let rtt = base.virt.chains[0].2;
    let avg_par = base.virt.shard_runs as f64 / base.virt.epochs as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wall = |w: usize| {
        sweep
            .iter()
            .find(|(sw, _)| *sw == w)
            .map(|(_, r)| r.wall_ms)
            .expect("swept")
    };
    let (speedup_4w, basis) = if cores >= 2 {
        (
            wall(1) / wall(4),
            format!("measured wall-clock ({cores} cores)"),
        )
    } else {
        (
            avg_par.min(4.0),
            "exposed parallelism (single-core host; wall-clock speedup unmeasurable)".to_string(),
        )
    };

    let mut rows = vec![Row::new(
        "UDP Ethernet forward RTT (sharded)",
        1344.0,
        us(rtt),
    )];
    for (w, r) in &sweep {
        rows.push(Row::extra(
            &format!("wall-clock, {w} worker(s) (ms)"),
            r.wall_ms,
        ));
    }
    rows.push(Row::extra("speedup, 4 workers vs 1", speedup_4w));
    rows.push(Row::extra("avg shards runnable per epoch", avg_par));
    print!(
        "{}",
        render_table(
            "S7: multicore shard scaling (Table 6 forwarding topology x4)",
            "µs",
            &rows
        )
    );
    println!("\nVirtual outputs byte-identical at 1/2/4 workers; speedup basis: {basis}.");

    JsonReport::new(
        "multicore",
        "S7: multicore shard scaling (Table 6 forwarding topology x4)",
        "µs",
    )
    .rows(&rows)
    .number("chains", CHAINS as f64)
    .number("shards", (CHAINS * 3) as f64)
    .number("cores", cores as f64)
    .number("epochs", base.virt.epochs as f64)
    .number("avg_parallelism", avg_par)
    .number("wall_ms_1w", wall(1))
    .number("wall_ms_2w", wall(2))
    .number("wall_ms_4w", wall(4))
    .number("speedup_4w", speedup_4w)
    .text("speedup_basis", &basis)
    .write_if_requested();
}
