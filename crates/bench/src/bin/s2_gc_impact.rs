//! §5.5 "Impact of automatic storage management".
//!
//! "None of the measurements presented in this section change when we
//! disable the collector during the tests" — because SPIN and its
//! extensions avoid allocation on fast paths. We rerun a representative
//! microbenchmark set with the collector enabled vs disabled and show the
//! deltas, then stress the collector to report its safety-net behaviour.

use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{Dispatcher, Identity};
use spin_rt::{GcError, KernelHeap};
use spin_sal::{Clock, MachineProfile};
use spin_vm::VmWorkbench;
use std::sync::Arc;

fn dispatch_cost() -> u64 {
    let clock = Clock::new();
    let d = Dispatcher::new(
        clock.clone(),
        Arc::new(MachineProfile::alpha_axp_3000_400()),
    );
    let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("bench"));
    owner.set_primary(|_| ()).expect("fresh");
    let t0 = clock.now();
    for _ in 0..1000 {
        ev.raise(()).expect("ok");
    }
    (clock.now() - t0) / 1000
}

fn main() {
    // The microbenchmarks do not allocate on their fast paths, so the
    // collector's enablement cannot affect them; demonstrate by running
    // them bracketed by heavy collector activity.
    let heap = KernelHeap::with_capacity(64 * 1024);

    let run_suite = || {
        (
            dispatch_cost(),
            VmWorkbench::new().fault_ns(),
            VmWorkbench::new().prot1_ns(),
        )
    };

    heap.set_enabled(true);
    // Generate garbage + collections while measuring.
    for i in 0..20_000u64 {
        let _ = heap.alloc(i);
    }
    let (d_on, f_on, p_on) = run_suite();
    let collections_during = heap.stats().collections;

    heap.set_enabled(false);
    let (d_off, f_off, p_off) = run_suite();

    let rows = vec![
        Row::extra("protected call, collector ON", us(d_on)),
        Row::extra("protected call, collector OFF", us(d_off)),
        Row::extra("VM fault, collector ON", us(f_on)),
        Row::extra("VM fault, collector OFF", us(f_off)),
        Row::extra("Prot1, collector ON", us(p_on)),
        Row::extra("Prot1, collector OFF", us(p_off)),
    ];
    print!(
        "{}",
        render_table("§5.5: collector impact on microbenchmarks", "µs", &rows)
    );
    assert_eq!((d_on, f_on, p_on), (d_off, f_off, p_off));
    println!(
        "\nAll deltas are exactly zero ({collections_during} collections ran during the ON pass):"
    );
    println!(
        "fast paths allocate nothing, so the collector never interposes — the paper's result."
    );

    // The safety-net role: garbage from a sloppy extension is reclaimed,
    // and a disabled collector surfaces exhaustion instead of corruption.
    let stressed = KernelHeap::with_capacity(32 * 1024);
    for i in 0..50_000u64 {
        stressed.alloc(i).expect("collector keeps up with garbage");
    }
    let s = stressed.stats();
    println!(
        "\nSafety net: 50,000 leaked allocations survived in a 32 KB heap via {} collections\n\
         ({} bytes reclaimed); stale references observe GcError::Dangling, never reuse.",
        s.collections, s.bytes_freed
    );
    let disabled = KernelHeap::with_capacity(4 * 1024);
    disabled.set_enabled(false);
    let mut failed = false;
    for i in 0..1_000u64 {
        if disabled.alloc(i) == Err(GcError::HeapFull) {
            failed = true;
            break;
        }
    }
    assert!(failed);
    println!("With the collector disabled the same workload fails safe with HeapFull.");
    JsonReport::new(
        "s2_gc_impact",
        "§5.5: collector impact on microbenchmarks",
        "µs",
    )
    .rows(&rows)
    .number("collections_during_on_pass", collections_during as f64)
    .number("safety_net_collections", s.collections as f64)
    .number("safety_net_bytes_freed", s.bytes_freed as f64)
    .write_if_requested();
}
