//! Table 2: protected communication overhead in microseconds.
//!
//! "Protected in-kernel call", "System call" and "Cross-address space
//! call" on DEC OSF/1, Mach and SPIN. SPIN's rows are *measured* on the
//! simulated paths; OSF/1's and Mach's come from the structural models.

use spin_baseline::{MachModel, Osf1Model};
use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{Dispatcher, Identity, Kernel};
use spin_sal::{Clock, MachineProfile, SimBoard};
use spin_sched::{measure_xas_call, Executor};
use std::sync::Arc;

fn spin_in_kernel_call() -> u64 {
    let clock = Clock::new();
    let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
    let d = Dispatcher::new(clock.clone(), profile);
    let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("bench"));
    owner.set_primary(|_| ()).expect("fresh");
    let t0 = clock.now();
    const N: u64 = 1000;
    for _ in 0..N {
        ev.raise(()).expect("handler installed");
    }
    (clock.now() - t0) / N
}

fn spin_syscall() -> u64 {
    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    kernel
        .register_syscalls(Identity::extension("null"), 0..1, |_| 0)
        .expect("install");
    let clock = kernel.host().clock.clone();
    let t0 = clock.now();
    const N: u64 = 100;
    for _ in 0..N {
        kernel.syscall(0, [0; 6]);
    }
    (clock.now() - t0) / N
}

fn spin_xas() -> u64 {
    let board = SimBoard::new();
    let host = board.new_host(64);
    let exec = Executor::for_host(&host);
    measure_xas_call(&exec)
}

fn main() {
    let p = Arc::new(MachineProfile::alpha_axp_3000_400());
    let osf1 = Osf1Model::new(p.clone());
    let mach = MachModel::new(p);

    let rows = vec![
        Row::new(
            "SPIN: protected in-kernel call",
            0.13,
            us(spin_in_kernel_call()),
        ),
        Row::new("SPIN: system call", 4.0, us(spin_syscall())),
        Row::new("SPIN: cross-address space call", 89.0, us(spin_xas())),
        Row::new("DEC OSF/1: system call", 5.0, us(osf1.null_syscall())),
        Row::new(
            "DEC OSF/1: cross-address space call",
            845.0,
            us(osf1.cross_address_space_call()),
        ),
        Row::new("Mach: system call", 7.0, us(mach.null_syscall())),
        Row::new(
            "Mach: cross-address space call",
            104.0,
            us(mach.cross_address_space_call()),
        ),
    ];
    print!(
        "{}",
        render_table("Table 2: protected communication overhead", "µs", &rows)
    );
    println!("\nNeither DEC OSF/1 nor Mach support protected in-kernel communication.");
    JsonReport::new(
        "table2_comm",
        "Table 2: protected communication overhead",
        "µs",
    )
    .rows(&rows)
    .write_if_requested();
}
