//! Table 4: virtual memory operation overheads in microseconds.
//!
//! Dirty, Fault, Trap, Prot1, Prot100, Unprot100, Appel1, Appel2 on
//! DEC OSF/1 (signals + mprotect), Mach (external pager) and SPIN
//! (application-specific syscalls + in-kernel fault handlers). SPIN rows
//! are measured on the simulated VM; baselines are modelled.

use spin_baseline::{MachModel, Osf1Model};
use spin_bench::{render_table, us, JsonReport, Row};
use spin_sal::MachineProfile;
use spin_vm::VmWorkbench;
use std::sync::Arc;

fn main() {
    let p = Arc::new(MachineProfile::alpha_axp_3000_400());
    let osf1 = Osf1Model::new(p.clone());
    let mach = MachModel::new(p);

    // Fresh workbench per measurement to avoid handler interference.
    let rows = vec![
        Row::new("Dirty: SPIN", 2.0, us(VmWorkbench::new().dirty_ns())),
        Row::new("Fault: DEC OSF/1", 329.0, us(osf1.vm_fault())),
        Row::new("Fault: Mach", 415.0, us(mach.vm_fault())),
        Row::new("Fault: SPIN", 29.0, us(VmWorkbench::new().fault_ns())),
        Row::new("Trap: DEC OSF/1", 260.0, us(osf1.vm_trap())),
        Row::new("Trap: Mach", 185.0, us(mach.vm_trap())),
        Row::new("Trap: SPIN", 7.0, us(VmWorkbench::new().trap_ns())),
        Row::new("Prot1: DEC OSF/1", 45.0, us(osf1.vm_prot1())),
        Row::new("Prot1: Mach", 106.0, us(mach.vm_prot1())),
        Row::new("Prot1: SPIN", 16.0, us(VmWorkbench::new().prot1_ns())),
        Row::new("Prot100: DEC OSF/1", 1041.0, us(osf1.vm_prot100())),
        Row::new("Prot100: Mach", 1792.0, us(mach.vm_prot100())),
        Row::new("Prot100: SPIN", 213.0, us(VmWorkbench::new().prot100_ns())),
        Row::new("Unprot100: DEC OSF/1", 1016.0, us(osf1.vm_unprot100())),
        Row::new("Unprot100: Mach", 302.0, us(mach.vm_unprot100())),
        Row::new(
            "Unprot100: SPIN",
            214.0,
            us(VmWorkbench::new().unprot100_ns()),
        ),
        Row::new("Appel1: DEC OSF/1", 382.0, us(osf1.vm_appel1())),
        Row::new("Appel1: Mach", 819.0, us(mach.vm_appel1())),
        Row::new("Appel1: SPIN", 39.0, us(VmWorkbench::new().appel1_ns())),
        Row::new("Appel2: DEC OSF/1", 351.0, us(osf1.vm_appel2())),
        Row::new("Appel2: Mach", 608.0, us(mach.vm_appel2())),
        Row::new("Appel2: SPIN", 29.0, us(VmWorkbench::new().appel2_ns())),
    ];
    print!(
        "{}",
        render_table("Table 4: virtual memory operation overheads", "µs", &rows)
    );
    println!("\nNeither DEC OSF/1 nor Mach provide an interface for querying page state (Dirty).");
    JsonReport::new(
        "table4_vm",
        "Table 4: virtual memory operation overheads",
        "µs",
    )
    .rows(&rows)
    .write_if_requested();
}
