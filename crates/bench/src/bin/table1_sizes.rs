//! Table 1: size of the system's components.
//!
//! The paper reports source lines (excluding comments) and object sizes
//! for `sys`, `core`, `rt`, `lib` and `sal`. We report the analogous
//! breakdown of this reproduction's crates, mapping each to the paper
//! component it implements. Object-size proxies come from the compiled
//! rlibs when a `target/` build exists.

use spin_bench::{count_dir_lines, JsonReport};
use std::path::Path;

fn rlib_size(name: &str) -> Option<u64> {
    let deps = Path::new("target/debug/deps");
    let entries = std::fs::read_dir(deps).ok()?;
    let prefix = format!("lib{}-", name.replace('-', "_"));
    let mut best = None;
    for e in entries.flatten() {
        let fname = e.file_name().to_string_lossy().into_owned();
        if fname.starts_with(&prefix) && fname.ends_with(".rlib") {
            if let Ok(md) = e.metadata() {
                best = Some(best.map_or(md.len(), |b: u64| b.max(md.len())));
            }
        }
    }
    best
}

fn main() {
    // (our crate, paper component, paper's non-comment line count)
    let components = [
        ("crates/core", "sys (extensibility machinery)", Some(1646)),
        ("crates/vm", "core: memory services", None),
        ("crates/sched", "core: scheduling + threads", None),
        ("crates/fs", "core: file system", None),
        ("crates/net", "core: network services", None),
        ("crates/rt", "rt (runtime / collector)", Some(14216)),
        ("crates/sal", "sal (hardware substrate)", Some(37690)),
        ("crates/baseline", "(comparison system models)", None),
        ("crates/bench", "(evaluation harness)", None),
        ("src", "(facade)", None),
        ("examples", "(examples)", None),
        ("tests", "(integration tests)", None),
    ];
    // The paper's `core` line count covers VM + sched + fs + net + devices.
    const PAPER_CORE_LINES: usize = 10866;
    const PAPER_TOTAL: usize = 65652;

    println!("\nTable 1: system component sizes");
    println!("===============================");
    println!(
        "{:<42} {:>9} {:>12} {:>14}",
        "component (ours -> paper)", "lines", "paper lines", "object bytes"
    );
    println!("{}", "-".repeat(80));
    let mut total = 0;
    let mut core_total = 0;
    let mut report = JsonReport::new("table1_sizes", "Table 1: system component sizes", "lines");
    for (dir, label, paper) in components {
        let lines = count_dir_lines(Path::new(dir));
        total += lines;
        if label.starts_with("core:") {
            core_total += lines;
        }
        let crate_name = dir.strip_prefix("crates/").unwrap_or(dir);
        let obj = if dir.starts_with("crates") {
            rlib_size(&format!("spin-{crate_name}"))
        } else {
            None
        };
        println!(
            "{:<42} {:>9} {:>12} {:>14}",
            label,
            lines,
            paper.map_or("-".to_string(), |p: usize| p.to_string()),
            obj.map_or("-".to_string(), |o| o.to_string()),
        );
        report = report.row(label, paper.map(|p| p as f64), lines as f64);
    }
    println!("{}", "-".repeat(80));
    println!(
        "{:<42} {:>9} {:>12}",
        "core services combined (paper `core`)", core_total, PAPER_CORE_LINES
    );
    println!("{:<42} {:>9} {:>12}", "total", total, PAPER_TOTAL);
    println!(
        "\nThe paper's sal was a diff of the DEC OSF/1 source tree (57% of the kernel);\n\
         ours is a from-scratch simulation, so relative proportions differ by design."
    );
    report
        .row(
            "core services combined (paper `core`)",
            Some(PAPER_CORE_LINES as f64),
            core_total as f64,
        )
        .row("total", Some(PAPER_TOTAL as f64), total as f64)
        .write_if_requested();
}
