//! Figure 6: video-server CPU utilization as a function of the number of
//! client streams, SPIN vs DEC OSF/1, both on the T3 DMA adapter.
//!
//! "Each stream requires approximately 3 Mb/sec. At 15 streams, both SPIN
//! and DEC OSF/1 saturate the network, but SPIN consumes only half as much
//! of the processor." SPIN's curve is *measured*: the server runs the real
//! pipeline (file system → SendPacket multicast → T3 driver) and
//! utilization is CPU-busy time over the run window, as the paper measures
//! via an idle thread. OSF/1's curve applies the modelled per-frame cost
//! (read copy-out, per-packet send syscalls and copy-ins, no shared
//! protocol traversal).

use spin_baseline::Osf1Model;
use spin_bench::JsonReport;
use spin_fs::{BufferCache, FileSystem, LruPolicy};
use spin_net::{Medium, TwoHosts, VideoClient, VideoServer};
use spin_sal::{HostId, MachineProfile};
use std::sync::Arc;

/// ~3 Mb/s per stream: 30 frames/s of 12.5 KB.
const FRAME: usize = 12_500;
const FPS: u64 = 30;
const FRAMES: u64 = 30; // one virtual second
const PACKET: usize = 8_000;

fn spin_utilization(clients: u32) -> f64 {
    let rig = TwoHosts::new();
    let cache = BufferCache::new(
        rig.host_a.disk.clone(),
        rig.exec.clone(),
        512,
        Box::new(LruPolicy::default()),
    );
    let fs = FileSystem::format(cache, 0, 800);
    let fs2 = fs.clone();
    rig.exec.spawn("mkfs", move |ctx| {
        fs2.create("/movie").unwrap();
        fs2.write_file(ctx, "/movie", &vec![1u8; 40 * FRAME])
            .unwrap();
    });
    rig.exec.run_until_idle();
    let _client = VideoClient::install(&rig.b);
    let server = VideoServer::start(&rig.a, fs, "/movie", FRAME, FPS, FRAMES, PACKET);
    for _ in 0..clients {
        server.add_client(rig.b.ip_on(Medium::T3));
    }
    let t0 = rig.exec.clock().now();
    let busy0 = rig.exec.host_busy(HostId(0));
    rig.exec.run_until_idle();
    let elapsed = (rig.exec.clock().now() - t0).max(1);
    let busy = rig.exec.host_busy(HostId(0)) - busy0;
    busy as f64 / elapsed as f64 * 100.0
}

fn osf1_utilization(model: &Osf1Model, clients: u32) -> f64 {
    // Per second: FPS frames, each read once (shared) and sent once per
    // client per packet through the same T3 driver SPIN uses.
    let packets = FRAME.div_ceil(PACKET) as u64;
    let t3_driver = spin_sal::devices::nic::NicModel::t3_dma().driver_ns;
    let reads = FPS * model.video_read_cpu(FRAME);
    let sends = FPS * clients as u64 * packets * model.video_send_cpu(PACKET, t3_driver);
    (reads + sends) as f64 / 1e9 * 100.0
}

fn main() {
    let model = Osf1Model::new(Arc::new(MachineProfile::alpha_axp_3000_400()));
    println!("\nFigure 6: video server CPU utilization vs client streams (T3, DMA)");
    println!("===================================================================");
    println!(
        "{:>8} {:>12} {:>14} {:>8}",
        "clients", "SPIN (%)", "DEC OSF/1 (%)", "ratio"
    );
    println!("{}", "-".repeat(46));
    let mut last = (0.0, 0.0);
    let mut report = JsonReport::new(
        "fig6_video",
        "Figure 6: video server CPU utilization vs client streams",
        "percent_cpu",
    );
    for clients in [2u32, 4, 6, 8, 10, 12, 14, 15] {
        let spin = spin_utilization(clients);
        let osf = osf1_utilization(&model, clients);
        println!(
            "{clients:>8} {spin:>12.1} {osf:>14.1} {:>8.2}",
            osf / spin.max(0.01)
        );
        report = report
            .row(&format!("SPIN: {clients} streams"), None, spin)
            .row(&format!("DEC OSF/1: {clients} streams"), None, osf);
        last = (spin, osf);
    }
    println!("{}", "-".repeat(46));
    println!(
        "At 15 streams ({} Mb/s aggregate, saturating the 45 Mb/s T3), the paper\n\
         reports SPIN at roughly half of OSF/1's utilization; our ratio is {:.2}.",
        15 * 3,
        last.1 / last.0.max(0.01)
    );
    report
        .number("saturation_ratio", last.1 / last.0.max(0.01))
        .write_if_requested();
}
