//! Table 6: round-trip latency to route 16-byte packets through a
//! protocol forwarder (µs), TCP and UDP over Ethernet and ATM.
//!
//! SPIN's forwarder is an in-stack extension on the middle host; OSF/1's
//! is a user-level process splicing sockets, which adds boundary crossings
//! and copies per forwarded packet (and cannot forward control packets).

use parking_lot::Mutex;
use spin_baseline::Osf1Model;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_net::{Forwarder, Medium, TcpStack, ThreeHosts};
use spin_sal::{MachineProfile, Nanos};
use std::sync::Arc;

/// UDP: client on A sends to forwarder B, spliced to echo server C.
fn spin_udp_forward_rtt(medium: Medium) -> Nanos {
    let rig = ThreeHosts::new();
    let _fwd = Forwarder::install_udp(&rig.b, 7, rig.c.ip_on(medium));
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
        let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).expect("bind client");
    let b_ip = rig.b.ip_on(medium);
    let a = rig.a.clone();
    let clock = rig.exec.clock().clone();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let r = *out.lock();
    r
}

/// TCP: an established connection through the splice; 16-byte request,
/// 16-byte reply.
fn spin_tcp_forward_rtt(medium: Medium) -> Nanos {
    let rig = ThreeHosts::new();
    let _fwd = Forwarder::install_tcp(&rig.b, 80, rig.c.ip_on(medium));
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_c = TcpStack::install(&rig.c);
    let listener = tcp_c.listen(80);
    rig.exec.spawn("server", move |ctx| {
        if let Some(conn) = listener.accept(ctx) {
            while let Some(req) = conn.recv(ctx) {
                if conn.send(ctx, &req).is_err() {
                    break;
                }
            }
        }
    });
    let b_ip = rig.b.ip_on(medium);
    let clock = rig.exec.clock().clone();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("client", move |ctx| {
        let conn = tcp_a.connect(ctx, b_ip, 80).expect("splice handshake");
        conn.send(ctx, &[0u8; 16]).unwrap();
        conn.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            conn.send(ctx, &[0u8; 16]).unwrap();
            conn.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
        conn.close(ctx);
    });
    rig.exec.run_until_idle();
    let r = *out.lock();
    r
}

fn main() {
    let p = Arc::new(MachineProfile::alpha_axp_3000_400());
    let osf1 = Osf1Model::new(p);

    let spin_rows = [
        (
            "TCP Ethernet",
            Medium::Ethernet,
            spin_tcp_forward_rtt(Medium::Ethernet),
            1420.0,
            2080.0,
        ),
        (
            "TCP ATM",
            Medium::Atm,
            spin_tcp_forward_rtt(Medium::Atm),
            1067.0,
            1730.0,
        ),
        (
            "UDP Ethernet",
            Medium::Ethernet,
            spin_udp_forward_rtt(Medium::Ethernet),
            1344.0,
            1607.0,
        ),
        (
            "UDP ATM",
            Medium::Atm,
            spin_udp_forward_rtt(Medium::Atm),
            1024.0,
            1389.0,
        ),
    ];
    let mut rows = Vec::new();
    for (label, _medium, spin_ns, spin_paper, osf_paper) in spin_rows {
        rows.push(Row::new(&format!("{label}: SPIN"), spin_paper, us(spin_ns)));
        rows.push(Row::new(
            &format!("{label}: DEC OSF/1 (user-level)"),
            osf_paper,
            us(osf1.forwarder_round_trip(spin_ns, 16)),
        ));
    }
    print!(
        "{}",
        render_table(
            "Table 6: 16-byte round trip through a protocol forwarder",
            "µs",
            &rows
        )
    );
    println!("\nThe OSF/1 user-level splice also violates TCP end-to-end semantics (§5.3);");
    println!("SPIN's in-stack forwarder forwards SYN/FIN/RST and preserves them.");
    JsonReport::new(
        "table6_forward",
        "Table 6: 16-byte round trip through a protocol forwarder",
        "µs",
    )
    .rows(&rows)
    .write_if_requested();
}
