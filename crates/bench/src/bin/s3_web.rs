//! §5.4: the web server experiment.
//!
//! "The client-side latency of an HTTP transaction to a SPIN web server
//! running as a kernel extension is 5 milliseconds when the requested file
//! is in the server's cache. ... A comparable user-level web server on
//! DEC OSF/1 that relies on the operating system's caching file system
//! takes about 8 milliseconds per request for the same cached file."

use parking_lot::Mutex;
use spin_baseline::Osf1Model;
use spin_bench::{render_table, JsonReport, Row};
use spin_fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
use spin_net::{http_get, HttpServer, Medium, TcpStack, TwoHosts};
use spin_sal::MachineProfile;
use std::sync::Arc;

fn main() {
    let rig = TwoHosts::new();
    let tcp_a = TcpStack::install(&rig.a);
    let tcp_b = TcpStack::install(&rig.b);
    let bc = BufferCache::new(
        rig.host_b.disk.clone(),
        rig.exec.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 500);
    let fs2 = fs.clone();
    rig.exec.spawn("content", move |ctx| {
        fs2.create("/page.html").unwrap();
        fs2.write_file(ctx, "/page.html", &vec![b'x'; 3_000])
            .unwrap();
    });
    rig.exec.run_until_idle();
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65_536,
        }),
    ));
    let _server = HttpServer::start(&rig.b, &tcp_b, fs, cache, 80);

    let dst = rig.b.ip_on(Medium::Ethernet);
    let clock = rig.exec.clock().clone();
    let times = Arc::new(Mutex::new(Vec::new()));
    let t2 = times.clone();
    rig.exec.spawn("browser", move |ctx| {
        for _ in 0..4 {
            let t0 = clock.now();
            http_get(ctx, &tcp_a, dst, 80, "/page.html").expect("200");
            t2.lock().push(clock.now() - t0);
        }
    });
    rig.exec.run_until_idle();

    let t = times.lock();
    let uncached_ms = t[0] as f64 / 1e6;
    let cached_ms = t[1..].iter().sum::<u64>() as f64 / (t.len() - 1) as f64 / 1e6;
    let model = Osf1Model::new(Arc::new(MachineProfile::alpha_axp_3000_400()));
    let osf_ms = model.web_request((cached_ms * 1e6) as u64, 3_000) as f64 / 1e6;

    let rows = vec![
        Row::new("SPIN in-kernel server, cached file", 5.0, cached_ms),
        Row::new("DEC OSF/1 user-level server, cached", 8.0, osf_ms),
        Row::extra("SPIN, first (uncached) request", uncached_ms),
    ];
    print!(
        "{}",
        render_table("§5.4: HTTP transaction latency", "ms", &rows)
    );
    println!(
        "\nThe SPIN server controls its own hybrid cache (LRU small / no-cache large)\n\
         over an uncached file system: full policy control with no double buffering."
    );
    JsonReport::new("s3_web", "§5.4: HTTP transaction latency", "ms")
        .rows(&rows)
        .write_if_requested();
}
