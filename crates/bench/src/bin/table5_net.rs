//! Table 5: network protocol latency (µs) and receive bandwidth (Mb/s).
//!
//! UDP/IP between two hosts over Ethernet and ATM: 16-byte round trips for
//! latency, large packets (1500/8132 on the wire) for bandwidth. SPIN rows
//! are measured end-to-end through the simulated stack; OSF/1 rows add the
//! modelled user-level crossings and copies.

use spin_baseline::Osf1Model;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_net::{reliable_bandwidth, udp_round_trip, Medium, TwoHosts};
use spin_sal::MachineProfile;
use std::sync::Arc;

fn main() {
    let p = Arc::new(MachineProfile::alpha_axp_3000_400());
    let osf1 = Osf1Model::new(p);

    // Latency: fresh rig per medium.
    let rig = TwoHosts::new();
    let spin_eth_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 16);
    let rig = TwoHosts::new();
    let spin_atm_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Atm, 16, 16);

    // Bandwidth: payload sizes chosen so the on-wire packets are the
    // paper's 1500 (Ethernet) and 8132 (ATM).
    let rig = TwoHosts::new();
    let spin_eth_bw = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 1458, 80, 16);
    let rig = TwoHosts::new();
    let spin_atm_bw = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Atm, 8104, 80, 16);

    let rows = vec![
        Row::new(
            "Latency Ethernet: DEC OSF/1",
            789.0,
            us(osf1.udp_round_trip(spin_eth_rtt, 16)),
        ),
        Row::new("Latency Ethernet: SPIN", 565.0, us(spin_eth_rtt)),
        Row::new(
            "Latency ATM: DEC OSF/1",
            631.0,
            us(osf1.udp_round_trip(spin_atm_rtt, 16)),
        ),
        Row::new("Latency ATM: SPIN", 421.0, us(spin_atm_rtt)),
    ];
    print!(
        "{}",
        render_table("Table 5a: UDP/IP round-trip latency", "µs", &rows)
    );
    let latency_rows = rows;

    let rows = vec![
        Row::new(
            "Bandwidth Ethernet: DEC OSF/1",
            8.9,
            osf1.receive_bandwidth_mbps(spin_eth_bw, 1458),
        ),
        Row::new("Bandwidth Ethernet: SPIN", 8.9, spin_eth_bw),
        Row::new(
            "Bandwidth ATM: DEC OSF/1",
            27.9,
            osf1.receive_bandwidth_mbps(spin_atm_bw, 8104),
        ),
        Row::new("Bandwidth ATM: SPIN", 33.0, spin_atm_bw),
    ];
    print!(
        "{}",
        render_table("Table 5b: receive bandwidth", "Mb/s", &rows)
    );
    println!("\nThe FORE cards' programmed I/O caps usable ATM bandwidth near 53 Mb/s (§5).");
    JsonReport::new(
        "table5_net",
        "Table 5: network latency and bandwidth",
        "µs latency / Mb/s bandwidth",
    )
    .rows(&latency_rows)
    .rows(&rows)
    .write_if_requested();
}
