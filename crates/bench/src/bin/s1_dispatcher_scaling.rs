//! §5.5 "Scalability and the dispatcher": event dispatch overhead is
//! linear in the number of guards and handlers.
//!
//! "Round trip Ethernet latency, which we measure at 565 µs, rises to
//! about 585 µs when 50 additional guards and handlers register interest
//! in the arrival of some UDP packet but all 50 guards evaluate to false.
//! When all 50 guards evaluate to true, latency rises to 637 µs."
//!
//! Beyond the paper's three data points, this binary sweeps 1–500 guards
//! in two installations of the same watcher set:
//!
//! * **sequential** — opaque closure guards ([`Event::install_guarded`]),
//!   which the dispatcher must evaluate one by one;
//! * **compiled** — key-indexed guards ([`Event::install_keyed`] on the
//!   stack's shared destination-port key), which the guard-set compiler
//!   folds into a hash lookup.
//!
//! Virtual time is charged per *logically evaluated* guard, so the two
//! columns are identical by construction (asserted below): compilation is
//! a wall-clock optimisation, not a cost-model change. The wall-clock side
//! of the story — sublinear compiled raises and `raise_batch` amortisation
//! — is measured on a raw dispatcher and lands in
//! `BENCH_dispatch_compiled.json`.

use std::time::Instant;

use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{Dispatcher, Identity, KeyFn};
use spin_net::{udp_round_trip, Medium, TwoHosts, UdpPacket};
use spin_sal::Nanos;

/// Guard counts for the scaling sweep.
const GUARD_COUNTS: [usize; 6] = [1, 10, 50, 100, 250, 500];

/// The echo service's port in [`udp_round_trip`]; keyed watchers guarding
/// on a different port are logically-false guards, like the paper's "all
/// guards evaluate to false" configuration.
const ECHO_PORT: u64 = 7;
const UNUSED_PORT: u64 = 9;

/// RTT with `extra` opaque (sequentially evaluated) watcher guards on the
/// server's UDP-arrival event.
fn rtt_with_guards(extra: usize, guards_pass: bool) -> Nanos {
    let rig = TwoHosts::new();
    for i in 0..extra {
        rig.b
            .events()
            .udp_arrived
            .install_guarded(
                Identity::extension(&format!("watcher-{i}")),
                move |_p: &UdpPacket| guards_pass,
                |_p: &UdpPacket| {},
            )
            .expect("install watcher");
    }
    udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 16)
}

/// RTT with `extra` keyed (compiled) watcher guards on the same event.
/// The guards share the stack's destination-port key, so the compiler
/// indexes all of them; `guards_pass` picks the echo port (every guard
/// matches) or an unused one (every guard misses).
fn rtt_with_keyed_guards(extra: usize, guards_pass: bool) -> Nanos {
    let rig = TwoHosts::new();
    let port = if guards_pass { ECHO_PORT } else { UNUSED_PORT };
    for i in 0..extra {
        rig.b
            .events()
            .udp_arrived
            .install_keyed(
                Identity::extension(&format!("watcher-{i}")),
                &rig.b.events().udp_port_key,
                port,
                |_p: &UdpPacket| {},
            )
            .expect("install keyed watcher");
    }
    udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 16)
}

/// A raw-dispatcher event with `n` watcher guards of which exactly one
/// (the `n/2`-th) matches the raised argument. `keyed` selects compiled
/// key guards vs. opaque closures.
fn build_event(d: &Dispatcher, n: usize, keyed: bool) -> spin_core::Event<u64, ()> {
    let (ev, _owner) = d.define::<u64, ()>("bench.scaling", Identity::kernel("bench"));
    let key = KeyFn::new(|a: &u64| *a);
    for i in 0..n {
        let v = i as u64;
        if keyed {
            ev.install_keyed(
                Identity::extension(&format!("g{i}")),
                &key,
                v,
                |_a: &u64| {},
            )
            .expect("install keyed");
        } else {
            ev.install_guarded(
                Identity::extension(&format!("g{i}")),
                move |a: &u64| *a == v,
                |_a: &u64| {},
            )
            .expect("install guarded");
        }
    }
    ev
}

/// Mean wall-clock nanoseconds per raise over `iters` raises.
fn wall_ns_per_raise(d: &Dispatcher, ev: &spin_core::Event<u64, ()>, arg: u64, iters: u32) -> f64 {
    for _ in 0..200 {
        let _ = d.raise(ev, arg);
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = d.raise(ev, arg);
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// One sweep point: virtual ns per raise (sequential and compiled — must
/// be equal) and wall-clock ns per raise for both installations.
struct SweepPoint {
    n: usize,
    virtual_ns: Nanos,
    seq_wall_ns: f64,
    comp_wall_ns: f64,
}

fn sweep_point(n: usize) -> SweepPoint {
    let arg = (n / 2) as u64;

    let seq_d = Dispatcher::unmetered();
    let seq_ev = build_event(&seq_d, n, false);
    let t0 = seq_d.clock().now();
    seq_d.raise(&seq_ev, arg).expect("sequential raise");
    let seq_virtual = seq_d.clock().now() - t0;

    let comp_d = Dispatcher::unmetered();
    let comp_ev = build_event(&comp_d, n, true);
    let t0 = comp_d.clock().now();
    comp_d.raise(&comp_ev, arg).expect("compiled raise");
    let comp_virtual = comp_d.clock().now() - t0;

    // The cost-model invariant: compilation changes which guards are
    // *executed*, never which guards are *charged*.
    assert_eq!(
        seq_virtual, comp_virtual,
        "compiled raise must charge identical virtual time at {n} guards"
    );
    let seq_stats = seq_d.stats(&seq_ev).expect("stats");
    let comp_stats = comp_d.stats(&comp_ev).expect("stats");
    assert_eq!(
        seq_stats.guard_evaluations, comp_stats.guard_evaluations,
        "compiled raise must account identical guard evaluations at {n} guards"
    );
    assert!(
        comp_stats.compiled_raises > 0,
        "keyed installation must take the compiled path"
    );

    let iters: u32 = if n >= 250 { 20_000 } else { 50_000 };
    SweepPoint {
        n,
        virtual_ns: seq_virtual,
        seq_wall_ns: wall_ns_per_raise(&seq_d, &seq_ev, arg, iters),
        comp_wall_ns: wall_ns_per_raise(&comp_d, &comp_ev, arg, iters),
    }
}

/// Wall-clock speedup of `raise_batch` over looped `raise` at batch 64,
/// on a single-handler (fast-path) event: the batch amortises the plan
/// snapshot and hook loads across the burst.
fn batch64_speedup() -> f64 {
    const BATCH: u64 = 64;
    const ROUNDS: u32 = 4_000;
    let d = Dispatcher::unmetered();
    let (ev, _owner) = d.define::<u64, u64>("bench.batch", Identity::kernel("bench"));
    ev.install(Identity::extension("h"), |a: &u64| *a)
        .expect("install");

    for _ in 0..200 {
        let _ = ev.raise_batch((0..BATCH).collect());
        for i in 0..BATCH {
            let _ = ev.raise(i);
        }
    }
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        for i in 0..BATCH {
            let _ = ev.raise(i);
        }
    }
    let looped = t0.elapsed().as_nanos() as f64;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        let _ = ev.raise_batch((0..BATCH).collect());
    }
    let batched = t0.elapsed().as_nanos() as f64;
    looped / batched
}

fn main() {
    let base = rtt_with_guards(0, false);
    let false_guards = rtt_with_guards(50, false);
    let true_guards = rtt_with_guards(50, true);

    let mut rows = vec![
        Row::new("Ethernet RTT, no extra handlers", 565.0, us(base)),
        Row::new("RTT + 50 guards, all false", 585.0, us(false_guards)),
        Row::new("RTT + 50 guards, all true", 637.0, us(true_guards)),
    ];
    // The sweep: same watcher load installed as opaque closures
    // (sequential scan) and as keyed guards (compiled index). Virtual
    // time must agree pairwise — compilation is invisible to the clock.
    for n in GUARD_COUNTS {
        let seq = rtt_with_guards(n, false);
        let comp = rtt_with_keyed_guards(n, false);
        assert_eq!(
            seq, comp,
            "keyed watchers must charge the same RTT as opaque watchers at {n} guards"
        );
        rows.push(Row::extra(
            &format!("RTT + {n} false guards, sequential"),
            us(seq),
        ));
        rows.push(Row::extra(
            &format!("RTT + {n} false guards, compiled"),
            us(comp),
        ));
    }
    print!(
        "{}",
        render_table("§5.5: dispatcher scaling under guard load", "µs", &rows)
    );
    println!(
        "\nPer-guard evaluation cost: {:.2} µs (paper: ~0.4 µs/guard over 50 guards);\n\
         per-invoked-handler additional cost: {:.2} µs (paper: ~1 µs).",
        us(false_guards.saturating_sub(base)) / 50.0 / 2.0, // two raises per RTT
        us(true_guards.saturating_sub(false_guards)) / 50.0 / 2.0,
    );
    println!(
        "Virtual dispatch cost is linear in installed guards/handlers and\n\
         identical for sequential and compiled columns, matching the paper's\n\
         reported cost model; guard-set compilation changes wall-clock cost\n\
         only (see BENCH_dispatch_compiled.json)."
    );
    JsonReport::new(
        "s1_dispatcher_scaling",
        "§5.5: dispatcher scaling under guard load",
        "µs",
    )
    .rows(&rows)
    .number(
        "per_guard_us",
        us(false_guards.saturating_sub(base)) / 50.0 / 2.0,
    )
    .number(
        "per_handler_us",
        us(true_guards.saturating_sub(false_guards)) / 50.0 / 2.0,
    )
    .write_if_requested();

    // Wall-clock side: raw-dispatcher raises, sequential vs compiled, and
    // the batched-raise amortisation. Nondeterministic — reported, never
    // golden-diffed.
    let points: Vec<SweepPoint> = GUARD_COUNTS.iter().map(|&n| sweep_point(n)).collect();
    let mut wall_rows = Vec::new();
    for p in &points {
        wall_rows.push(Row::extra(
            &format!("raise, {} guards, sequential", p.n),
            p.seq_wall_ns,
        ));
        wall_rows.push(Row::extra(
            &format!("raise, {} guards, compiled", p.n),
            p.comp_wall_ns,
        ));
    }
    print!(
        "{}",
        render_table(
            "Guard-set compilation: wall-clock ns per raise",
            "ns",
            &wall_rows
        )
    );
    let comp_1 = points
        .iter()
        .find(|p| p.n == 1)
        .expect("1-guard point")
        .comp_wall_ns;
    let comp_250 = points
        .iter()
        .find(|p| p.n == 250)
        .expect("250-guard point")
        .comp_wall_ns;
    let speedup = batch64_speedup();
    println!(
        "\nCompiled raise at 250 guards costs {:.2}x a 1-guard raise (target <= 2x);\n\
         raise_batch(64) delivers {speedup:.2}x the throughput of looped raise\n\
         (target >= 1.5x).",
        comp_250 / comp_1
    );

    let mut compiled_report = JsonReport::new(
        "dispatch_compiled",
        "Guard-set compilation: wall-clock dispatch scaling and batched raises",
        "ns",
    )
    .rows(&wall_rows)
    .number("compiled_250_over_1_ratio", comp_250 / comp_1)
    .number("batch64_speedup", speedup);
    for p in &points {
        compiled_report = compiled_report.number(
            &format!("virtual_ns_per_raise_{}_guards", p.n),
            p.virtual_ns as f64,
        );
    }
    compiled_report.write_if_requested();
}
