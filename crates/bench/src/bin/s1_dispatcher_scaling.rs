//! §5.5 "Scalability and the dispatcher": event dispatch overhead is
//! linear in the number of guards and handlers.
//!
//! "Round trip Ethernet latency, which we measure at 565 µs, rises to
//! about 585 µs when 50 additional guards and handlers register interest
//! in the arrival of some UDP packet but all 50 guards evaluate to false.
//! When all 50 guards evaluate to true, latency rises to 637 µs."

use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::Identity;
use spin_net::{udp_round_trip, Medium, TwoHosts, UdpPacket};
use spin_sal::Nanos;

fn rtt_with_guards(extra: usize, guards_pass: bool) -> Nanos {
    let rig = TwoHosts::new();
    for i in 0..extra {
        rig.b
            .events()
            .udp_arrived
            .install_guarded(
                Identity::extension(&format!("watcher-{i}")),
                move |_p: &UdpPacket| guards_pass,
                |_p: &UdpPacket| {},
            )
            .expect("install watcher");
    }
    udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 16)
}

fn main() {
    let base = rtt_with_guards(0, false);
    let false_guards = rtt_with_guards(50, false);
    let true_guards = rtt_with_guards(50, true);

    let rows = vec![
        Row::new("Ethernet RTT, no extra handlers", 565.0, us(base)),
        Row::new("RTT + 50 guards, all false", 585.0, us(false_guards)),
        Row::new("RTT + 50 guards, all true", 637.0, us(true_guards)),
    ];
    print!(
        "{}",
        render_table("§5.5: dispatcher scaling under guard load", "µs", &rows)
    );
    println!(
        "\nPer-guard evaluation cost: {:.2} µs (paper: ~0.4 µs/guard over 50 guards);\n\
         per-invoked-handler additional cost: {:.2} µs (paper: ~1 µs).",
        us(false_guards.saturating_sub(base)) / 50.0 / 2.0, // two raises per RTT
        us(true_guards.saturating_sub(false_guards)) / 50.0 / 2.0,
    );
    println!(
        "Dispatch is linear in installed guards/handlers; no guard-folding\n\
         optimizations are applied, matching the paper's reported status."
    );
    JsonReport::new(
        "s1_dispatcher_scaling",
        "§5.5: dispatcher scaling under guard load",
        "µs",
    )
    .rows(&rows)
    .number(
        "per_guard_us",
        us(false_guards.saturating_sub(base)) / 50.0 / 2.0,
    )
    .number(
        "per_handler_us",
        us(true_guards.saturating_sub(false_guards)) / 50.0 / 2.0,
    )
    .write_if_requested();
}
