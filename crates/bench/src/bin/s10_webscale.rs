//! §S10: webscale — a million-connection HTTP storm on the redesigned
//! readiness/socket API.
//!
//! Shard 0 hosts the in-kernel HTTP server (§5.4) as a **single** daemon
//! strand parked on a [`spin_net::NetPoller`]; eleven client shards run
//! 64-strand connection pools with heavy-tailed think gaps, churning
//! through short-lived TCP connections against it over the ATM wire.
//! Every 512th connection is a *slowloris*: it sends a truncated request
//! line and holds the socket, exercising the server's idle sweep (and,
//! through the poller's `time_bound` and the bound [`QuotaCell`], the
//! PR-3/PR-8 containment machinery — over-budget requests get a
//! deterministic 503).
//!
//! The scale ladder runs ~10³ → ~10⁶ total connections. Asserted, all
//! exit-nonzero on failure:
//!
//! 1. **Completion and zero loss**: every connection completes — zero
//!    connect failures, zero dropped wire frames, zero dropped
//!    cross-shard envelopes — and the books close exactly: client-side
//!    status counts equal server-side counters, the idle sweep reaps
//!    exactly the slowloris population, and the quota ledger reconciles
//!    (`attempts == admitted + throttled + shed`, `admitted ==
//!    completed`, nothing in flight).
//! 2. **Worker invariance**: every virtual output — per-shard latency
//!    digests, status counts, server/quota/stack counters, shard clocks —
//!    is byte-identical at 1, 2 and 4 workers; only the wall clock moves.
//! 3. **Flat cost**: wall-clock per connection at the top of the ladder
//!    stays within 2× of the ~10³-connection rung — the single-strand
//!    poller design has no per-connection machinery to congest.
//!
//! The emitted `BENCH_webscale.json` contains only virtual-time numbers
//! and is golden-diffed byte-for-byte by `scripts/verify.sh`.

use parking_lot::Mutex;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{Dispatcher, QuotaLedger, QuotaSnapshot, QuotaSpec};
use spin_fs::{BufferCache, FileSystem, HybridBySize, NoCachePolicy, WebCache};
use spin_net::{
    AddressMap, Bytes, HttpConfig, HttpServer, HttpStats, IpAddr, Medium, NetStack, NetStats,
    Request, Response, TcpStack,
};
use spin_sal::{MulticoreBoard, Nanos};
use spin_sched::{IdleOutcome, Multicore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Client shards (1..=CLIENT_SHARDS on the board; shard 0 is the server).
const CLIENT_SHARDS: usize = 11;
/// Connection-pool strands per client shard.
const POOL: usize = 64;
const SERVER_PORT: u16 = 80;
/// Dynamic typed routes `/r0`..`/r5`; `/f6`/`/f7` are files.
const ROUTES: u64 = 6;
/// Every Nth connection per shard is a slowloris.
const SLOW_EVERY: u64 = 512;

/// Server tuning. The idle timeout only needs to sit between the
/// longest genuine client pause (the 2 ms think-gap tail) and
/// `SLOW_HOLD`: the sweep never reaps a session with undrained input,
/// so server-side queueing delay — however long a `wait` batch runs
/// under load — cannot masquerade as client idleness.
const BACKLOG: usize = 4096;
const IDLE_TIMEOUT: Nanos = 300_000_000;
const TICK: Nanos = 10_000_000;
/// PR-3 `time_bound` on the poller's `Net.Ready` delivery handler.
const TIME_BOUND: Nanos = 1_000_000;
/// PR-8 admission: virtual service time budgeted per window; over-budget
/// requests are deterministically refused with a 503.
const WINDOW: Nanos = 10_000_000;
const WINDOW_BUDGET: Nanos = 2_000_000;

/// How long a slowloris holds its truncated request — past the idle
/// timeout plus a full sweep tick plus queue sojourn, so the sweep
/// always wins.
const SLOW_HOLD: Nanos = 800_000_000;

/// Content is written to the (10 ms seek) disk from virtual t = 0; the
/// warmup client faults `/f6`/`/f7` through the object cache at WARM_AT
/// so the storm itself never stalls the server strand on disk I/O.
const WARM_AT: Nanos = 250_000_000;
const STORM_AT: Nanos = 400_000_000;

/// splitmix64 — deterministic heavy-tail draws and order-independent
/// latency checksums.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Heavy-tailed think gap: mostly 40–200 µs, every 16th a 2 ms pause.
fn think_gap(seq: u64) -> Nanos {
    let x = mix(seq ^ 0x5eed_0bad);
    if x.is_multiple_of(16) {
        2_000_000
    } else {
        40_000 + x % 160_000
    }
}

fn is_slow(seq: u64) -> bool {
    mix(seq ^ 0x1de5_10e5).is_multiple_of(SLOW_EVERY)
}

fn path_of(seq: u64) -> String {
    let r = mix(seq ^ 0x0bad_cafe) % (ROUTES + 2);
    if r < ROUTES {
        format!("/r{r}")
    } else {
        format!("/f{r}")
    }
}

/// Deterministic dynamic-route body: 64–1024 bytes.
fn body_of(r: u64) -> Bytes {
    let len = 64 + (mix(r ^ 0xb0d7) % 961) as usize;
    let fill = (mix(r.wrapping_mul(31) ^ 0x7ea) & 0xff) as u8;
    Bytes::from(vec![fill; len])
}

fn parse_status(resp: &[u8]) -> u16 {
    // Only the status line: the generated bodies are arbitrary bytes, so
    // running `from_utf8` over the whole response would reject valid 200s.
    let line = resp.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let s = std::str::from_utf8(line).unwrap_or("");
    s.split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or(0)
}

/// Order-independent digest plus the percentiles of one latency stream.
#[derive(Debug, PartialEq, Eq)]
struct LatencyDigest {
    count: u64,
    sum: Nanos,
    xor: u64,
    p50: Nanos,
    p99: Nanos,
    max: Nanos,
}

fn digest(latencies: &[Nanos]) -> LatencyDigest {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let pct = |p: usize| -> Nanos {
        if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
        }
    };
    LatencyDigest {
        count: latencies.len() as u64,
        sum: latencies.iter().sum(),
        xor: latencies.iter().fold(0, |acc, &l| acc ^ mix(l)),
        p50: pct(50),
        p99: pct(99),
        max: pct(100),
    }
}

/// One client shard's view of the storm.
#[derive(Debug, PartialEq, Eq)]
struct ShardOut {
    latency: LatencyDigest,
    ok: u64,
    shed: u64,
    other: u64,
    slow: u64,
}

/// Everything a run must reproduce exactly at any worker count.
#[derive(Debug, PartialEq, Eq)]
struct VirtualOutputs {
    shards: Vec<ShardOut>,
    http: HttpStats,
    quota: QuotaSnapshot,
    warm_ok: u64,
    net: Vec<NetStats>,
    clocks: Vec<Nanos>,
    epochs: u64,
    shard_runs: u64,
    mail_posted: u64,
    mail_drained: u64,
    mail_dropped: u64,
    wires: [(u64, u64); 3],
}

struct RunResult {
    virt: VirtualOutputs,
    wall_ms: f64,
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    shed: AtomicU64,
    other: AtomicU64,
    slow: AtomicU64,
    connect_failed: AtomicU64,
}

fn run(workers: usize, per_shard: u64) -> RunResult {
    let board = MulticoreBoard::new();
    let mut mc = Multicore::new(workers, board.lookahead());
    let addrs = AddressMap::new();

    let mut stacks = Vec::new();
    let mut execs = Vec::new();
    let mut tcps = Vec::new();
    for n in 0..=(CLIENT_SHARDS as u8) {
        let host = board.new_host(256);
        let exec = mc.add_host(host.clone());
        let disp = Dispatcher::new(host.clock.clone(), host.profile.clone());
        mc.wire_dispatcher(&disp, host.id);
        let stack = NetStack::install(
            &host,
            &exec,
            &disp,
            &addrs,
            IpAddr::new(10, 0, 0, n + 1),
            IpAddr::new(10, 1, 0, n + 1),
            IpAddr::new(10, 2, 0, n + 1),
        );
        tcps.push(TcpStack::install(&stack));
        stacks.push((host, stack));
        execs.push(exec);
    }
    let (host0, stack0) = stacks[0].clone();
    let exec0 = execs[0].clone();
    let server_ip = stack0.ip_on(Medium::Atm);

    // The server's file system: uncached (§5.4 — the web cache fronts
    // it, no double buffering), content written from virtual t = 0.
    let bc = BufferCache::new(
        host0.disk.clone(),
        exec0.clone(),
        64,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 500);
    let fs2 = fs.clone();
    exec0.spawn("content", move |ctx| {
        fs2.create("/f6").unwrap();
        fs2.write_file(ctx, "/f6", &vec![b'f'; 600]).unwrap();
        fs2.create("/f7").unwrap();
        fs2.write_file(ctx, "/f7", &vec![b'g'; 4000]).unwrap();
    });
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65_536,
        }),
    ));

    let ledger = QuotaLedger::new();
    let cell = ledger.register(
        "http",
        QuotaSpec {
            window: WINDOW,
            window_vt_budget: WINDOW_BUDGET,
            ..QuotaSpec::default()
        },
    );
    let server = HttpServer::start_with(
        &stack0,
        &tcps[0],
        fs,
        cache,
        SERVER_PORT,
        HttpConfig {
            backlog: BACKLOG,
            idle_timeout: IDLE_TIMEOUT,
            tick: TICK,
            time_bound: Some(TIME_BOUND),
            quota: Some(cell.clone()),
        },
    );
    for r in 0..ROUTES {
        let body = body_of(r);
        server.route(&format!("/r{r}"), move |_req: &Request| {
            Response::ok(body.clone())
        });
    }

    // Warmup: fault the two files through the object cache before the
    // storm, so no storm request ever blocks the server strand on disk.
    let warm_ok = Arc::new(AtomicU64::new(0));
    {
        let tcp = tcps[1].clone();
        let wk = warm_ok.clone();
        execs[1].spawn("warmup", move |ctx| {
            ctx.sleep(WARM_AT);
            for path in ["/f6", "/f7"] {
                let conn = tcp.connect(ctx, server_ip, SERVER_PORT).expect("warm up");
                let _ = conn.send(ctx, format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes());
                let mut resp = Vec::new();
                while let Some(b) = conn.recv(ctx) {
                    resp.extend_from_slice(&b);
                }
                conn.close(ctx);
                if parse_status(&resp) == 200 {
                    wk.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                }
            }
        });
    }

    // The storm: per-shard 64-strand pools; strand s owns connection
    // indices s, s+POOL, s+2·POOL, …
    let mut latencies = Vec::new();
    let mut counters = Vec::new();
    for shard in 1..=CLIENT_SHARDS {
        let lat: Arc<Mutex<Vec<Nanos>>> = Arc::new(Mutex::new(Vec::new()));
        let ctr = Arc::new(Counters::default());
        for slot in 0..POOL {
            let tcp = tcps[shard].clone();
            let clock = execs[shard].clock().clone();
            let (lat2, ctr2) = (lat.clone(), ctr.clone());
            execs[shard].spawn(&format!("client-{shard}-{slot}"), move |ctx| {
                ctx.sleep(STORM_AT);
                let mut i = slot as u64;
                while i < per_shard {
                    let seq = ((shard as u64) << 32) | i;
                    i += POOL as u64;
                    ctx.sleep(think_gap(seq));
                    let t0 = clock.now();
                    let conn = match tcp.connect(ctx, server_ip, SERVER_PORT) {
                        Ok(c) => c,
                        Err(_) => {
                            ctr2.connect_failed.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                            continue;
                        }
                    };
                    if is_slow(seq) {
                        let _ = conn.send(ctx, b"GET /r0 HTT");
                        ctx.sleep(SLOW_HOLD);
                        while conn.recv(ctx).is_some() {}
                        conn.close(ctx);
                        ctr2.slow.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                    } else {
                        let req = format!("GET {} HTTP/1.0\r\n\r\n", path_of(seq));
                        let _ = conn.send(ctx, req.as_bytes());
                        let mut resp = Vec::new();
                        while let Some(b) = conn.recv(ctx) {
                            resp.extend_from_slice(&b);
                        }
                        conn.close(ctx);
                        let bucket = match parse_status(&resp) {
                            200 => &ctr2.ok,
                            503 => &ctr2.shed,
                            _ => &ctr2.other,
                        };
                        bucket.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                        lat2.lock().push(clock.now() - t0);
                    }
                }
            });
        }
        latencies.push(lat);
        counters.push(ctr);
    }

    let t0 = Instant::now();
    assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The books close exactly, per shard and globally.
    let shards_out: Vec<ShardOut> = latencies
        .iter()
        .zip(&counters)
        .map(|(lat, c)| ShardOut {
            latency: digest(&lat.lock()),
            ok: c.ok.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            shed: c.shed.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            other: c.other.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            slow: c.slow.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
        })
        .collect();
    for (n, (s, c)) in shards_out.iter().zip(&counters).enumerate() {
        assert_eq!(
            c.connect_failed.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            0,
            "shard {n}: every connect must succeed"
        );
        assert_eq!(
            s.ok + s.shed + s.other + s.slow,
            per_shard,
            "shard {n}: every connection accounted for"
        );
        assert_eq!(s.other, 0, "shard {n}: nothing but 200s and 503s");
    }
    let total: u64 = per_shard * CLIENT_SHARDS as u64;
    let (ok, shed, slow) = shards_out
        .iter()
        .fold((0, 0, 0), |(a, b, c), s| (a + s.ok, b + s.shed, c + s.slow));
    let http = server.stats();
    assert_eq!(
        http.requests,
        ok + shed + 2,
        "server parsed exactly the completed requests (storm + warmup)"
    );
    assert_eq!(http.ok, ok + 2, "client and server agree on 200s");
    assert_eq!(http.shed, shed, "client and server agree on 503s");
    assert_eq!((http.not_found, http.bad_requests), (0, 0));
    assert_eq!(
        http.timeouts, slow,
        "the idle sweep reaps exactly the slowloris population"
    );
    assert_eq!(ok + shed + slow, total);
    assert_eq!(
        warm_ok.load(Ordering::Relaxed),
        2,
        "warmup faulted both files"
    ); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.

    // Quota ledger reconciliation (PR-8's identity, held exact).
    let quota = cell.snapshot();
    assert_eq!(quota.attempts, http.requests);
    assert_eq!(
        quota.attempts,
        quota.admitted + quota.throttled + quota.shed + quota.held
    );
    assert_eq!(quota.admitted, quota.completed);
    assert_eq!(quota.in_flight, 0);
    assert_eq!(quota.throttled + quota.shed, http.shed);

    // Zero loss anywhere in the fabric.
    let wires = [board.ethernet.stats(), board.atm.stats(), board.t3.stats()];
    for (name, (_, dropped)) in ["ethernet", "atm", "t3"].iter().zip(&wires) {
        assert_eq!(*dropped, 0, "{name}: zero dropped frames");
    }
    let stats = mc.stats();
    assert_eq!(stats.mail_dropped, 0, "zero dropped cross-shard envelopes");

    RunResult {
        virt: VirtualOutputs {
            shards: shards_out,
            http,
            quota,
            warm_ok: 2,
            net: stacks.iter().map(|(_, s)| s.stats()).collect(),
            clocks: mc.shards().iter().map(|sh| sh.host.clock.now()).collect(),
            epochs: stats.epochs,
            shard_runs: stats.shard_runs,
            mail_posted: stats.mail_posted,
            mail_drained: stats.mail_drained,
            mail_dropped: stats.mail_dropped,
            wires,
        },
        wall_ms,
    }
}

fn main() {
    // The scale ladder at one worker (connections per client shard; ×11
    // total): the flat-cost criterion compares wall-clock per connection
    // at the bottom and top rungs.
    let ladder = [("1e3", 91u64), ("1e4", 909), ("1e5", 9091)];
    let mut rungs: Vec<(&str, u64, RunResult, f64)> = Vec::new();
    for &(label, per_shard) in &ladder {
        let t0 = Instant::now();
        let r = run(1, per_shard);
        let total = per_shard * CLIENT_SHARDS as u64;
        let us_per_conn = t0.elapsed().as_secs_f64() * 1e6 / total as f64;
        println!(
            "{label}: {total} conns, wall {:.0} ms ({us_per_conn:.1} µs/conn), \
             virt clock0 {:.0} ms, epochs {}",
            r.wall_ms,
            r.virt.clocks[0] as f64 / 1e6,
            r.virt.epochs,
        );
        rungs.push((label, total, r, us_per_conn));
    }

    // The storm: ~10^6 connections, swept at 1, 2 and 4 workers — every
    // virtual output must be byte-identical; only the wall clock moves.
    const STORM_PER_SHARD: u64 = 90_910;
    let storm_total = STORM_PER_SHARD * CLIENT_SHARDS as u64;
    let storm_runs: Vec<(usize, RunResult, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let t0 = Instant::now();
            let r = run(w, STORM_PER_SHARD);
            let us_per_conn = t0.elapsed().as_secs_f64() * 1e6 / storm_total as f64;
            println!(
                "1e6 ({w}w): {storm_total} conns, wall {:.0} ms ({us_per_conn:.1} µs/conn), \
                 virt clock0 {:.0} ms, epochs {}",
                r.wall_ms,
                r.virt.clocks[0] as f64 / 1e6,
                r.virt.epochs,
            );
            (w, r, us_per_conn)
        })
        .collect();
    let storm = &storm_runs[0].1;
    for (w, r, _) in &storm_runs[1..] {
        assert_eq!(
            r.virt, storm.virt,
            "virtual outputs diverged at {w} workers — the barrier is broken"
        );
    }

    // Flat cost: per-connection wall-clock at 10^6 within 2× of 10^3.
    let base = rungs[0].3;
    let top = storm_runs[0].2;
    assert!(
        top <= 2.0 * base,
        "per-connection wall-clock grew {top:.1} µs vs {base:.1} µs at 10^3 \
         — more than 2× up the ladder"
    );

    let v = &storm.virt;
    let (ok, shed, slow) = v.shards.iter().fold((0u64, 0u64, 0u64), |(a, b, c), s| {
        (a + s.ok, b + s.shed, c + s.slow)
    });
    let p50 = v.shards[0].latency.p50;
    let p99_max = v.shards.iter().map(|s| s.latency.p99).max().unwrap();
    let frames: u64 = v.net.iter().map(|n| n.frames_in).sum();
    let rows = vec![
        Row::extra("storm connections", storm_total as f64),
        Row::extra("served 200", ok as f64),
        Row::extra("shed 503 (quota)", shed as f64),
        Row::extra("slowloris reaped", slow as f64),
        Row::extra("client p50, shard 1 (µs)", us(p50)),
        Row::extra("client p99, worst shard (µs)", us(p99_max)),
        Row::extra("frames received (all NICs)", frames as f64),
        Row::extra("barrier epochs", v.epochs as f64),
        Row::extra("virtual server seconds", v.clocks[0] as f64 / 1e9),
    ];
    print!(
        "{}",
        render_table(
            "S10: webscale — a million-connection storm on the readiness API",
            "µs",
            &rows
        )
    );
    println!(
        "\nBooks close exactly (client/server/quota/wire); outputs byte-identical \
         at 1/2/4 workers."
    );
    let walls: Vec<String> = storm_runs
        .iter()
        .map(|(w, r, _)| format!("{w}w {:.1}ms", r.wall_ms))
        .collect();
    println!("wall-clock (storm): {}", walls.join(", "));

    JsonReport::new(
        "webscale",
        "S10: webscale — a million-connection storm on the readiness API",
        "µs",
    )
    .rows(&rows)
    .number("client_shards", CLIENT_SHARDS as f64)
    .number("pool_strands", POOL as f64)
    .number("server_requests", v.http.requests as f64)
    .number("server_timeouts", v.http.timeouts as f64)
    .number("quota_attempts", v.quota.attempts as f64)
    .number("quota_admitted", v.quota.admitted as f64)
    .number("ladder_1e3_virt_ms", rungs[0].2.virt.clocks[0] as f64 / 1e6)
    .number("ladder_1e4_virt_ms", rungs[1].2.virt.clocks[0] as f64 / 1e6)
    .number("ladder_1e5_virt_ms", rungs[2].2.virt.clocks[0] as f64 / 1e6)
    .text("workers_checked", "1/2/4 byte-identical at 10^6")
    .text(
        "reconciliation",
        "client 200s/503s == server ok/shed; sweep reaps == slowloris; \
         quota attempts == admitted + throttled + shed; zero drops",
    )
    .write_if_requested();
}
