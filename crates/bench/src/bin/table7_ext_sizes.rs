//! Table 7: size of system extensions.
//!
//! The paper lists source and object sizes per extension (NULL syscall,
//! IPC, CThreads, OSF/1 threads, VM workload, IP, UDP, TCP, HTTP,
//! forwarders, video client/server). We report the non-comment line count
//! of each corresponding module of this reproduction, beside the paper's
//! count: "SPIN extensions tend to require an amount of code commensurate
//! with their functionality."

use spin_bench::{count_code_lines, JsonReport};

fn module_lines(path: &str) -> usize {
    std::fs::read_to_string(path)
        .map(|s| count_code_lines(&s))
        .unwrap_or(0)
}

fn main() {
    // (paper extension, paper lines, our implementing module(s))
    let rows: Vec<(&str, usize, Vec<&str>)> = vec![
        ("NULL syscall", 19, vec![]), // inline: Kernel::register_syscalls call site
        ("IPC", 127, vec!["crates/sched/src/user.rs"]),
        ("CThreads", 219, vec!["crates/sched/src/cthreads.rs"]),
        (
            "DEC OSF/1 threads",
            305,
            vec!["crates/sched/src/osf_threads.rs"],
        ),
        ("VM workload", 263, vec!["crates/vm/src/workloads.rs"]),
        ("IP", 744, vec!["crates/net/src/stack.rs"]),
        ("UDP", 1046, vec!["crates/net/src/measure.rs"]),
        ("TCP", 5077, vec!["crates/net/src/tcp.rs"]),
        ("HTTP", 392, vec!["crates/net/src/http.rs"]),
        ("TCP/UDP Forward", 325, vec!["crates/net/src/forward.rs"]),
        ("Video client+server", 399, vec!["crates/net/src/video.rs"]),
        ("(RPC)", 0, vec!["crates/net/src/rpc.rs"]),
        ("(Active messages)", 0, vec!["crates/net/src/am.rs"]),
        (
            "(UNIX address spaces)",
            0,
            vec!["crates/vm/src/address_space.rs"],
        ),
        ("(Mach tasks)", 0, vec!["crates/vm/src/mach_task.rs"]),
        ("(Disk pager)", 0, vec!["crates/vm/src/pager.rs"]),
    ];

    println!("\nTable 7: extension sizes (non-comment source lines)");
    println!("===================================================");
    println!(
        "{:<26} {:>12} {:>12}",
        "extension", "paper lines", "our lines"
    );
    println!("{}", "-".repeat(54));
    let mut report = JsonReport::new("table7_ext_sizes", "Table 7: extension sizes", "lines");
    for (name, paper, files) in rows {
        let ours: usize = files.iter().map(|f| module_lines(f)).sum();
        let paper_s = if paper == 0 {
            "-".to_string()
        } else {
            paper.to_string()
        };
        println!("{:<26} {:>12} {:>12}", name, paper_s, ours);
        let paper = if paper == 0 { None } else { Some(paper as f64) };
        report = report.row(name, paper, ours as f64);
    }
    println!(
        "\nRows in parentheses are extensions this reproduction implements beyond the\n\
         table (the paper's §4 describes them in prose). The NULL syscall extension\n\
         is a one-line register_syscalls call here, matching the paper's 19 lines in\n\
         spirit: conceptually simple extensions have simple implementations."
    );
    report.write_if_requested();
}
