//! §S9: overload containment — per-domain quotas under a 12-shard storm.
//!
//! Shard 0 hosts the server dispatcher; eleven client shards raise
//! against it over the cross-call mailboxes. Nine are well-behaved
//! tenants with heavy-tailed inter-arrival gaps; one is a *greedy*
//! domain flooding raises whose handler burns 25 µs each; one is a
//! *slowloris* domain whose handler holds the dispatcher for 900 µs —
//! just under the dispatcher's 1 ms time-bound convention, so abort
//! machinery never saves the kernel. Three scenarios run, each swept at
//! 1/2/4 workers:
//!
//! * **calm** — tenants only: the baseline p99 virtual latency.
//! * **storm, unarmed** — all twelve domains, no quotas bound: the
//!   greedy and slowloris load is admitted wholesale and the
//!   well-behaved tenants' tail latency collapses.
//! * **storm, armed** — every domain metered by a [`QuotaCell`]: the
//!   greedy domain trips its window budget, escalates throttle → shed →
//!   quarantine (raising `Core.DomainFault` through the PR-3
//!   containment ladder), and at `T_PUMP` the PR-7 [`SwapSupervisor`]
//!   fallback-swaps it to a degraded-mode build and lifts the
//!   quarantine; the slowloris domain is throttled to its window budget
//!   but never escalates; a greedy strand on the server shard is
//!   demoted to the deferred executor lane; greedy bulk-mail posts meet
//!   the lane-occupancy gate and sender-side capped-doubling
//!   backpressure.
//!
//! Asserted, all exit-nonzero on failure:
//!
//! 1. **Graceful shedding**: armed, the tenants' p99 stays within a
//!    fixed bound of the calm baseline while every tenant raise is
//!    served (zero throttles on well-behaved domains); unarmed, the
//!    same storm multiplies the tenant p99 many-fold.
//! 2. **Exact reconciliation**: every cell's ledger closes the books —
//!    `attempts == admitted + throttled + shed + held` and
//!    `admitted == completed`, with zero still in flight — and no
//!    cross-shard mail is ever dropped: the backpressure probe refuses
//!    over-budget posts at the sender, which pays and counts them.
//! 3. **Worker invariance**: every virtual output — latency digests,
//!    quota snapshots, escalation and swap counters — is byte-identical
//!    at 1, 2 and 4 shard workers; only the wall clock may move.
//!
//! The emitted `BENCH_overload.json` contains only virtual-time numbers
//! and is golden-diffed byte-for-byte by `scripts/verify.sh`.

use parking_lot::Mutex;
use spin_bench::{render_table, us, JsonReport, Row};
use spin_core::{
    post_with_backpressure, BackoffPolicy, Constraints, Containment, ContainmentPolicy, Dispatcher,
    Identity, InstallSpec, PostOutcome, QuotaLedger, QuotaSnapshot, QuotaSpec,
};
use spin_sal::{MulticoreBoard, Nanos};
use spin_sched::{IdleOutcome, Multicore};
use spin_swap::{SwapCoordinator, SwapSupervisor, UndoAction};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Well-behaved tenant shards (1..=TENANTS on the board).
const TENANTS: usize = 9;
const TENANT_REQS: u64 = 200;
/// Tenant handler cost per raise.
const TENANT_WORK: Nanos = 8_000;

/// The greedy flood: ~48 raises/ms against a 40-admissions-per-window
/// budget, sustained well past the supervisor pump.
const GREEDY_REQS: u64 = 2_500;
const GREEDY_GAP: Nanos = 20_000;
const GREEDY_WORK: Nanos = 25_000;
/// The degraded-mode build the fallback swap installs: cheap enough
/// (~484 arrivals/window x ~1.3 us incl. dispatch overhead = ~0.63 ms)
/// to bring the domain back under its own 1 ms window budget for good.
const DEGRADED_WORK: Nanos = 1_000;

/// The slowloris: each admitted raise holds the server for 900 µs.
const SLOW_REQS: u64 = 150;
const SLOW_GAP: Nanos = 250_000;
const SLOW_WORK: Nanos = 900_000;

/// Quota windows are 10 ms of server virtual time.
const WINDOW: Nanos = 10_000_000;
/// Greedy: 10 % of a window, then 40 trips to shedding, 150 sheds to
/// quarantine — crossed within the first few storm windows, well before
/// the supervisor pump.
const GREEDY_BUDGET: Nanos = 1_000_000;
const GREEDY_SHED_AFTER: u32 = 40;
const GREEDY_QUARANTINE_AFTER: u32 = 150;
/// Slowloris: two admissions per window (3rd probe finds vt ≥ budget);
/// never escalates past throttling (`shed_after_trips == 0`).
const SLOW_BUDGET: Nanos = 1_500_000;
/// Tenants: generous — they never come near it.
const TENANT_BUDGET: Nanos = 8_000_000;

/// Supervisor pump instant: after the greedy quarantine (first window),
/// while the flood still has ~20 ms to run against the degraded build.
const T_PUMP: Nanos = 30_000_000;

/// Server-shard strands exercising the deferred-lane demotion: equal
/// base priority, equal work, woken mid-storm (once the greedy domain
/// is over budget); armed, the greedy one re-enqueues at the deferred
/// priority whenever its domain is over budget.
const STRAND_START: Nanos = 5_000_000;
const STRAND_CHUNKS: u64 = 120;
const STRAND_CHUNK: Nanos = 20_000;

/// Greedy bulk-mail burst against the lane-occupancy gate.
const BULK_POSTS: u32 = 12;
const BULK_LANE: u64 = 0x9_0000;
const BULK_GAP: Nanos = 10_000;

/// Graceful-shedding bar: armed tenant p99 within 4 ms of calm (the
/// admitted greedy + slowloris window budgets are ~2.8 ms per window).
const P99_SLACK: Nanos = 4_000_000;
/// Damage bar: the unarmed storm at least quadruples the tenant p99.
const UNARMED_BLOWUP: u64 = 4;

/// splitmix64 — deterministic heavy-tail draws and order-independent
/// latency checksums.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Heavy-tailed tenant inter-arrival gap: mostly 100–184 µs, every 16th
/// a 1.2 ms pause.
fn tenant_gap(tenant: usize, req: u64) -> Nanos {
    let x = mix((tenant as u64) * 1_000_003 + req);
    if x.is_multiple_of(16) {
        1_200_000
    } else {
        100_000 + (x % 8) * 12_000
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Calm,
    StormUnarmed,
    StormArmed,
}

/// Order-independent digest plus the percentiles of one latency stream.
#[derive(Debug, PartialEq, Eq)]
struct LatencyDigest {
    count: u64,
    sum: Nanos,
    xor: u64,
    p50: Nanos,
    p99: Nanos,
    max: Nanos,
}

fn digest(latencies: &[Nanos]) -> LatencyDigest {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let pct = |p: usize| -> Nanos {
        if sorted.is_empty() {
            0
        } else {
            sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
        }
    };
    LatencyDigest {
        count: latencies.len() as u64,
        sum: latencies.iter().sum(),
        xor: latencies.iter().fold(0, |acc, &l| acc ^ mix(l)),
        p50: pct(50),
        p99: pct(99),
        max: pct(100),
    }
}

/// Everything a scenario must reproduce exactly at any worker count.
#[derive(Debug, PartialEq, Eq)]
struct VirtualOutputs {
    tenant: LatencyDigest,
    slow_served: u64,
    greedy_heavy: u64,
    greedy_degraded: u64,
    bulk_posted: u64,
    bulk_shed: u64,
    bulk_delivered: u64,
    demoted: u64,
    cruncher_done: Nanos,
    sweeper_done: Nanos,
    pumped: u64,
    quarantined_at_pump: bool,
    swaps_committed: u64,
    snapshots: Vec<(String, QuotaSnapshot)>,
    clocks: Vec<Nanos>,
    epochs: u64,
    shard_runs: u64,
    mail_posted: u64,
    mail_drained: u64,
    mail_dropped: u64,
}

struct RunResult {
    virt: VirtualOutputs,
    wall_ms: f64,
}

fn run(workers: usize, scenario: Scenario) -> RunResult {
    let armed = scenario == Scenario::StormArmed;
    let storm = scenario != Scenario::Calm;

    let board = MulticoreBoard::new();
    let mut mc = Multicore::new(workers, board.lookahead());

    // Shard 0: the server. Shards 1..=9: tenants. 10: greedy. 11: slow.
    let mut shards = Vec::new();
    for _ in 0..(TENANTS + 3) {
        let host = board.new_host(64);
        let exec = mc.add_host(host.clone());
        let disp = Dispatcher::new(host.clock.clone(), host.profile.clone());
        mc.wire_dispatcher(&disp, host.id);
        shards.push((host, exec, disp));
    }
    let (host0, exec0, d0) = shards[0].clone();
    let clock0 = host0.clock.clone();

    // The server's per-domain events, each a nameable service on D0.
    let svc = Identity::kernel("svc");
    let tenant_latencies = Arc::new(Mutex::new(Vec::<Nanos>::new()));
    let mut tenant_events = Vec::new();
    for t in 0..TENANTS {
        let (ev, owner) = d0.define::<u64, ()>(&format!("Work.Tenant{t}"), svc.clone());
        let (lat, clk) = (tenant_latencies.clone(), clock0.clone());
        owner
            .set_primary(move |sent| {
                lat.lock().push(clk.now() - sent);
                clk.advance(TENANT_WORK);
            })
            .expect("fresh tenant event");
        tenant_events.push(ev);
    }

    let slow_served = Arc::new(AtomicU64::new(0));
    let (ev_slow, slow_owner) = d0.define::<u64, ()>("Work.Slow", svc.clone());
    {
        let (served, clk) = (slow_served.clone(), clock0.clone());
        slow_owner
            .set_primary(move |_sent| {
                served.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                clk.advance(SLOW_WORK);
            })
            .expect("fresh slow event");
    }

    // Greedy: a no-op kernel primary (so the event survives quarantine)
    // plus the heavy handler installed under the greedy *extension*
    // identity — the thing quarantine purges and the fallback replaces.
    let greedy_ident = Identity::extension("greedy");
    let greedy_heavy = Arc::new(AtomicU64::new(0));
    let (ev_greedy, greedy_owner) = d0.define::<u64, ()>("Work.Greedy", svc.clone());
    greedy_owner
        .set_primary(|_| ())
        .expect("fresh greedy event");
    {
        let (served, clk) = (greedy_heavy.clone(), clock0.clone());
        ev_greedy
            .install(greedy_ident.clone(), move |_sent: &u64| {
                served.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                clk.advance(GREEDY_WORK);
            })
            .expect("install greedy v1");
    }

    // The quota ledger, escalation ladder and fallback swap — armed only.
    let ledger = QuotaLedger::new();
    let mut cells = Vec::new();
    let demoted = Arc::new(AtomicU64::new(0));
    let pumped = Arc::new(AtomicU64::new(0));
    let quarantined_at_pump = Arc::new(AtomicBool::new(false));
    let coord = SwapCoordinator::new(clock0.clone());
    let greedy_degraded = Arc::new(AtomicU64::new(0));
    if armed {
        for (t, ev) in tenant_events.iter().enumerate() {
            let cell = ledger.register(
                &format!("tenant-{t}"),
                QuotaSpec {
                    window: WINDOW,
                    window_vt_budget: TENANT_BUDGET,
                    shed_after_trips: 4,
                    ..QuotaSpec::default()
                },
            );
            ev.bind_quota(cell.clone()).expect("bind tenant quota");
            cells.push(cell);
        }
        let cell_slow = ledger.register(
            "slow",
            QuotaSpec {
                window: WINDOW,
                window_vt_budget: SLOW_BUDGET,
                ..QuotaSpec::default()
            },
        );
        ev_slow
            .bind_quota(cell_slow.clone())
            .expect("bind slow quota");
        cells.push(cell_slow);
        let cell_greedy = ledger.register(
            "greedy",
            QuotaSpec {
                window: WINDOW,
                window_vt_budget: GREEDY_BUDGET,
                shed_after_trips: GREEDY_SHED_AFTER,
                quarantine_after_sheds: GREEDY_QUARANTINE_AFTER,
                max_lane_occupancy: 8,
                deferred_priority: 1,
                ..QuotaSpec::default()
            },
        );
        ev_greedy
            .bind_quota(cell_greedy.clone())
            .expect("bind greedy quota");
        cells.push(cell_greedy.clone());

        // Escalations feed the containment breaker; `Core.DomainFault`
        // wakes the supervisor, whose pump runs the fallback swap.
        let containment = Containment::install(&d0, None, ContainmentPolicy::default());
        ledger.wire_containment(&containment);
        let sup = SwapSupervisor::install(&containment).expect("install supervisor");
        {
            // Idempotent fallback: the greedy domain breaches twice
            // (shedding, then quarantine), so the pump sees it twice.
            let (ev, ident, coord) = (ev_greedy.clone(), greedy_ident.clone(), coord.clone());
            let (served, clk) = (greedy_degraded.clone(), clock0.clone());
            let mut swapped = false;
            sup.register_fallback("greedy", move || {
                if swapped {
                    return;
                }
                swapped = true;
                let (ev2, ident2) = (ev.clone(), ident.clone());
                let (served2, clk2) = (served.clone(), clk.clone());
                coord
                    .swap(
                        "greedy",
                        vec![Arc::new(ev.clone())],
                        &ident,
                        &(),
                        |_| (),
                        None,
                        move |_| {
                            let receipt = ev2
                                .rebind(
                                    &ident2,
                                    &ident2,
                                    vec![InstallSpec {
                                        installer: ident2.clone(),
                                        handler: Arc::new(move |_sent: &u64| {
                                            served2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                                            clk2.advance(DEGRADED_WORK);
                                        }),
                                        guards: Vec::new(),
                                        constraints: Constraints::default(),
                                    }],
                                )
                                .expect("rebind greedy to degraded build");
                            let ev3 = ev2.clone();
                            let ident3 = ident2.clone();
                            vec![Box::new(move || {
                                ev3.restore(&ident3, receipt).expect("restore greedy v1");
                            }) as UndoAction]
                        },
                    )
                    .expect("fallback swap commits");
            });
        }

        // Deferred-lane demotion on the server executor: greedy-named
        // strands re-enqueue at the deferred priority while over budget.
        {
            let (cell, demoted) = (cell_greedy.clone(), demoted.clone());
            exec0.set_quota_hook(Arc::new(move |name, base, now| {
                if name.starts_with("greedy") && cell.deferred(now) {
                    demoted.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                    cell.spec().deferred_priority
                } else {
                    base
                }
            }));
        }

        // The supervisor pump, on the server shard's own thread at an
        // exact virtual instant — totally ordered with the storm.
        {
            let (sup, cell, clk) = (sup.clone(), cell_greedy.clone(), clock0.clone());
            let (pumped, quarantined) = (pumped.clone(), quarantined_at_pump.clone());
            let containment = containment.clone();
            assert!(
                mc.post_control(host0.id, T_PUMP, move |_now| {
                    quarantined.store(containment.is_quarantined("greedy"), Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                    pumped.store(sup.pump() as u64, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                    cell.release(clk.now());
                }),
                "post supervisor pump"
            );
        }

        // The lane-occupancy gate on the server mailbox (bulk lane only;
        // cross-call and control lanes stay unmetered).
        ledger.install_mailbox_gate(&host0.mailbox, vec![(BULK_LANE, cell_greedy)]);
    }

    // Server-shard strands: equal priority, equal work. Armed, the
    // greedy one is demoted behind the sweeper for the storm's duration.
    let cruncher_done = Arc::new(AtomicU64::new(0));
    let sweeper_done = Arc::new(AtomicU64::new(0));
    for (name, done) in [
        ("greedy-cruncher", cruncher_done.clone()),
        ("svc-sweeper", sweeper_done.clone()),
    ] {
        let clk = clock0.clone();
        exec0.spawn(name, move |ctx| {
            ctx.sleep(STRAND_START);
            for _ in 0..STRAND_CHUNKS {
                ctx.work(STRAND_CHUNK);
                // A preemption safe point: quantum expiry re-enqueues
                // the strand through the executor's quota hook.
                ctx.preempt_point();
            }
            done.store(clk.now(), Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
        });
    }

    // Tenant senders: heavy-tailed storms of timestamped raises.
    for t in 0..TENANTS {
        let (host, exec, disp) = shards[t + 1].clone();
        let (ev, h0) = (tenant_events[t].clone(), host0.id);
        exec.spawn(&format!("tenant-{t}"), move |ctx| {
            for i in 0..TENANT_REQS {
                let sent = host.clock.now();
                disp.raise_on(h0, &ev, sent).expect("routed");
                ctx.work(tenant_gap(t, i));
            }
        });
    }

    let bulk_posted = Arc::new(AtomicU64::new(0));
    let bulk_shed = Arc::new(AtomicU64::new(0));
    let bulk_delivered = Arc::new(AtomicU64::new(0));
    if storm {
        // The greedy flood (and, armed, the bulk-mail burst against the
        // lane gate first — sender-side backpressure in action).
        let (host_g, exec_g, disp_g) = shards[TENANTS + 1].clone();
        let (ev, h0) = (ev_greedy.clone(), host0.id);
        let gate = armed.then(|| {
            (
                ledger.get("greedy").expect("greedy cell registered"),
                host0.mailbox.clone(),
            )
        });
        let (posted, shed, delivered) = (
            bulk_posted.clone(),
            bulk_shed.clone(),
            bulk_delivered.clone(),
        );
        exec_g.spawn("greedy-flood", move |ctx| {
            if let Some((cell, mailbox)) = gate {
                for _ in 0..BULK_POSTS {
                    let d2 = delivered.clone();
                    let out = post_with_backpressure(
                        &cell,
                        &host_g.clock,
                        &mailbox,
                        BULK_GAP,
                        BULK_LANE,
                        BackoffPolicy::default(),
                        move |_now| {
                            d2.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                        },
                    );
                    match out {
                        PostOutcome::Posted { .. } => posted.fetch_add(1, Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                        PostOutcome::Shed { .. } => shed.fetch_add(1, Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
                    };
                }
            }
            for _ in 0..GREEDY_REQS {
                let sent = host_g.clock.now();
                disp_g.raise_on(h0, &ev, sent).expect("routed");
                ctx.work(GREEDY_GAP);
            }
        });

        // The slowloris.
        let (host_s, exec_s, disp_s) = shards[TENANTS + 2].clone();
        let (ev, h0) = (ev_slow.clone(), host0.id);
        exec_s.spawn("slowloris", move |ctx| {
            for _ in 0..SLOW_REQS {
                let sent = host_s.clock.now();
                disp_s.raise_on(h0, &ev, sent).expect("routed");
                ctx.work(SLOW_GAP);
            }
        });
    }

    let t0 = Instant::now();
    assert_eq!(mc.run_until_idle(), IdleOutcome::AllComplete);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Exact reconciliation: every metered domain's books close.
    let snapshots: Vec<(String, QuotaSnapshot)> = cells
        .iter()
        .map(|c| (c.name().to_string(), c.snapshot()))
        .collect();
    for (name, s) in &snapshots {
        assert_eq!(
            s.attempts,
            s.admitted + s.throttled + s.shed + s.held,
            "{name}: the ledger identity must close"
        );
        assert_eq!(s.in_flight, 0, "{name}: nothing left in flight at exit");
        assert_eq!(s.admitted, s.completed, "{name}: every admission completed");
    }

    let stats = mc.stats();
    let tenant = digest(&tenant_latencies.lock());
    RunResult {
        virt: VirtualOutputs {
            tenant,
            slow_served: slow_served.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            greedy_heavy: greedy_heavy.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            greedy_degraded: greedy_degraded.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            bulk_posted: bulk_posted.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            bulk_shed: bulk_shed.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            bulk_delivered: bulk_delivered.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            demoted: demoted.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            cruncher_done: cruncher_done.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            sweeper_done: sweeper_done.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            pumped: pumped.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            quarantined_at_pump: quarantined_at_pump.load(Ordering::Relaxed), // ordering: Relaxed — read after run_until_idle returns; the barrier join is the sync point.
            swaps_committed: coord.stats().committed,
            snapshots,
            clocks: mc.shards().iter().map(|sh| sh.host.clock.now()).collect(),
            epochs: stats.epochs,
            shard_runs: stats.shard_runs,
            mail_posted: stats.mail_posted,
            mail_drained: stats.mail_drained,
            mail_dropped: stats.mail_dropped,
        },
        wall_ms,
    }
}

fn main() {
    // Each scenario sweeps 1/2/4 workers and must be byte-identical.
    let sweep = |scenario: Scenario| -> Vec<(usize, RunResult)> {
        [1usize, 2, 4]
            .iter()
            .map(|&w| (w, run(w, scenario)))
            .collect()
    };
    let calm_runs = sweep(Scenario::Calm);
    let unarmed_runs = sweep(Scenario::StormUnarmed);
    let armed_runs = sweep(Scenario::StormArmed);
    for runs in [&calm_runs, &unarmed_runs, &armed_runs] {
        let base = &runs[0].1;
        for (w, r) in &runs[1..] {
            assert_eq!(
                r.virt, base.virt,
                "virtual outputs diverged at {w} workers — the barrier is broken"
            );
        }
    }
    let calm = &calm_runs[0].1;
    let unarmed = &unarmed_runs[0].1;
    let armed = &armed_runs[0].1;

    // Every tenant raise served in every scenario — no collateral drops.
    let all_tenant = TENANTS as u64 * TENANT_REQS;
    for v in [&calm.virt, &unarmed.virt, &armed.virt] {
        assert_eq!(v.tenant.count, all_tenant, "every tenant raise served");
    }

    // Graceful shedding: armed p99 within the fixed bound of calm;
    // unarmed, the same storm blows the tail up many-fold.
    assert!(
        armed.virt.tenant.p99 <= calm.virt.tenant.p99 + P99_SLACK,
        "armed tenant p99 {} exceeds calm {} + {}",
        armed.virt.tenant.p99,
        calm.virt.tenant.p99,
        P99_SLACK
    );
    assert!(
        unarmed.virt.tenant.p99 >= armed.virt.tenant.p99 * UNARMED_BLOWUP,
        "unarmed p99 {} vs armed {} — the storm should hurt without quotas",
        unarmed.virt.tenant.p99,
        armed.virt.tenant.p99
    );

    // The armed ledger: tenants untouched, slowloris throttled but never
    // escalated, greedy quarantined then revived in degraded mode.
    let snap = |name: &str| -> QuotaSnapshot {
        armed
            .virt
            .snapshots
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} metered"))
            .1
    };
    for t in 0..TENANTS {
        let s = snap(&format!("tenant-{t}"));
        assert_eq!(s.attempts, TENANT_REQS);
        assert_eq!(
            (s.throttled, s.shed, s.breaches),
            (0, 0, 0),
            "well-behaved tenant-{t} must never be refused"
        );
    }
    let s = snap("slow");
    assert_eq!(s.attempts, SLOW_REQS);
    assert!(s.throttled > 0, "slowloris throttled to its window budget");
    assert_eq!((s.shed, s.breaches), (0, 0), "slowloris never escalates");
    assert_eq!(s.admitted, armed.virt.slow_served);
    let g = snap("greedy");
    assert_eq!(g.attempts, GREEDY_REQS);
    assert!(
        g.throttled > 0 && g.shed > 0,
        "greedy walked the full ladder"
    );
    // At least one shedding entry and the quarantine entry; the server
    // clock races ahead under load, so a window may roll (decaying
    // shedding) before 150 sheds accumulate, adding re-entries.
    assert!(g.breaches >= 2, "shedding entry + quarantine entry");
    assert!(
        armed.virt.quarantined_at_pump,
        "quarantined before the pump"
    );
    assert_eq!(
        armed.virt.pumped, g.breaches,
        "every breach reached the supervisor before the pump"
    );
    assert_eq!(
        armed.virt.swaps_committed, 1,
        "one idempotent fallback swap"
    );
    assert!(
        armed.virt.greedy_degraded > 0,
        "the degraded build served after the release"
    );
    assert_eq!(
        g.admitted,
        armed.virt.greedy_heavy + armed.virt.greedy_degraded,
        "every admitted greedy raise ran v1 or the degraded build"
    );

    // Unarmed: everything admitted, nothing refused, v1 serves it all.
    assert_eq!(unarmed.virt.greedy_heavy, GREEDY_REQS);
    assert_eq!(unarmed.virt.slow_served, SLOW_REQS);
    assert_eq!(unarmed.virt.mail_dropped, 0);
    assert_eq!(calm.virt.mail_dropped, 0);

    // Backpressure: the burst saturates the 8-deep lane and the sender's
    // occupancy probe refuses *before* the mailbox — every refusal is a
    // counted backoff retry, every shed is the sender's own decision,
    // and no envelope is ever dropped in flight.
    assert_eq!(
        armed.virt.bulk_posted + armed.virt.bulk_shed,
        BULK_POSTS as u64
    );
    assert!(
        armed.virt.bulk_shed > 0,
        "the lane budget refused the excess"
    );
    assert_eq!(armed.virt.bulk_delivered, armed.virt.bulk_posted);
    assert!(g.mail_refused > 0, "refusals charged the sender's backoff");
    assert_eq!(g.mail_shed, armed.virt.bulk_shed);
    assert_eq!(armed.virt.mail_dropped, 0, "nothing vanished in flight");

    // Deferred-lane demotion: armed, the greedy strand re-enqueued at
    // the deferred priority and finished strictly after the sweeper.
    assert!(armed.virt.demoted > 0, "the executor hook demoted greedy");
    assert!(
        armed.virt.sweeper_done < armed.virt.cruncher_done,
        "the demoted greedy strand must finish behind the sweeper"
    );
    assert_eq!(unarmed.virt.demoted, 0);

    let rows = vec![
        Row::extra("tenant raises per scenario", all_tenant as f64),
        Row::extra("tenant p99, calm (µs)", us(calm.virt.tenant.p99)),
        Row::extra(
            "tenant p99, storm unarmed (µs)",
            us(unarmed.virt.tenant.p99),
        ),
        Row::extra("tenant p99, storm armed (µs)", us(armed.virt.tenant.p99)),
        Row::extra("greedy admitted (of 2500)", snap("greedy").admitted as f64),
        Row::extra("greedy throttled", snap("greedy").throttled as f64),
        Row::extra("greedy shed", snap("greedy").shed as f64),
        Row::extra("greedy served degraded", armed.virt.greedy_degraded as f64),
        Row::extra("slowloris admitted (of 150)", snap("slow").admitted as f64),
        Row::extra("slowloris throttled", snap("slow").throttled as f64),
        Row::extra(
            "bulk posts shed by backpressure",
            armed.virt.bulk_shed as f64,
        ),
        Row::extra("greedy strand demotions", armed.virt.demoted as f64),
    ];
    print!(
        "{}",
        render_table(
            "S9: overload containment under a 12-shard storm",
            "µs",
            &rows
        )
    );
    println!(
        "\nLedger reconciles exactly in every scenario; outputs byte-identical \
         at 1/2/4 workers."
    );
    for (label, runs) in [
        ("calm", &calm_runs),
        ("storm unarmed", &unarmed_runs),
        ("storm armed", &armed_runs),
    ] {
        let walls: Vec<String> = runs
            .iter()
            .map(|(w, r)| format!("{w}w {:.1}ms", r.wall_ms))
            .collect();
        println!("wall-clock ({label}): {}", walls.join(", "));
    }

    JsonReport::new(
        "overload",
        "S9: overload containment under a 12-shard storm",
        "µs",
    )
    .rows(&rows)
    .number("tenants", TENANTS as f64)
    .number("greedy_reqs", GREEDY_REQS as f64)
    .number("slow_reqs", SLOW_REQS as f64)
    .number("tenant_p50_calm_us", us(calm.virt.tenant.p50))
    .number("tenant_p50_armed_us", us(armed.virt.tenant.p50))
    .number("greedy_breaches", snap("greedy").breaches as f64)
    .number("swaps_committed", armed.virt.swaps_committed as f64)
    .number("pump_at_us", us(T_PUMP))
    .number("p99_slack_us", us(P99_SLACK))
    .text("workers_checked", "1/2/4 byte-identical")
    .text(
        "reconciliation",
        "attempts == admitted + throttled + shed + held; admitted == completed",
    )
    .write_if_requested();
}
