//! Figure 5: the protocol stack as an event graph.
//!
//! Builds the full stack with every extension of the figure installed —
//! ICMP/Ping, UDP, TCP, RPC, active messages, HTTP, the forwarders and
//! the video path — and prints the resulting event → handler topology.

use spin_bench::JsonReport;
use spin_fs::HybridBySize;
use spin_fs::{BufferCache, FileSystem, NoCachePolicy, WebCache};
use spin_net::{
    ActiveMessages, Forwarder, HttpServer, Medium, Rpc, TcpStack, ThreeHosts, VideoClient,
};
use std::sync::Arc;

fn main() {
    let rig = ThreeHosts::new();

    // Install every Figure 5 box on host B.
    let tcp = TcpStack::install(&rig.b);
    let _am = ActiveMessages::install(&rig.b).expect("A.M.");
    let _rpc = Rpc::install(&rig.b).expect("RPC");
    let _fwd_udp = Forwarder::install_udp(&rig.b, 7070, rig.c.ip_on(Medium::Ethernet));
    let _fwd_tcp = Forwarder::install_tcp(&rig.b, 8080, rig.c.ip_on(Medium::Ethernet));
    let _video = VideoClient::install(&rig.b);
    let board = &rig.board;
    let host_b = board.new_host(16); // spare disk for the HTTP content
    let bc = BufferCache::new(
        host_b.disk.clone(),
        rig.exec.clone(),
        16,
        Box::new(NoCachePolicy),
    );
    let fs = FileSystem::format(bc, 0, 100);
    let cache = Arc::new(WebCache::new(
        1 << 20,
        Box::new(HybridBySize {
            large_threshold: 65536,
        }),
    ));
    let _http = HttpServer::start(&rig.b, &tcp, fs, cache, 80);

    println!("\nFigure 5: protocol stack event graph (events -> handlers)");
    println!("==========================================================");
    print!("{}", rig.b.topology().render());
    println!(
        "Incoming packets are pushed through this graph by events raised from a\n\
         separately scheduled protocol thread; handlers pull them toward the\n\
         application-specific endpoints within the kernel (§5.3)."
    );
    let edges = rig.b.topology().edges();
    let mut report = JsonReport::new(
        "fig5_stack",
        "Figure 5: protocol stack event graph",
        "handlers_per_event",
    )
    .text("topology", &rig.b.topology().render())
    .number("edges", edges.len() as f64);
    // One row per event: how many handlers hang off it (sorted, so the
    // JSON diffs stably).
    let mut events: Vec<&String> = edges.iter().map(|(e, _)| e).collect();
    events.dedup();
    for event in events {
        let n = edges.iter().filter(|(e, _)| e == event).count();
        report = report.row(event, None, n as f64);
    }
    report.write_if_requested();
}
