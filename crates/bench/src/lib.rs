//! `spin-bench` — the harness that regenerates every table and figure of
//! the paper's evaluation (§5).
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §3 for
//! the index) and prints a paper-vs-measured table. Criterion benches in
//! `benches/` measure the *real* (wall-clock) overhead of the dispatcher,
//! linker and collector, independent of the virtual-time calibration.

use std::fmt::Write as _;

/// One row of a reproduction table.
pub struct Row {
    /// Operation name (matches the paper's row label).
    pub label: String,
    /// The paper's reported value, if the row has one.
    pub paper: Option<f64>,
    /// Our measured/modelled value.
    pub measured: f64,
}

impl Row {
    /// A row with a paper reference value.
    pub fn new(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: Some(paper),
            measured,
        }
    }

    /// A row we report without a paper counterpart.
    pub fn extra(label: &str, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: None,
            measured,
        }
    }
}

/// Renders a comparison table with a measured/paper ratio column.
pub fn render_table(title: &str, unit: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<38} {:>12} {:>12} {:>8}",
        "operation",
        format!("paper ({unit})"),
        format!("ours ({unit})"),
        "ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for r in rows {
        match r.paper {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12.2} {:>12.2} {:>8.2}",
                    r.label,
                    p,
                    r.measured,
                    r.measured / p
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12} {:>12.2} {:>8}",
                    r.label, "-", r.measured, "-"
                );
            }
        }
    }
    out
}

/// Nanoseconds → microseconds.
pub fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Counts non-comment, non-blank source lines in a Rust file (the paper's
/// Table 1/7 "lines" column "does not include comments").
pub fn count_code_lines(content: &str) -> usize {
    let mut in_block_comment = false;
    content
        .lines()
        .filter(|line| {
            let t = line.trim();
            if in_block_comment {
                if t.contains("*/") {
                    in_block_comment = false;
                }
                return false;
            }
            if t.is_empty() || t.starts_with("//") {
                return false;
            }
            if t.starts_with("/*") {
                in_block_comment = !t.contains("*/");
                return false;
            }
            true
        })
        .count()
}

/// Sums code lines across the `.rs` files under `dir` (recursively).
pub fn count_dir_lines(dir: &std::path::Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += count_dir_lines(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(content) = std::fs::read_to_string(&path) {
                    total += count_code_lines(&content);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lines_exclude_comments_and_blanks() {
        let src = "// comment\n\nfn main() {\n    /* block\n       comment */\n    let x = 1;\n}\n";
        assert_eq!(count_code_lines(src), 3);
    }

    #[test]
    fn table_renders_ratios() {
        let t = render_table(
            "Demo",
            "µs",
            &[Row::new("op", 10.0, 12.0), Row::extra("other", 5.0)],
        );
        assert!(t.contains("1.20"));
        assert!(t.contains("other"));
    }
}
