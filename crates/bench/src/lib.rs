//! `spin-bench` — the harness that regenerates every table and figure of
//! the paper's evaluation (§5).
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §3 for
//! the index) and prints a paper-vs-measured table. Criterion benches in
//! `benches/` measure the *real* (wall-clock) overhead of the dispatcher,
//! linker and collector, independent of the virtual-time calibration.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// One row of a reproduction table.
pub struct Row {
    /// Operation name (matches the paper's row label).
    pub label: String,
    /// The paper's reported value, if the row has one.
    pub paper: Option<f64>,
    /// Our measured/modelled value.
    pub measured: f64,
}

impl Row {
    /// A row with a paper reference value.
    pub fn new(label: &str, paper: f64, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: Some(paper),
            measured,
        }
    }

    /// A row we report without a paper counterpart.
    pub fn extra(label: &str, measured: f64) -> Row {
        Row {
            label: label.to_string(),
            paper: None,
            measured,
        }
    }
}

/// Renders a comparison table with a measured/paper ratio column.
pub fn render_table(title: &str, unit: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<38} {:>12} {:>12} {:>8}",
        "operation",
        format!("paper ({unit})"),
        format!("ours ({unit})"),
        "ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for r in rows {
        match r.paper {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12.2} {:>12.2} {:>8.2}",
                    r.label,
                    p,
                    r.measured,
                    r.measured / p
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12} {:>12.2} {:>8}",
                    r.label, "-", r.measured, "-"
                );
            }
        }
    }
    out
}

/// Nanoseconds → microseconds.
pub fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// True when the binary was invoked with `--json`: emit `BENCH_<name>.json`
/// beside the human table.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip float formatting (Rust's `Display` for `f64`) keeps
/// the JSON deterministic for golden diffs.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Machine-readable companion to [`render_table`]: accumulates the same
/// rows (plus free-form scalar fields) and writes `BENCH_<name>.json` when
/// the binary was run with `--json`.
pub struct JsonReport {
    name: String,
    title: String,
    units: String,
    rows: Vec<(String, Option<f64>, f64)>,
    extras: Vec<(String, String)>,
}

impl JsonReport {
    /// A report named `name` (the file becomes `BENCH_<name>.json`).
    pub fn new(name: &str, title: &str, units: &str) -> JsonReport {
        JsonReport {
            name: name.to_string(),
            title: title.to_string(),
            units: units.to_string(),
            rows: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Appends the table's rows.
    pub fn rows(mut self, rows: &[Row]) -> JsonReport {
        for r in rows {
            self.rows.push((r.label.clone(), r.paper, r.measured));
        }
        self
    }

    /// Appends one row.
    pub fn row(mut self, label: &str, paper: Option<f64>, measured: f64) -> JsonReport {
        self.rows.push((label.to_string(), paper, measured));
        self
    }

    /// Appends a top-level numeric field.
    pub fn number(mut self, key: &str, value: f64) -> JsonReport {
        self.extras.push((key.to_string(), json_f64(value)));
        self
    }

    /// Appends a top-level string field.
    pub fn text(mut self, key: &str, value: &str) -> JsonReport {
        self.extras
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Renders the report as a JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(out, "  \"units\": \"{}\",", json_escape(&self.units));
        for (key, value) in &self.extras {
            let _ = writeln!(out, "  \"{}\": {},", json_escape(key), value);
        }
        let _ = writeln!(out, "  \"rows\": [");
        for (i, (label, paper, measured)) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let paper = paper.map_or("null".to_string(), json_f64);
            let _ = writeln!(
                out,
                "    {{ \"label\": \"{}\", \"paper\": {}, \"measured\": {} }}{}",
                json_escape(label),
                paper,
                json_f64(*measured),
                comma
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes `BENCH_<name>.json` into the current directory if the
    /// process was invoked with `--json`; no-op otherwise.
    pub fn write_if_requested(self) {
        if !json_requested() {
            return;
        }
        let path = format!("BENCH_{}.json", self.name);
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Counts non-comment, non-blank source lines in a Rust file (the paper's
/// Table 1/7 "lines" column "does not include comments").
pub fn count_code_lines(content: &str) -> usize {
    let mut in_block_comment = false;
    content
        .lines()
        .filter(|line| {
            let t = line.trim();
            if in_block_comment {
                if t.contains("*/") {
                    in_block_comment = false;
                }
                return false;
            }
            if t.is_empty() || t.starts_with("//") {
                return false;
            }
            if t.starts_with("/*") {
                in_block_comment = !t.contains("*/");
                return false;
            }
            true
        })
        .count()
}

/// Sums code lines across the `.rs` files under `dir` (recursively).
pub fn count_dir_lines(dir: &std::path::Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += count_dir_lines(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(content) = std::fs::read_to_string(&path) {
                    total += count_code_lines(&content);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lines_exclude_comments_and_blanks() {
        let src = "// comment\n\nfn main() {\n    /* block\n       comment */\n    let x = 1;\n}\n";
        assert_eq!(count_code_lines(src), 3);
    }

    #[test]
    fn json_report_renders_rows_and_extras() {
        let j = JsonReport::new("demo", "Demo table", "µs")
            .rows(&[Row::new("op", 10.0, 12.5), Row::extra("other", 5.0)])
            .number("rounds", 16.0)
            .text("note", "a \"quoted\" note")
            .render();
        assert!(j.contains("\"benchmark\": \"demo\""));
        assert!(j.contains("\"paper\": 10, \"measured\": 12.5"));
        assert!(j.contains("\"paper\": null, \"measured\": 5"));
        assert!(j.contains("\"rounds\": 16"));
        assert!(j.contains("\\\"quoted\\\""));
    }

    #[test]
    fn table_renders_ratios() {
        let t = render_table(
            "Demo",
            "µs",
            &[Row::new("op", 10.0, 12.0), Row::extra("other", 5.0)],
        );
        assert!(t.contains("1.20"));
        assert!(t.contains("other"));
    }
}
