//! The spin-fault cost-model invariant, enforced end-to-end: every
//! virtual-time figure the evaluation reports is byte-identical whether
//! fault injection is absent, wired with the plan disabled, or wired
//! with the plan armed but no injection rates configured. A hook that
//! never fires must never show up in Tables 2/4/5/6.
//!
//! This mirrors `obs_invariance.rs`: the workloads are the measured rows
//! of Table 2 (protected communication), Table 4 (VM operations), Table
//! 5 (network latency/bandwidth), Table 6 (the protocol forwarder) and
//! the §5.5 dispatcher-scaling series, plus a demand-paging pass that
//! exercises the `vm.pager` hook point.

use spin_core::{Containment, ContainmentPolicy, Dispatcher, Identity, Kernel};
use spin_fault::{
    FaultPlan, SITE_DISPATCH, SITE_NET_STACK, SITE_RT_HEAP, SITE_SCHED, SITE_VM_PAGER,
};
use spin_net::{
    reliable_bandwidth, udp_round_trip, Forwarder, Medium, NetStack, ThreeHosts, TwoHosts,
    UdpPacket,
};
use spin_sal::{Clock, Host, MachineProfile, SimBoard, PAGE_SHIFT};
use spin_sched::{measure_xas_call, Executor};
use spin_vm::{DiskPager, PhysAddrService, TranslationService, VirtAddrService, VmWorkbench};
use std::sync::Arc;

/// Wires a plan's hooks plus the standard containment sink into a
/// dispatcher — the full fault path, compiled in and idle.
fn wire_dispatcher(d: &Dispatcher, plan: Option<&FaultPlan>) {
    if let Some(p) = plan {
        d.set_fault_hook(p.hook(SITE_DISPATCH));
        let _ = Containment::install(d, None, ContainmentPolicy::default());
    }
}

fn wire_exec(exec: &Executor, plan: Option<&FaultPlan>) {
    if let Some(p) = plan {
        exec.set_fault_hook(p.hook(SITE_SCHED));
    }
}

fn wire_stacks(stacks: &[&NetStack], plan: Option<&FaultPlan>) {
    if let Some(p) = plan {
        for s in stacks {
            s.set_fault_hook(p.hook(SITE_NET_STACK));
        }
    }
}

fn table2_in_kernel_call(plan: Option<&FaultPlan>) -> u64 {
    let clock = Clock::new();
    let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
    let d = Dispatcher::new(clock.clone(), profile);
    wire_dispatcher(&d, plan);
    let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("bench"));
    owner.set_primary(|_| ()).expect("fresh");
    let t0 = clock.now();
    const N: u64 = 1000;
    for _ in 0..N {
        ev.raise(()).expect("handler installed");
    }
    (clock.now() - t0) / N
}

fn table2_syscall(plan: Option<&FaultPlan>) -> u64 {
    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    if let Some(p) = plan {
        kernel.dispatcher().set_fault_hook(p.hook(SITE_DISPATCH));
        kernel.heap().set_fault_hook(p.hook(SITE_RT_HEAP));
        kernel.install_fault_containment(ContainmentPolicy::default());
    }
    kernel
        .register_syscalls(Identity::extension("null"), 0..1, |_| 0)
        .expect("install");
    let clock = kernel.host().clock.clone();
    let t0 = clock.now();
    const N: u64 = 100;
    for _ in 0..N {
        kernel.syscall(0, [0; 6]);
    }
    (clock.now() - t0) / N
}

fn table2_xas(plan: Option<&FaultPlan>) -> u64 {
    let board = SimBoard::new();
    let host = board.new_host(64);
    let exec = Executor::for_host(&host);
    wire_exec(&exec, plan);
    measure_xas_call(&exec)
}

fn table4_vm(plan: Option<&FaultPlan>) -> [u64; 4] {
    // The workbench owns its dispatcher internally; the fault path it can
    // carry is the pager's, covered by `pager_demand` below. The rows
    // here pin the plain translation-service numbers.
    let _ = plan;
    let measure = |f: fn(&VmWorkbench) -> u64| {
        let wb = VmWorkbench::new();
        f(&wb)
    };
    [
        measure(|wb| wb.dirty_ns()),
        measure(|wb| wb.fault_ns()),
        measure(|wb| wb.trap_ns()),
        measure(|wb| wb.prot1_ns()),
    ]
}

/// Demand-pages a small disk-backed region and reports the elapsed
/// virtual time — the workload whose handler crosses the `vm.pager`,
/// `core.dispatch` and `sched.executor` hook points at once.
fn pager_demand(plan: Option<&FaultPlan>) -> u64 {
    const PAGES: u64 = 8;
    let board = SimBoard::new();
    let host: Host = board.new_host(128);
    let exec = Executor::for_host(&host);
    let disp = Dispatcher::new(board.clock.clone(), board.profile.clone());
    wire_exec(&exec, plan);
    wire_dispatcher(&disp, plan);
    let trans = TranslationService::new(
        host.mmu.clone(),
        board.clock.clone(),
        board.profile.clone(),
        &disp,
    );
    let phys = PhysAddrService::new(host.mem.clone(), &disp);
    let virt = VirtAddrService::new();
    let ctx = trans.create();
    let region = virt.allocate(PAGES).expect("virtual region");
    trans.reserve(ctx, &region).expect("reserve");
    let pager = DiskPager::install(
        exec.clone(),
        trans.clone(),
        phys,
        host.disk.clone(),
        ctx,
        region.clone(),
        0,
    );
    if let Some(p) = plan {
        pager.set_fault_hook(p.hook(SITE_VM_PAGER));
    }
    let clock = exec.clock().clone();
    let mem = host.mem.clone();
    let base = region.base();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    exec.spawn("reader", move |_| {
        let t0 = clock.now();
        let mut buf = [0u8; 1];
        for p in 0..PAGES {
            trans
                .read(ctx, base + (p << PAGE_SHIFT), &mut buf, &mem)
                .expect("page in");
        }
        *o2.lock() = clock.now() - t0;
    });
    exec.run_until_idle();
    let r = *out.lock();
    r
}

fn table5_net(plan: Option<&FaultPlan>) -> [u64; 3] {
    let wired_rig = |plan: Option<&FaultPlan>| {
        let rig = TwoHosts::new();
        wire_exec(&rig.exec, plan);
        wire_dispatcher(&rig.dispatcher, plan);
        wire_stacks(&[&rig.a, &rig.b], plan);
        rig
    };
    let rig = wired_rig(plan);
    let eth_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
    let rig = wired_rig(plan);
    let atm_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Atm, 16, 8);
    let rig = wired_rig(plan);
    let eth_bw = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 1458, 40, 16);
    [eth_rtt, atm_rtt, eth_bw.to_bits()]
}

fn table6_forward(plan: Option<&FaultPlan>) -> u64 {
    // UDP through the in-stack forwarder on the middle host (the Table 6
    // topology). The forwarder's transmit-retry path is armed but must
    // never fire on a healthy wire.
    let rig = ThreeHosts::new();
    wire_exec(&rig.exec, plan);
    wire_dispatcher(&rig.dispatcher, plan);
    wire_stacks(&[&rig.a, &rig.b, &rig.c], plan);
    let medium = Medium::Ethernet;
    let _fwd = Forwarder::install_udp(&rig.b, 7, rig.c.ip_on(medium));
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
        let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).expect("bind client");
    let b_ip = rig.b.ip_on(medium);
    let a = rig.a.clone();
    let clock = rig.exec.clock().clone();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let r = *out.lock();
    r
}

fn s1_scaling(plan: Option<&FaultPlan>) -> [u64; 2] {
    let rtt_with_guards = |extra: usize, guards_pass: bool| {
        let rig = TwoHosts::new();
        wire_exec(&rig.exec, plan);
        wire_dispatcher(&rig.dispatcher, plan);
        wire_stacks(&[&rig.a, &rig.b], plan);
        for i in 0..extra {
            rig.b
                .events()
                .udp_arrived
                .install_guarded(
                    Identity::extension(&format!("watcher-{i}")),
                    move |_p: &UdpPacket| guards_pass,
                    |_p: &UdpPacket| {},
                )
                .expect("install watcher");
        }
        udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8)
    };
    [rtt_with_guards(50, false), rtt_with_guards(50, true)]
}

/// Every measured number of the suite under one configuration.
fn run_suite(plan: Option<&FaultPlan>) -> Vec<u64> {
    let mut out = vec![
        table2_in_kernel_call(plan),
        table2_syscall(plan),
        table2_xas(plan),
    ];
    out.extend(table4_vm(plan));
    out.push(pager_demand(plan));
    out.extend(table5_net(plan));
    out.push(table6_forward(plan));
    out.extend(s1_scaling(plan));
    out
}

#[test]
fn virtual_time_is_identical_with_fault_injection_wired_but_idle() {
    let baseline = run_suite(None);

    let disabled = FaultPlan::new(0xFA);
    disabled.set_enabled(false);
    assert_eq!(
        baseline,
        run_suite(Some(&disabled)),
        "virtual-time outputs diverged with hooks wired and the plan \
         disabled (order: table2 call/syscall/xas, table4 dirty/fault/\
         trap/prot1, pager-demand, table5 eth-rtt/atm-rtt/eth-bw-bits, \
         table6 udp-fwd, s1 false/true guards)"
    );
    assert_eq!(
        disabled.injected_total(),
        0,
        "a disabled plan must inject nothing"
    );

    // Armed but with no rates configured: every draw runs the full
    // decision path and still injects nothing — and costs no virtual time.
    let armed = FaultPlan::new(0xFB);
    assert_eq!(
        baseline,
        run_suite(Some(&armed)),
        "virtual-time outputs diverged with the plan armed at zero rates"
    );
    assert_eq!(armed.injected_total(), 0);
}

#[test]
fn wired_plans_actually_draw_at_the_hook_points() {
    // The invariance above would hold trivially if the hooks were never
    // reached; check an armed plan sees real draws at each wired site.
    let plan = FaultPlan::new(1);
    run_suite(Some(&plan));
    let report = plan.report();
    let hits = |site: &str| {
        report
            .iter()
            .find(|r| r.site == site)
            .map(|r| r.hits)
            .unwrap_or(0)
    };
    for site in [SITE_DISPATCH, SITE_SCHED, SITE_VM_PAGER, SITE_NET_STACK] {
        assert!(hits(site) > 0, "site {site} was never drawn: {report:?}");
    }
}
