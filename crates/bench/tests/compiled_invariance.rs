//! The guard-set-compilation cost-model invariant, enforced on the real
//! network workloads: installing a service through keyed (compilable)
//! guards charges exactly the virtual time the equivalent opaque-closure
//! installation charges — with observability absent (coalesced miss
//! charges) and wired (charge-by-charge replay) alike — and the keyed
//! installations actually take the compiled path.

use spin_bench::Row;
use spin_core::Identity;
use spin_net::{udp_round_trip, Forwarder, Medium, ThreeHosts, TwoHosts, UdpPacket};
use spin_obs::Obs;
use spin_sal::Nanos;
use std::sync::Arc;

/// The echo port [`udp_round_trip`] serves on; a keyed watcher guarding a
/// different port is an always-false guard.
const ECHO_PORT: u16 = 7;
const UNUSED_PORT: u16 = 9;

fn watcher_rig(obs: Option<&Obs>) -> TwoHosts {
    let rig = TwoHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    rig
}

/// RTT with `extra` watcher guards on the server's UDP arrival event,
/// installed keyed or opaque; returns the RTT and whether the server
/// event dispatched compiled.
fn watcher_rtt(extra: usize, keyed: bool, pass: bool, obs: Option<&Obs>) -> (Nanos, bool) {
    let rig = watcher_rig(obs);
    let port = if pass { ECHO_PORT } else { UNUSED_PORT };
    for i in 0..extra {
        let ident = Identity::extension(&format!("watcher-{i}"));
        let ev = &rig.b.events().udp_arrived;
        if keyed {
            ev.install_keyed(
                ident,
                &rig.b.events().udp_port_key,
                u64::from(port),
                |_p: &UdpPacket| {},
            )
            .expect("install keyed watcher");
        } else {
            ev.install_guarded(
                ident,
                move |p: &UdpPacket| p.header.dst_port == port,
                |_p: &UdpPacket| {},
            )
            .expect("install opaque watcher");
        }
    }
    let rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
    let stats = rig
        .dispatcher
        .stats(&rig.b.events().udp_arrived)
        .expect("event alive");
    (rtt, stats.compiled_raises > 0)
}

#[test]
fn keyed_watchers_charge_identical_rtt() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        for extra in [10, 100] {
            for pass in [false, true] {
                let (opaque, _) = watcher_rtt(extra, false, pass, obs);
                let (keyed, compiled) = watcher_rtt(extra, true, pass, obs);
                assert_eq!(
                    opaque,
                    keyed,
                    "keyed vs opaque watcher RTT diverged \
                     (extra={extra}, pass={pass}, obs={})",
                    obs.is_some()
                );
                assert!(compiled, "keyed watchers must dispatch compiled");
            }
        }
    }
}

/// The Table 6 forward workload (client → forwarder → echo server), whose
/// forwarder installs keyed and key-range guards since the migration.
fn forward_rtt(obs: Option<&Obs>) -> (Nanos, bool) {
    let rig = ThreeHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    let medium = Medium::Ethernet;
    let _fwd = Forwarder::install_udp(&rig.b, ECHO_PORT, rig.c.ip_on(medium));
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, ECHO_PORT, "echo", move |p| {
        let _ = c2.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).expect("bind client");
    let b_ip = rig.b.ip_on(medium);
    let a = rig.a.clone();
    let clock = rig.exec.clock().clone();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        a.udp_send(9000, b_ip, ECHO_PORT, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, ECHO_PORT, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let rtt = *out.lock();
    let stats = rig
        .dispatcher
        .stats(&rig.b.events().udp_arrived)
        .expect("event alive");
    (rtt, stats.compiled_raises > 0)
}

#[test]
fn keyed_forwarder_charges_identical_table6_rtt() {
    let (absent, compiled) = forward_rtt(None);
    assert!(compiled, "the keyed forwarder must dispatch compiled");
    assert!(absent > 0, "the forward workload must complete");
    let obs = Obs::new(4096);
    let (wired, _) = forward_rtt(Some(&obs));
    assert_eq!(
        absent, wired,
        "compiled forwarder RTT diverged between coalesced and replayed charges"
    );
    // Sanity for the golden: the Table 6 row derived from this number is
    // what scripts/goldens/BENCH_table6_forward.json pins byte-for-byte.
    let row = Row::new("Protocol forwarding, UDP", 65.0, absent as f64 / 1000.0);
    assert!(row.measured > 0.0);
}

/// An echo service bound through the keyed [`spin_net::UdpSocket::bind_with`]
/// vs the same service installed as an opaque port-comparison guard: the
/// round trip charges identical virtual time.
fn echo_rtt(keyed: bool, obs: Option<&Obs>) -> Nanos {
    let rig = watcher_rig(obs);
    let server = rig.b.clone();
    if keyed {
        spin_net::UdpSocket::bind_with(&rig.b, ECHO_PORT, "echo", move |p| {
            let _ = server.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
        })
        .expect("bind echo");
    } else {
        rig.b
            .events()
            .udp_arrived
            .install_guarded(
                Identity::extension("echo"),
                |p: &UdpPacket| p.header.dst_port == ECHO_PORT,
                move |p: &UdpPacket| {
                    let _ = server.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
                },
            )
            .expect("install opaque echo");
    }
    let reply = spin_net::UdpSocket::bind(&rig.a, 6000, "client", 4).expect("bind client");
    let dst = rig.b.ip_on(Medium::Ethernet);
    let a = rig.a.clone();
    let clock = rig.exec.clock().clone();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        a.udp_send(6000, dst, ECHO_PORT, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(6000, dst, ECHO_PORT, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let rtt = *out.lock();
    rtt
}

#[test]
fn keyed_socket_bind_matches_opaque_echo_service() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        let keyed = echo_rtt(true, obs);
        let opaque = echo_rtt(false, obs);
        assert_eq!(
            keyed,
            opaque,
            "socket bind (keyed) vs opaque echo RTT diverged (obs={})",
            obs.is_some()
        );
        assert!(keyed > 0, "round trips must complete");
    }
}
