//! The spin-obs cost-model invariant, enforced end-to-end: every
//! virtual-time figure the evaluation reports is byte-identical whether
//! the observability subsystem is absent, wired with the flight recorder
//! on (at capacity 1 or 64k), or wired with the recorder off.
//!
//! The workloads are the measured (non-modelled) rows of Table 2
//! (protected communication), Table 4 (VM operations), Table 5 (network
//! latency/bandwidth), Table 6 (the protocol forwarder) and the §5.5
//! dispatcher-scaling series.

use spin_core::{Dispatcher, Identity, Kernel};
use spin_net::{
    reliable_bandwidth, udp_round_trip, Forwarder, Medium, ThreeHosts, TwoHosts, UdpPacket,
};
use spin_obs::Obs;
use spin_sal::{Clock, MachineProfile, SimBoard};
use spin_sched::{measure_xas_call, Executor};
use spin_vm::VmWorkbench;
use std::sync::Arc;

/// One observability configuration under test.
enum Config {
    /// No obs wired anywhere (the seed's behaviour).
    Absent,
    /// Obs wired into every subsystem, recorder on, given ring capacity.
    Recording(usize),
    /// Obs wired, recorder disabled (counters still accumulate).
    Wired(usize),
}

impl Config {
    fn obs(&self) -> Option<Obs> {
        match self {
            Config::Absent => None,
            Config::Recording(cap) => Some(Obs::new(*cap)),
            Config::Wired(cap) => {
                let obs = Obs::new(*cap);
                obs.set_recording(false);
                Some(obs)
            }
        }
    }
}

fn table2_in_kernel_call(obs: Option<&Obs>) -> u64 {
    let clock = Clock::new();
    let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
    let d = Dispatcher::new(clock.clone(), profile);
    if let Some(obs) = obs {
        d.set_obs(obs.domain("dispatcher"));
    }
    let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("bench"));
    owner.set_primary(|_| ()).expect("fresh");
    let t0 = clock.now();
    const N: u64 = 1000;
    for _ in 0..N {
        ev.raise(()).expect("handler installed");
    }
    (clock.now() - t0) / N
}

fn table2_syscall(obs: Option<&Obs>) -> u64 {
    let board = SimBoard::new();
    let kernel = Kernel::boot(board.new_host(64));
    if let Some(obs) = obs {
        kernel.install_obs(obs);
    }
    kernel
        .register_syscalls(Identity::extension("null"), 0..1, |_| 0)
        .expect("install");
    let clock = kernel.host().clock.clone();
    let t0 = clock.now();
    const N: u64 = 100;
    for _ in 0..N {
        kernel.syscall(0, [0; 6]);
    }
    (clock.now() - t0) / N
}

fn table2_xas(obs: Option<&Obs>) -> u64 {
    let board = SimBoard::new();
    let host = board.new_host(64);
    let exec = Executor::for_host(&host);
    if let Some(obs) = obs {
        exec.set_obs(obs.domain("sched"));
    }
    measure_xas_call(&exec)
}

fn table4_vm(obs: Option<&Obs>) -> [u64; 4] {
    let measure = |f: fn(&VmWorkbench) -> u64| {
        let wb = VmWorkbench::new();
        if let Some(obs) = obs {
            wb.trans.set_obs(obs.domain("vm"));
        }
        f(&wb)
    };
    [
        measure(|wb| wb.dirty_ns()),
        measure(|wb| wb.fault_ns()),
        measure(|wb| wb.trap_ns()),
        measure(|wb| wb.prot1_ns()),
    ]
}

fn table5_net(obs: Option<&Obs>) -> [u64; 3] {
    let wired_rig = |obs: Option<&Obs>| {
        let rig = TwoHosts::new();
        if let Some(obs) = obs {
            rig.wire_obs(obs);
        }
        rig
    };
    let rig = wired_rig(obs);
    let eth_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
    let rig = wired_rig(obs);
    let atm_rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Atm, 16, 8);
    let rig = wired_rig(obs);
    let eth_bw = reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 1458, 40, 16);
    [eth_rtt, atm_rtt, eth_bw.to_bits()]
}

fn table6_forward(obs: Option<&Obs>) -> u64 {
    // UDP through the in-stack forwarder on the middle host (the Table 6
    // topology), with obs wired into all three stacks when present.
    let rig = ThreeHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    let medium = Medium::Ethernet;
    let _fwd = Forwarder::install_udp(&rig.b, 7, rig.c.ip_on(medium));
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, 7, "echo", move |p| {
        let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).expect("bind client");
    let b_ip = rig.b.ip_on(medium);
    let a = rig.a.clone();
    let clock = rig.exec.clock().clone();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let r = *out.lock();
    r
}

fn s1_scaling(obs: Option<&Obs>) -> [u64; 2] {
    let rtt_with_guards = |extra: usize, guards_pass: bool| {
        let rig = TwoHosts::new();
        if let Some(obs) = obs {
            rig.wire_obs(obs);
        }
        for i in 0..extra {
            rig.b
                .events()
                .udp_arrived
                .install_guarded(
                    Identity::extension(&format!("watcher-{i}")),
                    move |_p: &UdpPacket| guards_pass,
                    |_p: &UdpPacket| {},
                )
                .expect("install watcher");
        }
        udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8)
    };
    [rtt_with_guards(50, false), rtt_with_guards(50, true)]
}

/// Every measured number of the suite under one configuration.
fn run_suite(config: &Config) -> Vec<u64> {
    let obs = config.obs();
    let obs = obs.as_ref();
    let mut out = vec![
        table2_in_kernel_call(obs),
        table2_syscall(obs),
        table2_xas(obs),
    ];
    out.extend(table4_vm(obs));
    out.extend(table5_net(obs));
    out.push(table6_forward(obs));
    out.extend(s1_scaling(obs));
    out
}

#[test]
fn virtual_time_is_identical_across_all_recorder_configurations() {
    let baseline = run_suite(&Config::Absent);
    for (label, config) in [
        ("recorder on, capacity 1", Config::Recording(1)),
        ("recorder on, capacity 64k", Config::Recording(65536)),
        ("recorder off, capacity 64k", Config::Wired(65536)),
    ] {
        let got = run_suite(&config);
        assert_eq!(
            baseline, got,
            "virtual-time outputs diverged with {label} (order: table2 call/\
             syscall/xas, table4 dirty/fault/trap/prot1, table5 eth-rtt/\
             atm-rtt/eth-bw-bits, table6 udp-fwd, s1 false/true guards)"
        );
    }
}

#[test]
fn recording_configuration_actually_observes_the_workloads() {
    // The invariance above would hold trivially if nothing were wired;
    // check the recording run accumulates real evidence.
    let obs = Obs::new(65536);
    let obs_ref = Some(&obs);
    table2_in_kernel_call(obs_ref);
    table2_syscall(obs_ref);
    table2_xas(obs_ref);
    table4_vm(obs_ref);
    table5_net(obs_ref);
    table6_forward(obs_ref);

    let acct = obs.accounting();
    for name in ["dispatcher", "sched", "vm", "net", "kernel"] {
        let (_, counters) = acct.register(name);
        assert!(
            counters.activity() > 0,
            "domain {name} recorded no activity"
        );
    }
    assert!(obs.ring().pushed() > 0, "flight recorder stayed empty");
    // The harness histograms migrated from net::measure are registered
    // and populated.
    let hists = acct.histograms();
    assert!(
        hists
            .iter()
            .any(|(n, h)| n.starts_with("net.rtt_ns") && h.count() > 0),
        "RTT histogram missing: {:?}",
        hists.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    );
    assert!(
        hists
            .iter()
            .any(|(n, h)| n.starts_with("net.bw_elapsed_ns") && h.count() > 0),
        "bandwidth histogram missing"
    );
}
