//! The hot-swap cost-model invariant, enforced on the real workloads
//! behind Tables 2, 5 and 6: the quiesce-gate check on the raise path,
//! the hold-queue machinery and a wired-but-idle [`SwapCoordinator`] must
//! never move a reported virtual-time number — and a swap that commits a
//! *semantically identical* new version mid-workload must be invisible in
//! the numbers too (the paper's online-upgrade promise: byte-identical
//! outputs wherever the versions agree).
//!
//! The byte-for-byte golden diffs in `scripts/verify.sh` gate the same
//! property on the emitted `BENCH_*.json` files; these tests pin it at
//! the workload level, with observability absent and wired alike.

use spin_core::GatedEvent;
use spin_net::{reliable_bandwidth, udp_round_trip, Forwarder, Medium, ThreeHosts, TwoHosts};
use spin_obs::Obs;
use spin_sal::Nanos;
use spin_swap::SwapCoordinator;
use std::sync::Arc;

const ECHO_PORT: u16 = 7;

/// Wires an idle swap coordinator over the rig's UDP arrival events: obs
/// gauges registered, gates referenced — but no swap ever begun. This is
/// the "compiled in but idle" configuration the cost model must ignore.
fn idle_coordinator(stacks: &[&spin_net::NetStack], obs: Option<&Obs>) -> SwapCoordinator {
    let coord = SwapCoordinator::new(stacks[0].executor().clock().clone());
    if let Some(obs) = obs {
        coord.wire_obs(obs);
    }
    let _gates: Vec<Arc<dyn GatedEvent>> = stacks
        .iter()
        .map(|s| Arc::new(s.events().udp_arrived.clone()) as Arc<dyn GatedEvent>)
        .collect();
    coord
}

/// Table 2's protocol-latency workload (UDP round trip) with and without
/// the idle swap machinery wired.
fn table2_rtt(idle_swap: bool, obs: Option<&Obs>) -> Nanos {
    let rig = TwoHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    let coord = idle_swap.then(|| idle_coordinator(&[&rig.a, &rig.b], obs));
    let rtt = udp_round_trip(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 16, 8);
    if let Some(coord) = coord {
        let stats = coord.stats();
        assert_eq!(stats.attempted, 0, "the idle coordinator never swapped");
    }
    rtt
}

/// Table 5's bulk-throughput workload (windowed reliable transfer) with
/// and without the idle swap machinery wired.
fn table5_bandwidth(idle_swap: bool, obs: Option<&Obs>) -> f64 {
    let rig = TwoHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    let _coord = idle_swap.then(|| idle_coordinator(&[&rig.a, &rig.b], obs));
    reliable_bandwidth(&rig.exec, &rig.a, &rig.b, Medium::Ethernet, 1024, 64, 8)
}

/// Table 6's forward workload (client → forwarder → echo). `swap_mid_run`
/// hot-swaps the forwarder to a v2 built from the live flow snapshot —
/// same port, same target, transferred flows — between warm-up and the
/// measured rounds.
fn table6_rtt(idle_swap: bool, swap_mid_run: bool, obs: Option<&Obs>) -> Nanos {
    let rig = ThreeHosts::new();
    if let Some(obs) = obs {
        rig.wire_obs(obs);
    }
    let coord = if idle_swap || swap_mid_run {
        Some(idle_coordinator(&[&rig.a, &rig.b, &rig.c], obs))
    } else {
        None
    };
    let medium = Medium::Ethernet;
    let target = rig.c.ip_on(medium);
    let fwd = Forwarder::install_udp(&rig.b, ECHO_PORT, target);
    let c2 = rig.c.clone();
    spin_net::UdpSocket::bind_with(&rig.c, ECHO_PORT, "echo", move |p| {
        let _ = c2.udp_send(ECHO_PORT, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&rig.a, 9000, "client", 4).expect("bind client");
    let b_ip = rig.b.ip_on(medium);
    let clock = rig.exec.clock().clone();

    // Warm-up round (opens the client's flow through the forwarder).
    {
        let a = rig.a.clone();
        let ch = reply.clone();
        rig.exec.spawn("warmup", move |ctx| {
            a.udp_send(9000, b_ip, ECHO_PORT, &[0u8; 16]).unwrap();
            ch.recv(ctx);
        });
        rig.exec.run_until_idle();
    }

    if swap_mid_run {
        let coord = coord.as_ref().expect("mid-run swap needs a coordinator");
        let ev = &rig.b.events().udp_arrived;
        let report = coord
            .swap(
                "Forward",
                vec![Arc::new(ev.clone())],
                fwd.identity(),
                &fwd,
                |old| old.snapshot(),
                None,
                |snapshot| {
                    let (_v2, specs) = Forwarder::udp_swap_specs(
                        &rig.b,
                        ECHO_PORT,
                        target,
                        "Forward-v2",
                        snapshot,
                    );
                    let receipt = ev
                        .rebind(fwd.identity(), fwd.identity(), specs)
                        .expect("rebind forwarder");
                    let ev = ev.clone();
                    let ident = fwd.identity().clone();
                    vec![Box::new(move || {
                        ev.restore(&ident, receipt).expect("restore forwarder");
                    }) as spin_swap::UndoAction]
                },
            )
            .expect("mid-run swap commits");
        assert_eq!(report.held, 0, "no traffic in flight between rounds");
    }

    let a = rig.a.clone();
    let out = Arc::new(parking_lot::Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    rig.exec.spawn("driver", move |ctx| {
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, ECHO_PORT, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    rig.exec.run_until_idle();
    let rtt = *out.lock();
    rtt
}

#[test]
fn idle_swap_machinery_charges_identical_table2_rtt() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        let plain = table2_rtt(false, obs);
        let idle = table2_rtt(true, obs);
        assert!(plain > 0, "round trips must complete");
        assert_eq!(
            plain,
            idle,
            "idle swap machinery moved the Table 2 RTT (obs={})",
            obs.is_some()
        );
    }
}

#[test]
fn idle_swap_machinery_charges_identical_table5_bandwidth() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        let plain = table5_bandwidth(false, obs);
        let idle = table5_bandwidth(true, obs);
        assert!(plain > 0.0, "the transfer must complete");
        assert_eq!(
            plain.to_bits(),
            idle.to_bits(),
            "idle swap machinery moved the Table 5 bandwidth (obs={})",
            obs.is_some()
        );
    }
}

#[test]
fn idle_swap_machinery_charges_identical_table6_rtt() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        let plain = table6_rtt(false, false, obs);
        let idle = table6_rtt(true, false, obs);
        assert!(plain > 0, "the forward workload must complete");
        assert_eq!(
            plain,
            idle,
            "idle swap machinery moved the Table 6 RTT (obs={})",
            obs.is_some()
        );
    }
}

/// The online-upgrade promise on the Table 6 workload: committing a swap
/// to a semantically identical forwarder between warm-up and measurement
/// leaves the measured RTT byte-identical — the swap itself charges
/// nothing the workload can see.
#[test]
fn mid_run_swap_to_identical_version_is_invisible_in_table6() {
    for obs in [None, Some(Obs::new(4096))] {
        let obs = obs.as_ref();
        let plain = table6_rtt(false, false, obs);
        let swapped = table6_rtt(true, true, obs);
        assert_eq!(
            plain,
            swapped,
            "a committed identical-version swap moved the Table 6 RTT (obs={})",
            obs.is_some()
        );
    }
}
