//! The quota cost-model invariant, enforced end-to-end: every
//! virtual-time figure the evaluation reports is byte-identical whether
//! the overload machinery is absent or fully wired with default
//! (zero-valued, unlimited) budgets. Metering an event, installing the
//! scheduler's quota hook and gating a mailbox lane must never move a
//! reported number unless a budget actually refuses something.
//!
//! This mirrors `fault_invariance.rs` and `swap_invariance.rs`: the
//! workloads are the measured rows of Table 2 (in-kernel call, XAS
//! call), Table 5 (network latency/bandwidth) and Table 6 (the protocol
//! forwarder) — the rows scripts/verify.sh pins byte-for-byte against
//! checked-in goldens.

use parking_lot::Mutex;
use spin_core::{Dispatcher, Event, Identity, QuotaCell, QuotaLedger, QuotaSpec};
use spin_net::{
    reliable_bandwidth, udp_round_trip, Forwarder, Medium, NetStack, ThreeHosts, TwoHosts,
};
use spin_sal::{Clock, MachineProfile, SimBoard};
use spin_sched::{measure_xas_call, Executor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The wiring kit: one shared ledger (cells dedup by name, so re-created
/// rigs reuse their cells) plus a pass-through scheduler hook that counts
/// how often it is consulted.
struct QuotaRig {
    ledger: QuotaLedger,
    hook_calls: Arc<AtomicU64>,
    cells: Mutex<Vec<Arc<QuotaCell>>>,
}

impl QuotaRig {
    fn new() -> Self {
        QuotaRig {
            ledger: QuotaLedger::new(),
            hook_calls: Arc::new(AtomicU64::new(0)),
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Binds a default-spec (unlimited) cell to an event's admission path.
    fn meter<A, R>(&self, ev: &Event<A, R>, name: &str)
    where
        A: Send + Sync + 'static,
        R: Send + 'static,
    {
        let cell = self.ledger.register(name, QuotaSpec::default());
        self.cells.lock().push(cell.clone());
        // Re-created rigs re-bind the same named cell to a fresh event;
        // bind_quota is one-shot per event, so every bind here is fresh.
        assert_eq!(ev.bind_quota(cell), Ok(true));
    }

    fn attempts_total(&self) -> u64 {
        self.cells
            .lock()
            .iter()
            .map(|c| c.snapshot().attempts)
            .sum()
    }
}

fn wire_exec(exec: &Executor, rig: Option<&QuotaRig>) {
    if let Some(r) = rig {
        let calls = r.hook_calls.clone();
        exec.set_quota_hook(Arc::new(move |_name, base, _now| {
            calls.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — monotonic statistic; asserted after run_until_idle returns.
            base
        }));
    }
}

fn wire_stacks(rig: Option<&QuotaRig>, stacks: &[(&str, &NetStack)]) {
    if let Some(r) = rig {
        for (tag, s) in stacks {
            r.meter(&s.events().udp_arrived, &format!("udp-{tag}"));
            r.meter(&s.events().ip_arrived, &format!("ip-{tag}"));
        }
    }
}

fn table2_in_kernel_call(rig: Option<&QuotaRig>) -> u64 {
    let clock = Clock::new();
    let profile = Arc::new(MachineProfile::alpha_axp_3000_400());
    let d = Dispatcher::new(clock.clone(), profile);
    let (ev, owner) = d.define::<(), ()>("Null", Identity::kernel("bench"));
    owner.set_primary(|_| ()).expect("fresh");
    if let Some(r) = rig {
        r.meter(&ev, "null-call");
    }
    let t0 = clock.now();
    const N: u64 = 1000;
    for _ in 0..N {
        ev.raise(()).expect("handler installed");
    }
    (clock.now() - t0) / N
}

fn table2_xas(rig: Option<&QuotaRig>) -> u64 {
    let board = SimBoard::new();
    let host = board.new_host(64);
    let exec = Executor::for_host(&host);
    wire_exec(&exec, rig);
    measure_xas_call(&exec)
}

fn table5_net(rig: Option<&QuotaRig>) -> [u64; 3] {
    let wired_rig = |rig: Option<&QuotaRig>| {
        let two = TwoHosts::new();
        wire_exec(&two.exec, rig);
        wire_stacks(rig, &[("a", &two.a), ("b", &two.b)]);
        if let Some(r) = rig {
            // Gate a mailbox lane with an unlimited cell: the gate's probe
            // runs on every post to that lane and must cost nothing.
            let cell = r.ledger.register("mail-a", QuotaSpec::default());
            r.cells.lock().push(cell.clone());
            r.ledger
                .install_mailbox_gate(&two.host_a.mailbox, vec![(0, cell)]);
        }
        two
    };
    let two = wired_rig(rig);
    let eth_rtt = udp_round_trip(&two.exec, &two.a, &two.b, Medium::Ethernet, 16, 8);
    let two = wired_rig(rig);
    let atm_rtt = udp_round_trip(&two.exec, &two.a, &two.b, Medium::Atm, 16, 8);
    let two = wired_rig(rig);
    let eth_bw = reliable_bandwidth(&two.exec, &two.a, &two.b, Medium::Ethernet, 1458, 40, 16);
    [eth_rtt, atm_rtt, eth_bw.to_bits()]
}

fn table6_forward(rig: Option<&QuotaRig>) -> u64 {
    // UDP through the in-stack forwarder on the middle host (the Table 6
    // topology), with every hop's UDP and IP arrival events metered.
    let three = ThreeHosts::new();
    wire_exec(&three.exec, rig);
    wire_stacks(rig, &[("fa", &three.a), ("fb", &three.b), ("fc", &three.c)]);
    let medium = Medium::Ethernet;
    let _fwd = Forwarder::install_udp(&three.b, 7, three.c.ip_on(medium));
    let c2 = three.c.clone();
    spin_net::UdpSocket::bind_with(&three.c, 7, "echo", move |p| {
        let _ = c2.udp_send(7, p.ip.src, p.header.src_port, &p.payload);
    })
    .expect("bind echo");
    let reply = spin_net::UdpSocket::bind(&three.a, 9000, "client", 4).expect("bind client");
    let b_ip = three.b.ip_on(medium);
    let a = three.a.clone();
    let clock = three.exec.clock().clone();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = out.clone();
    const ROUNDS: u64 = 8;
    three.exec.spawn("driver", move |ctx| {
        a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
        reply.recv(ctx); // warm-up
        let t0 = clock.now();
        for _ in 0..ROUNDS {
            a.udp_send(9000, b_ip, 7, &[0u8; 16]).unwrap();
            reply.recv(ctx);
        }
        *o2.lock() = (clock.now() - t0) / ROUNDS;
    });
    three.exec.run_until_idle();
    let r = *out.lock();
    r
}

/// Every measured number of the suite under one configuration.
fn run_suite(rig: Option<&QuotaRig>) -> Vec<u64> {
    let mut out = vec![table2_in_kernel_call(rig), table2_xas(rig)];
    out.extend(table5_net(rig));
    out.push(table6_forward(rig));
    out
}

#[test]
fn virtual_time_is_identical_with_quota_machinery_wired_but_unlimited() {
    let baseline = run_suite(None);
    let rig = QuotaRig::new();
    assert_eq!(
        baseline,
        run_suite(Some(&rig)),
        "virtual-time outputs diverged with quota cells bound, the \
         scheduler hook installed and a mailbox lane gated (order: \
         table2 call/xas, table5 eth-rtt/atm-rtt/eth-bw-bits, table6 \
         udp-fwd)"
    );
    // The invariance must not hold trivially: the metered admission path
    // really ran on the measured hot paths, and every cell reconciles.
    assert!(
        rig.attempts_total() > 1000,
        "metered events saw only {} admission attempts",
        rig.attempts_total()
    );
    assert!(
        rig.hook_calls.load(Ordering::Relaxed) > 0, // ordering: Relaxed — read after run_until_idle returns; the executor join is the sync point.
        "the scheduler quota hook was never consulted"
    );
    for cell in rig.cells.lock().iter() {
        let s = cell.snapshot();
        assert_eq!(s.attempts, s.admitted, "an unlimited cell never refuses");
        assert_eq!(s.attempts, s.admitted + s.throttled + s.shed + s.held);
        assert_eq!(s.admitted, s.completed + s.in_flight);
        assert_eq!((s.breaches, s.mail_refused), (0, 0));
    }
}
